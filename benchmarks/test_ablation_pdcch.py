"""Ablation A13 — PDCCH capacity at scale (§9).

URLLC DCIs use high aggregation levels for control-channel
reliability, so a 16-CCE CORESET carries at most two AL-8 assignments
per occasion.  Growing the DL-active UE population past that limit
blocks DCIs and defers whole transport blocks — control capacity, not
data capacity, caps URLLC scalability.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem

UE_COUNTS = [2, 4, 8]
PACKETS_PER_UE = 150
HORIZON_MS = 400


def run_sweep():
    results = {}
    for n_ues in UE_COUNTS:
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                      pdcch_cces=16, aggregation_level=8,
                      seed=140 + n_ues))
        for ue_id in range(1, n_ues + 1):
            system.queue_downlink(
                uniform_arrivals(PACKETS_PER_UE, HORIZON_MS,
                                 seed=400 + ue_id),
                ue_id=ue_id)
        system.run()
        assert system.pdcch is not None
        results[n_ues] = {
            "delivered": len(system.dl_probe),
            "mean_us": system.dl_probe.summary().mean_us,
            "p99_us": system.dl_probe.summary().p99_us,
            "blocking": system.pdcch.counters.blocking_probability(),
        }
    return results


def test_ablation_pdcch(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # All packets eventually deliver (blocked DCIs defer, not drop).
    for n_ues in UE_COUNTS:
        assert results[n_ues]["delivered"] == n_ues * PACKETS_PER_UE

    # With two AL-8 slots per occasion, blocking appears beyond two
    # DL-active UEs and grows with the population.
    assert results[2]["blocking"] < results[4]["blocking"] \
        < results[8]["blocking"]
    assert results[8]["blocking"] > 0.15

    # Blocking converts into tail latency.
    assert results[8]["p99_us"] > results[2]["p99_us"]

    rows = [(n, f"{results[n]['blocking']:.1%}",
             f"{results[n]['mean_us']:8.1f}",
             f"{results[n]['p99_us']:8.1f}")
            for n in UE_COUNTS]
    write_artifact("ablation_pdcch", render_table(
        ("UEs", "DCI blocking", "mean DL µs", "p99 DL µs"), rows,
        title="PDCCH blocking at AL-8 in a 16-CCE CORESET (DDDU DL)"))
