"""Ablation A12 — dedicated vs shared 5G core (§9).

"To ensure URLLC is not bottlenecked by the 5G core, one solution is
to replicate the core with a dedicated one for URLLC packets and
another for other services like eMBB, though this increases cost."
The benchmark runs the uplink through a UPF whose CPU core is either
dedicated or shared with a background (eMBB-like) forwarding load, and
measures the tail inflation that motivates the dedicated design.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.sim.resources import CpuResource
from repro.phy.timebase import tc_from_ms, tc_from_us

N_PACKETS = 300
HORIZON_MS = 1_500
#: background forwarding job: size (µs) and inter-arrival (µs)
BACKGROUND_JOB_US = 400.0
BACKGROUND_PERIOD_US = 700.0  # ≈ 57 % core utilisation


def run_scenario(shared: bool):
    system = RanSystem(testbed_dddu(),
                       RanConfig(access=AccessMode.GRANT_FREE,
                                 seed=121))
    if shared:
        core = CpuResource(system.sim, n_cores=1, name="upf-core")
        system.upf.cpu = core
        horizon_tc = tc_from_ms(HORIZON_MS + 500)
        period_tc = tc_from_us(BACKGROUND_PERIOD_US)
        job_tc = tc_from_us(BACKGROUND_JOB_US)
        for k in range(horizon_tc // period_tc):
            system.sim.schedule(k * period_tc,
                                lambda: core.execute(job_tc,
                                                     lambda: None))
    probe = system.run_uplink(
        uniform_arrivals(N_PACKETS, HORIZON_MS, seed=122))
    return probe.summary()


def run_both():
    return {
        "dedicated URLLC core": run_scenario(shared=False),
        "shared with eMBB load": run_scenario(shared=True),
    }


def test_ablation_core_sharing(benchmark):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    dedicated = results["dedicated URLLC core"]
    shared = results["shared with eMBB load"]

    assert dedicated.count == shared.count == N_PACKETS
    # Sharing the forwarding core inflates both mean and tail.
    assert shared.mean_us > dedicated.mean_us + 50.0
    assert shared.p99_us > dedicated.p99_us + 100.0

    rows = [(name, f"{s.mean_us:8.1f}", f"{s.p99_us:8.1f}",
             f"{s.max_us:8.1f}")
            for name, s in results.items()]
    write_artifact("ablation_core_sharing", render_table(
        ("core deployment", "mean UL µs", "p99 UL µs", "max UL µs"),
        rows,
        title="UPF core sharing (DDDU UL, ~57% background load)"))
