"""Ablation A2 — TDD pattern length (§4's pattern-duration remark).

Paper: if the SR → grant turnaround exceeds one TDD pattern, "an
entire pattern is missed before the gNB can respond"; lengthening the
pattern avoids the miss but "also increases the latency".  The
benchmark sweeps DDDU-family patterns (one UL slot per pattern) at
µ=1 and records grant-based and grant-free UL worst cases.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import from_letters
from repro.mac.types import AccessMode, Direction
from repro.phy.timebase import us_from_tc

# One UL slot per pattern, pattern periods drawn from the TS 38.331
# allowed set at µ=1: 1, 2, 2.5, 5 and 10 ms.
PATTERNS = ["DU", "DDDU", "DDDDU", "DDDDDDDDDU",
            "DDDDDDDDDDDDDDDDDDDU"]


def run_sweep():
    results = {}
    for letters in PATTERNS:
        model = LatencyModel(from_letters(letters, mu=1))
        results[letters] = {
            "grant-based": model.extremes(
                Direction.UL, AccessMode.GRANT_BASED).worst_tc,
            "grant-free": model.extremes(
                Direction.UL, AccessMode.GRANT_FREE).worst_tc,
        }
    return results


def test_ablation_tdd_period(benchmark):
    results = benchmark(run_sweep)

    # Grant-free worst case equals one pattern period: it grows
    # linearly with pattern length.
    free = [results[p]["grant-free"] for p in PATTERNS]
    assert free == sorted(free)
    assert free[-1] > 4 * free[0]

    # Grant-based pays *two* pattern traversals (SR in one UL slot,
    # data in the next pattern's): roughly twice the grant-free value
    # for every pattern length.
    for letters in PATTERNS:
        based = results[letters]["grant-based"]
        ratio = based / results[letters]["grant-free"]
        assert 1.8 <= ratio <= 2.3, letters

    rows = [(letters, f"{len(letters) / 2:g} ms",
             f"{us_from_tc(results[letters]['grant-free']):8.1f}",
             f"{us_from_tc(results[letters]['grant-based']):8.1f}")
            for letters in PATTERNS]
    write_artifact("ablation_tdd_period", render_table(
        ("pattern", "period", "grant-free worst µs",
         "grant-based worst µs"), rows,
        title="UL worst-case latency vs TDD pattern length (µ=1)"))
