"""Extension E2 — connected vs idle-start URLLC.

The paper's analysis (and every URLLC requirement) presumes a
*connected* UE with configured resources.  This benchmark quantifies
what that assumption buys: a UE waking from IDLE must run random
access first, which costs ~10 ms (4-step) on the testbed pattern —
twenty times the whole URLLC budget — before the first data bit moves.
2-step RACH helps but stays an order of magnitude out; contention
makes the tail worse.
"""

import numpy as np
from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.rach import RachProcedure
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.sim.rng import RngRegistry

N_SAMPLES = 400


def run_comparison():
    rng = RngRegistry(131).stream("rach")
    scheme = testbed_dddu()
    results = {}
    for label, two_step, contenders in (
            ("4-step RACH, no contention", False, 1),
            ("4-step RACH, 20 contenders", False, 20),
            ("2-step RACH, no contention", True, 1)):
        rach = RachProcedure(scheme, two_step=two_step)
        delays = rach.sample_access_delays_us(N_SAMPLES, rng,
                                              n_contenders=contenders)
        results[label] = {
            "mean_us": float(np.mean(delays)),
            "p99_us": float(np.quantile(delays, 0.99)),
        }
    # Connected-mode reference: grant-free UL on the same pattern.
    system = RanSystem(scheme, RanConfig(access=AccessMode.GRANT_FREE,
                                         seed=132))
    probe = system.run_uplink(uniform_arrivals(N_SAMPLES, 2_000,
                                               seed=133))
    results["connected (grant-free UL)"] = {
        "mean_us": probe.summary().mean_us,
        "p99_us": probe.summary().p99_us,
    }
    return results


def test_extension_cold_start(benchmark):
    results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    connected = results["connected (grant-free UL)"]["mean_us"]
    cold = results["4-step RACH, no contention"]["mean_us"]
    two_step = results["2-step RACH, no contention"]["mean_us"]
    contended = results["4-step RACH, 20 contenders"]["p99_us"]

    # Cold start costs several times the whole connected-mode latency
    # before any data moves.
    assert cold > 3 * connected
    assert two_step < cold
    # Contention inflates the access tail further.
    assert contended > results["4-step RACH, no contention"]["p99_us"]
    # And the URLLC budget is hopeless from idle.
    assert cold > 10 * 500.0

    rows = [(name, f"{v['mean_us']:9.1f}", f"{v['p99_us']:9.1f}")
            for name, v in results.items()]
    write_artifact("extension_cold_start", render_table(
        ("scenario", "mean µs", "p99 µs"), rows,
        title="Access latency from IDLE vs connected mode (DDDU)"))
