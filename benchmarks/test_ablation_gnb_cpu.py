"""Ablation A7 — gNB processing contention across UEs (§7).

Paper: "higher number of UEs might increase the processing times
noticeably."  The benchmark pins the gNB stack to one core, grows the
UE population at a fixed per-UE uplink rate (the uplink path costs the
gNB PHY+MAC+RLC+PDCP+SDAP ≈ 114 µs per packet, and whole transport
blocks arrive at once at each window end), and measures the observed
per-packet gNB processing (service + core queueing) and the end-to-end
latency.
"""

import numpy as np
from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.stack.packets import LatencySource
from repro.phy.timebase import us_from_tc

UE_COUNTS = [1, 8, 32]
PACKETS_PER_UE = 120
HORIZON_MS = 600


def run_sweep():
    results = {}
    for n_ues in UE_COUNTS:
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                      gnb_cpu_cores=1, seed=70 + n_ues))
        for ue_id in range(1, n_ues + 1):
            system.queue_uplink(
                uniform_arrivals(PACKETS_PER_UE, HORIZON_MS,
                                 seed=200 + ue_id),
                ue_id=ue_id)
        system.run()
        # Isolate the gNB-side processing: subtract the UE-side stack
        # (identical distribution across sweeps) by measuring only the
        # gNB pipeline's span per packet.
        spans_us = []
        for packet in system.ul_probe.packets:
            enter = packet.timestamps.get("gnb.up.phy.enter")
            exit_ = packet.timestamps.get("gnb.up.sdap.exit")
            if enter is not None and exit_ is not None:
                spans_us.append(us_from_tc(exit_ - enter))
        results[n_ues] = {
            "delivered": len(system.ul_probe),
            "gnb_processing_us": float(np.mean(spans_us)),
            "queueing_us": system.gnb_cpu.mean_queueing_us(),
            "latency_us": system.ul_probe.summary().mean_us,
        }
    return results


def test_ablation_gnb_cpu(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    for n_ues in UE_COUNTS:
        assert results[n_ues]["delivered"] == n_ues * PACKETS_PER_UE

    # Observed gNB processing grows with the UE count — noticeably so
    # at 32 UEs on one core (§7).
    spans = [results[n]["gnb_processing_us"] for n in UE_COUNTS]
    assert spans == sorted(spans)
    assert spans[-1] > 1.5 * spans[0]
    assert results[32]["queueing_us"] > results[1]["queueing_us"]

    rows = [(n, f"{results[n]['gnb_processing_us']:8.1f}",
             f"{results[n]['queueing_us']:8.1f}",
             f"{results[n]['latency_us']:8.1f}")
            for n in UE_COUNTS]
    write_artifact("ablation_gnb_cpu", render_table(
        ("UEs", "gNB stack span µs", "mean core wait µs",
         "mean UL latency µs"), rows,
        title="gNB processing under contention (1 core, DDDU UL)"))
