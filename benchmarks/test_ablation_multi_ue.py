"""Ablation A3 — grant-free scalability across UEs (§9).

Paper: grant-free access "cannot scale to many UEs as these
pre-allocated resources are limited and can be wasted if there are no
uplink packets".  The benchmark grows the UE population with a fixed
per-UE traffic rate and records (a) the configured-grant waste
fraction and (b) the per-UE latency, showing waste stays high at low
duty cycles while capacity shrinks per UE.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem

UE_COUNTS = [1, 2, 4, 8]
PACKETS_PER_UE = 60
HORIZON_MS = 1_500


def run_sweep():
    results = {}
    for n_ues in UE_COUNTS:
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                      seed=50 + n_ues))
        for ue_id in range(1, n_ues + 1):
            system.queue_uplink(
                uniform_arrivals(PACKETS_PER_UE, HORIZON_MS,
                                 seed=100 + ue_id),
                ue_id=ue_id)
        system.run()
        counters = system.gnb.scheduler.counters
        results[n_ues] = {
            "delivered": len(system.ul_probe),
            "mean_us": system.ul_probe.summary().mean_us,
            "waste": counters.cg_waste_fraction(),
            "allocated": counters.cg_allocated_bytes,
        }
    return results


def test_ablation_multi_ue(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # Everything is delivered at these loads.
    for n_ues in UE_COUNTS:
        assert results[n_ues]["delivered"] == n_ues * PACKETS_PER_UE

    # Pre-allocated capacity is mostly wasted at URLLC duty cycles —
    # the structural cost of grant-free access.
    for n_ues in UE_COUNTS:
        assert results[n_ues]["waste"] > 0.5

    # Total pre-allocated bytes grow with delivered traffic while the
    # per-UE share shrinks; latency should not collapse at this load.
    assert results[8]["mean_us"] < 2.0 * results[1]["mean_us"]

    rows = [(n, results[n]["delivered"],
             f"{results[n]['mean_us']:8.1f}",
             f"{results[n]['waste']:.1%}")
            for n in UE_COUNTS]
    write_artifact("ablation_multi_ue", render_table(
        ("UEs", "delivered", "mean UL µs", "CG waste"), rows,
        title="Grant-free scalability (DDDU, fixed per-UE rate)"))
