"""Ablation A3 — grant-free scalability across UEs (§9).

Paper: grant-free access "cannot scale to many UEs as these
pre-allocated resources are limited and can be wasted if there are no
uplink packets".  The populations run as the ``multi-ue`` campaign
(one point per UE count, fixed per-UE traffic rate) and the merged
metrics show (a) the configured-grant waste fraction staying high at
low duty cycles while (b) per-UE latency holds.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.runner import build_campaign

UE_COUNTS = [1, 2, 4, 8]
PACKETS_PER_UE = 60


def test_ablation_multi_ue(benchmark, campaign_runner):
    result = benchmark.pedantic(
        lambda: campaign_runner.run(build_campaign("multi-ue")),
        rounds=1, iterations=1)

    results = {
        point_result.point.params_dict()["n_ues"]: point_result.result
        for point_result in result.point_results
    }

    # Everything is delivered at these loads.
    for n_ues in UE_COUNTS:
        assert results[n_ues]["delivered"] == n_ues * PACKETS_PER_UE

    # Pre-allocated capacity is mostly wasted at URLLC duty cycles —
    # the structural cost of grant-free access.
    for n_ues in UE_COUNTS:
        assert results[n_ues]["cg_waste"] > 0.5

    # Total pre-allocated bytes grow with delivered traffic while the
    # per-UE share shrinks; latency should not collapse at this load.
    assert results[8]["mean_us"] < 2.0 * results[1]["mean_us"]

    rows = [(n, results[n]["delivered"],
             f"{results[n]['mean_us']:8.1f}",
             f"{results[n]['cg_waste']:.1%}")
            for n in UE_COUNTS]
    write_artifact("ablation_multi_ue", render_table(
        ("UEs", "delivered", "mean UL µs", "CG waste"), rows,
        title="Grant-free scalability (DDDU, fixed per-UE rate)"))
