"""Fig 1 — the possible TDD configuration structures.

(a) Common Configuration: DL slots, a mixed slot with guard symbols,
    UL slots; (b) Mini Slot: per-mini-slot characterisation; (c) Slot
    Format: standard-predefined formats.

The benchmark renders all three from the library's models and asserts
their structural properties (slot letters, guard presence, mini-slot
tiling, format-table conformance).
"""

from conftest import write_artifact

from repro.analysis.report import render_tdd_configuration
from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.minislot import MiniSlotConfig
from repro.mac.slot_format import SLOT_FORMATS, SlotFormatConfig
from repro.mac.types import SymbolRole
from repro.phy.numerology import Numerology


def build_all():
    common = minimal_dm()
    mini = MiniSlotConfig(Numerology(2), mini_slot_symbols=7)
    slot_format = SlotFormatConfig(Numerology(2), [0, 28, 1, 1])
    return common, mini, slot_format


def test_fig1_tdd_configurations(benchmark):
    common, mini, slot_format = benchmark(build_all)

    # (a) Common Configuration: D then mixed with mandatory guard.
    assert common.slot_letters() == ["D", "M"]
    mixed = common.slot_roles()[1]
    assert SymbolRole.FLEXIBLE in mixed  # the guard region

    # (b) Mini Slot: bidirectional windows tile every slot.
    assert len(mini.dl_timeline().windows) == 8
    assert mini.dl_timeline().windows == mini.ul_timeline().windows

    # (c) Slot Format: only standard-predefined formats are usable.
    assert len(SLOT_FORMATS) == 46
    assert len(slot_format.dl_timeline().windows) == 2  # formats 0, 28

    lines = [
        "(a) " + render_tdd_configuration(common),
        "",
        "(a') " + render_tdd_configuration(testbed_dddu()),
        "",
        f"(b) {mini.describe()}",
        f"    windows per subframe: {len(mini.dl_timeline().windows)}, "
        f"control overhead {mini.overhead_fraction():.1%}",
        "",
        f"(c) {slot_format.describe()}",
        "    formats: " + ", ".join(
            f"{i}:{SLOT_FORMATS[i]}" for i in slot_format.format_indices),
    ]
    write_artifact("fig1_tdd_configurations", "\n".join(lines))
