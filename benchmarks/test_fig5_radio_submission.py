"""Fig 5 — OS and hardware-imposed delay of sample submission.

Paper: submitting 2 000-20 000 samples to the B210 costs ~150-400 µs
over USB 2.0 and ~150-190 µs over USB 3.0, growing linearly in the
sample count, with spikes from OS scheduling on top.

The benchmark sweeps the same x-axis, asserts the linear-plus-spikes
structure (USB 2.0 slope steeper, spikes above the affine floor), and
records the two series.
"""

import numpy as np
from conftest import write_artifact

from repro.radio.interface import usb2, usb3
from repro.sim.rng import RngRegistry

SAMPLE_COUNTS = list(range(2_000, 20_001, 1_000))
REPETITIONS = 300


def run_sweep():
    rngs = RngRegistry(5)
    return {
        bus.name: bus.sweep(SAMPLE_COUNTS, rngs.stream(bus.name),
                            repetitions=REPETITIONS)
        for bus in (usb2(), usb3())
    }


def test_fig5_radio_submission(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    medians = {
        name: [float(np.median(values[n])) for n in SAMPLE_COUNTS]
        for name, values in series.items()
    }
    # Paper magnitudes at the endpoints.
    assert 130 <= medians["usb2"][0] <= 200
    assert 340 <= medians["usb2"][-1] <= 430
    assert 130 <= medians["usb3"][0] <= 200
    assert medians["usb3"][-1] <= 210

    # Linear growth: USB 2.0 slope well above USB 3.0's.
    def slope(values):
        return ((values[-1] - values[0])
                / (SAMPLE_COUNTS[-1] - SAMPLE_COUNTS[0]))

    assert slope(medians["usb2"]) > 4 * slope(medians["usb3"])

    # OS-scheduling spikes: maxima sit well above the median floor.
    for name, values in series.items():
        spikes = sum(
            1 for n in SAMPLE_COUNTS
            for sample in values[n]
            if sample > np.median(values[n]) + 20.0)
        assert spikes > 0, f"no spikes observed on {name}"

    lines = ["Fig 5 — sample-submission latency (median µs per count)",
             "", f"{'samples':>9} {'USB 2.0':>9} {'USB 3.0':>9}"]
    for index, n in enumerate(SAMPLE_COUNTS):
        lines.append(f"{n:>9} {medians['usb2'][index]:>9.1f} "
                     f"{medians['usb3'][index]:>9.1f}")
    write_artifact("fig5_radio_submission", "\n".join(lines))
