"""Fig 5 — OS and hardware-imposed delay of sample submission.

Paper: submitting 2 000-20 000 samples to the B210 costs ~150-400 µs
over USB 2.0 and ~150-190 µs over USB 3.0, growing linearly in the
sample count, with spikes from OS scheduling on top.

The sweep runs as the ``fig5`` campaign — one point per (bus, sample
count), fanned out over the shared session pool and replayed from the
result cache on unchanged source — and asserts the linear-plus-spikes
structure (USB 2.0 slope steeper, spikes above the affine floor).
"""

from conftest import write_artifact

from repro.runner import build_campaign

SAMPLE_COUNTS = list(range(2_000, 20_001, 1_000))


def test_fig5_radio_submission(benchmark, campaign_runner):
    result = benchmark.pedantic(
        lambda: campaign_runner.run(build_campaign("fig5")),
        rounds=1, iterations=1)

    by_point = {
        (point_result.point.params_dict()["bus"],
         point_result.point.params_dict()["samples"]):
        point_result.result
        for point_result in result.point_results
    }
    medians = {
        bus: [by_point[(bus, n)]["median_us"] for n in SAMPLE_COUNTS]
        for bus in ("usb2", "usb3")
    }
    # Paper magnitudes at the endpoints.
    assert 130 <= medians["usb2"][0] <= 200
    assert 340 <= medians["usb2"][-1] <= 430
    assert 130 <= medians["usb3"][0] <= 200
    assert medians["usb3"][-1] <= 210

    # Linear growth: USB 2.0 slope well above USB 3.0's.
    def slope(values):
        return ((values[-1] - values[0])
                / (SAMPLE_COUNTS[-1] - SAMPLE_COUNTS[0]))

    assert slope(medians["usb2"]) > 4 * slope(medians["usb3"])

    # OS-scheduling spikes: maxima sit well above the median floor.
    for bus in ("usb2", "usb3"):
        spikes = sum(by_point[(bus, n)]["spike_count"]
                     for n in SAMPLE_COUNTS)
        assert spikes > 0, f"no spikes observed on {bus}"

    lines = ["Fig 5 — sample-submission latency (median µs per count)",
             "", f"{'samples':>9} {'USB 2.0':>9} {'USB 3.0':>9}"]
    for index, n in enumerate(SAMPLE_COUNTS):
        lines.append(f"{n:>9} {medians['usb2'][index]:>9.1f} "
                     f"{medians['usb3'][index]:>9.1f}")
    write_artifact("fig5_radio_submission", "\n".join(lines))
