"""Ablation A11 — MCS choice under a fixed SNR (§6's channel trade-off).

At a fixed operating SNR, an aggressive MCS buys per-block capacity
but pays HARQ retransmissions; a conservative one transmits reliably
first-shot but needs more resources per byte.  The benchmark runs the
DDDU downlink across MCS indices at a mid-cell SNR and shows the
latency/reliability optimum sitting below the capacity-optimal MCS.
"""

import numpy as np
from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import IidErasureChannel
from repro.phy.link_adaptation import bler_at, select_mcs

SNR_DB = 16.0
MCS_SWEEP = [6, 12, 16, 20, 24]
N_PACKETS = 400
HORIZON_MS = 2_000


def run_sweep():
    results = {}
    for mcs_index in MCS_SWEEP:
        bler = bler_at(mcs_index, SNR_DB)
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_FREE,
                      mcs_index=mcs_index,
                      channel=IidErasureChannel(bler), seed=111))
        probe = system.run_downlink(
            uniform_arrivals(N_PACKETS, HORIZON_MS, seed=112))
        retx = float(np.mean([p.harq_retransmissions
                              for p in probe.packets]))
        results[mcs_index] = {
            "bler": bler,
            "mean_us": probe.summary().mean_us,
            "p99_us": probe.summary().p99_us,
            "mean_retx": retx,
            "dropped": system.link.counters.packets_dropped,
            "delivered": len(probe),
        }
    return results


def test_ablation_link_adaptation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # BLER grows with MCS at fixed SNR; so do retransmissions.
    blers = [results[m]["bler"] for m in MCS_SWEEP]
    assert blers == sorted(blers)
    assert results[24]["mean_retx"] > results[12]["mean_retx"]

    # The link-adaptation pick at this SNR transmits essentially
    # first-shot; the most aggressive MCS pays a visible p99 penalty.
    adapted = select_mcs(SNR_DB, target_bler=1e-3)
    assert adapted in range(6, 25)
    assert results[24]["p99_us"] > results[12]["p99_us"] + 300.0
    assert results[12]["mean_retx"] < 0.01

    rows = [(m, f"{results[m]['bler']:.2e}",
             f"{results[m]['mean_retx']:.3f}",
             f"{results[m]['mean_us']:8.1f}",
             f"{results[m]['p99_us']:8.1f}",
             results[m]["dropped"])
            for m in MCS_SWEEP]
    write_artifact("ablation_link_adaptation", render_table(
        ("MCS", "BLER", "mean retx", "mean µs", "p99 µs", "dropped"),
        rows,
        title=f"MCS sweep at SNR {SNR_DB:g} dB (DDDU DL); "
              f"link adaptation would pick MCS {adapted}"))
