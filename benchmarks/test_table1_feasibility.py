"""Table 1 — 0.5 ms feasibility of all minimal configurations.

Paper (Table 1):

                DU   DM   MU   Mini-slot  FDD
Grant-Based UL  ✗    ✗    ✗    ✓          ✓
Grant-Free UL   ✓    ✓    ✓    ✓          ✓
DL              ✗    ✓    ✗    ✓          ✓

The benchmark regenerates the matrix analytically and requires an
exact match — this artifact has no measurement noise.
"""

from conftest import write_artifact

from repro.core.design_space import (
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    feasibility_matrix,
    render_table1,
)
from repro.phy.timebase import us_from_tc

PAPER_TABLE1 = {
    "Grant-Based UL": (False, False, False, True, True),
    "Grant-Free UL": (True, True, True, True, True),
    "DL": (False, True, False, True, True),
}


def test_table1_feasibility(benchmark):
    matrix = benchmark(feasibility_matrix)

    for row in TABLE1_ROWS:
        for column, expected in zip(TABLE1_COLUMNS, PAPER_TABLE1[row]):
            assert matrix[row][column].meets == expected, (
                f"({row}, {column}) disagrees with the paper")

    lines = [render_table1(matrix), "", "Worst-case latencies (µs):"]
    for row in TABLE1_ROWS:
        for column in TABLE1_COLUMNS:
            cell = matrix[row][column]
            lines.append(
                f"  {row:<16} {column:<10} "
                f"{us_from_tc(cell.extremes.worst_tc):8.1f} µs "
                f"{cell.mark}")
    write_artifact("table1_feasibility", "\n".join(lines))
