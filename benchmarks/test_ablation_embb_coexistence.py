"""Ablation A10 — URLLC/eMBB coexistence (§1's coexistence line of work).

One URLLC UE shares the cell's downlink with three eMBB UEs pushing
large transfers.  Without traffic separation the URLLC packets queue
behind eMBB bursts; strict-priority scheduling restores near-isolated
latency — the mechanism the joint-scheduling papers the paper cites
build on.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem

URLLC_UE = 1
EMBB_UES = (2, 3, 4)
URLLC_PACKETS = 150
EMBB_PACKETS = 120
EMBB_PAYLOAD = 6_000  # large transfers
HORIZON_MS = 1_200


def run_scenario(prioritise: bool, seed: int):
    priorities = {URLLC_UE: 0}
    for ue_id in EMBB_UES:
        priorities[ue_id] = 1 if prioritise else 0
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE, n_ues=4, seed=seed,
                  ue_priorities=priorities))
    system.queue_downlink(
        uniform_arrivals(URLLC_PACKETS, HORIZON_MS, seed=301),
        payload_bytes=48, ue_id=URLLC_UE)
    for ue_id in EMBB_UES:
        system.queue_downlink(
            uniform_arrivals(EMBB_PACKETS, HORIZON_MS, seed=300 + ue_id),
            payload_bytes=EMBB_PAYLOAD, ue_id=ue_id)
    system.run()
    urllc = [p for p in system.dl_probe.packets
             if p.ue_id == URLLC_UE]
    from repro.net.probes import summarize_us
    from repro.phy.timebase import us_from_tc
    latencies = [us_from_tc(p.latency_tc) for p in urllc]
    return summarize_us(latencies)


def run_all():
    return {
        "isolated": run_isolated(),
        "shared, no priority": run_scenario(prioritise=False, seed=97),
        "shared, URLLC priority": run_scenario(prioritise=True, seed=97),
    }


def run_isolated():
    system = RanSystem(testbed_dddu(),
                       RanConfig(access=AccessMode.GRANT_FREE, seed=96))
    probe = system.run_downlink(
        uniform_arrivals(URLLC_PACKETS, HORIZON_MS, seed=301),
        payload_bytes=48)
    return probe.summary()


def test_ablation_embb_coexistence(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    isolated = results["isolated"]
    contended = results["shared, no priority"]
    protected = results["shared, URLLC priority"]

    # eMBB load visibly inflates URLLC tail latency without separation.
    assert contended.p99_us > 1.3 * isolated.p99_us

    # Strict priority recovers most of the isolation.
    assert protected.p99_us < contended.p99_us
    assert protected.p99_us < 1.25 * isolated.p99_us

    rows = [(name, f"{s.mean_us:8.1f}", f"{s.p99_us:8.1f}",
             f"{s.max_us:8.1f}")
            for name, s in results.items()]
    write_artifact("ablation_embb_coexistence", render_table(
        ("scenario", "URLLC mean µs", "URLLC p99 µs", "URLLC max µs"),
        rows,
        title="URLLC DL latency under eMBB load (DDDU, 3 eMBB UEs)"))
