"""Ablation A4 — OS jitter vs reliability (§6).

Paper: non-deterministic OS scheduling delays "if not accounted for
with sufficient margin, can cause packet loss and reliability issues";
a real-time kernel is the suggested mitigation.  The benchmark sweeps
the scheduling margin under GPOS and RT-kernel jitter and records the
deadline-miss probability and the latency cost of each margin.
"""

import numpy as np
from conftest import write_artifact

from repro.analysis.report import render_table
from repro.core.reliability import margin_tradeoff, required_margin_us
from repro.radio.os_jitter import gpos, rt_kernel

DETERMINISTIC_US = 200.0  # bus + RF floor of the transfer
MARGINS_US = [200.0, 250.0, 350.0, 600.0, 1_000.0]


def run_sweep():
    rng = np.random.default_rng(9)
    curves = {
        model.name: margin_tradeoff(model, DETERMINISTIC_US,
                                    MARGINS_US, rng, draws=60_000)
        for model in (gpos(), rt_kernel())
    }
    needed = {
        model.name: required_margin_us(model, DETERMINISTIC_US,
                                       0.99999, rng, draws=300_000)
        for model in (gpos(), rt_kernel())
    }
    return curves, needed


def test_ablation_os_jitter(benchmark):
    curves, needed = benchmark.pedantic(run_sweep, rounds=1,
                                        iterations=1)

    # Misses decrease monotonically with margin in both regimes.
    for name, points in curves.items():
        misses = [p.deadline_miss_probability for p in points]
        assert misses == sorted(misses, reverse=True), name

    # GPOS needs a much larger margin for five-nines than RT.
    assert needed["gpos"] > needed["rt-kernel"] + 100.0

    # With the bare deterministic margin, GPOS misses often; RT with a
    # small cushion is already clean.
    gpos_bare = curves["gpos"][0].deadline_miss_probability
    rt_cushion = curves["rt-kernel"][1].deadline_miss_probability
    assert gpos_bare > 0.02
    assert rt_cushion < 1e-3

    rows = []
    for margin, gpos_point, rt_point in zip(
            MARGINS_US, curves["gpos"], curves["rt-kernel"]):
        rows.append((f"{margin:g}",
                     f"{gpos_point.deadline_miss_probability:.5f}",
                     f"{rt_point.deadline_miss_probability:.5f}",
                     f"{gpos_point.added_latency_us:g}"))
    table = render_table(
        ("margin µs", "GPOS miss P", "RT miss P", "added latency µs"),
        rows, title="Deadline-miss probability vs scheduling margin")
    footer = (f"\nmargin for 99.999%: GPOS {needed['gpos']:.0f} µs, "
              f"RT kernel {needed['rt-kernel']:.0f} µs")
    write_artifact("ablation_os_jitter", table + footer)
