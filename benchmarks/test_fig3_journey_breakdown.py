"""Fig 3 — system-level temporal breakdown of the journey of a packet.

The paper's figure traces a ping through steps ① (UL data enters the
UE stack) to ⑪ (DL data delivered to the UE APP) over a DDDU pattern.
The benchmark runs one traced ping on the simulated testbed, rebuilds
the step timeline, and asserts the figure's structural claims: the SR
handshake precedes the grant, the grant precedes the UL data, and the
DL reply waits in the RLC queue for the next scheduling occasion.
"""

from conftest import write_artifact

from repro.core.journey import reconstruct_ping_journey
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead


def run_traced_ping():
    radio_head = RadioHead("b210", usb3(), gpos())
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_BASED,
                  gnb_radio_head=radio_head, trace=True, seed=33))
    results = system.run_ping([tc_from_ms(0.2)])
    return reconstruct_ping_journey(results[0], system.tracer)


def test_fig3_journey_breakdown(benchmark):
    journey = benchmark.pedantic(run_traced_ping, rounds=1, iterations=1)

    indices = [step.index for step in journey.steps]
    assert indices == list(range(1, 12))
    for step in journey.steps:
        assert step.end_tc >= step.start_tc

    # The SR → grant handshake (③+⑤) plus the granted transmission (⑥)
    # dominate the uplink; the DL side is one RLC-q wait plus one slot.
    handshake = (journey.step(3).duration_us
                 + journey.step(5).duration_us
                 + journey.step(6).duration_us)
    assert handshake > journey.step(10).duration_us

    # The whole round trip spans multiple TDD periods on this pattern.
    assert journey.rtt_us > 2_000.0

    write_artifact("fig3_journey_breakdown", journey.render())
