"""Extension E4 — FR2 mmWave in the full DES (§1, §5).

The paper dismisses FR2 for URLLC analytically: 15.625 µs slots buy
nothing when line-of-sight blockage erases whole transmission windows.
This benchmark runs the *full* stack at µ=3 (0.125 ms slots, a 0.5 ms
DDDU-like pattern) over a Gilbert-Elliott blockage channel and
measures what the short slots actually deliver:

- in LoS the protocol latency indeed shrinks ~4× vs the µ=1 testbed,
- but blockage episodes strand packets across HARQ rounds, producing a
  tail that caps reliability far below URLLC's five nines.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import from_letters, testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import GilbertElliottChannel
from repro.phy.timebase import tc_from_ms

N_PACKETS = 500
HORIZON_MS = 2_000


def fr2_scheme():
    """A 0.5 ms DDDU pattern at µ=3 (0.125 ms slots, FR2 numerology)."""
    return from_letters("DDDU", mu=3)


def blockage_channel():
    """Pedestrian blockers: ~300 ms LoS / ~60 ms blocked episodes."""
    return GilbertElliottChannel(mean_good_tc=tc_from_ms(300),
                                 mean_bad_tc=tc_from_ms(60),
                                 bler_good=0.001, bler_bad=0.95)


def run_comparison():
    results = {}
    # FR1 reference: the µ=1 testbed pattern, clean channel.
    fr1 = RanSystem(testbed_dddu(),
                    RanConfig(access=AccessMode.GRANT_FREE, seed=181))
    results["FR1 µ=1, clean"] = fr1.run_downlink(
        uniform_arrivals(N_PACKETS, HORIZON_MS, seed=182))
    # FR2 numerology, clean channel: the short-slot upside.
    fr2_clean = RanSystem(fr2_scheme(),
                          RanConfig(access=AccessMode.GRANT_FREE,
                                    bandwidth_mhz=50, seed=183))
    results["FR2 µ=3, clean"] = fr2_clean.run_downlink(
        uniform_arrivals(N_PACKETS, HORIZON_MS, seed=182))
    # FR2 with line-of-sight blockage: the paper's objection.
    fr2_blocked = RanSystem(
        fr2_scheme(),
        RanConfig(access=AccessMode.GRANT_FREE, bandwidth_mhz=50,
                  channel=blockage_channel(), seed=184))
    results["FR2 µ=3, blockage"] = fr2_blocked.run_downlink(
        uniform_arrivals(N_PACKETS, HORIZON_MS, seed=182))
    dropped = fr2_blocked.link.counters.packets_dropped
    return results, dropped


def test_extension_fr2_des(benchmark):
    results, dropped = benchmark.pedantic(run_comparison, rounds=1,
                                          iterations=1)

    fr1 = results["FR1 µ=1, clean"].summary()
    clean = results["FR2 µ=3, clean"].summary()
    blocked = results["FR2 µ=3, blockage"].summary()

    # Short slots genuinely help while the link is clean — but by 2×,
    # not the 4× the slot ratio suggests: the processing floor does not
    # shrink with the slots (§4's bottleneck interplay again).
    assert clean.mean_us < fr1.mean_us / 1.8

    # Blockage wrecks the tail twice over: surviving packets pay HARQ
    # rounds (p999 more than doubles), and packets caught in a long
    # episode exhaust HARQ and are *lost* outright.
    assert blocked.p999_us > 2 * clean.p999_us
    assert dropped > 0
    probe = results["FR2 µ=3, blockage"]
    delivered_within = probe.fraction_within(500.0) * len(probe)
    assert delivered_within / N_PACKETS < 0.999

    rows = [(name, f"{probe.summary().mean_us:8.1f}",
             f"{probe.summary().p99_us:8.1f}",
             f"{probe.summary().max_us:9.1f}",
             f"{probe.fraction_within(500.0):.1%}")
            for name, probe in results.items()]
    write_artifact("extension_fr2_des", render_table(
        ("scenario", "mean µs", "p99 µs", "max µs", "≤0.5 ms"), rows,
        title="FR2 short slots vs blockage (DL, grant-free)")
        + f"\npackets dropped after HARQ exhaustion: {dropped}")
