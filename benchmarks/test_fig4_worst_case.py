"""Fig 4 — worst-case latency for the DM configuration.

Paper: on the minimal DM pattern (0.25 ms slots, 0.5 ms period) the
worst case is exactly 0.5 ms for grant-free UL and for DL, while the
grant-based UL chain (SR → grant → data) stretches to ~1 ms and
violates the budget.
"""

import pytest
from conftest import write_artifact

from repro.analysis.report import render_worst_case_bars
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import minimal_dm
from repro.mac.types import AccessMode, Direction
from repro.phy.timebase import tc_from_ms, us_from_tc


def compute_worst_cases():
    model = LatencyModel(minimal_dm())
    return {
        "Grant-free UL": model.extremes(Direction.UL,
                                        AccessMode.GRANT_FREE),
        "Grant-based UL": model.extremes(Direction.UL,
                                         AccessMode.GRANT_BASED),
        "DL": model.extremes(Direction.DL),
    }, model.worst_case_trace()


def test_fig4_worst_case(benchmark):
    extremes, chain = benchmark(compute_worst_cases)

    budget = tc_from_ms(0.5)
    assert extremes["Grant-free UL"].worst_tc == budget
    assert extremes["DL"].worst_tc == budget
    assert extremes["Grant-based UL"].worst_tc > budget
    assert extremes["Grant-based UL"].worst_tc == \
        pytest.approx(tc_from_ms(1.0), rel=0.01)

    bars = render_worst_case_bars(
        {name: e.worst_tc for name, e in extremes.items()}, budget)
    stage_lines = [
        f"  {name:<24} {us_from_tc(duration):8.1f} µs"
        for name, duration in chain.stage_durations().items()
    ]
    write_artifact("fig4_worst_case", "\n".join(
        ["Fig 4 — worst-case one-way latency, DM configuration", "",
         bars, "",
         "Grant-based chain at its worst arrival:"] + stage_lines))
