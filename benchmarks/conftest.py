"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts
its *shape* against the paper, and writes the rendered artifact to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can record
paper-vs-measured values.

The replication-heavy benchmarks (fig5, fig6, sensitivity, multi-UE,
exhaustive search) no longer run their sweeps inline: they declare a
campaign and hand it to the session-wide :data:`campaign_runner`,
which shares one worker pool and one content-hash result cache across
the whole benchmark session (see ``docs/CAMPAIGNS.md``).  Set
``URLLC5G_BENCH_WORKERS`` to control the pool size and
``URLLC5G_BENCH_NO_CACHE=1`` to force recomputation.
"""

import os
from pathlib import Path

import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.runner import (CampaignRunner, ResultCache,
                          atomic_write_text, envconfig)
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

RESULTS_DIR = Path(__file__).parent / "results"

CACHE_PATH = Path(__file__).parent / ".urllc5g-bench-cache.json"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def campaign_runner():
    """One pool + one result cache shared by every campaign benchmark."""
    knobs = envconfig.refresh()
    workers = (knobs.bench_workers if knobs.bench_workers is not None
               else min(4, os.cpu_count() or 1))
    cache = None if knobs.bench_no_cache else ResultCache(CACHE_PATH)
    with CampaignRunner(workers=max(1, workers), cache=cache) as runner:
        yield runner


def write_artifact(name: str, content: str) -> None:
    """Persist a rendered artifact for the experiment record.

    Atomic (temp file + ``os.replace``): parallel benchmark workers or
    concurrent sessions can never interleave partial artifacts.
    """
    atomic_write_text(RESULTS_DIR / f"{name}.txt", content + "\n")


def testbed_system(access: AccessMode, seed: int) -> RanSystem:
    """The §7 testbed: DDDU @ 0.5 ms slots, USB B210, stock kernel."""
    radio_head = RadioHead("b210", usb3(), gpos())
    return RanSystem(testbed_dddu(),
                     RanConfig(access=access, gnb_radio_head=radio_head,
                               seed=seed))


def uniform_arrivals(n: int, horizon_ms: float, seed: int) -> list[int]:
    """The §7 workload: packets uniform within the pattern."""
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("arrivals"))
