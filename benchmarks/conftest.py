"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, asserts
its *shape* against the paper, and writes the rendered artifact to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can record
paper-vs-measured values.
"""

from pathlib import Path

import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(name: str, content: str) -> None:
    """Persist a rendered artifact for the experiment record."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(content + "\n",
                                             encoding="utf-8")


def testbed_system(access: AccessMode, seed: int) -> RanSystem:
    """The §7 testbed: DDDU @ 0.5 ms slots, USB B210, stock kernel."""
    radio_head = RadioHead("b210", usb3(), gpos())
    return RanSystem(testbed_dddu(),
                     RanConfig(access=access, gnb_radio_head=radio_head,
                               seed=seed))


def uniform_arrivals(n: int, horizon_ms: float, seed: int) -> list[int]:
    """The §7 workload: packets uniform within the pattern."""
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("arrivals"))
