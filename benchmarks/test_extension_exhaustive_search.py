"""Extension E3 — exhaustive Common-Configuration search (§5, §10).

§10: "we propose all possible configurations to meet URLLC's
requirements."  Table 1 checks the three *minimal* patterns; this
benchmark walks the entire single-pattern TS 38.331 grammar at µ=2
(82 configurations up to 2.5 ms periods, both mixed-slot splits) and
verifies computationally that the paper's conclusion generalises:
**only DM at the 0.5 ms minimum period, with grant-free uplink,**
meets 0.5 ms on both directions.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.core.design_space import (
    enumerate_common_configurations,
    exhaustive_search,
)
from repro.core.feasibility import URLLC_5G_RELAXED, Requirement
from repro.phy.timebase import tc_from_ms


def run_search():
    universe = enumerate_common_configurations()
    feasible = exhaustive_search()
    relaxed = Requirement("1 ms one-way", tc_from_ms(1.0), 0.9999)
    feasible_1ms = exhaustive_search(requirement=relaxed)
    return universe, feasible, feasible_1ms


def test_extension_exhaustive_search(benchmark):
    universe, feasible, feasible_1ms = benchmark.pedantic(
        run_search, rounds=1, iterations=1)

    assert len(universe) >= 50  # the grammar is genuinely walked

    # §5's conclusion over the whole grammar: only 0.5 ms DM with
    # grant-free UL.
    assert feasible, "the feasible set must not be empty"
    for config, access in feasible:
        assert config.slot_letters() == ["D", "M"]
        assert config.period_tc == tc_from_ms(0.5)
        assert access == "grant-free"
    # No grant-based design anywhere in the grammar meets 0.5 ms.
    assert all(access != "grant-based" for _, access in feasible)

    # Relaxing to 1 ms opens the space up (DM at 1 ms period, DMU
    # variants, ...), confirming the budget is the binding constraint.
    assert len(feasible_1ms) > len(feasible)

    rows = [("configurations enumerated", len(universe)),
            ("feasible at 0.5 ms", len(feasible)),
            ("feasible at 1.0 ms", len(feasible_1ms))]
    names = sorted({f"{''.join(c.slot_letters())}@"
                    f"{c.period_tc / tc_from_ms(1):g}ms/{a}"
                    for c, a in feasible_1ms})
    write_artifact("extension_exhaustive_search", render_table(
        ("quantity", "count"), rows,
        title="Exhaustive Common-Configuration search (µ=2)")
        + "\nfeasible at 1 ms: " + ", ".join(names))
