"""Extension E3 — exhaustive Common-Configuration search (§5, §10).

§10: "we propose all possible configurations to meet URLLC's
requirements."  Table 1 checks the three *minimal* patterns; this
benchmark walks the entire single-pattern TS 38.331 grammar at µ=2
(82 configurations up to 2.5 ms periods, both mixed-slot splits) and
verifies computationally that the paper's conclusion generalises:
**only DM at the 0.5 ms minimum period, with grant-free uplink,**
meets 0.5 ms on both directions.

The walk runs as the ``search`` campaign — one point per
(configuration, budget), embarrassingly parallel over the session
pool — and the feasible sets are reassembled from the merged payloads.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.phy.timebase import tc_from_ms
from repro.runner import build_campaign


def test_extension_exhaustive_search(benchmark, campaign_runner):
    result = benchmark.pedantic(
        lambda: campaign_runner.run(build_campaign("search")),
        rounds=1, iterations=1)

    (universe_size,) = {point.result["universe"]
                        for point in result.point_results}
    assert universe_size >= 50  # the grammar is genuinely walked
    assert len(result.point_results) == 2 * universe_size

    feasible: dict[float, list[tuple[str, int, str]]] = {0.5: [],
                                                         1.0: []}
    for point_result in result.point_results:
        budget_ms = point_result.point.params_dict()["budget_ms"]
        for access in point_result.result["feasible_accesses"]:
            feasible[budget_ms].append(
                (point_result.result["letters"],
                 point_result.result["period_tc"], access))

    # §5's conclusion over the whole grammar: only 0.5 ms DM with
    # grant-free UL.
    assert feasible[0.5], "the feasible set must not be empty"
    for letters, period_tc, access in feasible[0.5]:
        assert letters == "DM"
        assert period_tc == tc_from_ms(0.5)
        assert access == "grant-free"
    # No grant-based design anywhere in the grammar meets 0.5 ms.
    assert all(access != "grant-based"
               for _, _, access in feasible[0.5])

    # Relaxing to 1 ms opens the space up (DM at 1 ms period, DMU
    # variants, ...), confirming the budget is the binding constraint.
    assert len(feasible[1.0]) > len(feasible[0.5])

    rows = [("configurations enumerated", universe_size),
            ("feasible at 0.5 ms", len(feasible[0.5])),
            ("feasible at 1.0 ms", len(feasible[1.0]))]
    names = sorted({f"{letters}@{period_tc / tc_from_ms(1):g}ms/{access}"
                    for letters, period_tc, access in feasible[1.0]})
    write_artifact("extension_exhaustive_search", render_table(
        ("quantity", "count"), rows,
        title="Exhaustive Common-Configuration search (µ=2)")
        + "\nfeasible at 1 ms: " + ", ".join(names))
