"""Fig 6 — one-way latency distributions: (a) grant-based, (b) grant-free.

Paper (testbed, DDDU @ 0.5 ms slots, USB B210): DL mass around 1-3 ms
in both subfigures; grant-based UL mass around 3-6 ms; grant-free UL
lower by about one TDD period (2 ms); URLLC requirements not met.

The four series run as the ``fig6`` campaign (one point per access ×
direction) on the shared session pool; each point's payload carries
the summary statistics plus the raw latency samples the artifact's
histograms are rendered from.
"""

import pytest
from conftest import write_artifact

from repro.analysis.stats import histogram
from repro.runner import build_campaign


def test_fig6_latency_distributions(benchmark, campaign_runner):
    result = benchmark.pedantic(
        lambda: campaign_runner.run(build_campaign("fig6")),
        rounds=1, iterations=1)

    series = {}
    for point_result in result.point_results:
        params = point_result.point.params_dict()
        series[(params["access"],
                params["direction"])] = point_result.result

    # UL latency is much bigger than DL (§7).
    assert series[("grant-based", "ul")]["mean_us"] > \
        1.5 * series[("grant-based", "dl")]["mean_us"]
    assert series[("grant-free", "ul")]["mean_us"] > \
        1.1 * series[("grant-free", "dl")]["mean_us"]

    # The SR/grant handshake costs about one TDD period (2 ms).
    saving = (series[("grant-based", "ul")]["mean_us"]
              - series[("grant-free", "ul")]["mean_us"])
    assert saving == pytest.approx(2_000.0, rel=0.25)

    # Magnitudes of the measured figure.
    assert 1_000 <= series[("grant-based", "dl")]["mean_us"] <= 3_000
    assert 3_000 <= series[("grant-based", "ul")]["mean_us"] <= 6_000

    # URLLC is not met on this hardware/software combination: far
    # fewer than half the packets arrive within the 0.5 ms budget.
    for payload in series.values():
        assert payload["reliability"] < 0.5

    blocks = []
    for access, label in (("grant-based", "(a) grant-based"),
                          ("grant-free", "(b) grant-free")):
        blocks.append(label)
        for direction, title in (("dl", "Downlink"), ("ul", "Uplink")):
            payload = series[(access, direction)]
            hist = histogram(
                [lat_us / 1000.0 for lat_us in payload["latencies_us"]],
                bin_width=0.5, low=0.0, high=8.0)
            summary = (f"n={payload['count']} "
                       f"mean={payload['mean_us']:.1f} "
                       f"p50={payload['p50_us']:.1f} "
                       f"p99={payload['p99_us']:.1f} "
                       f"max={payload['max_us']:.1f} (µs)")
            blocks.append(hist.render(width=40,
                                      label=f"{title}: {summary}"))
            blocks.append("")
    write_artifact("fig6_latency_distributions", "\n".join(blocks))
