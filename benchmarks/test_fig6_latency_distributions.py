"""Fig 6 — one-way latency distributions: (a) grant-based, (b) grant-free.

Paper (testbed, DDDU @ 0.5 ms slots, USB B210): DL mass around 1-3 ms
in both subfigures; grant-based UL mass around 3-6 ms; grant-free UL
lower by about one TDD period (2 ms); URLLC requirements not met.

The benchmark simulates all four series with the calibrated models and
asserts those relationships.
"""

import pytest
from conftest import testbed_system, uniform_arrivals, write_artifact

from repro.analysis.stats import histogram
from repro.mac.types import AccessMode

N_PACKETS = 800
HORIZON_MS = 4_000


def run_fig6():
    series = {}
    for access in (AccessMode.GRANT_BASED, AccessMode.GRANT_FREE):
        dl = testbed_system(access, seed=11).run_downlink(
            uniform_arrivals(N_PACKETS, HORIZON_MS, seed=3))
        ul = testbed_system(access, seed=12).run_uplink(
            uniform_arrivals(N_PACKETS, HORIZON_MS, seed=4))
        series[access] = {"Downlink": dl, "Uplink": ul}
    return series


def test_fig6_latency_distributions(benchmark):
    series = benchmark.pedantic(run_fig6, rounds=1, iterations=1)

    based = series[AccessMode.GRANT_BASED]
    free = series[AccessMode.GRANT_FREE]

    # UL latency is much bigger than DL (§7).
    assert based["Uplink"].summary().mean_us > \
        1.5 * based["Downlink"].summary().mean_us
    assert free["Uplink"].summary().mean_us > \
        1.1 * free["Downlink"].summary().mean_us

    # The SR/grant handshake costs about one TDD period (2 ms).
    saving = (based["Uplink"].summary().mean_us
              - free["Uplink"].summary().mean_us)
    assert saving == pytest.approx(2_000.0, rel=0.25)

    # Magnitudes of the measured figure.
    assert 1_000 <= based["Downlink"].summary().mean_us <= 3_000
    assert 3_000 <= based["Uplink"].summary().mean_us <= 6_000

    # URLLC is not met on this hardware/software combination.
    for probes in series.values():
        for probe in probes.values():
            assert probe.fraction_within(500.0) < 0.5

    blocks = []
    for access, label in ((AccessMode.GRANT_BASED, "(a) grant-based"),
                          (AccessMode.GRANT_FREE, "(b) grant-free")):
        blocks.append(label)
        for direction in ("Downlink", "Uplink"):
            probe = series[access][direction]
            hist = histogram(probe.latencies_ms(), bin_width=0.5,
                             low=0.0, high=8.0)
            blocks.append(hist.render(
                width=40, label=f"{direction}: {probe.summary()}"))
            blocks.append("")
    write_artifact("fig6_latency_distributions", "\n".join(blocks))
