"""Table 2 — gNB layers' processing and queuing time.

Paper (Table 2, µs):

            SDAP   PDCP   RLC    RLC-q   MAC    PHY
    Mean    4.65   8.29   4.12   484.20  55.21  41.55
    STD     6.71   8.99   8.37    89.46  16.31  10.83

SDAP/PDCP/RLC/MAC/PHY are *calibration inputs* — the benchmark checks
the simulation draws them faithfully.  ``RLC-q`` is the emergent RLC
queue waiting time produced by once-per-slot scheduling on the DDDU
pattern; the shape requirement is that it dominates every processing
row by an order of magnitude, at a few hundred µs.
"""

import numpy as np
import pytest
from conftest import testbed_system, uniform_arrivals, write_artifact

from repro.analysis.report import render_layer_table
from repro.calibration import GNB_LAYER_STATS, PAPER_RLC_QUEUE_STATS
from repro.mac.types import AccessMode


def run_table2() -> dict[str, tuple[float, float]]:
    system = testbed_system(AccessMode.GRANT_FREE, seed=17)
    system.run_downlink(uniform_arrivals(800, 4_000, seed=5))
    system.run()
    measured: dict[str, tuple[float, float]] = {}
    for name in ("SDAP", "PDCP", "RLC"):
        samples = system.gnb.down_pipeline.layer(name).samples_us
        measured[name] = (float(np.mean(samples)),
                          float(np.std(samples)))
    waits = system.gnb.scheduler.dl_queue(1).wait_samples_us
    measured["RLC-q"] = (float(np.mean(waits)), float(np.std(waits)))
    # MAC/PHY run per transport block on the UL path; sample them from
    # an uplink run so every Table 2 row is exercised.
    ul_system = testbed_system(AccessMode.GRANT_FREE, seed=19)
    ul_system.run_uplink(uniform_arrivals(400, 2_000, seed=6))
    for name in ("MAC", "PHY"):
        samples = ul_system.gnb.up_pipeline.layer(name).samples_us
        measured[name] = (float(np.mean(samples)),
                          float(np.std(samples)))
    return measured


def test_table2_processing(benchmark):
    measured = benchmark.pedantic(run_table2, rounds=1, iterations=1)

    # Calibrated rows must match the paper's distributions.
    for layer, (paper_mean, _) in GNB_LAYER_STATS.items():
        mean, _ = measured[layer]
        assert mean == pytest.approx(paper_mean, rel=0.30), layer

    # The emergent RLC-q must dominate all processing rows and land in
    # the paper's few-hundred-µs regime.
    rlcq_mean, _ = measured["RLC-q"]
    biggest = max(mean for mean, _ in GNB_LAYER_STATS.values())
    assert rlcq_mean > 3 * biggest
    assert 200.0 <= rlcq_mean <= 800.0

    paper = dict(GNB_LAYER_STATS)
    paper["RLC-q"] = PAPER_RLC_QUEUE_STATS
    order = ("SDAP", "PDCP", "RLC", "RLC-q", "MAC", "PHY")
    write_artifact("table2_processing", render_layer_table(
        {k: measured[k] for k in order}, paper,
        title="Table 2 — gNB layer processing and queuing times"))
