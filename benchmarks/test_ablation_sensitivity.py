"""Ablation A14 — which calibration parameter dominates the result?

The simulation is calibrated to one testbed; this tornado analysis
perturbs each major constant to half/double its baseline and ranks the
swing of the mean DL latency.  The measured ordering supports the
paper's emphasis: the UE ("the UE needs more time for processing than
gNB", §7) and the radio head dominate, while halving or doubling the
gNB's µs-scale layer times barely registers — srsRAN's software stack
is not the bottleneck, its radio and the modem are.

The perturbations run as the ``sensitivity`` campaign (one point per
parameter assignment, all under identical seeds so the comparison
stays paired); the tornado is reassembled from the merged metrics.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.core.sensitivity import SensitivityResult
from repro.runner import build_campaign
from repro.runner.bench import SENSITIVITY_BOUNDS


def test_ablation_sensitivity(benchmark, campaign_runner):
    result = benchmark.pedantic(
        lambda: campaign_runner.run(build_campaign("sensitivity")),
        rounds=1, iterations=1)

    mean_by_values = {
        tuple(sorted((name, value)
                     for name, value in point.point.params_dict().items()
                     if name in SENSITIVITY_BOUNDS)):
        point.result["mean_us"]
        for point in result.point_results
    }

    def mean_at(assignment):
        return mean_by_values[tuple(sorted(assignment.items()))]

    baseline = {name: bounds[1]
                for name, bounds in SENSITIVITY_BOUNDS.items()}
    results = sorted(
        (SensitivityResult(name, low, high,
                           mean_at({**baseline, name: low}),
                           mean_at({**baseline, name: high}))
         for name, (low, _, high) in SENSITIVITY_BOUNDS.items()),
        key=lambda r: r.swing, reverse=True)

    swings = {r.parameter: r.swing for r in results}
    # Halving/doubling the tiny gNB layer times moves the mean far
    # less than the radio-head or UE-processing knobs.
    assert swings["gnb_processing_scale"] < swings["rh_setup_us"]
    assert swings["gnb_processing_scale"] < \
        swings["ue_processing_scale"]
    # Every perturbation moves the metric in the expected direction.
    for result_entry in results:
        assert result_entry.metric_at_high >= result_entry.metric_at_low

    rows = [(r.parameter, f"{r.low_value:g}", f"{r.high_value:g}",
             f"{r.metric_at_low:8.1f}", f"{r.metric_at_high:8.1f}",
             f"{r.swing:8.1f}")
            for r in results]
    write_artifact("ablation_sensitivity", render_table(
        ("parameter", "low", "high", "mean@low µs", "mean@high µs",
         "swing µs"), rows,
        title="Tornado: mean DL latency vs calibration constants"))
