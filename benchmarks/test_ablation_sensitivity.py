"""Ablation A14 — which calibration parameter dominates the result?

The simulation is calibrated to one testbed; this tornado analysis
perturbs each major constant to half/double its baseline and ranks the
swing of the mean DL latency.  The measured ordering supports the
paper's emphasis: the UE ("the UE needs more time for processing than
gNB", §7) and the radio head dominate, while halving or doubling the
gNB's µs-scale layer times barely registers — srsRAN's software stack
is not the bottleneck, its radio and the modem are.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.core.sensitivity import tornado
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.radio.interface import InterfaceBus
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead

PARAMETERS = {
    # name: (low, baseline, high)
    "rh_setup_us": (72.5, 145.0, 290.0),
    "ue_processing_scale": (4.0, 8.0, 16.0),
    "gnb_processing_scale": (0.5, 1.0, 2.0),
}


def metric(values) -> float:
    bus = InterfaceBus("usb3-like", setup_us=values["rh_setup_us"],
                       per_sample_us=0.0022, spike_probability=0.04,
                       spike_mean_us=35.0)
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE,
                  gnb_radio_head=RadioHead("rh", bus, gpos()),
                  ue_processing_scale=values["ue_processing_scale"],
                  gnb_processing_scale=values["gnb_processing_scale"],
                  seed=171))
    probe = system.run_downlink(uniform_arrivals(250, 1_500, seed=172))
    return probe.summary().mean_us


def test_ablation_sensitivity(benchmark):
    results = benchmark.pedantic(
        lambda: tornado(metric, PARAMETERS), rounds=1, iterations=1)

    swings = {r.parameter: r.swing for r in results}
    # Halving/doubling the tiny gNB layer times moves the mean far
    # less than the radio-head or UE-processing knobs.
    assert swings["gnb_processing_scale"] < swings["rh_setup_us"]
    assert swings["gnb_processing_scale"] < \
        swings["ue_processing_scale"]
    # Every perturbation moves the metric in the expected direction.
    for result in results:
        assert result.metric_at_high >= result.metric_at_low

    rows = [(r.parameter, f"{r.low_value:g}", f"{r.high_value:g}",
             f"{r.metric_at_low:8.1f}", f"{r.metric_at_high:8.1f}",
             f"{r.swing:8.1f}")
            for r in results]
    write_artifact("ablation_sensitivity", render_table(
        ("parameter", "low", "high", "mean@low µs", "mean@high µs",
         "swing µs"), rows,
        title="Tornado: mean DL latency vs calibration constants"))
