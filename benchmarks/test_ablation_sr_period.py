"""Ablation A6 — scheduling-request periodicity (§1).

The paper lists the "period of scheduling requests" among the protocol
configurations that affect latency.  The benchmark sweeps the PUCCH SR
periodicity on FDD (where nothing else limits the chain) and on the
DDDU testbed pattern, analytically and in the DES, showing the worst
case growing by roughly the SR period.
"""

import pytest
from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.core.latency_model import LatencyModel, ProtocolTimings
from repro.mac.catalog import fdd, testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms, us_from_tc

PERIODS_MS = [0.0, 0.25, 0.5, 1.0, 2.5]


def run_sweep():
    analytic = {}
    for period_ms in PERIODS_MS:
        timings = ProtocolTimings(
            sr_period=tc_from_ms(period_ms) if period_ms else 0)
        model = LatencyModel(fdd(), timings)
        analytic[period_ms] = model.extremes(
            Direction.UL, AccessMode.GRANT_BASED).worst_tc
    simulated = {}
    for period_ms, offset_ms in ((0.0, 0.0), (2.0, 1.5)):
        # The sparse grid is phased into the pattern's UL slot, as an
        # operator would configure it.
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_BASED, seed=61,
                      sr_period_tc=(tc_from_ms(period_ms)
                                    if period_ms else 0),
                      sr_offset_tc=(tc_from_ms(offset_ms)
                                    if offset_ms else 0)))
        probe = system.run_uplink(uniform_arrivals(300, 1_500, seed=62))
        simulated[period_ms] = probe.summary().mean_us
    return analytic, simulated


def test_ablation_sr_period(benchmark):
    analytic, simulated = benchmark.pedantic(run_sweep, rounds=1,
                                             iterations=1)

    # Analytic: worst case grows monotonically, gaining roughly the SR
    # period itself at the top of the sweep.
    values = [analytic[p] for p in PERIODS_MS]
    assert values == sorted(values)
    gain = us_from_tc(analytic[2.5] - analytic[0.0])
    assert gain == pytest.approx(2_500.0, rel=0.20)

    # DES: a once-per-pattern SR occasion measurably hurts the mean.
    assert simulated[2.0] > simulated[0.0] + 200.0

    rows = [(f"{p:g}", f"{us_from_tc(analytic[p]):8.1f}")
            for p in PERIODS_MS]
    table = render_table(("SR period ms", "FDD worst-case UL µs"), rows,
                         title="Grant-based UL vs SR periodicity")
    footer = (f"\nDES (DDDU): mean UL {simulated[0.0]:.0f} µs with "
              f"free SR vs {simulated[2.0]:.0f} µs at one SR occasion "
              "per pattern")
    write_artifact("ablation_sr_period", table + footer)
