"""Ablation A1 — slot duration vs radio latency (§4's bottleneck claim).

Paper: "if the radio latency is 0.3 ms, halving the slot duration from
0.25 ms might not reduce latency and could even increase it."  The
benchmark sweeps the DM worst-case DL latency across numerologies for
several radio latencies and asserts the flattening: with no radio
latency every halving helps; with 300+ µs of radio latency the gain
from µ=1 to µ=2 collapses.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.core.budget import slot_duration_sweep
from repro.mac.catalog import minimal_dm
from repro.mac.types import AccessMode, Direction

RADIO_VALUES = [0.0, 100.0, 300.0, 500.0]
MUS = [0, 1, 2]


def run_sweep():
    return slot_duration_sweep(minimal_dm, MUS, Direction.DL,
                               AccessMode.GRANT_FREE, RADIO_VALUES)


def test_ablation_slot_duration(benchmark):
    sweep = benchmark(run_sweep)

    # Radio-free: strictly decreasing with numerology.
    clean = sweep[0.0]
    assert clean[0] > clean[1] > clean[2]

    # With heavy radio latency the relative gain of halving the slot
    # shrinks dramatically (the protocol saving is a constant, the
    # floor is not).
    def relative_gain(per_mu):
        return (per_mu[1] - per_mu[2]) / per_mu[1]

    assert relative_gain(sweep[0.0]) >= 1.8 * relative_gain(sweep[500.0])

    # And the absolute total at µ=2 with 500 µs radio exceeds the µ=2
    # total without radio by more than a full slot — the radio
    # latency dominates the design (§4: "any of these sources can
    # bottleneck the system").
    assert sweep[500.0][2] > sweep[0.0][2] + 250.0

    rows = [(f"{radio:g} µs radio",
             *(f"{sweep[radio][mu]:8.1f}" for mu in MUS))
            for radio in RADIO_VALUES]
    write_artifact("ablation_slot_duration", render_table(
        ("", "µ=0 (1 ms)", "µ=1 (0.5 ms)", "µ=2 (0.25 ms)"), rows,
        title="Worst-case DL latency (µs), DM configuration"))
