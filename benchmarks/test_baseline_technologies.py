"""Ablation A5 — alternative technologies (§1, §9).

Three comparisons the paper makes:

- FR2 mmWave: sub-millisecond latency "only 4.4 % of the time"
  (Fezeu et al.);
- Wi-Fi: decentralised contention → unpredictable access delays;
- Bluetooth: 625 µs fixed slots, ≤7 slaves, master-slave polling.
"""

import numpy as np
from conftest import write_artifact

from repro.analysis.report import render_table
from repro.baselines.bluetooth import BluetoothPiconet
from repro.baselines.mmwave import PAPER_SUB_MS_FRACTION, MmWaveBaseline
from repro.baselines.wifi import WifiBaseline


def run_baselines():
    rng = np.random.default_rng(21)
    mmwave = MmWaveBaseline().sub_ms_fraction(rng, draws=80_000)
    wifi = {
        n: WifiBaseline(n).deadline_reliability(500.0, rng,
                                                draws=30_000)
        for n in (1, 5, 20)
    }
    bluetooth = {
        n: BluetoothPiconet(n).worst_case_uplink_us()
        for n in (1, 4, 7)
    }
    return mmwave, wifi, bluetooth


def test_baseline_technologies(benchmark):
    mmwave, wifi, bluetooth = benchmark.pedantic(run_baselines,
                                                 rounds=1, iterations=1)

    # FR2 mmWave: the 4.4 % sub-ms figure, within calibration noise.
    assert abs(mmwave - PAPER_SUB_MS_FRACTION) < 0.04

    # Wi-Fi: reliability decays with contention; already a small cell
    # is nowhere near five nines within 0.5 ms.
    assert wifi[1] > wifi[5] > wifi[20]
    assert wifi[5] < 0.99999

    # Bluetooth: even one slave busts the 0.5 ms budget, and the
    # polling cycle grows linearly to the 7-slave cap.
    assert bluetooth[1] > 500.0
    assert bluetooth[7] > bluetooth[4] > bluetooth[1]

    rows = [("5G FR2 mmWave", f"{mmwave:.1%} sub-ms",
             f"paper: {PAPER_SUB_MS_FRACTION:.1%}")]
    for n, reliability in wifi.items():
        rows.append((f"Wi-Fi DCF, {n} stations",
                     f"{reliability:.1%} within 0.5 ms", "contention"))
    for n, worst in bluetooth.items():
        rows.append((f"Bluetooth, {n} slaves",
                     f"worst {worst:g} µs", "polling cycle"))
    write_artifact("baseline_technologies", render_table(
        ("technology", "metric", "note"), rows,
        title="Alternative technologies vs the URLLC budget"))
