"""Ablation A8 — HARQ retransmissions under channel loss.

The paper's related work (Nokia/Sennheiser [33]) reports DL latency
"going higher in steps of 0.5 ms in case of retransmission" — each
HARQ round trip costs the wait for the next transmission opportunity.
The benchmark degrades the channel and checks that (a) latency grows
in opportunity-sized steps (multi-modal distribution), (b) the mean
tracks the expected retransmission count, and (c) reliability decays
toward the HARQ cap.
"""

import numpy as np
from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import IidErasureChannel

BLER_VALUES = [0.0, 0.1, 0.3]
N_PACKETS = 500
HORIZON_MS = 2_500


def run_sweep():
    results = {}
    for bler in BLER_VALUES:
        channel = IidErasureChannel(bler) if bler else None
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_FREE, channel=channel,
                      seed=81))
        probe = system.run_downlink(
            uniform_arrivals(N_PACKETS, HORIZON_MS, seed=82))
        retx = [p.harq_retransmissions for p in probe.packets]
        results[bler] = {
            "probe": probe,
            "mean_us": probe.summary().mean_us,
            "mean_retx": float(np.mean(retx)),
            "max_retx": max(retx),
            "dropped": system.link.counters.packets_dropped,
        }
    return results


def test_ablation_harq(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # All packets survive at these BLERs (HARQ cap is 4).
    for bler in BLER_VALUES:
        assert results[bler]["dropped"] == 0
        assert len(results[bler]["probe"]) == N_PACKETS

    # Mean latency and retransmission count grow with BLER.
    means = [results[b]["mean_us"] for b in BLER_VALUES]
    assert means == sorted(means)
    assert results[0.3]["mean_retx"] > results[0.1]["mean_retx"] > 0.0
    assert results[0.0]["mean_retx"] == 0.0

    # Retransmitted packets pay a full feedback round trip: the NACK
    # waits for DDDU's single UL slot per 2 ms pattern (k1 + PUCCH
    # occasion), then the data waits for the next DL window — about
    # one pattern per HARQ round.  [33] reports 0.5 ms steps on a
    # dedicated FDD-like deployment; on DDDU the step is pattern-sized.
    probe = results[0.3]["probe"]
    first_shot = [lat for p, lat in zip(probe.packets,
                                        probe.latencies_us())
                  if p.harq_retransmissions == 0]
    retransmitted = [lat for p, lat in zip(probe.packets,
                                           probe.latencies_us())
                     if p.harq_retransmissions == 1]
    assert retransmitted, "expected some single-retransmission packets"
    step = float(np.mean(retransmitted)) - float(np.mean(first_shot))
    assert 1_200.0 <= step <= 2_800.0  # ≈ one DDDU pattern

    rows = [(f"{b:g}", f"{results[b]['mean_us']:8.1f}",
             f"{results[b]['mean_retx']:.3f}",
             results[b]["max_retx"])
            for b in BLER_VALUES]
    write_artifact("ablation_harq", render_table(
        ("BLER", "mean DL latency µs", "mean HARQ retx", "max retx"),
        rows,
        title="HARQ retransmission cost (DDDU DL, grant-free)")
        + f"\nlatency step per retransmission ≈ {step:.0f} µs")
