"""Ablation A9 — Mini-Slot: latency gain vs signalling overhead (§9).

Paper: mini-slots "can satisfy the latency requirements of URLLC and
[are] more flexible than TDD Common Configuration.  However, [they
increase] control signaling overhead".  The benchmark quantifies both
sides: the analytical worst case across mini-slot lengths, the DES
latency distribution against the DM Common Configuration, and the
control-overhead fraction each length pays.
"""

from conftest import uniform_arrivals, write_artifact

from repro.analysis.report import render_table
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import minimal_dm
from repro.mac.minislot import MiniSlotConfig
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.numerology import Numerology
from repro.phy.timebase import us_from_tc

MINI_SLOT_LENGTHS = [2, 4, 7]


def run_comparison():
    analytic = {}
    for length in MINI_SLOT_LENGTHS:
        config = MiniSlotConfig(Numerology(2), mini_slot_symbols=length)
        model = LatencyModel(config)
        analytic[length] = {
            "worst_gb": model.extremes(
                Direction.UL, AccessMode.GRANT_BASED).worst_tc,
            "overhead": config.overhead_fraction(),
        }
    dm_model = LatencyModel(minimal_dm())
    dm_worst = dm_model.extremes(Direction.UL,
                                 AccessMode.GRANT_BASED).worst_tc

    des = {}
    for name, scheme in (("DM", minimal_dm()),
                         ("mini-slot/7", MiniSlotConfig(
                             Numerology(2), mini_slot_symbols=7))):
        system = RanSystem(scheme, RanConfig(
            access=AccessMode.GRANT_BASED, seed=91))
        probe = system.run_uplink(uniform_arrivals(300, 600, seed=92))
        des[name] = probe.summary().mean_us
    return analytic, dm_worst, des


def test_ablation_minislot(benchmark):
    analytic, dm_worst, des = benchmark.pedantic(run_comparison,
                                                 rounds=1, iterations=1)

    # Shorter mini-slots strictly reduce the grant-based worst case...
    worsts = [analytic[l]["worst_gb"] for l in MINI_SLOT_LENGTHS]
    assert worsts == sorted(worsts)
    # ...and every length beats the DM Common Configuration (which
    # violates the budget for grant-based UL).
    for length in MINI_SLOT_LENGTHS:
        assert analytic[length]["worst_gb"] < dm_worst

    # But the control overhead moves the other way: 2-symbol
    # mini-slots burn 50 % of symbols on signalling.
    overheads = [analytic[l]["overhead"] for l in MINI_SLOT_LENGTHS]
    assert overheads == sorted(overheads, reverse=True)
    assert overheads[0] == 0.5

    # The DES confirms the analytical ordering end to end.
    assert des["mini-slot/7"] < des["DM"]

    rows = [(l, f"{us_from_tc(analytic[l]['worst_gb']):8.1f}",
             f"{analytic[l]['overhead']:.1%}")
            for l in MINI_SLOT_LENGTHS]
    table = render_table(
        ("mini-slot symbols", "grant-based worst µs",
         "control overhead"), rows,
        title="Mini-slot latency/overhead trade-off (µ=2)")
    footer = (f"\nDM worst (grant-based): {us_from_tc(dm_worst):.1f} µs"
              f"\nDES mean UL: DM {des['DM']:.1f} µs vs mini-slot/7 "
              f"{des['mini-slot/7']:.1f} µs")
    write_artifact("ablation_minislot", table + footer)
