"""Extension E1 — the 6G target: 0.1 ms one-way (§1).

"Discussions around 6G indicate even stricter latency goals of 0.1 ms
uplink and downlink."  The benchmark extends the paper's §5 analysis
to that budget:

- TDD Common Configuration cannot express patterns shorter than the
  TS 38.331 minimum of 0.5 ms, so its worst case can never meet 0.1 ms;
- in FR1 (reliable spectrum, µ ≤ 2), only 2-symbol mini-slots squeeze
  the grant-based worst case below 0.1 ms — at 50 % control overhead;
- higher numerologies (FR2) meet the budget easily but sit in the
  blockage-prone mmWave bands, re-importing the reliability problem.
"""

from conftest import write_artifact

from repro.analysis.report import render_table
from repro.baselines.mmwave import MmWaveBaseline
from repro.core.feasibility import URLLC_6G
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import fdd, minimal_dm
from repro.mac.minislot import MiniSlotConfig
from repro.mac.types import AccessMode, Direction
from repro.phy.numerology import FrequencyRange, Numerology
from repro.phy.timebase import us_from_tc

import numpy as np


def run_analysis():
    budget = URLLC_6G.one_way_budget_tc
    entries = []
    # TDD Common Configuration at its FR1 minimum.
    dm = LatencyModel(minimal_dm(mu=2))
    entries.append(("DM (µ=2)", "FR1",
                    dm.extremes(Direction.UL,
                                AccessMode.GRANT_FREE).worst_tc))
    entries.append(("FDD (µ=2)", "FR1",
                    LatencyModel(fdd(mu=2)).extremes(
                        Direction.UL, AccessMode.GRANT_BASED).worst_tc))
    # Mini-slot lengths in FR1 and FR2 numerologies.
    for mu in (2, 3, 6):
        fr = "FR1" if mu in FrequencyRange.FR1.numerologies else "FR2"
        for length in (2, 7):
            config = MiniSlotConfig(Numerology(mu),
                                    mini_slot_symbols=length)
            worst = LatencyModel(config).extremes(
                Direction.UL, AccessMode.GRANT_BASED).worst_tc
            entries.append((f"mini-slot/{length} (µ={mu})", fr, worst))
    rng = np.random.default_rng(13)
    mmwave_sub_ms = MmWaveBaseline().sub_ms_fraction(rng, draws=40_000)
    return budget, entries, mmwave_sub_ms


def test_extension_6g(benchmark):
    budget, entries, mmwave_sub_ms = benchmark.pedantic(
        run_analysis, rounds=1, iterations=1)

    verdicts = {name: worst <= budget for name, _, worst in entries}

    # No TDD Common Configuration or full-slot scheme reaches 0.1 ms.
    assert not verdicts["DM (µ=2)"]
    assert not verdicts["FDD (µ=2)"]
    # The only FR1 design under the budget: 2-symbol mini-slots.
    assert verdicts["mini-slot/2 (µ=2)"]
    assert not verdicts["mini-slot/7 (µ=2)"]
    # FR2 numerologies clear the bar easily...
    assert verdicts["mini-slot/7 (µ=6)"]
    # ...but mmWave reliability is nowhere near five nines.
    assert mmwave_sub_ms < 0.999

    rows = [(name, fr, f"{us_from_tc(worst):8.1f}",
             "✓" if worst <= budget else "✗")
            for name, fr, worst in entries]
    table = render_table(
        ("configuration", "range", "worst-case UL µs", "≤ 100 µs"),
        rows, title="6G 0.1 ms one-way target (grant-based UL unless "
                    "noted; DM row is grant-free)")
    footer = ("\nFR2 meets the latency trivially but its sub-ms "
              f"reliability is ~{mmwave_sub_ms:.1%} (blockage); in FR1 "
              "only 2-symbol mini-slots fit, at 50% control overhead.")
    write_artifact("extension_6g", table + footer)
