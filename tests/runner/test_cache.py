"""Result cache: content-hash keying, fingerprinting, atomic writes."""

import json

import pytest

from repro.runner import ResultCache, atomic_write_text, source_fingerprint
from repro.runner.cache import RUNNER_VERSION


def test_atomic_write_leaves_no_temp_files(tmp_path):
    target = tmp_path / "nested" / "artifact.txt"
    atomic_write_text(target, "hello")
    assert target.read_text(encoding="utf-8") == "hello"
    atomic_write_text(target, "replaced")
    assert target.read_text(encoding="utf-8") == "replaced"
    assert [p.name for p in target.parent.iterdir()] == ["artifact.txt"]


def test_cache_roundtrip_and_hit_miss_accounting(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    assert cache.lookup("digest-1", "fp") is None
    cache.store("digest-1", "fp", {"mean_us": 1.5})
    cache.save()

    reloaded = ResultCache(path)
    assert reloaded.lookup("digest-1", "fp") == {"mean_us": 1.5}
    assert reloaded.lookup("digest-2", "fp") is None
    assert (reloaded.hits, reloaded.misses) == (1, 1)


def test_cache_misses_on_fingerprint_change(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    cache.store("digest-1", "fp-old", {"v": 1})
    assert cache.lookup("digest-1", "fp-new") is None
    assert cache.lookup("digest-1", "fp-old") == {"v": 1}


def test_cache_discards_other_versions_and_corrupt_files(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"runner_version": "not-" + RUNNER_VERSION,
                                "entries": {"d": {"fingerprint": "f",
                                                  "result": {"v": 1}}}}),
                    encoding="utf-8")
    assert ResultCache(path).entries == {}
    path.write_text("{not json", encoding="utf-8")
    assert ResultCache(path).entries == {}


def test_corrupt_cache_is_quarantined_with_a_warning(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text('{"runner_version": "1", "entries": {tru',
                    encoding="utf-8")
    cache = ResultCache(path)
    assert cache.entries == {}
    assert len(cache.warnings) == 1
    assert "quarantined" in cache.warnings[0]
    assert not path.exists()  # moved aside, next save writes clean
    corpses = list(tmp_path.glob("cache.json.corrupt-*"))
    assert len(corpses) == 1
    assert corpses[0].read_text(encoding="utf-8").startswith(
        '{"runner_version"')
    # Repeated loads of the same corpse content do not pile up copies.
    path.write_text('{"runner_version": "1", "entries": {tru',
                    encoding="utf-8")
    ResultCache(path)
    assert len(list(tmp_path.glob("cache.json.corrupt-*"))) == 1


def test_malformed_entries_count_as_corruption(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"runner_version": RUNNER_VERSION,
                                "entries": {"d": "not-an-object"}}),
                    encoding="utf-8")
    cache = ResultCache(path)
    assert cache.entries == {}
    assert any("quarantined" in warning for warning in cache.warnings)
    assert list(tmp_path.glob("cache.json.corrupt-*"))


def test_version_mismatch_is_stale_not_corrupt(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps({"runner_version": "not-" + RUNNER_VERSION,
                                "entries": {}}), encoding="utf-8")
    cache = ResultCache(path)
    assert cache.entries == {}
    # Stale-not-corrupt, but no longer *silent*: on a dispatched fleet
    # a version mismatch means some host runs different code, so the
    # bench document must surface it.
    assert len(cache.warnings) == 1
    assert "mixed code versions" in cache.warnings[0]
    assert f"version {'not-' + RUNNER_VERSION!r}" in cache.warnings[0]
    assert path.exists()  # left in place, not quarantined
    assert not list(tmp_path.glob("cache.json.corrupt-*"))


def test_cache_save_is_noop_when_clean(tmp_path):
    path = tmp_path / "cache.json"
    cache = ResultCache(path)
    cache.save()
    assert not path.exists()


@pytest.fixture
def source_tree(tmp_path):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "a.py").write_text("A = 1\n", encoding="utf-8")
    (root / "sub").mkdir()
    (root / "sub" / "b.py").write_text("B = 2\n", encoding="utf-8")
    return root


def test_source_fingerprint_stable_on_unchanged_tree(source_tree):
    assert source_fingerprint([source_tree]) == \
        source_fingerprint([source_tree])


def test_source_fingerprint_tracks_content_and_renames(source_tree):
    before = source_fingerprint([source_tree])
    (source_tree / "a.py").write_text("A = 2\n", encoding="utf-8")
    after_edit = source_fingerprint([source_tree])
    assert after_edit != before
    (source_tree / "a.py").rename(source_tree / "renamed.py")
    assert source_fingerprint([source_tree]) != after_edit


def test_default_fingerprint_ignores_devtools():
    # The analyzer/linter cannot change simulation results, so editing
    # them must not invalidate cached campaign points.
    import repro.devtools as devtools
    from pathlib import Path

    fingerprint = source_fingerprint()
    assert fingerprint == source_fingerprint()
    devtools_root = Path(devtools.__file__).parent
    covered = source_fingerprint(
        [Path(devtools.__file__).parents[1]])
    assert devtools_root.is_dir()
    assert fingerprint != covered  # devtools files were excluded
