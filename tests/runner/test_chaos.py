"""Chaos certification: the seam, the injector, the explorer."""

import errno
import json

import pytest

from repro.devtools.distcheck.manifest import load_manifest
from repro.runner import Campaign, CampaignRunner
from repro.runner.chaos import (
    ChaosFsOps,
    ChaosPlan,
    ChaosSpec,
    FsFaultKind,
    enumerate_schedules,
    run_schedule,
)
from repro.runner.dispatch import _Backoff
from repro.runner.fsops import CRASH_POINTS, DEFAULT_FS, FsOps
from repro.runner.lease import EventLog, HeartbeatWriter, QueueDir

REPO_MANIFEST = load_manifest("distcheck-manifest.json")


class _Killed(RuntimeError):
    """Stands in for SIGKILL so unit tests observe crash points."""


def _killer():
    def kill():
        raise _Killed()
    return kill


# ----------------------------------------------------------------------
# the passthrough seam
# ----------------------------------------------------------------------
def test_fsops_passthrough_roundtrip(tmp_path):
    fs = FsOps()
    fs.mkdir(tmp_path / "d")
    fs.write_text(tmp_path / "d" / "a.json", "A")
    fs.append_text(tmp_path / "d" / "a.json", "B")
    assert fs.read_text(tmp_path / "d" / "a.json") == "AB"
    fs.replace(tmp_path / "d" / "a.json", tmp_path / "d" / "b.json")
    assert fs.listdir(tmp_path / "d") == ["b.json"]
    fs.unlink(tmp_path / "d" / "b.json")
    assert fs.listdir(tmp_path / "d") == []


def test_fsops_listdir_is_sorted(tmp_path):
    for name in ("c", "a", "b"):
        (tmp_path / name).write_text("", encoding="utf-8")
    assert FsOps().listdir(tmp_path) == ["a", "b", "c"]


def test_crash_point_names_are_validated():
    DEFAULT_FS.crash_point("claim.pre-rename")  # no-op, registered
    with pytest.raises(ValueError, match="unknown crash point"):
        DEFAULT_FS.crash_point("not-a-point")


def test_queue_dir_defaults_to_passthrough(tmp_path):
    assert QueueDir(tmp_path).fs is DEFAULT_FS


# ----------------------------------------------------------------------
# specs and plans
# ----------------------------------------------------------------------
def test_crash_spec_requires_registered_point():
    with pytest.raises(ValueError, match="registered crash point"):
        ChaosSpec(kind=FsFaultKind.CRASH, crash_point="bogus")
    with pytest.raises(ValueError, match="registered crash point"):
        ChaosSpec(kind=FsFaultKind.CRASH)


def test_non_crash_spec_refuses_a_crash_point():
    with pytest.raises(ValueError, match="no crash_point"):
        ChaosSpec(kind=FsFaultKind.EIO_WRITE,
                  crash_point="claim.pre-rename")


def test_spec_bounds_are_validated():
    with pytest.raises(ValueError, match="probability"):
        ChaosSpec(kind=FsFaultKind.EIO_WRITE, probability=1.5)
    with pytest.raises(ValueError, match="skip"):
        ChaosSpec(kind=FsFaultKind.CRASH,
                  crash_point="release.pre", skip=-1)
    with pytest.raises(ValueError, match="max_fires"):
        ChaosSpec(kind=FsFaultKind.EIO_WRITE, max_fires=0)


def test_spec_scaling_uses_the_shared_clamp():
    spec = ChaosSpec(kind=FsFaultKind.EIO_WRITE, probability=0.4)
    assert spec.scaled(0.5).probability == pytest.approx(0.2)
    assert spec.scaled(10.0).probability == 1.0
    with pytest.raises(ValueError, match="intensity"):
        spec.scaled(-1.0)


def test_plan_json_roundtrip_is_canonical():
    plan = ChaosPlan(seed=7, marker_dir="/tmp/m", specs=(
        ChaosSpec(kind=FsFaultKind.CRASH,
                  crash_point="done-marker.pre", worker="w1"),
        ChaosSpec(kind=FsFaultKind.LIST_STALE, probability=0.25,
                  max_fires=3),
    ))
    text = plan.to_json()
    assert ChaosPlan.from_json(text) == plan
    assert ChaosPlan.from_json(text).to_json() == text
    assert bool(plan) and not bool(ChaosPlan())


def test_plan_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown chaos-plan"):
        ChaosPlan.from_json('{"seed": 0, "extra": 1}')
    with pytest.raises(ValueError, match="unknown chaos-spec"):
        ChaosSpec.from_dict({"kind": "eio-write", "extra": 1})
    with pytest.raises(ValueError, match="missing 'kind'"):
        ChaosSpec.from_dict({"probability": 1.0})


# ----------------------------------------------------------------------
# the deterministic injector
# ----------------------------------------------------------------------
def _write_sequence(fs, directory, count=40):
    """Drive identical write traffic; returns the fired indices."""
    fired = []
    for index in range(count):
        try:
            fs.write_text(directory / f"{index}.json", "x")
        except OSError:
            fired.append(index)
    return fired


def test_same_seed_same_plan_fires_identically(tmp_path):
    plan = ChaosPlan(seed=3, specs=(
        ChaosSpec(kind=FsFaultKind.EIO_WRITE, probability=0.3,
                  max_fires=5),))
    first = _write_sequence(ChaosFsOps(plan, "w1"), tmp_path)
    second = _write_sequence(ChaosFsOps(plan, "w1"), tmp_path)
    assert first == second and len(first) == 5
    # A different seed draws a different schedule (overwhelmingly).
    other = _write_sequence(
        ChaosFsOps(ChaosPlan(seed=4, specs=plan.specs), "w1"),
        tmp_path)
    assert other != first


def test_write_faults_carry_the_right_errno(tmp_path):
    for kind, code in ((FsFaultKind.EIO_WRITE, errno.EIO),
                       (FsFaultKind.ENOSPC_WRITE, errno.ENOSPC)):
        fs = ChaosFsOps(
            ChaosPlan(specs=(ChaosSpec(kind=kind),)), "w1")
        with pytest.raises(OSError) as excinfo:
            fs.write_text(tmp_path / "t.json", "x")
        assert excinfo.value.errno == code
        # max_fires=1: the next write goes through untouched.
        fs.write_text(tmp_path / "t.json", "x")
        assert (tmp_path / "t.json").read_text(encoding="utf-8") == "x"


def test_specs_narrow_to_their_worker(tmp_path):
    plan = ChaosPlan(specs=(
        ChaosSpec(kind=FsFaultKind.EIO_WRITE, worker="w2"),))
    ChaosFsOps(plan, "w1").write_text(tmp_path / "ok.json", "x")
    with pytest.raises(OSError):
        ChaosFsOps(plan, "w2").write_text(tmp_path / "no.json", "x")


def test_crash_point_kills_after_skip_count(tmp_path):
    plan = ChaosPlan(specs=(
        ChaosSpec(kind=FsFaultKind.CRASH,
                  crash_point="claim.pre-rename", skip=2),))
    fs = ChaosFsOps(plan, "w1", kill=_killer())
    fs.crash_point("claim.pre-rename")   # skipped (1)
    fs.crash_point("done-marker.pre")    # different point: ignored
    fs.crash_point("claim.pre-rename")   # skipped (2)
    with pytest.raises(_Killed):
        fs.crash_point("claim.pre-rename")
    fs.crash_point("claim.pre-rename")   # max_fires=1: spent


def test_crash_fires_are_recorded_in_the_marker_file(tmp_path):
    plan = ChaosPlan(marker_dir=str(tmp_path), specs=(
        ChaosSpec(kind=FsFaultKind.CRASH,
                  crash_point="release.pre"),))
    fs = ChaosFsOps(plan, "w1", kill=_killer())
    with pytest.raises(_Killed):
        fs.crash_point("release.pre")
    lines = (tmp_path / "fires.jsonl").read_text(
        encoding="utf-8").splitlines()
    assert json.loads(lines[0]) == {
        "kind": "crash", "crash_point": "release.pre",
        "worker": "w1", "detail": "release.pre"}


def test_list_delay_hides_the_tail_of_a_listing(tmp_path):
    for name in ("a.json", "b.json", "c.json", "d.json"):
        (tmp_path / name).write_text("", encoding="utf-8")
    fs = ChaosFsOps(ChaosPlan(specs=(
        ChaosSpec(kind=FsFaultKind.LIST_DELAY),)), "w1")
    assert fs.listdir(tmp_path) == ["a.json", "b.json"]
    # max_fires=1: the next scan sees everything.
    assert fs.listdir(tmp_path) == ["a.json", "b.json", "c.json",
                                    "d.json"]


def test_list_stale_resurrects_the_previous_listing(tmp_path):
    fs = ChaosFsOps(ChaosPlan(specs=(
        ChaosSpec(kind=FsFaultKind.LIST_STALE),)), "w1")
    (tmp_path / "old.json").write_text("", encoding="utf-8")
    assert fs.listdir(tmp_path) == ["old.json"]  # nothing cached yet
    (tmp_path / "old.json").rename(tmp_path / "new.json")
    # The stale readdir cache still lists the renamed-away entry.
    assert fs.listdir(tmp_path) == ["new.json", "old.json"]
    assert fs.listdir(tmp_path) == ["new.json"]


# ----------------------------------------------------------------------
# quarantine and degraded-mode counters
# ----------------------------------------------------------------------
def test_corrupt_job_file_is_quarantined_not_livelocked(tmp_path):
    queue = QueueDir(tmp_path / "queue")
    queue.initialise()
    bad = queue.jobs / ("d" * 16 + "--w1.json")
    bad.write_text("{not json", encoding="utf-8")
    events = EventLog(queue, "w1")
    assert queue.claim("w1", events) is None
    assert not bad.exists()
    quarantined = list(queue.leases.glob("*.corrupt-*"))
    assert len(quarantined) == 1
    assert quarantined[0].read_text(encoding="utf-8") == "{not json"
    # The digest is retired with an error-free marker, which is the
    # shape collect recomputes from the campaign's own point list.
    assert "d" * 16 in queue.done_markers()
    assert any(e["event"] == "quarantine"
               for e in EventLog.read_all(queue))


def test_corrupt_lease_is_quarantined_at_reclaim(tmp_path):
    queue = QueueDir(tmp_path / "queue")
    queue.initialise()
    lease = queue.leases / ("e" * 16 + "--dead.json")
    lease.write_text("{torn", encoding="utf-8")
    assert queue.reclaim("e" * 16, "dead") is False
    assert not lease.exists()
    assert list(queue.leases.glob("*.corrupt-*"))
    assert "e" * 16 in queue.done_markers()


def test_heartbeat_and_event_drops_are_counted(tmp_path):
    fs = ChaosFsOps(ChaosPlan(specs=(
        ChaosSpec(kind=FsFaultKind.EIO_WRITE, max_fires=3),)), "w1")
    queue = QueueDir(tmp_path / "queue", fs=fs)
    queue.initialise()
    heart = HeartbeatWriter(queue, "w1")
    heart.beat(0)
    assert heart.dropped == 1
    events = EventLog(queue, "w1")
    events.emit("start")
    events.emit("start")
    assert events.dropped == 2
    # Fault budget spent: both degrade back to working normally.
    heart.beat(1)
    events.emit("start")
    assert (heart.dropped, events.dropped) == (1, 2)
    assert len(EventLog.read_all(queue)) == 1


# ----------------------------------------------------------------------
# backoff
# ----------------------------------------------------------------------
def test_backoff_is_deterministic_per_actor():
    first = [_Backoff(0.0, "w1").sleep() for _ in range(1)]
    again = [_Backoff(0.0, "w1").sleep() for _ in range(1)]
    assert first == again
    a, b = _Backoff(0.0, "w1"), _Backoff(0.0, "w1")
    assert [a.sleep() for _ in range(6)] == [b.sleep()
                                            for _ in range(6)]
    c = _Backoff(0.0, "w2")
    assert [a.sleep() for _ in range(6)] != [c.sleep()
                                             for _ in range(6)]


def test_backoff_doubles_and_caps_in_units():
    backoff = _Backoff(0.0, "w1", cap_factor=8)
    units = [backoff.sleep() for _ in range(8)]
    # Jitter spans [0.5, 1.5) around 1, 2, 4, 8, 8, 8, ... units.
    for value, factor in zip(units, (1, 2, 4, 8, 8, 8, 8, 8)):
        assert 0.5 * factor <= value < 1.5 * factor
    backoff.reset()
    assert backoff.sleep() < 1.5


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
def test_enumeration_covers_every_point_and_kind():
    schedules = enumerate_schedules(["w1", "w2"])
    assert {s.crash_point for s in schedules if s.crash_point} == \
        set(CRASH_POINTS)
    assert {s.kind for s in schedules} == {
        "crash", "eio-write", "enospc-write", "list-delay",
        "list-stale"}
    # Reclaim windows are composites armed on the surviving peer.
    reclaim = [s for s in schedules
               if s.crash_point.startswith("reclaim.")]
    assert all(s.worker == "w2" and len(s.specs) == 2
               for s in reclaim)
    with pytest.raises(ValueError, match="at least 2 workers"):
        enumerate_schedules(["solo"])


def test_exhaustive_enumeration_rotates_every_worker():
    default = enumerate_schedules(["w1", "w2"])
    exhaustive = enumerate_schedules(["w1", "w2"], exhaustive=True)
    # 6 worker-independent crash schedules stay single; the 2 reclaim
    # composites and 4 fault kinds multiply over both workers.
    assert len(default) == 12 and len(exhaustive) == 18
    assert {s.label for s in default} < {s.label for s in exhaustive}
    assert any(s.worker == "w1" and s.crash_point ==
               "reclaim.pre-rename" for s in exhaustive)


def _chaos_campaign():
    """Small but multi-scenario and RNG-bearing: fast to certify."""
    specs = [("radio-sweep", {"bus": bus, "samples": 1_000,
                              "repetitions": 5})
             for bus in ("usb2", "usb3", "pcie")]
    specs += [("design-feasibility",
               {"index": index, "mu": 2, "max_period_ms": 1.0,
                "budget_ms": 0.5, "reliability": 0.99999})
              for index in (0, 1)]
    return Campaign.build("chaos-certify", 41, specs)


@pytest.fixture(scope="module")
def serial_digest():
    with CampaignRunner(workers=1) as runner:
        return runner.run(_chaos_campaign()).results_digest()


@pytest.mark.parametrize(
    "schedule", enumerate_schedules(["w1", "w2"]),
    ids=lambda s: s.label)
def test_every_schedule_converges_bit_identical(tmp_path, schedule,
                                                serial_digest):
    outcome = run_schedule(
        schedule, _chaos_campaign(), REPO_MANIFEST,
        queue_dir=tmp_path / "queue", marker_dir=tmp_path / "markers",
        workers=2)
    assert outcome.error is None
    assert outcome.converged
    assert outcome.results_digest == serial_digest
    assert outcome.fired >= 1
