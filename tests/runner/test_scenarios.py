"""Scenario registry: determinism and payload shape per scenario."""

import json

import pytest

from repro.runner import SCENARIOS, Campaign, run_point, scenario

CHEAP_SPECS = {
    "radio-sweep": {"bus": "usb3", "samples": 4_000, "repetitions": 15},
    "ran-latency": {"access": "grant-free", "direction": "ul",
                    "packets": 10, "horizon_ms": 60.0},
    "sensitivity-latency": {"rh_setup_us": 145.0,
                            "ue_processing_scale": 8.0,
                            "gnb_processing_scale": 1.0,
                            "packets": 10, "horizon_ms": 60.0,
                            "sim_seed": 171, "arrivals_seed": 172},
    "multi-ue": {"n_ues": 2, "packets_per_ue": 5, "horizon_ms": 60.0},
    "multi-ue-massive": {"n_ues": 6, "packets_per_ue": 4,
                         "horizon_ms": 60.0, "engine": "slotted"},
    "design-feasibility": {"index": 0, "mu": 2, "max_period_ms": 1.0,
                           "budget_ms": 0.5, "reliability": 0.99999},
    "chaos-latency": {"access": "grant-free", "direction": "dl",
                      "packets": 10, "horizon_ms": 60.0,
                      "faults": "standard", "intensity": 1.0,
                      "channel": "iid", "bler": 0.01},
    "chaos-selftest": {"mode": "ok"},
}


def test_cheap_specs_cover_every_registered_scenario():
    assert sorted(CHEAP_SPECS) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(CHEAP_SPECS))
def test_scenario_is_deterministic_and_json_serialisable(name):
    campaign = Campaign.build("probe", 17, [(name, CHEAP_SPECS[name])])
    point = campaign.points[0]
    first = run_point(point)
    second = run_point(point)
    assert first == second  # same point => bit-identical payload
    json.dumps(first)  # cacheable as-is


def test_scenario_decorator_rejects_collisions():
    with pytest.raises(ValueError, match="already registered"):
        scenario("radio-sweep")(lambda params, rngs: {})


def test_ran_latency_rejects_bad_direction():
    campaign = Campaign.build("bad", 1, [
        ("ran-latency", {"access": "grant-free", "direction": "sideways",
                         "packets": 1, "horizon_ms": 10.0})])
    with pytest.raises(ValueError, match="direction"):
        run_point(campaign.points[0])
