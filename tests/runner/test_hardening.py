"""Runner hardening: retries, crashed/wedged workers, journal resume.

The misbehaving points use the ``chaos-selftest`` scenario, whose fault
path is double-gated behind ``URLLC5G_CHAOS=1`` and a marker-file token
and fires exactly once — so a retried point succeeds and yields the
same payload every attempt would have produced.
"""

import json

import pytest

from repro.runner import (
    Campaign,
    CampaignJournal,
    CampaignRunner,
    ResultCache,
    bench_payload,
    run_point,
)


def _ok_point(value):
    return ("chaos-selftest", {"mode": "ok", "index": value})


def _payloads(result):
    return [entry.result for entry in result.point_results]


# ----------------------------------------------------------------------
# bounded retry, serial and parallel
# ----------------------------------------------------------------------
def test_serial_retry_recovers_a_raising_point(tmp_path, monkeypatch):
    monkeypatch.setenv("URLLC5G_CHAOS", "1")
    campaign = Campaign.build("retry", 5, [
        ("chaos-selftest", {"mode": "raise",
                            "token": str(tmp_path / "marker")}),
        _ok_point(1),
    ])
    result = CampaignRunner(workers=1, max_retries=2).run(campaign)
    flaky, ok = result.point_results
    assert not flaky.failed and flaky.attempts == 2
    assert not ok.failed and ok.attempts == 1
    assert result.retries == 1
    # The payload is attempt-independent: recomputing the point now
    # (marker present) gives exactly what the retry recorded.
    assert flaky.result == run_point(flaky.point)


def test_exhausted_retries_fail_the_point_not_the_campaign(
        tmp_path, monkeypatch):
    monkeypatch.setenv("URLLC5G_CHAOS", "1")
    # An unwritable token directory makes the fault fire every attempt.
    campaign = Campaign.build("doomed", 5, [
        ("chaos-selftest", {"mode": "raise",
                            "token": str(tmp_path / "no-dir" / "m")}),
        _ok_point(1),
    ])
    result = CampaignRunner(workers=1, max_retries=1).run(campaign)
    doomed, ok = result.point_results
    assert doomed.failed and doomed.attempts == 2
    assert "chaos-selftest" in doomed.error
    assert doomed.result == {}
    assert not ok.failed
    assert result.failures == (doomed,)


def test_selftest_fault_path_is_inert_without_the_env_gate(tmp_path):
    campaign = Campaign.build("gated", 5, [
        ("chaos-selftest", {"mode": "raise",
                            "token": str(tmp_path / "marker")}),
    ])
    result = CampaignRunner(workers=1, max_retries=0).run(campaign)
    assert not result.point_results[0].failed
    assert not (tmp_path / "marker").exists()


# ----------------------------------------------------------------------
# crashed and wedged workers
# ----------------------------------------------------------------------
def test_killed_worker_fails_only_its_point(tmp_path, monkeypatch):
    monkeypatch.setenv("URLLC5G_CHAOS", "1")
    campaign = Campaign.build("killer", 5, [
        ("chaos-selftest", {"mode": "kill",
                            "token": str(tmp_path / "marker")}),
        _ok_point(1),
        _ok_point(2),
    ])
    with CampaignRunner(workers=2, max_retries=2) as runner:
        result = runner.run(campaign)
    assert not result.failures
    assert result.retries >= 1  # the killed attempt was requeued
    for entry in result.point_results:
        assert entry.result == run_point(entry.point)


def test_wedged_worker_is_killed_and_its_point_requeued(
        tmp_path, monkeypatch):
    monkeypatch.setenv("URLLC5G_CHAOS", "1")
    campaign = Campaign.build("wedge", 5, [
        ("chaos-selftest", {"mode": "hang",
                            "token": str(tmp_path / "marker")}),
        _ok_point(1),
    ])
    with CampaignRunner(workers=2, max_retries=2,
                        timeout_s=2.0) as runner:
        result = runner.run(campaign)
    assert not result.failures
    assert result.retries >= 1
    for entry in result.point_results:
        assert entry.result == run_point(entry.point)


# ----------------------------------------------------------------------
# journal checkpoint / resume
# ----------------------------------------------------------------------
def _cheap_campaign(seed=99):
    specs = [("radio-sweep", {"bus": bus, "samples": samples,
                              "repetitions": 15})
             for bus in ("usb2", "usb3")
             for samples in (2_000, 6_000)]
    return Campaign.build("journaled", seed, specs)


def test_interrupted_run_resumes_to_the_uninterrupted_document(tmp_path):
    campaign = _cheap_campaign()
    baseline = CampaignRunner(workers=1).run(campaign)

    journal_path = tmp_path / "run.journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        first = CampaignRunner(workers=1).run(campaign, journal=journal)
    assert _payloads(first) == _payloads(baseline)
    lines = journal_path.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 1 + len(campaign)  # header + one per point

    # Simulate a crash after two completed points: keep header + 2.
    journal_path.write_text("\n".join(lines[:3]) + "\n",
                            encoding="utf-8")
    with CampaignJournal(journal_path) as journal:
        resumed = CampaignRunner(workers=1).run(campaign,
                                                journal=journal,
                                                resume=True)
    assert resumed.journal_replays == 2
    assert _payloads(resumed) == _payloads(baseline)
    replay_flags = [entry.from_journal
                    for entry in resumed.point_results]
    assert replay_flags.count(True) == 2
    # The healed journal is complete again.
    healed = journal_path.read_text(encoding="utf-8").splitlines()
    assert len(healed) == 1 + len(campaign)


def test_corrupt_journal_tail_is_discarded_with_a_warning(tmp_path):
    campaign = _cheap_campaign()
    journal_path = tmp_path / "run.journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        CampaignRunner(workers=1).run(campaign, journal=journal)
    with open(journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"digest": "truncated-mid-wr')
    with CampaignJournal(journal_path) as journal:
        resumed = CampaignRunner(workers=1).run(campaign,
                                                journal=journal,
                                                resume=True)
    assert resumed.journal_replays == len(campaign)
    assert any("corrupt or truncated" in warning
               for warning in resumed.warnings)
    assert _payloads(resumed) == \
        _payloads(CampaignRunner(workers=1).run(campaign))


def test_foreign_journal_is_ignored_not_replayed(tmp_path):
    journal_path = tmp_path / "run.journal.jsonl"
    with CampaignJournal(journal_path) as journal:
        CampaignRunner(workers=1).run(_cheap_campaign(seed=1),
                                      journal=journal)
    with CampaignJournal(journal_path) as journal:
        resumed = CampaignRunner(workers=1).run(_cheap_campaign(seed=2),
                                                journal=journal,
                                                resume=True)
    assert resumed.journal_replays == 0
    assert any("different campaign" in warning
               for warning in resumed.warnings)


def test_journal_record_requires_start(tmp_path):
    journal = CampaignJournal(tmp_path / "j.jsonl")
    with pytest.raises(RuntimeError, match="not started"):
        journal.record("digest", {"v": 1})


# ----------------------------------------------------------------------
# the whole harness at once: corrupt cache + killed worker + resume
# ----------------------------------------------------------------------
def test_smoke_harness_survives_corruption_and_crashes(
        tmp_path, monkeypatch):
    monkeypatch.setenv("URLLC5G_CHAOS", "1")
    cache_path = tmp_path / "cache.json"
    cache_path.write_text("{definitely not json", encoding="utf-8")
    campaign = Campaign.build("harness", 8, [
        ("chaos-selftest", {"mode": "kill",
                            "token": str(tmp_path / "marker")}),
        _ok_point(1),
        ("radio-sweep", {"bus": "usb3", "samples": 2_000,
                         "repetitions": 10}),
    ])
    cache = ResultCache(cache_path)
    with CampaignRunner(workers=2, cache=cache, fingerprint="fp",
                        max_retries=2) as runner:
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            result = runner.run(campaign, journal=journal)
    assert not result.failures
    assert any("quarantined" in warning for warning in result.warnings)
    for entry in result.point_results:
        assert entry.result == run_point(entry.point)

    payload = bench_payload(result)
    assert payload["failed_points"] == []
    assert payload["retries"] == result.retries
    assert payload["journal_replays"] == 0
    assert any("quarantined" in warning
               for warning in payload["warnings"])
    json.dumps(payload)  # the whole document stays serialisable
