"""Distributed dispatch: bit-identity, crash recovery, the gate."""

import json
import sys

import pytest

from repro.cli import main
from repro.devtools.distcheck.manifest import load_manifest
from repro.runner import Campaign, CampaignRunner, ResultCache
from repro.runner.dispatch import (
    MERGED_JOURNAL_NAME,
    DispatchCoordinator,
    DispatchRefusedError,
    run_worker,
)
from repro.runner.lease import QueueDir, write_queue_manifest

REPO_MANIFEST = load_manifest("distcheck-manifest.json")


def _campaign(name="dispatched", seed=99):
    """Fast, RNG-bearing, multi-scenario: the executor-test workload."""
    specs = [("radio-sweep", {"bus": bus, "samples": samples,
                              "repetitions": 20})
             for bus in ("usb2", "usb3", "pcie")
             for samples in (2_000, 8_000)]
    specs += [("design-feasibility",
               {"index": index, "mu": 2, "max_period_ms": 1.0,
                "budget_ms": 0.5, "reliability": 0.99999})
              for index in (0, 1)]
    return Campaign.build(name, seed, specs)


def _fake_manifest(tmp_path, **scenarios):
    path = tmp_path / "manifest.json"
    path.write_text(json.dumps({
        "schema_version": 1, "tool_version": "test",
        "scenarios": {name: {"entry": f"m.{name}", "status": status}
                      for name, status in scenarios.items()},
    }), encoding="utf-8")
    return load_manifest(path)


def _payloads(result):
    return [pr.result for pr in result.point_results]


# ----------------------------------------------------------------------
# the manifest gate
# ----------------------------------------------------------------------
def test_uncertified_scenario_is_refused_before_any_job(tmp_path):
    manifest = _fake_manifest(tmp_path, **{"radio-sweep": "certified"})
    coordinator = DispatchCoordinator(
        workers=2, queue_dir=tmp_path / "queue", manifest=manifest,
        fingerprint="fp")
    with pytest.raises(DispatchRefusedError) as excinfo:
        coordinator.run(_campaign())
    assert "design-feasibility" in str(excinfo.value)
    assert not (tmp_path / "queue" / "jobs").exists()


def test_refused_status_is_refused_like_absence(tmp_path):
    manifest = _fake_manifest(
        tmp_path, **{"radio-sweep": "certified",
                     "design-feasibility": "refused"})
    coordinator = DispatchCoordinator(
        workers=2, queue_dir=tmp_path / "queue", manifest=manifest,
        fingerprint="fp")
    with pytest.raises(DispatchRefusedError, match="'refused'"):
        coordinator.run(_campaign())


def test_chaos_selftest_stays_host_local():
    # The repo manifest deliberately refuses the self-test scenario
    # (it kills its own worker process): the dispatcher must never
    # ship it.
    assert not REPO_MANIFEST.distributable("chaos-selftest")
    assert REPO_MANIFEST.refusals(["chaos-selftest"])


def test_cli_dispatch_refusal_exits_2(tmp_path, capsys):
    manifest_path = tmp_path / "empty.json"
    manifest_path.write_text(json.dumps({
        "schema_version": 1, "tool_version": "t", "scenarios": {}}),
        encoding="utf-8")
    code = main(["bench", "smoke", "--dispatch", "2",
                 "--manifest", str(manifest_path),
                 "--queue-dir", str(tmp_path / "queue"),
                 "--no-cache", "--no-journal",
                 "--output", str(tmp_path / "B.json")])
    assert code == 2
    assert "dispatch refused" in capsys.readouterr().err


def test_cli_dispatch_conflicts_exit_2(tmp_path, capsys):
    assert main(["bench", "smoke", "--dispatch", "2",
                 "--workers", "4"]) == 2
    assert main(["bench", "smoke", "--dispatch", "2", "--resume"]) == 2
    assert main(["bench", "smoke", "--dispatch", "0"]) == 2
    assert main(["bench", "--worker", str(tmp_path), "--dispatch",
                 "2"]) == 2
    assert main(["bench", "smoke", "--dispatch", "2", "--manifest",
                 str(tmp_path / "missing.json")]) == 2


# ----------------------------------------------------------------------
# bit-identity
# ----------------------------------------------------------------------
def test_dispatched_run_is_bit_identical_to_serial(tmp_path):
    campaign = _campaign()
    serial = CampaignRunner(workers=1).run(campaign)
    coordinator = DispatchCoordinator(
        workers=2, queue_dir=tmp_path / "queue",
        manifest=REPO_MANIFEST)
    dispatched = coordinator.run(campaign)
    assert _payloads(dispatched) == _payloads(serial)
    assert dispatched.metrics() == serial.metrics()
    assert dispatched.results_digest() == serial.results_digest()
    stats = dispatched.dispatch
    assert stats is not None and stats.jobs == len(campaign)
    assert sum(stats.per_worker_points.values()) >= len(campaign)
    # The merged journal is serial-equivalent and in campaign order.
    merged = (tmp_path / "queue" / MERGED_JOURNAL_NAME)
    lines = merged.read_text(encoding="utf-8").splitlines()
    assert [json.loads(line)["digest"] for line in lines[1:]] == \
        [point.digest() for point in campaign.points]


def test_failing_point_fails_identically_under_dispatch(tmp_path):
    campaign = Campaign.build("partial", 3, [
        ("radio-sweep", {"bus": "usb2", "samples": 1_000,
                         "repetitions": 5}),
        ("radio-sweep", {"bus": "not-a-bus", "samples": 1_000,
                         "repetitions": 5}),
    ])
    serial = CampaignRunner(workers=1, max_retries=0).run(campaign)
    coordinator = DispatchCoordinator(
        workers=2, queue_dir=tmp_path / "queue",
        manifest=REPO_MANIFEST, max_retries=0)
    dispatched = coordinator.run(campaign)
    assert len(serial.failures) == len(dispatched.failures) == 1
    assert dispatched.failures[0].error == serial.failures[0].error
    assert dispatched.results_digest() == serial.results_digest()


def test_second_dispatch_replays_from_shared_cache(tmp_path):
    campaign = _campaign()
    cache = ResultCache(tmp_path / "cache.json")
    coordinator = DispatchCoordinator(
        workers=2, queue_dir=tmp_path / "queue",
        manifest=REPO_MANIFEST, cache=cache)
    cold = coordinator.run(campaign)
    warm = coordinator.run(campaign)
    assert cold.cache_hits == 0
    assert warm.cache_hits == len(campaign)
    assert warm.dispatch is not None and warm.dispatch.jobs == 0
    assert _payloads(cold) == _payloads(warm)
    assert cold.results_digest() == warm.results_digest()


# ----------------------------------------------------------------------
# crash recovery
# ----------------------------------------------------------------------
DOOMED_WORKER = """\
import os
import signal
import sys

from repro.runner.dispatch import _process_job
from repro.runner.journal import CampaignJournal
from repro.runner.lease import EventLog, QueueDir, read_queue_manifest

queue = QueueDir(sys.argv[1])
manifest = read_queue_manifest(queue)
events = EventLog(queue, "doomed")
journal = CampaignJournal(queue.journals / "doomed.jsonl")
journal.start_raw(name=manifest["campaign"], seed=manifest["seed"],
                  fingerprint=manifest["fingerprint"],
                  points=manifest["points"],
                  digests=set(manifest["digests"]))
first = queue.claim("doomed")
assert first is not None
_process_job(queue, journal, events, first, "doomed", 2)
second = queue.claim("doomed")
assert second is not None
# SIGKILL ourselves while holding the second lease: no heartbeat, no
# done marker, no journal entry — the canonical orphaned lease.
os.kill(os.getpid(), signal.SIGKILL)
"""


def test_killed_worker_lease_is_reclaimed_and_run_converges(tmp_path):
    # The only "worker" claims one job cleanly, then dies mid-claim on
    # a second.  The coordinator must declare it dead (stamp-based, no
    # wall clock), reclaim the orphaned lease, finish every remaining
    # point inline, and still produce the serial document bit for bit.
    script = tmp_path / "doomed.py"
    script.write_text(DOOMED_WORKER, encoding="utf-8")
    campaign = _campaign()
    serial = CampaignRunner(workers=1).run(campaign)
    coordinator = DispatchCoordinator(
        workers=1, queue_dir=tmp_path / "queue",
        manifest=REPO_MANIFEST, strikes=3,
        spawn_command=lambda worker_id: [
            sys.executable, str(script), str(tmp_path / "queue")])
    dispatched = coordinator.run(campaign)
    stats = dispatched.dispatch
    assert stats is not None
    assert stats.lease_expirations >= 1
    assert stats.reclaims >= 1
    assert stats.inline_points >= 1
    # The doomed worker's completed point survives through its journal;
    # everything else was reclaimed or drained inline.
    assert "doomed" in stats.per_worker_points
    assert _payloads(dispatched) == _payloads(serial)
    assert dispatched.results_digest() == serial.results_digest()
    assert any("exited with code" in w for w in dispatched.warnings)


# ----------------------------------------------------------------------
# worker-side refusals and safety latches
# ----------------------------------------------------------------------
def test_worker_refuses_missing_queue(tmp_path, capsys):
    code = run_worker(tmp_path / "no-queue", "w1", attach_polls=1,
                      poll_interval_s=0.0)
    assert code == 2
    assert "queue manifest" in capsys.readouterr().err


def test_worker_refuses_foreign_fingerprint(tmp_path, capsys):
    queue = QueueDir(tmp_path / "queue")
    queue.initialise()
    write_queue_manifest(queue, {
        "campaign": "c", "seed": 1, "fingerprint": "theirs",
        "points": 0, "digests": [], "enqueued": []})
    code = run_worker(queue.root, "w1", fingerprint="mine",
                      attach_polls=1, poll_interval_s=0.0)
    assert code == 2
    assert "fingerprint" in capsys.readouterr().err


def test_worker_drains_an_already_done_queue(tmp_path):
    queue = QueueDir(tmp_path / "queue")
    queue.initialise()
    write_queue_manifest(queue, {
        "campaign": "c", "seed": 1, "fingerprint": "fp",
        "points": 0, "digests": [], "enqueued": []})
    assert run_worker(queue.root, "w1", fingerprint="fp",
                      attach_polls=1, poll_interval_s=0.0) == 0


def test_queue_reset_refuses_foreign_directories(tmp_path):
    precious = tmp_path / "precious"
    precious.mkdir()
    (precious / "data.txt").write_text("irreplaceable",
                                       encoding="utf-8")
    coordinator = DispatchCoordinator(
        workers=1, queue_dir=precious, manifest=REPO_MANIFEST,
        fingerprint="fp")
    with pytest.raises(ValueError, match="refusing to wipe"):
        coordinator.run(_campaign())
    assert (precious / "data.txt").read_text(
        encoding="utf-8") == "irreplaceable"


def test_coordinator_rejects_bad_construction(tmp_path):
    with pytest.raises(ValueError, match="workers"):
        DispatchCoordinator(workers=0, queue_dir=tmp_path,
                            manifest=REPO_MANIFEST)
    with pytest.raises(ValueError, match="max_retries"):
        DispatchCoordinator(workers=1, queue_dir=tmp_path,
                            manifest=REPO_MANIFEST, max_retries=-1)
    with pytest.raises(ValueError, match="strikes"):
        DispatchCoordinator(workers=1, queue_dir=tmp_path,
                            manifest=REPO_MANIFEST, strikes=0)
