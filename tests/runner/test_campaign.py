"""Campaign/point declaration: canonical identity and seed derivation."""

import pytest

from repro.runner import (
    Campaign,
    ScenarioPoint,
    canonical_params,
    derive_point_seed,
    grid_params,
)


def test_canonical_params_sorts_names():
    params = canonical_params({"zeta": 1, "alpha": 2.5, "mid": "x"})
    assert [name for name, _ in params] == ["alpha", "mid", "zeta"]


def test_canonical_params_rejects_non_scalars():
    with pytest.raises(ValueError, match="JSON scalar"):
        canonical_params({"bad": [1, 2]})
    with pytest.raises(ValueError, match="non-empty"):
        canonical_params({"": 1})


def test_grid_params_full_product_in_deterministic_order():
    assignments = grid_params({"b": [1, 2], "a": ["x", "y"]},
                              fixed={"c": 0})
    assert len(assignments) == 4
    assert assignments[0] == {"a": "x", "b": 1, "c": 0}
    # Axis 'a' (sorted first) is the slowest-varying dimension.
    assert [p["a"] for p in assignments] == ["x", "x", "y", "y"]


def test_grid_params_rejects_empty_axis():
    with pytest.raises(ValueError, match="no values"):
        grid_params({"a": []})
    with pytest.raises(ValueError, match="at least one axis"):
        grid_params({})


def test_derive_point_seed_is_stable_and_distinct():
    params_a = canonical_params({"x": 1})
    params_b = canonical_params({"x": 2})
    seed_a = derive_point_seed(7, "s", params_a)
    assert seed_a == derive_point_seed(7, "s", params_a)
    assert seed_a != derive_point_seed(7, "s", params_b)
    assert seed_a != derive_point_seed(8, "s", params_a)
    assert seed_a != derive_point_seed(7, "t", params_a)
    assert seed_a >= 0


def test_point_digest_ignores_param_order_but_not_values():
    first = ScenarioPoint("s", canonical_params({"a": 1, "b": 2}), 3)
    second = ScenarioPoint("s", canonical_params({"b": 2, "a": 1}), 3)
    third = ScenarioPoint("s", canonical_params({"a": 1, "b": 3}), 3)
    assert first.digest() == second.digest()
    assert first.digest() != third.digest()
    assert first.label == "s[a=1,b=2]"


def test_campaign_build_derives_seeds_and_rejects_duplicates():
    campaign = Campaign.build("demo", seed=5,
                              specs=[("s", {"x": 1}), ("s", {"x": 2})])
    assert len(campaign) == 2
    assert campaign.points[0].seed == derive_point_seed(
        5, "s", canonical_params({"x": 1}))
    with pytest.raises(ValueError, match="repeats point"):
        Campaign.build("demo", seed=5,
                       specs=[("s", {"x": 1}), ("s", {"x": 1})])


def test_campaign_requires_points_and_name():
    with pytest.raises(ValueError, match="no points"):
        Campaign("empty", 1, ())
    with pytest.raises(ValueError, match="non-empty"):
        Campaign.build("", 1, [("s", {"x": 1})])


def test_from_grid_matches_grid_size():
    campaign = Campaign.from_grid("g", 1, "s",
                                  grid={"a": [1, 2, 3], "b": [4, 5]})
    assert len(campaign) == 6
    assert all(point.scenario == "s" for point in campaign.points)
