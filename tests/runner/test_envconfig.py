"""The frozen environment snapshot: one read, one consistent config."""

import pytest

from repro.runner import envconfig
from repro.runner.envconfig import EnvSnapshot, refresh, snapshot


@pytest.fixture(autouse=True)
def clean_snapshot(monkeypatch):
    """Each test starts from an unset snapshot and a clean env."""
    for name in (envconfig.BENCH_WORKERS, envconfig.BENCH_NO_CACHE,
                 envconfig.SANITIZE, envconfig.CHAOS,
                 envconfig.CHAOS_PLAN):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setattr(envconfig, "_current", None)
    yield
    monkeypatch.setattr(envconfig, "_current", None)


def test_defaults_with_no_knobs_set():
    assert snapshot() == EnvSnapshot(
        bench_workers=None, bench_no_cache=False,
        sanitize=False, chaos=False, chaos_plan=None)


def test_every_knob_is_read(monkeypatch):
    monkeypatch.setenv(envconfig.BENCH_WORKERS, "6")
    monkeypatch.setenv(envconfig.BENCH_NO_CACHE, "yes")
    monkeypatch.setenv(envconfig.SANITIZE, "1")
    monkeypatch.setenv(envconfig.CHAOS, "1")
    monkeypatch.setenv(envconfig.CHAOS_PLAN, '{"specs":[]}')
    assert snapshot() == EnvSnapshot(
        bench_workers=6, bench_no_cache=True,
        sanitize=True, chaos=True, chaos_plan='{"specs":[]}')


def test_flags_require_exactly_one(monkeypatch):
    # SANITIZE/CHAOS use the documented "1" contract; NO_CACHE is any
    # non-empty value (matching the historical benchmark behaviour).
    monkeypatch.setenv(envconfig.SANITIZE, "true")
    monkeypatch.setenv(envconfig.CHAOS, "0")
    monkeypatch.setenv(envconfig.BENCH_NO_CACHE, "0")
    knobs = snapshot()
    assert knobs.sanitize is False
    assert knobs.chaos is False
    assert knobs.bench_no_cache is True


def test_non_integer_worker_count_raises(monkeypatch):
    monkeypatch.setenv(envconfig.BENCH_WORKERS, "many")
    with pytest.raises(ValueError, match="must be an integer"):
        snapshot()


def test_snapshot_is_immutable():
    knobs = snapshot()
    with pytest.raises(Exception):
        knobs.sanitize = True  # type: ignore[misc]


def test_current_is_frozen_until_refresh(monkeypatch):
    assert envconfig.current().chaos is False
    # A mid-run environment mutation must NOT be observed...
    monkeypatch.setenv(envconfig.CHAOS, "1")
    assert envconfig.current().chaos is False
    # ...until the next campaign start re-reads the knobs.
    assert refresh().chaos is True
    assert envconfig.current().chaos is True


def test_refresh_runs_at_campaign_start(monkeypatch):
    from repro.runner import Campaign, CampaignRunner

    monkeypatch.setenv(envconfig.CHAOS, "1")
    campaign = Campaign.from_grid(
        "envconfig-smoke", 1, "design-feasibility",
        grid={"index": [0]},
        fixed={"mu": 1, "max_period_ms": 1.0,
               "budget_ms": 1.0, "reliability": 0.999})
    with CampaignRunner(workers=1) as runner:
        runner.run(campaign)
    assert envconfig.current().chaos is True
