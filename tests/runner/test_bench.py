"""Named campaigns, bench documents, and the regression gate."""

import json

import pytest

from repro.cli import main
from repro.runner import (
    CAMPAIGNS,
    build_campaign,
    check_against_baseline,
    render_baseline,
)


def test_every_named_campaign_builds():
    for name in CAMPAIGNS:
        campaign = build_campaign(name)
        assert campaign.name == name
        assert len(campaign) >= 1


def test_unknown_campaign_is_rejected():
    with pytest.raises(ValueError, match="unknown campaign"):
        build_campaign("nope")


def test_sweep_campaign_reaches_runner_scale():
    # The scale campaign backs the subsystem's acceptance bar:
    # hundreds of independent points through one pool and cache.
    assert len(build_campaign("sweep")) >= 200


def test_smoke_campaign_stays_small():
    assert len(build_campaign("smoke")) <= 20


PAYLOAD = {
    "campaign": "demo",
    "wall_clock_s": 2.0,
    "metrics": {"a/mean_us": 100.0, "a/reliability": 0.4},
}


def test_check_passes_within_tolerance():
    baseline = render_baseline(PAYLOAD)
    current = {**PAYLOAD,
               "metrics": {"a/mean_us": 100.5, "a/reliability": 0.4}}
    outcome = check_against_baseline(current, baseline)
    assert outcome.ok
    assert outcome.checked == 2
    assert "PASS" in outcome.render()


def test_check_flags_deviation_beyond_tolerance():
    baseline = render_baseline(PAYLOAD)
    current = {**PAYLOAD, "metrics": {"a/mean_us": 110.0,
                                      "a/reliability": 0.4}}
    outcome = check_against_baseline(current, baseline)
    assert not outcome.ok
    assert any("a/mean_us" in failure for failure in outcome.failures)


def test_check_flags_missing_metric():
    baseline = render_baseline(PAYLOAD)
    current = {**PAYLOAD, "metrics": {"a/mean_us": 100.0}}
    outcome = check_against_baseline(current, baseline)
    assert not outcome.ok
    assert any("missing" in failure for failure in outcome.failures)


def test_check_respects_per_metric_tolerance():
    baseline = render_baseline(PAYLOAD)
    baseline["tolerances"] = {"a/mean_us": 0.5}
    current = {**PAYLOAD, "metrics": {"a/mean_us": 140.0,
                                      "a/reliability": 0.4}}
    assert check_against_baseline(current, baseline).ok


def test_check_enforces_wall_clock_budget():
    baseline = render_baseline(PAYLOAD)
    baseline["max_wall_clock_s"] = 1.0
    outcome = check_against_baseline(PAYLOAD, baseline)
    assert not outcome.ok
    assert any("wall_clock_s" in failure for failure in outcome.failures)


# ----------------------------------------------------------------------
# CLI: urllc5g bench
# ----------------------------------------------------------------------
def test_bench_list(capsys):
    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "smoke" in out and "sweep" in out


def test_bench_requires_campaign_name(capsys):
    assert main(["bench"]) == 2


def test_bench_unknown_campaign(capsys):
    assert main(["bench", "definitely-not-a-campaign"]) == 2


def test_bench_check_exit_codes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the default journal lands in cwd
    cache = str(tmp_path / "cache.json")
    output = str(tmp_path / "BENCH_smoke.json")
    baseline = tmp_path / "smoke.json"

    # Record a baseline, then re-check against it: PASS, exit 0.
    assert main(["bench", "smoke", "--cache", cache, "--output", output,
                 "--write-baseline", str(baseline)]) == 0
    assert main(["bench", "smoke", "--cache", cache, "--output", output,
                 "--check", str(baseline)]) == 0
    capsys.readouterr()

    # The warm run replayed every point from the cache.
    document = json.loads(open(output, encoding="utf-8").read())
    assert document["cache"]["hit_rate"] == 1.0

    # An injected metric regression fails the gate: exit 1.
    tampered = json.loads(baseline.read_text(encoding="utf-8"))
    key = sorted(tampered["metrics"])[0]
    tampered["metrics"][key] = tampered["metrics"][key] * 10 + 1.0
    baseline.write_text(json.dumps(tampered), encoding="utf-8")
    assert main(["bench", "smoke", "--cache", cache, "--output", output,
                 "--check", str(baseline)]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # A missing baseline file is a usage error: exit 2.
    assert main(["bench", "smoke", "--cache", cache, "--output", output,
                 "--check", str(tmp_path / "absent.json")]) == 2
