"""Journal merge: duplicates, foreign fingerprints, corrupt tails."""

import json

import pytest

from repro.runner import JournalMergeError, merge_worker_journals
from repro.runner.cache import RUNNER_VERSION
from repro.runner.merge import write_merged_journal

NAME, SEED, FP = "demo", 7, "fp-current"


def _header(**overrides):
    header = {"journal_version": RUNNER_VERSION, "campaign": NAME,
              "seed": SEED, "fingerprint": FP, "points": 3}
    header.update(overrides)
    return json.dumps(header, sort_keys=True)


def _entry(digest, result, attempts=1):
    return json.dumps({"digest": digest, "result": result,
                       "attempts": attempts}, sort_keys=True)


def _write(path, *lines):
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def test_disjoint_journals_merge_in_full(tmp_path):
    a = _write(tmp_path / "w1.jsonl", _header(),
               _entry("d1", {"x": 1.0}))
    b = _write(tmp_path / "w2.jsonl", _header(),
               _entry("d2", {"x": 2.0}, attempts=2))
    outcome = merge_worker_journals(
        [a, b], name=NAME, seed=SEED, fingerprint=FP,
        digests={"d1", "d2"})
    assert outcome.journals_read == 2
    assert outcome.journals_rejected == 0
    assert outcome.warnings == []
    assert outcome.entries["d1"].result == {"x": 1.0}
    assert outcome.entries["d2"].attempts == 2
    assert outcome.entries["d2"].workers == ("w2",)


def test_identical_duplicate_from_cache_race_is_deduplicated(tmp_path):
    # A falsely reclaimed lease makes two workers compute (and journal)
    # the same point.  Payloads are pure, so both copies are identical
    # and the merge keeps one, recording both workers as provenance.
    a = _write(tmp_path / "w1.jsonl", _header(),
               _entry("d1", {"x": 1.0}))
    b = _write(tmp_path / "w2.jsonl", _header(),
               _entry("d1", {"x": 1.0}, attempts=3))
    outcome = merge_worker_journals(
        [a, b], name=NAME, seed=SEED, fingerprint=FP, digests={"d1"})
    assert outcome.duplicate_points == 1
    assert outcome.entries["d1"].workers == ("w1", "w2")
    assert outcome.entries["d1"].attempts == 1  # first journal wins


def test_divergent_duplicate_raises_determinism_violation(tmp_path):
    a = _write(tmp_path / "w1.jsonl", _header(),
               _entry("d1", {"x": 1.0}))
    b = _write(tmp_path / "w2.jsonl", _header(),
               _entry("d1", {"x": 2.0}))
    with pytest.raises(JournalMergeError, match="determinism"):
        merge_worker_journals([a, b], name=NAME, seed=SEED,
                              fingerprint=FP, digests={"d1"})


def test_foreign_fingerprint_journal_is_rejected_whole(tmp_path):
    # A worker running different code than the coordinator: its whole
    # journal is untrustworthy, never just individual entries.
    good = _write(tmp_path / "w1.jsonl", _header(),
                  _entry("d1", {"x": 1.0}))
    foreign = _write(tmp_path / "w2.jsonl",
                     _header(fingerprint="fp-other"),
                     _entry("d2", {"x": 2.0}))
    outcome = merge_worker_journals(
        [good, foreign], name=NAME, seed=SEED, fingerprint=FP,
        digests={"d1", "d2"})
    assert outcome.journals_rejected == 1
    assert "d2" not in outcome.entries
    assert any("mixed code versions" in w for w in outcome.warnings)


def test_wrong_campaign_or_seed_is_rejected(tmp_path):
    wrong = _write(tmp_path / "w1.jsonl", _header(seed=SEED + 1),
                   _entry("d1", {"x": 1.0}))
    outcome = merge_worker_journals(
        [wrong], name=NAME, seed=SEED, fingerprint=FP, digests={"d1"})
    assert outcome.journals_rejected == 1
    assert outcome.entries == {}


def test_corrupt_tail_loses_only_that_journals_tail(tmp_path):
    # The crash artifact of a SIGKILLed worker: a torn last line.  Its
    # earlier entries and *every* other worker's entries survive.
    torn = _write(tmp_path / "w1.jsonl", _header(),
                  _entry("d1", {"x": 1.0}),
                  '{"digest": "d2", "result": {"x":')
    intact = _write(tmp_path / "w2.jsonl", _header(),
                    _entry("d2", {"x": 2.0}),
                    _entry("d3", {"x": 3.0}))
    outcome = merge_worker_journals(
        [torn, intact], name=NAME, seed=SEED, fingerprint=FP,
        digests={"d1", "d2", "d3"})
    assert set(outcome.entries) == {"d1", "d2", "d3"}
    assert outcome.entries["d2"].workers == ("w2",)
    assert any("corrupt or truncated" in w for w in outcome.warnings)


def test_entries_outside_the_campaign_are_ignored(tmp_path):
    # A reused queue directory cannot smuggle stale points in.
    stale = _write(tmp_path / "w1.jsonl", _header(),
                   _entry("d-old", {"x": 9.0}),
                   _entry("d1", {"x": 1.0}))
    outcome = merge_worker_journals(
        [stale], name=NAME, seed=SEED, fingerprint=FP, digests={"d1"})
    assert set(outcome.entries) == {"d1"}


def test_merged_journal_round_trips_through_merge(tmp_path):
    a = _write(tmp_path / "w1.jsonl", _header(),
               _entry("d2", {"x": 2.0}))
    b = _write(tmp_path / "w2.jsonl", _header(),
               _entry("d1", {"x": 1.0}))
    outcome = merge_worker_journals(
        [a, b], name=NAME, seed=SEED, fingerprint=FP,
        digests={"d1", "d2"})
    merged = tmp_path / "merged.jsonl"
    write_merged_journal(merged, name=NAME, seed=SEED, fingerprint=FP,
                         ordered_digests=["d1", "d2"],
                         entries=outcome.entries)
    lines = merged.read_text(encoding="utf-8").splitlines()
    # Header + entries in campaign order — exactly a serial journal.
    assert json.loads(lines[0])["campaign"] == NAME
    assert [json.loads(line)["digest"] for line in lines[1:]] == \
        ["d1", "d2"]
    again = merge_worker_journals(
        [merged], name=NAME, seed=SEED, fingerprint=FP,
        digests={"d1", "d2"})
    assert {d: e.result for d, e in again.entries.items()} == \
        {d: e.result for d, e in outcome.entries.items()}
