"""CampaignRunner: serial/parallel equivalence and cache integration."""

import pytest

from repro.runner import Campaign, CampaignRunner, ResultCache


def _cheap_campaign(name="cheap", seed=99):
    """Fast, RNG-bearing points: enough to expose ordering bugs."""
    specs = [("radio-sweep", {"bus": bus, "samples": samples,
                              "repetitions": 20})
             for bus in ("usb2", "usb3", "pcie")
             for samples in (2_000, 8_000)]
    specs += [("design-feasibility",
               {"index": index, "mu": 2, "max_period_ms": 1.0,
                "budget_ms": 0.5, "reliability": 0.99999})
              for index in (0, 1)]
    return Campaign.build(name, seed, specs)


def _payloads(result):
    return [point_result.result for point_result in result.point_results]


def test_workers_must_be_positive():
    with pytest.raises(ValueError, match=">= 1"):
        CampaignRunner(workers=0)


def test_serial_and_parallel_runs_are_bit_identical():
    campaign = _cheap_campaign()
    serial = CampaignRunner(workers=1).run(campaign)
    with CampaignRunner(workers=2) as parallel_runner:
        parallel = parallel_runner.run(campaign)
    assert _payloads(serial) == _payloads(parallel)
    assert [p.point for p in serial.point_results] == \
        list(campaign.points)
    assert serial.cache_hits == parallel.cache_hits == 0


def test_cache_replays_unchanged_points(tmp_path):
    campaign = _cheap_campaign()
    cache = ResultCache(tmp_path / "cache.json")
    runner = CampaignRunner(workers=1, cache=cache, fingerprint="fp-a")
    cold = runner.run(campaign)
    warm = runner.run(campaign)
    assert cold.cache_hit_rate == 0.0
    assert warm.cache_hit_rate == 1.0
    assert all(point.from_cache for point in warm.point_results)
    assert _payloads(cold) == _payloads(warm)

    # A fresh process (fresh cache object) replays from disk too.
    rewarmed = CampaignRunner(workers=1,
                              cache=ResultCache(tmp_path / "cache.json"),
                              fingerprint="fp-a").run(campaign)
    assert rewarmed.cache_hit_rate == 1.0
    assert _payloads(rewarmed) == _payloads(cold)


def test_cache_misses_when_source_fingerprint_changes(tmp_path):
    campaign = _cheap_campaign()
    cache_path = tmp_path / "cache.json"
    CampaignRunner(workers=1, cache=ResultCache(cache_path),
                   fingerprint="fp-a").run(campaign)
    changed = CampaignRunner(workers=1, cache=ResultCache(cache_path),
                             fingerprint="fp-b").run(campaign)
    assert changed.cache_hits == 0
    assert changed.cache_misses == len(campaign)


def test_cache_misses_when_params_change(tmp_path):
    cache = ResultCache(tmp_path / "cache.json")
    runner = CampaignRunner(workers=1, cache=cache, fingerprint="fp")
    runner.run(Campaign.build("one", 1, [
        ("radio-sweep", {"bus": "usb3", "samples": 2_000,
                         "repetitions": 10})]))
    shifted = runner.run(Campaign.build("two", 1, [
        ("radio-sweep", {"bus": "usb3", "samples": 2_001,
                         "repetitions": 10})]))
    assert shifted.cache_hits == 0


def test_metrics_flatten_only_scalars():
    campaign = Campaign.build("tiny", 3, [
        ("design-feasibility",
         {"index": 0, "mu": 2, "max_period_ms": 1.0,
          "budget_ms": 0.5, "reliability": 0.99999})])
    result = CampaignRunner(workers=1).run(campaign)
    metrics = result.metrics()
    label = campaign.points[0].label
    assert f"{label}/universe" in metrics
    assert f"{label}/period_tc" in metrics
    # Strings, lists and booleans are payload, not gateable metrics.
    assert f"{label}/letters" not in metrics
    assert f"{label}/feasible_accesses" not in metrics
    assert f"{label}/dl_ok" not in metrics
    assert result.wall_clock_s >= 0.0


def test_unknown_scenario_is_contained_as_a_failed_point():
    campaign = Campaign.build("bad", 1, [("no-such-scenario", {"x": 1})])
    result = CampaignRunner(workers=1, max_retries=0).run(campaign)
    (entry,) = result.point_results
    assert entry.failed
    assert entry.result == {}
    assert "unknown scenario" in (entry.error or "")
    assert result.failures == (entry,)
