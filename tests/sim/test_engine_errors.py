"""Callback failures surface as SimulationError with event context."""

import pytest

from repro.sim import SimulationError, Simulator


def _boom():
    raise ValueError("physics went sideways")


def test_run_wraps_callback_exceptions_with_context():
    sim = Simulator()
    sim.schedule(42, _boom)
    with pytest.raises(SimulationError) as info:
        sim.run()
    message = str(info.value)
    assert "_boom" in message          # callback qualname
    assert "t=42" in message           # simulated time of the failure
    assert "seq" in message            # event sequence number
    assert "ValueError" in message
    assert isinstance(info.value.__cause__, ValueError)


def test_step_wraps_callback_exceptions_too():
    sim = Simulator()
    sim.schedule(0, _boom)
    with pytest.raises(SimulationError, match="_boom"):
        sim.step()


def test_simulation_errors_pass_through_unwrapped():
    sim = Simulator()

    def already_domain_error():
        raise SimulationError("scheduler invariant broken")

    sim.schedule(0, already_domain_error)
    with pytest.raises(SimulationError,
                       match="scheduler invariant broken") as info:
        sim.run()
    assert info.value.__cause__ is None  # not re-wrapped


def test_failure_does_not_corrupt_the_clock():
    sim = Simulator()
    sim.schedule(5, _boom)
    sim.schedule(9, lambda: None)
    with pytest.raises(SimulationError):
        sim.run()
    assert sim.now == 5  # stopped at the failing event's time
