"""Engine edge cases backing the determinism guarantees.

Same-tick FIFO under interleaved cancellation, re-entrant scheduling
from callbacks, strict tick validation, and trace-digest stability.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.trace import Tracer


# ----------------------------------------------------------------------
# strict tick validation (regression: negative / fractional delays)
# ----------------------------------------------------------------------
def test_call_in_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError, match="in the past"):
        sim.call_in(-1, lambda: None)


def test_call_in_negative_delay_raises_mid_run():
    sim = Simulator()
    errors = []

    def bad():
        try:
            sim.call_in(-5, lambda: None)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(10, bad)
    sim.run_until_idle()
    assert len(errors) == 1


def test_non_integral_delay_raises_instead_of_truncating():
    sim = Simulator()
    with pytest.raises(SimulationError, match="integer tick"):
        sim.call_in(2.7, lambda: None)
    with pytest.raises(SimulationError, match="integer tick"):
        sim.schedule(1.5, lambda: None)


def test_integral_float_ticks_accepted():
    sim = Simulator()
    fired = []
    sim.call_in(2.0, fired.append, "a")
    sim.schedule(5.0, fired.append, "b")
    sim.run_until_idle()
    assert fired == ["a", "b"]
    assert sim.now == 5


# ----------------------------------------------------------------------
# same-tick FIFO under interleaved cancellation
# ----------------------------------------------------------------------
def test_same_tick_fifo_survives_interleaved_cancellation():
    sim = Simulator()
    order = []
    events = [sim.schedule(100, order.append, i) for i in range(8)]
    for i in (1, 3, 4, 6):
        events[i].cancel()
    sim.run_until_idle()
    assert order == [0, 2, 5, 7]


def test_callback_can_cancel_a_later_same_tick_event():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        doomed.cancel()  # same tick, scheduled after us: must not run

    sim.schedule(50, first)
    doomed = sim.schedule(50, order.append, "doomed")
    sim.schedule(50, order.append, "last")
    sim.run_until_idle()
    assert order == ["first", "last"]


# ----------------------------------------------------------------------
# re-entrant scheduling from callbacks
# ----------------------------------------------------------------------
def test_callback_scheduling_same_tick_runs_within_tick():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(sim.now, order.append, "inner")

    sim.schedule(7, outer)
    sim.run_until_idle()
    assert order == ["outer", "inner"]
    assert sim.now == 7


def test_reentrant_chain_respects_until():
    sim = Simulator()
    ticks = []

    def hop():
        ticks.append(sim.now)
        sim.call_in(10, hop)

    sim.schedule(0, hop)
    executed = sim.run(until=35)
    assert ticks == [0, 10, 20, 30]
    assert executed == 4
    assert sim.now == 35


def test_run_is_not_reentrant():
    sim = Simulator()
    caught = []

    def recurse():
        try:
            sim.run()
        except SimulationError as exc:
            caught.append(exc)

    sim.schedule(0, recurse)
    sim.run_until_idle()
    assert len(caught) == 1


# ----------------------------------------------------------------------
# trace digest stability
# ----------------------------------------------------------------------
def _traced_run(seed_offset: int = 0) -> str:
    sim = Simulator()
    tracer = Tracer()
    for i in range(5):
        sim.schedule(i * 10,
                     lambda i=i: tracer.emit(sim.now, "comp", "fire",
                                             idx=i))
    sim.run_until_idle()
    return tracer.digest()


def test_trace_digest_stable_across_identical_runs():
    assert _traced_run() == _traced_run()


def test_trace_digest_sensitive_to_field_changes():
    sim = Simulator()
    tracer_a, tracer_b = Tracer(), Tracer()
    tracer_a.emit(0, "c", "fire", idx=1)
    tracer_b.emit(0, "c", "fire", idx=2)
    assert tracer_a.digest() != tracer_b.digest()


def test_trace_digest_field_order_is_canonical():
    tracer_a, tracer_b = Tracer(), Tracer()
    tracer_a.emit(0, "c", "fire", a=1, b=2)
    tracer_b.emit(0, "c", "fire", b=2, a=1)
    assert tracer_a.digest() == tracer_b.digest()
