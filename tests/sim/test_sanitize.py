"""Runtime determinism sanitizer: recording, claims, bit-identity."""

import numpy as np
import pytest

from repro.sim.distributions import Exponential, LogNormal
from repro.sim.rng import RngRegistry
from repro.sim.sampling import BufferedSampler, UniformBuffer, force_sequential
from repro.sim.sanitize import (
    DeterminismViolation,
    RecordingGenerator,
    sanitize_active,
    sanitizer_session,
    set_sim_clock,
)


def test_sanitizer_off_by_default_vends_plain_generators(monkeypatch):
    monkeypatch.delenv("URLLC5G_SANITIZE", raising=False)
    assert not sanitize_active()
    rng = RngRegistry(7).stream("plain")
    assert isinstance(rng, np.random.Generator)
    assert not isinstance(rng, RecordingGenerator)


def test_session_wraps_streams_and_caches_the_proxy():
    with sanitizer_session():
        assert sanitize_active()
        registry = RngRegistry(7)
        rng = registry.stream("wrapped")
        assert isinstance(rng, RecordingGenerator)
        # The cache returns the *same* proxy, so identity checks such as
        # `rng is self._rng` keep working under the sanitizer.
        assert registry.stream("wrapped") is rng
    assert not sanitize_active()


def test_env_flag_activates_sanitizer(monkeypatch):
    monkeypatch.setenv("URLLC5G_SANITIZE", "1")
    assert sanitize_active()
    assert isinstance(RngRegistry(1).stream("env"), RecordingGenerator)


def test_sanitized_draws_are_bit_identical():
    plain = RngRegistry(42).stream("draws")
    reference = [plain.random() for _ in range(5)]
    reference += list(plain.normal(size=3))
    with sanitizer_session():
        wrapped = RngRegistry(42).stream("draws")
        values = [wrapped.random() for _ in range(5)]
        values += list(wrapped.normal(size=3))
    assert values == reference


def test_draw_log_records_stream_consumer_and_count():
    with sanitizer_session() as log:
        rng = RngRegistry(0).stream("logged")
        for _ in range(4):
            rng.random()
        rng.integers(10)
    assert log.draw_counts() == {"logged": 5}
    (consumer,) = log.consumer_map()["logged"]
    assert consumer.endswith(
        "test_draw_log_records_stream_consumer_and_count")
    recent = list(log.stream("logged").recent)
    assert [r.method for r in recent] == ["random"] * 4 + ["integers"]
    assert [r.index for r in recent] == list(range(5))


def test_sim_clock_timestamps_draw_records():
    with sanitizer_session() as log:
        set_sim_clock(lambda: 1234)
        try:
            RngRegistry(0).stream("timed").random()
        finally:
            set_sim_clock(None)
    assert log.stream("timed").recent[0].sim_time == 1234


def test_buffered_sampler_still_bit_identical_under_sanitizer():
    sampler = LogNormal(55.21, 16.31)
    scalar_rng = RngRegistry(9).stream("bits")
    scalar = [sampler.sample(scalar_rng) for _ in range(40)]
    with sanitizer_session():
        rng = RngRegistry(9).stream("bits")
        buffered = BufferedSampler(sampler, rng, block=16)
        assert [buffered.sample(rng) for _ in range(40)] == scalar


def test_direct_draw_on_claimed_stream_raises():
    with sanitizer_session():
        rng = RngRegistry(3).stream("upf")
        BufferedSampler(Exponential(12.0), rng, block=8)
        with pytest.raises(DeterminismViolation,
                           match="exclusively owned") as err:
            rng.random()
    assert err.value.stream == "upf"
    assert "BufferedSampler" in err.value.owner
    assert err.value.consumer.endswith(
        "test_direct_draw_on_claimed_stream_raises")


def test_double_claim_of_one_stream_raises():
    with sanitizer_session():
        rng = RngRegistry(3).stream("link")
        BufferedSampler(Exponential(1.0), rng, block=8)
        with pytest.raises(DeterminismViolation, match="two buffers"):
            UniformBuffer(rng, block=8)


def test_uniform_buffer_claim_blocks_direct_draws():
    with sanitizer_session():
        rng = RngRegistry(5).stream("link")
        uniforms = UniformBuffer(rng, block=8)
        assert uniforms.next() >= 0.0
        with pytest.raises(DeterminismViolation, match="exclusively owned"):
            rng.random()


def test_force_sequential_whole_run_is_fine_under_sanitizer():
    sampler = Exponential(5.0)
    reference_rng = RngRegistry(6).stream("seq")
    reference = [sampler.sample(reference_rng) for _ in range(6)]
    with sanitizer_session():
        rng = RngRegistry(6).stream("seq")
        buffered = BufferedSampler(sampler, rng, block=32)
        with force_sequential():
            assert [buffered.sample(rng) for _ in range(6)] == reference


def test_force_sequential_mid_run_raises_under_sanitizer():
    with sanitizer_session():
        rng = RngRegistry(6).stream("mid")
        buffered = BufferedSampler(Exponential(5.0), rng, block=4)
        for _ in range(6):  # crosses a block boundary: a block exists
            buffered.sample(rng)
        with force_sequential():
            with pytest.raises(DeterminismViolation, match="mid-run"):
                for _ in range(8):
                    buffered.sample(rng)


def test_foreign_generator_violation_names_both_sides():
    with sanitizer_session():
        rng = RngRegistry(2).stream("owned")
        buffered = BufferedSampler(Exponential(1.0), rng, block=8)
        with pytest.raises(DeterminismViolation,
                           match="owns its Generator") as err:
            buffered.sample(np.random.default_rng(0))
    assert err.value.stream == "owned"
    assert err.value.consumer.endswith(
        "test_foreign_generator_violation_names_both_sides")


def test_proxy_forwards_non_draw_attributes():
    with sanitizer_session() as log:
        rng = RngRegistry(1).stream("fwd")
        assert rng.bit_generator is rng.wrapped.bit_generator
        assert rng.stream_name == "fwd"
    assert log.draw_counts() == {}
