"""Unit tests for the named RNG registry."""

import pytest

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_generator():
    rngs = RngRegistry(1)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("phy").random(5)
    b = RngRegistry(7).stream("phy").random(5)
    assert list(a) == list(b)


def test_different_names_give_different_streams():
    rngs = RngRegistry(7)
    a = rngs.stream("phy").random(5)
    b = rngs.stream("mac").random(5)
    assert list(a) != list(b)


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("x").random(5)
    b = RngRegistry(2).stream("x").random(5)
    assert list(a) != list(b)


def test_adding_a_stream_does_not_perturb_existing_ones():
    baseline = RngRegistry(3)
    first = baseline.stream("a").random(5)

    mixed = RngRegistry(3)
    mixed.stream("b")  # interleaved creation
    second = mixed.stream("a").random(5)
    assert list(first) == list(second)


def test_fork_is_independent_and_deterministic():
    parent = RngRegistry(9)
    fork_a = parent.fork("ue1").stream("x").random(5)
    fork_b = RngRegistry(9).fork("ue1").stream("x").random(5)
    assert list(fork_a) == list(fork_b)
    assert list(fork_a) != list(parent.stream("x").random(5))


def test_names_reports_created_streams():
    rngs = RngRegistry(0)
    rngs.stream("b")
    rngs.stream("a")
    assert rngs.names() == ["a", "b"]


def test_invalid_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)


def test_empty_name_rejected():
    with pytest.raises(ValueError):
        RngRegistry(0).stream("")
