"""Unit and property tests for the delay distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.distributions import (
    Constant,
    Exponential,
    LogNormal,
    Spiked,
    TruncatedNormal,
    from_mean_std,
)


def test_constant_samples_its_value(rng):
    sampler = Constant(42.0)
    assert sampler.sample(rng) == 42.0
    assert sampler.mean_us == 42.0


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        Constant(-1.0)


def test_lognormal_matches_target_moments(rng):
    sampler = LogNormal(mean_us=55.21, std_us=16.31)  # Table 2 MAC row
    samples = np.array([sampler.sample(rng) for _ in range(60_000)])
    assert samples.mean() == pytest.approx(55.21, rel=0.03)
    assert samples.std() == pytest.approx(16.31, rel=0.10)


def test_lognormal_zero_std_is_constant(rng):
    sampler = LogNormal(10.0, 0.0)
    assert sampler.sample(rng) == 10.0


def test_lognormal_zero_mean_is_zero(rng):
    assert LogNormal(0.0, 0.0).sample(rng) == 0.0


def test_lognormal_rejects_negative_parameters():
    with pytest.raises(ValueError):
        LogNormal(-1.0, 1.0)
    with pytest.raises(ValueError):
        LogNormal(1.0, -1.0)


def test_truncated_normal_is_non_negative(rng):
    sampler = TruncatedNormal(mean_us=1.0, std_us=50.0)
    samples = [sampler.sample(rng) for _ in range(5_000)]
    assert min(samples) >= 0.0


def test_exponential_mean(rng):
    sampler = Exponential(100.0)
    samples = [sampler.sample(rng) for _ in range(60_000)]
    assert np.mean(samples) == pytest.approx(100.0, rel=0.05)


def test_exponential_zero_mean(rng):
    assert Exponential(0.0).sample(rng) == 0.0


def test_spiked_mean_includes_spike_term(rng):
    sampler = Spiked(Constant(100.0), Exponential(50.0),
                     spike_probability=0.1)
    assert sampler.mean_us == pytest.approx(105.0)
    samples = [sampler.sample(rng) for _ in range(60_000)]
    assert np.mean(samples) == pytest.approx(105.0, rel=0.05)


def test_spiked_never_below_base(rng):
    sampler = Spiked(Constant(10.0), Exponential(5.0), 0.5)
    samples = [sampler.sample(rng) for _ in range(1_000)]
    assert min(samples) >= 10.0


def test_spiked_probability_validated():
    with pytest.raises(ValueError):
        Spiked(Constant(1.0), Constant(1.0), 1.5)


def test_from_mean_std_dispatch():
    assert isinstance(from_mean_std(5.0, 0.0), Constant)
    assert isinstance(from_mean_std(5.0, 2.0), LogNormal)


@given(mean=st.floats(0.1, 1e4), std=st.floats(0.0, 1e4))
@settings(max_examples=60, deadline=None)
def test_samples_always_non_negative(mean, std):
    sampler = from_mean_std(mean, std)
    generator = np.random.default_rng(0)
    for _ in range(20):
        assert sampler.sample(generator) >= 0.0


@given(mean=st.floats(1.0, 1000.0), std=st.floats(0.1, 500.0))
@settings(max_examples=30, deadline=None)
def test_lognormal_sample_mean_tracks_parameter(mean, std):
    sampler = LogNormal(mean, std)
    generator = np.random.default_rng(1)
    samples = [sampler.sample(generator) for _ in range(4_000)]
    # Loose bound: heavy right tail, but the mean must be in the
    # right decade.
    assert np.mean(samples) == pytest.approx(mean, rel=0.5)
