"""Unit tests for the slotted engine's building blocks.

End-to-end bit-identity is pinned by
tests/integration/test_slotted_equivalence.py; this module covers the
pieces in isolation: the columnar population store, the compact latency
probe (vs the packet-holding scalar probe), engine selection and
eligibility, and the peek/commit contract of the block samplers the
plan pre-pass relies on.
"""

import math

import numpy as np
import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.probes import LatencyProbe
from repro.net.session import RanConfig, RanSystem
from repro.radio.interface import usb3
from repro.radio.os_jitter import none as no_jitter
from repro.radio.radio_head import RadioHead
from repro.sim.distributions import Exponential, LogNormal
from repro.sim.sampling import (
    BufferedSampler,
    LogNormalBlockServer,
    force_sequential,
)
from repro.sim.slotted import ArrayLatencyProbe, UePopulation, ineligibility
from repro.stack.packets import LatencySource, Packet, PacketKind


# ---------------------------------------------------------------------------
# UePopulation
# ---------------------------------------------------------------------------
def test_population_rejects_empty():
    with pytest.raises(ValueError):
        UePopulation(0)


def test_population_add_packet_validation():
    population = UePopulation(2)
    with pytest.raises(ValueError):
        population.add_packet(1, 0, 0, 10)
    with pytest.raises(ValueError):
        population.add_packet(1, 0, 32, -1)


def test_population_rows_are_dense_and_parallel():
    population = UePopulation(3)
    rows = [population.add_packet(ue, pid, 32, 100 * pid)
            for pid, ue in enumerate([1, 3, 1, 2], start=1)]
    assert rows == [0, 1, 2, 3]
    assert len(population) == 4
    assert population.ue == [1, 3, 1, 2]
    assert population.created == [100, 200, 300, 400]
    assert population.queued == [0, 2, 1, 1]  # index 0 unused
    # every per-packet column grew in lockstep
    for column in (population.packet_id, population.payload,
                   population.header, population.retx,
                   population.dropped, population.budget_processing,
                   population.budget_protocol, population.budget_radio,
                   population.delivered_tc):
        assert len(column) == 4


# ---------------------------------------------------------------------------
# ArrayLatencyProbe — read API must be bitwise the scalar probe's
# ---------------------------------------------------------------------------
def _delivered_packet(created_tc, delivered_tc, budgets):
    packet = Packet(PacketKind.DATA, Direction.UL, 32,
                    created_tc=created_tc)
    packet.delivered_tc = delivered_tc
    processing, protocol, radio = budgets
    packet.budget[LatencySource.PROCESSING] = processing
    packet.budget[LatencySource.PROTOCOL] = protocol
    packet.budget[LatencySource.RADIO] = radio
    return packet


def test_array_probe_matches_scalar_probe_bitwise():
    deliveries = [
        (0, 150_000, (50_000, 60_000, 40_000)),
        (10_000, 400_123, (100_000, 200_123, 90_000)),
        (20_000, 90_021, (20_021, 30_000, 20_000)),
    ]
    scalar = LatencyProbe("ul")
    compact = ArrayLatencyProbe("ul")
    for created, delivered, budgets in deliveries:
        scalar.record(_delivered_packet(created, delivered, budgets))
        compact.record_tc(delivered - created, *budgets)
    assert len(compact) == len(scalar)
    assert compact.latencies_tc() == scalar.latencies_tc()
    assert compact.latencies_us() == scalar.latencies_us()
    assert compact.latencies_ms() == scalar.latencies_ms()
    assert compact.summary() == scalar.summary()
    assert compact.budget_means_us() == scalar.budget_means_us()
    for budget_us in (0.0, 60.0, 500.0):
        assert compact.fraction_within(budget_us) == \
            scalar.fraction_within(budget_us)


def test_array_probe_empty_edge_cases():
    probe = ArrayLatencyProbe()
    assert len(probe) == 0
    assert probe.fraction_within(1e9) == 0.0
    assert set(probe.budget_means_us().values()) == {0.0}
    with pytest.raises(ValueError):
        probe.summary()


# ---------------------------------------------------------------------------
# eligibility and engine selection
# ---------------------------------------------------------------------------
def _system(**overrides):
    config = dict(access=AccessMode.GRANT_FREE, n_ues=2, seed=3,
                  engine="scalar")
    config.update(overrides)
    return RanSystem(testbed_dddu(), RanConfig(**config))


def test_ineligibility_reports_first_violation():
    assert ineligibility(_system()) is None
    assert "grant-free" in ineligibility(
        _system(access=AccessMode.GRANT_BASED))
    radio_head = RadioHead("rh", usb3(), no_jitter())
    assert "radio head" in ineligibility(
        _system(gnb_radio_head=radio_head))
    assert "radio head" in ineligibility(
        _system(ue_radio_head=radio_head))
    assert "CPU" in ineligibility(_system(gnb_cpu_cores=4))


def test_ineligibility_rejects_unsupported_sampler():
    system = _system()
    system.gnb.up_pipeline.layers[0].delay = Exponential(5.0)
    assert "Exponential" in ineligibility(system)


def test_engine_slotted_raises_for_unsupported_config():
    with pytest.raises(ValueError, match="grant-free"):
        RanSystem(testbed_dddu(),
                  RanConfig(access=AccessMode.GRANT_BASED,
                            engine="slotted"))


def test_engine_name_is_validated():
    with pytest.raises(ValueError, match="engine"):
        RanSystem(testbed_dddu(), RanConfig(engine="vectorised"))


def test_engine_auto_uses_threshold():
    assert _system(engine="auto", n_ues=9,
                   slotted_threshold=10).engine_mode == "scalar"
    assert _system(engine="auto", n_ues=10,
                   slotted_threshold=10).engine_mode == "slotted"
    # ineligible configs fall back to scalar regardless of size
    assert _system(engine="auto", n_ues=10, slotted_threshold=10,
                   gnb_cpu_cores=2).engine_mode == "scalar"


def test_engine_slotted_is_uplink_only():
    system = _system(engine="slotted")
    with pytest.raises(RuntimeError, match="uplink"):
        system.run_downlink([1_000])
    with pytest.raises(RuntimeError, match="uplink"):
        system.run_ping([1_000])


# ---------------------------------------------------------------------------
# peek/commit — the guarded-fusion primitive of the plan pre-pass
# ---------------------------------------------------------------------------
def test_block_server_peek_does_not_consume():
    server = LogNormalBlockServer(np.random.default_rng(5), block=8)
    first = server.peek(4)
    again = server.peek(4)
    assert np.array_equal(first, again)
    # a larger peek extends the view but keeps the prefix
    assert np.array_equal(server.peek(10)[:4], first)


def test_block_server_peek_commit_equals_serving():
    served = LogNormalBlockServer(np.random.default_rng(5), block=8)
    expected = [served.sample(1.5, 0.25) for _ in range(20)]
    peeked = LogNormalBlockServer(np.random.default_rng(5), block=8)
    values = []
    consumed = 0
    while consumed < 20:
        take = min(7, 20 - consumed)
        block = peeked.peek(take)
        # reconstruct through scalar math.exp, as the engine does
        values += [math.exp(1.5 + 0.25 * z) for z in block.tolist()]
        peeked.commit(take)
        consumed += take
    assert values == expected


def test_block_server_peek_is_none_when_sequential():
    server = LogNormalBlockServer(np.random.default_rng(5))
    with force_sequential():
        assert server.peek(1) is None
        # the scalar fallback still serves the stream
        assert server.sample(1.0, 0.1) > 0


def test_buffered_sampler_peek_commit_equals_serving():
    rng_a = np.random.default_rng(9)
    rng_b = np.random.default_rng(9)
    sampler = LogNormal(mean_us=40.0, std_us=6.0)
    served = BufferedSampler(sampler, rng_a, block=8)
    expected = [served.sample(rng_a) for _ in range(12)]
    peeked = BufferedSampler(sampler, rng_b, block=8)
    values = []
    for take in (5, 7):
        chunk = peeked.peek(take)
        values += [float(v) for v in chunk]
        peeked.commit(take)
    assert values == expected


def test_buffered_sampler_peek_is_none_when_sequential():
    sampler = BufferedSampler(LogNormal(mean_us=40.0, std_us=6.0),
                              np.random.default_rng(9))
    with force_sequential():
        assert sampler.peek(1) is None
