"""Buffered sampling: bit-stream equivalence, ownership, fallbacks."""

import numpy as np
import pytest

from repro.sim.distributions import (
    Constant,
    Exponential,
    LogNormal,
    Spiked,
    TruncatedNormal,
)
from repro.sim.sampling import (
    BufferedSampler,
    DeterminismViolation,
    UniformBuffer,
    buffering_enabled,
    force_sequential,
)

SAMPLERS = [
    Constant(7.5),
    LogNormal(55.21, 16.31),
    LogNormal(10.0, 0.0),   # degenerate: constant
    LogNormal(0.0, 0.0),    # degenerate: zero
    TruncatedNormal(5.0, 20.0),  # wide std so clipping actually engages
    Exponential(12.0),
    Exponential(0.0),
    Spiked(LogNormal(10.0, 3.0), Exponential(200.0), 0.3),
]


def _ids(sampler):
    return type(sampler).__name__ + "/" + repr(sampler)


@pytest.mark.parametrize("sampler", SAMPLERS, ids=map(_ids, SAMPLERS))
def test_sample_batch_consumes_stream_like_scalar_calls(sampler):
    scalar_rng = np.random.default_rng(42)
    batch_rng = np.random.default_rng(42)
    n = 257
    scalar = [sampler.sample(scalar_rng) for _ in range(n)]
    batch = sampler.sample_batch(batch_rng, n)
    assert batch.shape == (n,)
    assert list(batch) == scalar
    # The generators are left at the same stream position.
    assert scalar_rng.random() == batch_rng.random()


@pytest.mark.parametrize("sampler", SAMPLERS, ids=map(_ids, SAMPLERS))
def test_buffered_sampler_matches_scalar_across_block_boundaries(sampler):
    scalar_rng = np.random.default_rng(9)
    buffered_rng = np.random.default_rng(9)
    buffered = BufferedSampler(sampler, buffered_rng, block=16)
    n = 50  # crosses three block boundaries
    scalar = [sampler.sample(scalar_rng) for _ in range(n)]
    assert [buffered.sample(buffered_rng) for _ in range(n)] == scalar


def test_buffered_sampler_rejects_foreign_generator():
    owner = np.random.default_rng(1)
    buffered = BufferedSampler(LogNormal(10.0, 3.0), owner)
    with pytest.raises(DeterminismViolation, match="owns its Generator"):
        buffered.sample(np.random.default_rng(1))  # equal seed, not same


def test_buffered_sampler_exposes_mean_and_wrapped_sampler():
    inner = LogNormal(55.21, 16.31)
    buffered = BufferedSampler(inner, np.random.default_rng(0))
    assert buffered.mean_us == inner.mean_us
    assert buffered.sampler is inner


def test_buffered_sampler_rejects_empty_block():
    with pytest.raises(ValueError, match="block"):
        BufferedSampler(Constant(1.0), np.random.default_rng(0), block=0)


def test_force_sequential_uses_scalar_draws():
    assert buffering_enabled()
    rng = np.random.default_rng(3)
    reference = np.random.default_rng(3)
    sampler = Exponential(5.0)
    buffered = BufferedSampler(sampler, rng, block=128)
    with force_sequential():
        assert not buffering_enabled()
        values = [buffered.sample(rng) for _ in range(10)]
    assert buffering_enabled()
    assert values == [sampler.sample(reference) for _ in range(10)]
    # Only 10 draws were consumed — no 128-wide block was pre-drawn.
    assert rng.random() == reference.random()


def test_uniform_buffer_matches_scalar_stream():
    buffered_rng = np.random.default_rng(8)
    scalar_rng = np.random.default_rng(8)
    uniforms = UniformBuffer(buffered_rng, block=8)
    assert [uniforms.next() for _ in range(20)] == \
        [float(scalar_rng.random()) for _ in range(20)]
    assert uniforms.owns(buffered_rng)
    assert not uniforms.owns(scalar_rng)


def test_uniform_buffer_force_sequential():
    rng = np.random.default_rng(5)
    reference = np.random.default_rng(5)
    uniforms = UniformBuffer(rng, block=64)
    with force_sequential():
        values = [uniforms.next() for _ in range(5)]
    assert values == [float(reference.random()) for _ in range(5)]
    assert rng.random() == reference.random()  # no block pre-drawn
