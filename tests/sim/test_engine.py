"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 30


def test_ties_run_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcd":
        sim.schedule(5, order.append, label)
    sim.run()
    assert order == list("abcd")


def test_call_in_is_relative():
    sim = Simulator(start_time=100)
    seen = []
    sim.call_in(50, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [150]


def test_scheduling_in_the_past_raises():
    sim = Simulator(start_time=10)
    with pytest.raises(SimulationError):
        sim.schedule(5, lambda: None)


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_in(-1, lambda: None)


def test_cancelled_event_does_not_run():
    sim = Simulator()
    ran = []
    event = sim.schedule(10, ran.append, 1)
    sim.schedule(5, event.cancel)
    sim.run()
    assert ran == []
    assert sim.events_processed == 1  # only the cancelling event


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10, lambda: None)
    event.cancel()
    event.cancel()
    assert sim.run() == 0


def test_run_until_stops_the_clock_at_until():
    sim = Simulator()
    ran = []
    sim.schedule(10, ran.append, "early")
    sim.schedule(100, ran.append, "late")
    sim.run(until=50)
    assert ran == ["early"]
    assert sim.now == 50
    sim.run()
    assert ran == ["early", "late"]


def test_events_at_exactly_until_run():
    sim = Simulator()
    ran = []
    sim.schedule(50, ran.append, "boundary")
    sim.run(until=50)
    assert ran == ["boundary"]


def test_events_can_schedule_more_events():
    sim = Simulator()
    trail = []

    def chain(depth):
        trail.append(sim.now)
        if depth:
            sim.call_in(7, chain, depth - 1)

    sim.schedule(0, chain, 3)
    sim.run()
    assert trail == [0, 7, 14, 21]


def test_same_tick_scheduling_allowed():
    sim = Simulator()
    seen = []
    sim.schedule(10, lambda: sim.schedule(10, seen.append, "same"))
    sim.run()
    assert seen == ["same"]


def test_max_events_limits_execution():
    sim = Simulator()
    for t in range(10):
        sim.schedule(t, lambda: None)
    assert sim.run(max_events=4) == 4
    assert sim.pending() == 6


def test_pending_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1, lambda: None)
    drop = sim.schedule(2, lambda: None)
    drop.cancel()
    assert sim.pending() == 1
    assert list(sim.timeline()) == [1]
    keep.cancel()


def test_run_is_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1, nested)
    sim.run()


def test_callback_args_are_passed():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]


def test_mass_cancellation_compacts_heap_and_preserves_order():
    # 10k scheduled-then-cancelled timers must not pile up as
    # tombstones: the queue stays bounded by the live event count (plus
    # the under-half tombstone allowance), and the survivors still fire
    # in (time, seq) order.
    sim = Simulator()
    fired = []
    survivors = [sim.schedule(10_000 + t, fired.append, 10_000 + t)
                 for t in range(100)]
    # Interleave two survivors at the same tick to pin FIFO tie-break.
    sim.schedule(10_000, lambda: fired.append("tie-a"))
    sim.schedule(10_000, lambda: fired.append("tie-b"))
    doomed = [sim.schedule(20_000 + t, fired.append, "never")
              for t in range(10_000)]
    for event in doomed:
        event.cancel()
    # Compaction keeps heap entries below live + half slack, far under
    # the 10k cancelled events.
    assert sim.pending() == 102
    assert sim.queue_len() <= 2 * sim.pending() + 1
    sim.run()
    assert fired[0] == 10_000  # seq order: first-scheduled survivor
    assert fired[1] == "tie-a" and fired[2] == "tie-b"
    assert fired[3:] == [10_001 + t for t in range(99)]
    assert "never" not in fired
    assert survivors[0].time == 10_000


def test_cancel_before_compaction_threshold_keeps_entries():
    # Small queues are never compacted (cheaper to skip on pop).
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(10)]
    for event in events[:9]:
        event.cancel()
    assert sim.pending() == 1
    assert sim.queue_len() == 10  # tombstones still present
    sim.run()
    assert sim.pending() == 0
