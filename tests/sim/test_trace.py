"""Unit tests for structured tracing."""

from repro.sim.trace import TraceRecord, Tracer


def test_emit_and_filter_by_name():
    tracer = Tracer()
    tracer.emit(10, "gnb.mac", "sr_received", ue_id=1)
    tracer.emit(20, "gnb.mac", "grant_issued", ue_id=1)
    assert len(tracer) == 2
    assert [r.time for r in tracer.records(name="grant_issued")] == [20]


def test_category_prefix_matches_on_dot_boundaries():
    record = TraceRecord(0, "gnb.mac", "x")
    assert record.matches(category="gnb")
    assert record.matches(category="gnb.mac")
    assert not record.matches(category="gn")
    assert not record.matches(category="gnb.mac.inner")


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.emit(1, "a", "b")
    assert len(tracer) == 0


def test_predicate_filters_at_emission():
    tracer = Tracer(predicate=lambda time, category, name: category == "keep")
    tracer.emit(1, "keep", "x")
    tracer.emit(2, "drop", "x")
    assert [r.category for r in tracer] == ["keep"]


def test_predicate_runs_before_record_construction():
    # The predicate sees (time, category, name) — not a TraceRecord —
    # so rejected emits never build the record or its fields dict.
    seen = []
    tracer = Tracer(predicate=lambda time, category, name: (
        seen.append((time, category, name)) or name == "x"))
    tracer.emit(7, "a", "x", payload=1)
    tracer.emit(8, "a", "y", payload=2)
    assert seen == [(7, "a", "x"), (8, "a", "y")]
    assert [r.name for r in tracer] == ["x"]


def test_first_and_last():
    tracer = Tracer()
    tracer.emit(1, "a", "x", k=1)
    tracer.emit(2, "a", "x", k=2)
    tracer.emit(3, "b", "y")
    assert tracer.first("a").fields["k"] == 1
    assert tracer.last("a").fields["k"] == 2
    assert tracer.first("missing") is None
    assert tracer.last(name="missing") is None


def test_subscribers_see_records_live():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.emit(5, "c", "n")
    assert len(seen) == 1 and seen[0].time == 5


def test_clear_empties_history():
    tracer = Tracer()
    tracer.emit(1, "a", "b")
    tracer.clear()
    assert len(tracer) == 0


def test_fields_are_stored():
    tracer = Tracer()
    tracer.emit(1, "a", "b", packet_id=9, note="hi")
    record = tracer.records()[0]
    assert record.fields == {"packet_id": 9, "note": "hi"}
