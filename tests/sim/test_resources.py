"""Unit tests for the shared CPU resource."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import CpuResource


def test_single_core_serialises_jobs():
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=1)
    finished = []
    cpu.execute(100, lambda: finished.append(sim.now))
    cpu.execute(100, lambda: finished.append(sim.now))
    sim.run_until_idle()
    assert finished == [100, 200]
    assert cpu.jobs_executed == 2
    assert cpu.queueing_samples_us[1] > 0.0


def test_two_cores_run_in_parallel():
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=2)
    finished = []
    cpu.execute(100, lambda: finished.append(sim.now))
    cpu.execute(100, lambda: finished.append(sim.now))
    sim.run_until_idle()
    assert finished == [100, 100]
    assert cpu.mean_queueing_us() == 0.0


def test_idle_gaps_do_not_accumulate():
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=1)
    finished = []
    cpu.execute(50, lambda: finished.append(sim.now))
    sim.run_until_idle()
    # Submit long after the first job finished: no queueing.
    sim.schedule(1_000, lambda: cpu.execute(
        50, lambda: finished.append(sim.now)))
    sim.run_until_idle()
    assert finished == [50, 1_050]
    assert cpu.queueing_samples_us[-1] == 0.0


def test_zero_duration_job_allowed():
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=1)
    done = []
    cpu.execute(0, lambda: done.append(sim.now))
    sim.run_until_idle()
    assert done == [0]


def test_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        CpuResource(sim, n_cores=0)
    cpu = CpuResource(sim, 1)
    with pytest.raises(ValueError):
        cpu.execute(-1, lambda: None)
    with pytest.raises(ValueError):
        cpu.utilisation_until(0)


def test_utilisation():
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=2)
    cpu.execute(100, lambda: None)
    sim.run_until_idle()
    assert cpu.utilisation_until(100) == pytest.approx(0.5)


def test_contention_inflates_observed_processing():
    """The §7 effect: with one core and a burst of concurrent jobs,
    response times grow linearly with queue position."""
    sim = Simulator()
    cpu = CpuResource(sim, n_cores=1)
    completions = []
    for _ in range(10):
        cpu.execute(10, lambda: completions.append(sim.now))
    sim.run_until_idle()
    assert completions == [10 * (i + 1) for i in range(10)]
