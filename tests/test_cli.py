"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_table1_output(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "✓" in out and "✗" in out and "Mini-slot" in out


def test_fig4_output(capsys):
    assert main(["fig4"]) == 0
    out = capsys.readouterr().out
    assert "Grant-free UL" in out and "budget 500" in out


def test_journey_output(capsys):
    assert main(["journey", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "RTT" in out and "RLC queue" in out


def test_journey_grant_free(capsys):
    assert main(["journey", "--grant-free"]) == 0
    out = capsys.readouterr().out
    assert "grant-free UL data tx" in out


def test_fig6_small_run(capsys):
    assert main(["fig6", "--packets", "40", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "grant-based" in out and "Uplink" in out


def test_sweep_output(capsys):
    assert main(["sweep", "--radio-us", "0", "250"]) == 0
    out = capsys.readouterr().out
    assert "µ=2" in out and "250" in out


def test_technologies_output(capsys):
    assert main(["technologies"]) == 0
    out = capsys.readouterr().out
    assert "Bluetooth" in out and "Wi-Fi" in out and "mmWave" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["nope"])


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])
