"""Unit tests for the RLC queue."""

from repro.mac.types import Direction
from repro.phy.timebase import tc_from_us, us_from_tc
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet, PacketKind
from repro.stack.rlc import RlcQueue


def make_packet(payload=50):
    return Packet(PacketKind.DATA, Direction.DL, payload, created_tc=0)


def make_queue(max_packets=None):
    sim = Simulator()
    queue = RlcQueue(sim, Tracer(), "test.rlcq", max_packets=max_packets)
    return sim, queue


def test_fifo_order():
    sim, queue = make_queue()
    first, second = make_packet(), make_packet()
    queue.enqueue(first)
    queue.enqueue(second)
    assert queue.dequeue() is first
    assert queue.dequeue() is second
    assert queue.dequeue() is None


def test_wait_time_charged_to_protocol():
    sim, queue = make_queue()
    packet = make_packet()
    queue.enqueue(packet)
    wait = tc_from_us(480.0)
    sim.schedule(wait, lambda: None)
    sim.run_until_idle()
    queue.dequeue()
    assert packet.budget[LatencySource.PROTOCOL] == wait
    assert queue.wait_samples_us == [us_from_tc(wait)]


def test_len_bool_and_bytes():
    sim, queue = make_queue()
    assert not queue
    queue.enqueue(make_packet(payload=10))
    queue.enqueue(make_packet(payload=20))
    assert len(queue) == 2
    assert queue.queued_bytes == 30


def test_pull_up_to_respects_capacity_and_order():
    sim, queue = make_queue()
    for payload in (40, 40, 40):
        queue.enqueue(make_packet(payload=payload))
    pulled = queue.pull_up_to(85)
    assert [p.payload_bytes for p in pulled] == [40, 40]
    assert len(queue) == 1


def test_pull_up_to_stops_at_first_misfit():
    # FIFO is preserved: a large head blocks smaller packets behind it.
    sim, queue = make_queue()
    queue.enqueue(make_packet(payload=100))
    queue.enqueue(make_packet(payload=10))
    assert queue.pull_up_to(50) == []
    assert len(queue) == 2


def test_overflow_drops_and_counts():
    sim, queue = make_queue(max_packets=1)
    assert queue.enqueue(make_packet())
    rejected = make_packet()
    assert not queue.enqueue(rejected)
    assert rejected.dropped
    assert queue.dropped_overflow == 1


def test_head_of_line_wait():
    sim, queue = make_queue()
    assert queue.head_of_line_wait_tc() is None
    queue.enqueue(make_packet())
    sim.schedule(100, lambda: None)
    sim.run_until_idle()
    assert queue.head_of_line_wait_tc() == 100


# ---------------------------------------------------------------------------
# RLC segmentation (§3: "segmentation and reassembly")
# ---------------------------------------------------------------------------
def test_segmentation_splits_large_head():
    sim, queue = make_queue()
    big = make_packet(payload=1_000)
    queue.enqueue(big)
    first = queue.pull(400, allow_segmentation=True)
    assert first.completed == []
    assert first.consumed_bytes == 400
    assert len(queue) == 1  # the SDU stays queued with its remainder
    second = queue.pull(400, allow_segmentation=True)
    assert second.consumed_bytes == 400
    last = queue.pull(400, allow_segmentation=True)
    assert last.completed == [big]
    assert last.consumed_bytes == 200  # the remainder
    assert not queue


def test_segmentation_records_wait_at_completion():
    sim, queue = make_queue()
    big = make_packet(payload=500)
    queue.enqueue(big)
    queue.pull(300, allow_segmentation=True)
    sim.schedule(1_000, lambda: None)
    sim.run_until_idle()
    queue.pull(300, allow_segmentation=True)
    # One wait sample, measured at the final segment.
    assert len(queue.wait_samples_us) == 1


def test_no_segmentation_below_min_segment():
    from repro.stack.rlc import MIN_SEGMENT_BYTES
    sim, queue = make_queue()
    queue.enqueue(make_packet(payload=1_000))
    result = queue.pull(MIN_SEGMENT_BYTES - 1, allow_segmentation=True)
    assert result.consumed_bytes == 0
    assert not result.carries_data


def test_segment_then_small_packets_wait_fifo():
    # FIFO holds across segmentation: packets behind a half-sent SDU
    # are not reordered ahead of it.
    sim, queue = make_queue()
    big = make_packet(payload=1_000)
    small = make_packet(payload=10)
    queue.enqueue(big)
    queue.enqueue(small)
    queue.pull(400, allow_segmentation=True)
    result = queue.pull(400, allow_segmentation=True)
    assert result.completed == []  # big still unfinished
    result = queue.pull(400, allow_segmentation=True)
    assert result.completed == [big, small]


def test_dequeue_resets_partial_state():
    sim, queue = make_queue()
    big = make_packet(payload=1_000)
    queue.enqueue(big)
    queue.pull(400, allow_segmentation=True)
    assert queue.dequeue() is big
    # A fresh SDU pulls from byte zero.
    queue.enqueue(make_packet(payload=50))
    result = queue.pull(100, allow_segmentation=True)
    assert result.consumed_bytes == 50
