"""Unit tests for the layer pipeline."""

import pytest

from repro.mac.types import Direction
from repro.phy.timebase import tc_from_us
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.layers import LayerPipeline, ProcessingLayer
from repro.stack.packets import LatencySource, Packet, PacketKind


def make_packet():
    return Packet(PacketKind.DATA, Direction.DL, 64, created_tc=0)


def make_layer(sim, tracer, rng, name="PDCP", delay_us=10.0,
               adds_header=False):
    return ProcessingLayer(sim, tracer, name, f"test.{name.lower()}",
                           Constant(delay_us), rng,
                           adds_header=adds_header)


def test_layer_delays_and_charges(rng):
    sim, tracer = Simulator(), Tracer()
    layer = make_layer(sim, tracer, rng, delay_us=25.0)
    done = []
    layer.process(make_packet(), done.append)
    sim.run_until_idle()
    assert sim.now == tc_from_us(25.0)
    packet = done[0]
    assert packet.budget[LatencySource.PROCESSING] == tc_from_us(25.0)
    assert layer.samples_us == [25.0]


def test_layer_traces_enter_and_exit(rng):
    sim, tracer = Simulator(), Tracer()
    layer = make_layer(sim, tracer, rng)
    layer.process(make_packet(), lambda p: None)
    sim.run_until_idle()
    assert tracer.first("test.pdcp", "enter") is not None
    assert tracer.last("test.pdcp", "exit").fields["delay_us"] == 10.0


def test_layer_adds_header_when_configured(rng):
    sim, tracer = Simulator(), Tracer()
    layer = make_layer(sim, tracer, rng, name="PDCP", adds_header=True)
    done = []
    layer.process(make_packet(), done.append)
    sim.run_until_idle()
    assert done[0].header_bytes == 3


def test_pipeline_runs_layers_in_order(rng):
    sim, tracer = Simulator(), Tracer()
    pipeline = LayerPipeline([
        make_layer(sim, tracer, rng, name="SDAP", delay_us=5.0),
        make_layer(sim, tracer, rng, name="PDCP", delay_us=7.0),
        make_layer(sim, tracer, rng, name="RLC", delay_us=9.0),
    ])
    done = []
    pipeline.process(make_packet(), done.append)
    sim.run_until_idle()
    assert sim.now == tc_from_us(21.0)
    packet = done[0]
    enters = [k for k in packet.timestamps if k.endswith(".enter")]
    assert enters == ["test.sdap.enter", "test.pdcp.enter",
                      "test.rlc.enter"]


def test_pipeline_mean_total(rng):
    sim, tracer = Simulator(), Tracer()
    pipeline = LayerPipeline([
        make_layer(sim, tracer, rng, delay_us=5.0),
        make_layer(sim, tracer, rng, name="RLC", delay_us=10.0),
    ])
    assert pipeline.mean_total_us() == 15.0


def test_pipeline_lookup(rng):
    sim, tracer = Simulator(), Tracer()
    pipeline = LayerPipeline([make_layer(sim, tracer, rng, name="MAC")])
    assert pipeline.layer("MAC").name == "MAC"
    with pytest.raises(KeyError):
        pipeline.layer("PHY")


def test_empty_pipeline_rejected():
    with pytest.raises(ValueError):
        LayerPipeline([])


def test_concurrent_packets_interleave(rng):
    sim, tracer = Simulator(), Tracer()
    layer = make_layer(sim, tracer, rng, delay_us=10.0)
    done = []
    layer.process(make_packet(), done.append)
    sim.schedule(tc_from_us(3.0), layer.process, make_packet(),
                 done.append)
    sim.run_until_idle()
    assert len(done) == 2
    assert len(layer.samples_us) == 2
