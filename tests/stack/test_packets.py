"""Unit tests for the packet model."""

import pytest

from repro.mac.types import Direction
from repro.stack.packets import (
    HEADER_BYTES,
    LatencySource,
    Packet,
    PacketKind,
)


def make_packet(**kwargs):
    defaults = dict(kind=PacketKind.DATA, direction=Direction.UL,
                    payload_bytes=100, created_tc=1000)
    defaults.update(kwargs)
    return Packet(**defaults)


def test_packet_ids_are_unique():
    assert make_packet().packet_id != make_packet().packet_id


def test_validation():
    with pytest.raises(ValueError):
        make_packet(payload_bytes=0)
    with pytest.raises(ValueError):
        make_packet(created_tc=-1)


def test_header_accounting():
    packet = make_packet()
    packet.add_header("PDCP")
    packet.add_header("RLC")
    assert packet.header_bytes == HEADER_BYTES["PDCP"] + HEADER_BYTES["RLC"]
    assert packet.wire_bytes == 100 + packet.header_bytes
    assert packet.wire_bits == 8 * packet.wire_bytes


def test_unknown_header_rejected():
    with pytest.raises(ValueError):
        make_packet().add_header("NOPE")


def test_stamp_keeps_first_occurrence():
    packet = make_packet()
    packet.stamp("stage", 5)
    packet.stamp("stage", 9)
    assert packet.timestamps["stage"] == 5


def test_budget_charging():
    packet = make_packet()
    packet.charge(LatencySource.PROTOCOL, 10)
    packet.charge(LatencySource.PROTOCOL, 5)
    packet.charge(LatencySource.RADIO, 3)
    assert packet.budget[LatencySource.PROTOCOL] == 15
    assert packet.budget[LatencySource.RADIO] == 3
    with pytest.raises(ValueError):
        packet.charge(LatencySource.RADIO, -1)


def test_latency_and_unattributed():
    packet = make_packet(created_tc=100)
    assert packet.latency_tc is None
    assert packet.unattributed_tc() is None
    packet.charge(LatencySource.PROCESSING, 40)
    packet.mark_delivered(200)
    assert packet.latency_tc == 100
    assert packet.unattributed_tc() == 60


def test_drop_marking():
    packet = make_packet()
    packet.mark_dropped("harq-exhausted")
    assert packet.dropped
    assert packet.drop_reason == "harq-exhausted"


def test_gtpu_header_is_largest():
    assert HEADER_BYTES["GTP-U"] == max(HEADER_BYTES.values())
