"""Unit tests for Buffer Status Reporting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.bsr import (
    BSR_TABLE_BYTES,
    TOP_LEVEL_BYTES,
    bsr_index,
    quantize,
    reported_bytes,
)


def test_table_shape():
    assert len(BSR_TABLE_BYTES) == 32
    assert BSR_TABLE_BYTES[0] == 0
    assert list(BSR_TABLE_BYTES[:31]) == sorted(BSR_TABLE_BYTES[:31])


def test_empty_buffer_is_level_zero():
    assert bsr_index(0) == 0
    assert reported_bytes(0) == 0
    assert quantize(0) == 0


def test_exact_edges():
    assert bsr_index(10) == 1
    assert bsr_index(11) == 2
    assert bsr_index(14) == 2


def test_huge_buffer_maps_to_top():
    assert bsr_index(10 ** 9) == 31
    assert reported_bytes(31) == TOP_LEVEL_BYTES


def test_validation():
    with pytest.raises(ValueError):
        bsr_index(-1)
    with pytest.raises(ValueError):
        reported_bytes(32)


@given(buffer_bytes=st.integers(0, 500_000))
@settings(max_examples=300, deadline=None)
def test_quantize_never_underreports(buffer_bytes):
    # The grant sized from the report must always cover the buffer
    # (up to the unbounded top level).
    granted = quantize(buffer_bytes)
    assert granted >= min(buffer_bytes, TOP_LEVEL_BYTES)


@given(buffer_bytes=st.integers(1, 100_000))
@settings(max_examples=200, deadline=None)
def test_quantize_overhead_is_bounded(buffer_bytes):
    # Exponential spacing: the over-grant is at most ~45 % of the
    # buffer (the table's level ratio).
    granted = quantize(buffer_bytes)
    assert granted <= int(buffer_bytes * 1.45) + 16


def test_scheduler_sizes_grant_from_bsr(rng):
    from repro.mac.catalog import testbed_dddu
    from repro.mac.scheduler import GnbMacScheduler
    from repro.phy.ofdm import Carrier
    from repro.sim.engine import Simulator
    from repro.sim.trace import Tracer

    scheme = testbed_dddu()
    sim = Simulator()
    grants = []
    scheduler = GnbMacScheduler(
        sim, Tracer(), scheme, Carrier(scheme.numerology, 20), rng,
        on_ul_grant=lambda g: grants.append(g))
    scheduler.register_ue(1)
    scheduler.start()
    sim.schedule(100, scheduler.receive_sr, 1, 53)   # small report
    sim.run_until_idle()
    assert grants[0].capacity_bytes == 53
    # Unknown buffer (legacy SR): a full window is granted.
    sim.schedule(sim.now + 1, scheduler.receive_sr, 1, 0)
    sim.run_until_idle()
    full = scheduler.window_capacity_bytes(grants[1].window)
    assert grants[1].capacity_bytes == full
