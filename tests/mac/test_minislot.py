"""Unit tests for the Mini-Slot configuration."""

import pytest

from repro.mac.minislot import MiniSlotConfig
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_MS


def test_mini_slot_lengths_validated():
    with pytest.raises(ValueError):
        MiniSlotConfig(Numerology(2), mini_slot_symbols=3)
    with pytest.raises(ValueError):
        MiniSlotConfig(Numerology(2), mini_slot_symbols=7,
                       control_symbols=7)


def test_seven_symbol_minislots_tile_the_slot():
    config = MiniSlotConfig(Numerology(2), mini_slot_symbols=7)
    windows = config.dl_timeline().windows
    # 4 slots per subframe × 2 mini-slots per slot.
    assert len(windows) == 8
    assert config.period_tc == TC_PER_MS


def test_two_symbol_minislots_have_remainder():
    config = MiniSlotConfig(Numerology(1), mini_slot_symbols=4)
    windows = config.dl_timeline().windows
    # 14 = 4+4+4+2 per slot, 2 slots per subframe.
    assert len(windows) == 8


def test_ul_and_dl_share_windows():
    config = MiniSlotConfig(Numerology(2))
    assert config.dl_timeline().windows == config.ul_timeline().windows


def test_windows_are_contiguous_within_slots():
    config = MiniSlotConfig(Numerology(2), mini_slot_symbols=7)
    windows = config.dl_timeline().windows
    for previous, current in zip(windows, windows[1:]):
        assert current.start == previous.end


def test_control_every_mini_slot():
    config = MiniSlotConfig(Numerology(2), mini_slot_symbols=7)
    assert len(config.dl_control_instants().instants) == 8
    assert len(config.scheduling_instants().instants) == 8


def test_overhead_grows_as_minislots_shrink():
    small = MiniSlotConfig(Numerology(2), mini_slot_symbols=2,
                           control_symbols=1)
    large = MiniSlotConfig(Numerology(2), mini_slot_symbols=7,
                           control_symbols=1)
    assert small.overhead_fraction() > large.overhead_fraction()


def test_standard_recommendation_flag():
    # §5: mini-slot on 0.25 ms slots goes against TR 38.912's >=0.5 ms
    # target slot duration.
    assert not MiniSlotConfig(Numerology(2)).within_standard_recommendation()
    assert MiniSlotConfig(Numerology(1)).within_standard_recommendation()
    assert MiniSlotConfig(Numerology(0)).within_standard_recommendation()


def test_describe():
    assert "7-symbol" in MiniSlotConfig(Numerology(2)).describe()
