"""Unit tests for HARQ feedback timing and process bookkeeping."""

import pytest

from repro.mac.catalog import fdd, testbed_dddu
from repro.mac.harq import (
    MAX_HARQ_PROCESSES,
    HarqFeedbackModel,
    HarqProcessPool,
)
from repro.phy.timebase import tc_from_ms, us_from_tc


def test_feedback_respects_k1():
    model = HarqFeedbackModel(fdd(mu=1), k1_symbols=10)
    timing = model.timing(completion_tc=0)
    assert timing.pucch_tc >= model.k1_tc
    assert timing.feedback_tc > timing.pucch_tc
    assert timing.round_trip_tc == timing.feedback_tc


def test_feedback_waits_for_ul_occasion_on_tdd():
    # On DDDU the UL slot opens 1.5 ms into the 2 ms pattern; a DL
    # block ending at t=0 cannot be acknowledged before that.
    model = HarqFeedbackModel(testbed_dddu(), k1_symbols=10)
    timing = model.timing(completion_tc=0)
    assert timing.pucch_tc >= tc_from_ms(1.5)


def test_ul_feedback_uses_dl_timeline():
    # gNB feedback for UL data rides DL control: on DDDU DL windows
    # are plentiful, so the round trip is short.
    ul_model = HarqFeedbackModel(testbed_dddu(), feedback_for="ul")
    dl_model = HarqFeedbackModel(testbed_dddu(), feedback_for="dl")
    assert ul_model.timing(0).feedback_tc < dl_model.timing(0).feedback_tc


def test_feedback_monotone_in_completion():
    model = HarqFeedbackModel(testbed_dddu())
    times = [model.feedback_time(t)
             for t in range(0, tc_from_ms(4), tc_from_ms(4) // 16)]
    assert times == sorted(times)
    for completion, feedback in zip(
            range(0, tc_from_ms(4), tc_from_ms(4) // 16), times):
        assert feedback > completion


def test_feedback_model_validation():
    with pytest.raises(ValueError):
        HarqFeedbackModel(fdd(), k1_symbols=-1)
    with pytest.raises(ValueError):
        HarqFeedbackModel(fdd(), feedback_for="sideways")


def test_pool_acquire_release_cycle():
    pool = HarqProcessPool(2)
    assert pool.available()
    pool.acquire()
    pool.acquire()
    assert not pool.available()
    assert pool.in_flight == 2
    assert pool.peak_in_flight == 2
    pool.release()
    assert pool.available()


def test_pool_overflow_and_underflow():
    pool = HarqProcessPool(1)
    pool.acquire()
    with pytest.raises(RuntimeError):
        pool.acquire()
    pool.release()
    with pytest.raises(RuntimeError):
        pool.release()


def test_pool_limits():
    with pytest.raises(ValueError):
        HarqProcessPool(0)
    with pytest.raises(ValueError):
        HarqProcessPool(MAX_HARQ_PROCESSES + 1)
    pool = HarqProcessPool()
    assert pool.n_processes == MAX_HARQ_PROCESSES


def test_stall_counter():
    pool = HarqProcessPool(1)
    pool.record_stall()
    pool.record_stall()
    assert pool.stalls == 2
