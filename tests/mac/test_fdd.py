"""Unit tests for FDD."""

import pytest

from repro.mac.fdd import FddConfig
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_MS


def test_every_slot_is_bidirectional():
    config = FddConfig(Numerology(2))
    assert len(config.dl_timeline().windows) == 4
    assert config.dl_timeline().windows == config.ul_timeline().windows
    assert config.period_tc == TC_PER_MS


def test_full_duty_cycle():
    config = FddConfig(Numerology(1))
    assert config.dl_timeline().duty_cycle() == pytest.approx(1.0)


def test_control_and_scheduling_every_slot():
    config = FddConfig(Numerology(2))
    assert len(config.dl_control_instants().instants) == 4
    assert len(config.scheduling_instants().instants) == 4


def test_frequency_overhead():
    config = FddConfig(Numerology(0), guard_band_mhz=12.5)
    assert config.frequency_overhead_mhz() == 12.5


def test_parameter_validation():
    with pytest.raises(ValueError):
        FddConfig(Numerology(0), duplex_spacing_mhz=0)
    with pytest.raises(ValueError):
        FddConfig(Numerology(0), guard_band_mhz=-1)


def test_describe():
    assert "FDD" in FddConfig(Numerology(1)).describe()
