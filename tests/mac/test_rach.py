"""Unit tests for the random-access model."""

import numpy as np
import pytest

from repro.mac.catalog import fdd, testbed_dddu
from repro.mac.rach import MAX_ATTEMPTS, RachOutcome, RachProcedure
from repro.phy.timebase import tc_from_ms, us_from_tc


def test_step_ordering(rng):
    rach = RachProcedure(testbed_dddu())
    outcome = rach.access(0, rng)
    assert (outcome.arrival_tc <= outcome.msg1_tc <= outcome.msg2_tc
            <= outcome.msg3_tc <= outcome.msg4_tc)
    assert outcome.attempts == 1


def test_access_delay_is_many_milliseconds(rng):
    # The point of the model: initial access costs ~10 ms even without
    # contention — far outside the URLLC budget.
    rach = RachProcedure(testbed_dddu())
    delays = rach.sample_access_delays_us(200, rng)
    assert min(delays) > 2_000.0
    assert float(np.mean(delays)) > 5_000.0


def test_two_step_is_faster(rng):
    four = RachProcedure(testbed_dddu(), two_step=False)
    two = RachProcedure(testbed_dddu(), two_step=True)
    four_mean = float(np.mean(four.sample_access_delays_us(200, rng)))
    two_mean = float(np.mean(two.sample_access_delays_us(200, rng)))
    assert two_mean < four_mean


def test_prach_occasions_fall_in_ul_windows(rng):
    rach = RachProcedure(testbed_dddu())
    for time in range(0, tc_from_ms(40), tc_from_ms(3)):
        occasion = rach.next_prach_occasion(time)
        assert occasion >= time
        window = rach._ul.window_at(occasion)
        assert window is not None


def test_contention_adds_attempts_and_delay(rng):
    rach = RachProcedure(fdd())
    lone = rach.sample_access_delays_us(300, rng, n_contenders=1)
    crowded = rach.sample_access_delays_us(300, rng, n_contenders=20)
    assert float(np.mean(crowded)) > float(np.mean(lone))


def test_collisions_consume_attempts(rng):
    rach = RachProcedure(fdd())
    outcomes = [rach.access(0, rng, n_contenders=20)
                for _ in range(300)]
    assert any(o.attempts > 1 for o in outcomes)
    assert all(o.attempts <= MAX_ATTEMPTS for o in outcomes)


def test_validation(rng):
    with pytest.raises(ValueError):
        RachProcedure(fdd(), prach_period_ms=0)
    rach = RachProcedure(fdd())
    with pytest.raises(ValueError):
        rach.access(0, rng, n_contenders=0)
    with pytest.raises(ValueError):
        rach.sample_access_delays_us(0, rng)


def test_outcome_accessors(rng):
    outcome = RachOutcome(0, 10, 20, 30, 40, attempts=2)
    assert outcome.access_delay_tc == 40
