"""Unit tests for the Slot Format configuration."""

import pytest

from repro.mac.slot_format import (
    SLOT_FORMATS,
    SlotFormatConfig,
    format_roles,
)
from repro.mac.types import SymbolRole
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_MS


def test_table_entries_are_well_formed():
    assert len(SLOT_FORMATS) == 46
    for pattern in SLOT_FORMATS:
        assert len(pattern) == 14
        assert set(pattern) <= set("DUF")


def test_format_0_all_dl_and_1_all_ul():
    assert set(format_roles(0)) == {SymbolRole.DL}
    assert set(format_roles(1)) == {SymbolRole.UL}
    assert set(format_roles(2)) == {SymbolRole.FLEXIBLE}


def test_format_28_spot_check():
    roles = format_roles(28)
    assert roles[:12] == (SymbolRole.DL,) * 12
    assert roles[12] is SymbolRole.FLEXIBLE
    assert roles[13] is SymbolRole.UL


def test_invalid_index_rejected():
    with pytest.raises(ValueError):
        format_roles(46)


def test_dddu_like_sequence():
    config = SlotFormatConfig(Numerology(2), [0, 0, 0, 1])
    assert len(config.dl_timeline().windows) == 3
    assert len(config.ul_timeline().windows) == 1
    assert config.period_tc == TC_PER_MS


def test_mixed_format_produces_split_windows():
    # Format 28: DDDDDDDDDDDDFU — 12 DL symbols, guard, 1 UL symbol.
    config = SlotFormatConfig(Numerology(2), [28, 28])
    dl = config.dl_timeline().windows
    ul = config.ul_timeline().windows
    assert len(dl) == len(ul)
    for dl_window, ul_window in zip(dl, ul):
        assert dl_window.end < ul_window.start  # guard between


def test_cp_cycle_alignment():
    # A single-slot sequence at µ=1 must be repeated to cover 0.5 ms.
    config = SlotFormatConfig(Numerology(1), [0])
    assert config.period_tc % (TC_PER_MS // 2) == 0


def test_empty_sequence_rejected():
    with pytest.raises(ValueError):
        SlotFormatConfig(Numerology(1), [])


def test_control_and_scheduling_instants():
    config = SlotFormatConfig(Numerology(2), [0, 1, 0, 1])
    assert len(config.scheduling_instants().instants) == 4
    assert len(config.dl_control_instants().instants) == 2


def test_describe():
    config = SlotFormatConfig(Numerology(2), [0, 1])
    assert "[0, 1]" in config.describe()
