"""Unit tests for the discrete-event gNB MAC scheduler."""

import pytest

from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.scheduler import GnbMacScheduler
from repro.mac.types import Direction
from repro.phy.ofdm import Carrier
from repro.phy.timebase import tc_from_us
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import Packet, PacketKind


def make_packet(created=0, ue_id=1, payload=32):
    return Packet(PacketKind.DATA, Direction.DL, payload,
                  created_tc=created, ue_id=ue_id)


def make_scheduler(rng, scheme=None, **kwargs):
    scheme = scheme or testbed_dddu()
    sim = Simulator()
    tracer = Tracer()
    carrier = Carrier(scheme.numerology, 20)
    transmissions = []
    grants = []
    scheduler = GnbMacScheduler(
        sim, tracer, scheme, carrier, rng,
        on_dl_transmission=lambda w, p: transmissions.append((sim.now, w, p)),
        on_ul_grant=lambda g: grants.append((sim.now, g)),
        **kwargs)
    return sim, scheduler, transmissions, grants


def test_register_ue_twice_rejected(rng):
    _, scheduler, _, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    with pytest.raises(ValueError):
        scheduler.register_ue(1)
    with pytest.raises(ValueError):
        scheduler.register_ue(2, grant_free=True, cg_share=0.0)


def test_start_twice_rejected(rng):
    _, scheduler, _, _ = make_scheduler(rng)
    scheduler.start()
    with pytest.raises(RuntimeError):
        scheduler.start()


def test_dl_packet_transmitted_at_window_end(rng):
    sim, scheduler, transmissions, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    scheduler.start()
    packet = make_packet()
    scheduler.dl_queue(1).enqueue(packet)
    scheduler.notify_dl_data()
    sim.run_until_idle()
    assert len(transmissions) == 1
    time, window, packets = transmissions[0]
    assert packets == [packet]
    assert time == window.end
    # DDDU: first DL window is slot 0, which ends at the slot boundary.
    assert window.start == 0 or window.start > 0


def test_idle_scheduler_generates_no_events(rng):
    sim, scheduler, _, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    scheduler.start()
    assert sim.run_until_idle() == 0


def test_data_arriving_mid_window_waits_for_next(rng):
    scheme = testbed_dddu()
    sim, scheduler, transmissions, _ = make_scheduler(rng, scheme)
    scheduler.register_ue(1)
    scheduler.start()
    window0 = scheme.dl_timeline().windows[0]

    def inject():
        scheduler.dl_queue(1).enqueue(make_packet(created=sim.now))
        scheduler.notify_dl_data()

    sim.schedule(window0.start + 10, inject)
    sim.run_until_idle()
    _, window, _ = transmissions[0]
    assert window.start == scheme.dl_timeline().windows[1].start


def test_capacity_splits_across_windows(rng):
    sim, scheduler, transmissions, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    scheduler.start()
    window = scheduler.scheme.dl_timeline().windows[0]
    capacity = scheduler.window_capacity_bytes(window)
    big_payload = capacity - 100  # one per window after headers
    for _ in range(3):
        scheduler.dl_queue(1).enqueue(make_packet(payload=big_payload))
    scheduler.notify_dl_data()
    sim.run_until_idle()
    assert len(transmissions) == 3
    starts = [w.start for _, w, _ in transmissions]
    assert starts == sorted(set(starts))


def test_round_robin_across_ues(rng):
    sim, scheduler, transmissions, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    scheduler.register_ue(2)
    scheduler.start()
    scheduler.dl_queue(1).enqueue(make_packet(ue_id=1))
    scheduler.dl_queue(2).enqueue(make_packet(ue_id=2))
    scheduler.notify_dl_data()
    sim.run_until_idle()
    served = {p.ue_id for _, _, block in transmissions for p in block}
    assert served == {1, 2}


def test_margin_defers_decision_target(rng):
    scheme = testbed_dddu()
    slot_tc = scheme.numerology.slot_duration_tc
    sim, scheduler, transmissions, _ = make_scheduler(
        rng, scheme, margin_tc=slot_tc)
    scheduler.register_ue(1)
    scheduler.start()

    def inject():
        scheduler.dl_queue(1).enqueue(make_packet(created=sim.now))
        scheduler.notify_dl_data()

    # Arrive just before the second DL window: with a one-slot margin
    # the scheduler cannot make it and targets the third window.
    windows = scheme.dl_timeline().windows
    sim.schedule(windows[1].start - 10, inject)
    sim.run_until_idle()
    _, window, _ = transmissions[0]
    assert window.start == windows[2].start


def test_deadline_miss_requeues_and_counts(rng):
    # Radio always takes a full slot; with zero margin every first
    # attempt misses its window.
    scheme = testbed_dddu()
    slot_us = 500.0
    sim, scheduler, transmissions, _ = make_scheduler(
        rng, scheme, margin_tc=0,
        radio_submission_us=lambda n, r: slot_us)
    scheduler.register_ue(1)
    scheduler.start()
    scheduler.dl_queue(1).enqueue(make_packet())
    scheduler.notify_dl_data()
    sim.run(until=scheme.period_tc * 4)
    assert scheduler.counters.dl_deadline_misses >= 1


def test_sr_produces_grant_after_scheduling_instant(rng):
    scheme = testbed_dddu()
    sim, scheduler, _, grants = make_scheduler(rng, scheme)
    scheduler.register_ue(1)
    scheduler.start()
    sim.schedule(100, scheduler.receive_sr, 1)
    sim.run_until_idle()
    assert len(grants) == 1
    issue_time, grant = grants[0]
    assert grant.ue_id == 1
    # The grant's window starts after the control occasion.
    assert grant.window.start >= grant.control_time
    assert scheduler.counters.grants_issued == 1
    assert scheduler.counters.srs_received == 1


def test_grant_window_respects_ue_turnaround(rng):
    scheme = testbed_dddu()
    turnaround = tc_from_us(700.0)
    sim, scheduler, _, grants = make_scheduler(
        rng, scheme, ue_grant_turnaround_tc=turnaround)
    scheduler.register_ue(1)
    scheduler.start()
    sim.schedule(0, scheduler.receive_sr, 1)
    sim.run_until_idle()
    _, grant = grants[0]
    assert grant.window.start >= grant.control_time + turnaround


def test_cg_capacity_and_waste_accounting(rng):
    scheme = minimal_dm()
    sim, scheduler, _, _ = make_scheduler(rng, scheme)
    scheduler.register_ue(1, grant_free=True, cg_share=0.5)
    scheduler.register_ue(2, grant_free=False)
    window = scheme.ul_timeline().windows[0]
    full = scheduler.window_capacity_bytes(window)
    assert scheduler.cg_capacity_bytes(1, window) == int(full * 0.5)
    assert scheduler.cg_capacity_bytes(2, window) == 0
    scheduler.account_cg_window(1, window, used_bytes=0)
    scheduler.account_cg_window(1, window, used_bytes=10 ** 9)
    counters = scheduler.counters
    assert counters.cg_allocated_bytes == 2 * int(full * 0.5)
    assert counters.cg_used_bytes == int(full * 0.5)
    assert 0.0 < counters.cg_waste_fraction() < 1.0


def test_priority_class_served_first(rng):
    sim, scheduler, transmissions, _ = make_scheduler(rng)
    scheduler.register_ue(1, priority=1)   # eMBB
    scheduler.register_ue(2, priority=0)   # URLLC
    scheduler.start()
    window = scheduler.scheme.dl_timeline().windows[0]
    capacity = scheduler.window_capacity_bytes(window)
    # Fill more than one window from the low-priority UE, then one
    # high-priority packet: it must ride the first window.
    for _ in range(3):
        scheduler.dl_queue(1).enqueue(
            make_packet(ue_id=1, payload=capacity - 100))
    scheduler.dl_queue(2).enqueue(make_packet(ue_id=2))
    scheduler.notify_dl_data()
    sim.run_until_idle()
    first_block_ues = [p.ue_id for p in transmissions[0][2]]
    assert 2 in first_block_ues


def test_large_sdu_is_segmented_across_windows(rng):
    sim, scheduler, transmissions, _ = make_scheduler(rng)
    scheduler.register_ue(1)
    scheduler.start()
    window = scheduler.scheme.dl_timeline().windows[0]
    capacity = scheduler.window_capacity_bytes(window)
    big = make_packet(payload=int(capacity * 2.5))
    scheduler.dl_queue(1).enqueue(big)
    scheduler.notify_dl_data()
    sim.run_until_idle()
    # The SDU completes (single delivery) after spanning 3 windows.
    assert len(transmissions) == 1
    assert transmissions[0][2] == [big]
    assert scheduler.counters.dl_transport_blocks == 3


def test_phy_prep_charged_to_processing(rng):
    sim, scheduler, transmissions, _ = make_scheduler(
        rng, phy_prep_delay=Constant(40.0),
        margin_tc=tc_from_us(100.0))
    scheduler.register_ue(1)
    scheduler.start()
    packet = make_packet()
    scheduler.dl_queue(1).enqueue(packet)
    scheduler.notify_dl_data()
    sim.run_until_idle()
    from repro.stack.packets import LatencySource
    assert packet.budget[LatencySource.PROCESSING] == tc_from_us(40.0)
