"""Unit tests for the PDCCH/CORESET capacity model."""

import pytest

from repro.mac.pdcch import PdcchModel


def test_capacity_per_occasion():
    pdcch = PdcchModel(n_cces=16)
    # Two AL-8 DCIs fit, a third blocks.
    assert pdcch.try_allocate(0, 8)
    assert pdcch.try_allocate(0, 8)
    assert not pdcch.try_allocate(0, 8)
    assert pdcch.counters.attempts == 3
    assert pdcch.counters.blocked == 1


def test_separate_occasions_are_independent():
    pdcch = PdcchModel(n_cces=8)
    assert pdcch.try_allocate(0, 8)
    assert pdcch.try_allocate(100, 8)
    assert pdcch.free_cces(0) == 0
    assert pdcch.free_cces(200) == 8


def test_aligned_candidates_fragment():
    # An AL-2 DCI placed at CCE 0 still leaves an aligned AL-4 slot at
    # 4; a second AL-2 at 2 does not block it either; filling 4-5
    # does.
    pdcch = PdcchModel(n_cces=8)
    assert pdcch.try_allocate(0, 2)   # CCEs 0-1
    assert pdcch.try_allocate(0, 4)   # CCEs 4-7 (aligned)
    assert pdcch.try_allocate(0, 2)   # CCEs 2-3
    assert not pdcch.try_allocate(0, 4)
    assert pdcch.free_cces(0) == 0


def test_oversized_al_always_blocks():
    pdcch = PdcchModel(n_cces=4)
    assert not pdcch.try_allocate(0, 8)
    assert pdcch.counters.blocking_probability() == 1.0


def test_mixed_al_accounting():
    pdcch = PdcchModel(n_cces=16)
    assert pdcch.try_allocate(0, 16)
    assert not pdcch.try_allocate(0, 1)
    assert pdcch.free_cces(0) == 0


def test_occupancy_memory_is_bounded():
    pdcch = PdcchModel(n_cces=4, keep_occasions=4)
    for occasion in range(10):
        pdcch.try_allocate(occasion * 100, 4)
    assert len(pdcch._occupancy) <= 4


def test_validation():
    with pytest.raises(ValueError):
        PdcchModel(n_cces=0)
    with pytest.raises(ValueError):
        PdcchModel(keep_occasions=0)
    with pytest.raises(ValueError):
        PdcchModel().try_allocate(0, 0)


def test_blocking_probability_empty():
    assert PdcchModel().counters.blocking_probability() == 0.0
