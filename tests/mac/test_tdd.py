"""Unit tests for TDD Common Configuration."""

from fractions import Fraction

import pytest

from repro.mac.catalog import minimal_dm, minimal_du, testbed_dddu
from repro.mac.tdd import (
    ALLOWED_PERIODS_MS,
    TddCommonConfig,
    TddPattern,
    slot_letter,
)
from repro.mac.types import SymbolRole
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_MS, tc_from_ms


def test_allowed_period_set_matches_standard():
    values = {float(p) for p in ALLOWED_PERIODS_MS}
    assert values == {0.5, 0.625, 1, 1.25, 2, 2.5, 5, 10}


def test_disallowed_period_rejected():
    with pytest.raises(ValueError, match="period"):
        TddPattern(period_ms=Fraction(3, 4), dl_slots=1)


def test_full_slot_symbol_counts_rejected():
    with pytest.raises(ValueError):
        TddPattern(period_ms=Fraction(1), dl_slots=0, dl_symbols=14)


def test_period_must_hold_integer_slots():
    pattern = TddPattern(period_ms=Fraction("0.625"), dl_slots=1)
    with pytest.raises(ValueError, match="integer"):
        pattern.slots_in_period(Numerology(0))
    assert pattern.slots_in_period(Numerology(3)) == 5


def test_too_many_slots_rejected():
    pattern = TddPattern(period_ms=Fraction(1, 2), dl_slots=2, ul_slots=1)
    with pytest.raises(ValueError, match="exceed"):
        pattern.symbol_roles(Numerology(2))


def test_no_room_for_partial_symbols_rejected():
    pattern = TddPattern(period_ms=Fraction(1, 2), dl_slots=1,
                         ul_slots=1, dl_symbols=2)
    with pytest.raises(ValueError, match="partial"):
        pattern.symbol_roles(Numerology(2))


def test_overlapping_mixed_symbols_rejected():
    pattern = TddPattern(period_ms=Fraction(1, 2), dl_slots=1,
                         dl_symbols=8, ul_symbols=8)
    with pytest.raises(ValueError, match="overlap"):
        pattern.symbol_roles(Numerology(2))


def test_dddu_roles():
    config = testbed_dddu()
    letters = config.slot_letters()
    assert letters == ["D", "D", "D", "U"]
    assert config.slots_per_period == 4  # 2 ms at µ=1 is CP-aligned


def test_dm_mixed_slot_structure():
    config = minimal_dm()
    roles = config.slot_roles()
    mixed = roles[1]
    assert mixed[:4] == [SymbolRole.DL] * 4
    assert mixed[4:6] == [SymbolRole.FLEXIBLE] * 2
    assert mixed[6:] == [SymbolRole.UL] * 8
    assert config.slot_letters() == ["D", "M"]


def test_hyperperiod_alignment_for_sub_half_ms():
    # 0.5 ms period at µ=2 is already aligned with the CP cycle.
    assert minimal_dm().period_tc == tc_from_ms(0.5)
    # 0.625 ms at µ=3 needs a 2.5 ms hyperperiod.
    pattern = TddPattern(period_ms=Fraction("0.625"), dl_slots=2,
                         ul_slots=2, dl_symbols=4, ul_symbols=4)
    config = TddCommonConfig(Numerology(3), [pattern])
    assert config.period_tc == tc_from_ms(2.5)
    assert config.slots_per_period == 20


def test_two_pattern_configuration():
    p1 = TddPattern(period_ms=Fraction(1, 2), dl_slots=1, ul_slots=1)
    p2 = TddPattern(period_ms=Fraction(1, 2), dl_slots=0, ul_slots=2)
    config = TddCommonConfig(Numerology(2), [p1, p2])
    assert config.slot_letters() == ["D", "U", "U", "U"]
    assert config.period_tc == TC_PER_MS


def test_combined_period_must_divide_20ms():
    p1 = TddPattern(period_ms=Fraction(5), dl_slots=1, ul_slots=1)
    p2 = TddPattern(period_ms=Fraction(2), dl_slots=1, ul_slots=1)
    with pytest.raises(ValueError, match="20 ms"):
        TddCommonConfig(Numerology(1), [p1, p2])


def test_pattern_count_validated():
    p = TddPattern(period_ms=Fraction(1, 2), dl_slots=1, ul_slots=1)
    with pytest.raises(ValueError):
        TddCommonConfig(Numerology(2), [])
    with pytest.raises(ValueError):
        TddCommonConfig(Numerology(2), [p, p, p])


def test_timeline_windows_cover_configured_symbols():
    config = minimal_dm()
    dl = config.dl_timeline()
    ul = config.ul_timeline()
    # D slot + 4 DL symbols of the mixed slot.
    assert len(dl.windows) == 2
    # 8 UL symbols of the mixed slot.
    assert len(ul.windows) == 1
    slot_tc = Numerology(2).slot_duration_tc
    assert dl.windows[0].start == 0
    # Guard region exists between DL and UL in the mixed slot.
    assert ul.windows[0].start > dl.windows[1].end


def test_windows_split_per_slot():
    # DDDU: three D slots are three windows, not one merged window
    # (control is per slot).
    config = testbed_dddu()
    assert len(config.dl_timeline().windows) == 3
    assert len(config.ul_timeline().windows) == 1


def test_control_instants_are_dl_window_starts():
    config = testbed_dddu()
    control = config.dl_control_instants()
    starts = tuple(w.start for w in config.dl_timeline().windows)
    assert control.instants == starts


def test_scheduling_instants_once_per_slot():
    config = testbed_dddu()
    assert len(config.scheduling_instants().instants) == 4


def test_slot_letter_classification():
    assert slot_letter([SymbolRole.DL] * 14) == "D"
    assert slot_letter([SymbolRole.UL] * 14) == "U"
    assert slot_letter([SymbolRole.FLEXIBLE] * 14) == "F"
    assert slot_letter([SymbolRole.DL] * 7 + [SymbolRole.UL] * 7) == "M"


def test_describe_mentions_pattern():
    assert "DDDU" in testbed_dddu().describe()
    assert "DM" in repr(minimal_dm())


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        TddPattern(period_ms=Fraction(1, 2), dl_slots=-1)
