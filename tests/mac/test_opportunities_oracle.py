"""Property tests: the timeline queries against a naive oracle.

The oracle re-implements every completion rule by brute-force scanning
explicitly materialised windows over several periods — no shared code
with the production implementation — so agreement is real evidence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac.opportunities import OpportunityTimeline, Window

PERIOD = 1_000


# ---------------------------------------------------------------------------
# the oracle
# ---------------------------------------------------------------------------
def materialise(windows: list[Window], cycles: int = 8
                ) -> list[tuple[int, int]]:
    absolute = []
    for cycle in range(cycles):
        offset = cycle * PERIOD
        for window in windows:
            absolute.append((window.start + offset, window.end + offset))
    return absolute


def oracle_joining(windows, t, need):
    for start, end in materialise(windows):
        entry = max(t, start)
        if end - entry >= need:
            return end
    return None  # impossible demand


def oracle_aligned(windows, t, need, strict):
    for start, end in materialise(windows):
        if (start > t if strict else start >= t) and end - start >= need:
            return end
    return None


def oracle_entry(windows, t, need):
    for start, end in materialise(windows):
        entry = max(t, start)
        if end - entry >= need:
            return entry
    return None


def check(production, oracle_value):
    """Production must match the oracle, including impossibility."""
    if oracle_value is None:
        import pytest
        with pytest.raises(LookupError):
            production()
    else:
        assert production() == oracle_value


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------
@st.composite
def timelines(draw):
    n = draw(st.integers(1, 4))
    cursor = 0
    windows = []
    for _ in range(n):
        gap = draw(st.integers(0, 120))
        length = draw(st.integers(1, 200))
        start = cursor + gap
        end = start + length
        if end > PERIOD:
            break
        windows.append(Window(start, end))
        cursor = end
    if not windows:
        windows = [Window(0, 100)]
    return windows


@given(windows=timelines(), t=st.integers(0, 3 * PERIOD),
       need=st.integers(1, 80))
@settings(max_examples=400, deadline=None)
def test_joining_matches_oracle(windows, t, need):
    timeline = OpportunityTimeline(PERIOD, windows)
    check(lambda: timeline.completion_joining(t, need),
          oracle_joining(windows, t, need))


@given(windows=timelines(), t=st.integers(0, 3 * PERIOD),
       need=st.integers(1, 80))
@settings(max_examples=400, deadline=None)
def test_aligned_matches_oracle(windows, t, need):
    timeline = OpportunityTimeline(PERIOD, windows)
    check(lambda: timeline.completion_aligned(t, need),
          oracle_aligned(windows, t, need, strict=False))


@given(windows=timelines(), t=st.integers(0, 3 * PERIOD),
       need=st.integers(1, 80))
@settings(max_examples=400, deadline=None)
def test_aligned_strict_matches_oracle(windows, t, need):
    timeline = OpportunityTimeline(PERIOD, windows)
    check(lambda: timeline.completion_aligned_strict(t, need),
          oracle_aligned(windows, t, need, strict=True))


@given(windows=timelines(), t=st.integers(0, 3 * PERIOD),
       need=st.integers(1, 80))
@settings(max_examples=400, deadline=None)
def test_earliest_entry_matches_oracle(windows, t, need):
    timeline = OpportunityTimeline(PERIOD, windows)
    check(lambda: timeline.earliest_entry_joining(t, need),
          oracle_entry(windows, t, need))


@given(windows=timelines(), t=st.integers(0, 2 * PERIOD))
@settings(max_examples=200, deadline=None)
def test_window_at_matches_oracle(windows, t):
    timeline = OpportunityTimeline(PERIOD, windows)
    expected = None
    for start, end in materialise(windows):
        if start <= t < end:
            expected = (start, end)
            break
        if start > t:
            break
    found = timeline.window_at(t)
    if expected is None:
        assert found is None
    else:
        assert (found.start, found.end) == expected
