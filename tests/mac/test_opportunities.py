"""Unit and property tests for opportunity timelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
    WindowIndex,
)


def make_timeline():
    """Period 100 with windows [10,30) and [60,80)."""
    return OpportunityTimeline(100, [Window(10, 30), Window(60, 80)])


# ---------------------------------------------------------------------------
# Window
# ---------------------------------------------------------------------------
def test_window_validation():
    with pytest.raises(ValueError):
        Window(5, 5)
    with pytest.raises(ValueError):
        Window(-1, 5)
    with pytest.raises(ValueError):
        Window(10, 5)


def test_window_contains_half_open():
    window = Window(10, 20)
    assert window.contains(10)
    assert window.contains(19)
    assert not window.contains(20)
    assert not window.contains(9)
    assert window.duration == 10


def test_window_shift():
    assert Window(1, 2).shifted(100) == Window(101, 102)


# ---------------------------------------------------------------------------
# timeline construction
# ---------------------------------------------------------------------------
def test_overlapping_windows_rejected():
    with pytest.raises(ValueError, match="overlap"):
        OpportunityTimeline(100, [Window(0, 50), Window(40, 60)])


def test_window_beyond_period_rejected():
    with pytest.raises(ValueError, match="period"):
        OpportunityTimeline(100, [Window(90, 110)])


def test_nonpositive_period_rejected():
    with pytest.raises(ValueError):
        OpportunityTimeline(0, [])


def test_empty_timeline():
    timeline = OpportunityTimeline(100, [])
    assert timeline.is_empty()
    with pytest.raises(LookupError):
        timeline.first_start_at_or_after(0)


# ---------------------------------------------------------------------------
# queries
# ---------------------------------------------------------------------------
def test_window_at():
    timeline = make_timeline()
    assert timeline.window_at(15) == Window(10, 30)
    assert timeline.window_at(30) is None
    assert timeline.window_at(165) == Window(160, 180)  # next period


def test_first_start_at_or_after_wraps_periods():
    timeline = make_timeline()
    assert timeline.first_start_at_or_after(10) == Window(10, 30)
    assert timeline.first_start_at_or_after(11) == Window(60, 80)
    assert timeline.first_start_at_or_after(81) == Window(110, 130)
    assert timeline.first_start_at_or_after(250) == Window(260, 280)


def test_first_start_after_is_strict():
    timeline = make_timeline()
    assert timeline.first_start_after(10) == Window(60, 80)


def test_negative_time_clamped():
    timeline = make_timeline()
    assert timeline.first_start_at_or_after(-50) == Window(10, 30)


# ---------------------------------------------------------------------------
# completion rules
# ---------------------------------------------------------------------------
def test_aligned_strict_misses_window_starting_now():
    timeline = make_timeline()
    # Arriving exactly at a window start misses it (DL rule).
    assert timeline.completion_aligned_strict(10) == 80
    assert timeline.completion_aligned_strict(9) == 30


def test_aligned_accepts_window_starting_now():
    timeline = make_timeline()
    assert timeline.completion_aligned(10) == 30
    assert timeline.completion_aligned(11) == 80


def test_joining_uses_remaining_room():
    timeline = make_timeline()
    assert timeline.completion_joining(15) == 30       # mid-window
    assert timeline.completion_joining(29) == 30       # 1 tick left
    assert timeline.completion_joining(30) == 80       # just missed
    assert timeline.completion_joining(15, min_duration=20) == 80


def test_joining_min_duration_filters_short_windows():
    timeline = OpportunityTimeline(100, [Window(0, 5), Window(50, 90)])
    assert timeline.completion_joining(0, min_duration=10) == 90


def test_earliest_entry_joining():
    timeline = make_timeline()
    assert timeline.earliest_entry_joining(0) == 10
    assert timeline.earliest_entry_joining(15) == 15
    assert timeline.earliest_entry_joining(29, min_duration=5) == 60


def test_duty_cycle():
    assert make_timeline().duty_cycle() == pytest.approx(0.4)


def test_boundaries():
    assert make_timeline().boundaries() == (10, 30, 60, 80)


# ---------------------------------------------------------------------------
# property tests: the rules' invariants
# ---------------------------------------------------------------------------
windows_strategy = st.lists(
    st.tuples(st.integers(0, 90), st.integers(1, 10)),
    min_size=1, max_size=4,
).map(lambda pairs: sorted((a, a + d) for a, d in pairs))


def _build(pairs):
    cleaned = []
    last_end = 0
    for start, end in pairs:
        start = max(start, last_end)
        if start >= end or end > 100:
            continue
        cleaned.append(Window(start, end))
        last_end = end
    if not cleaned:
        return None
    return OpportunityTimeline(100, cleaned)


@given(pairs=windows_strategy, t=st.integers(0, 500))
@settings(max_examples=300, deadline=None)
def test_completions_are_after_arrival_and_consistent(pairs, t):
    timeline = _build(pairs)
    if timeline is None:
        return
    joining = timeline.completion_joining(t)
    aligned = timeline.completion_aligned(t)
    strict = timeline.completion_aligned_strict(t)
    assert joining > t and aligned > t and strict > t
    # Joining can always do at least as well as slot-aligned, and
    # slot-aligned at least as well as the strict rule.
    assert joining <= aligned <= strict


@given(pairs=windows_strategy, t=st.integers(0, 500))
@settings(max_examples=300, deadline=None)
def test_completion_lands_on_a_window_end(pairs, t):
    timeline = _build(pairs)
    if timeline is None:
        return
    # A window ending exactly at the period boundary aliases to 0 in
    # modular arithmetic.
    ends = {w.end % timeline.period_tc for w in timeline.windows}
    for rule in (timeline.completion_joining,
                 timeline.completion_aligned,
                 timeline.completion_aligned_strict):
        completion = rule(t)
        assert completion % timeline.period_tc in ends


@given(pairs=windows_strategy, t=st.integers(0, 300))
@settings(max_examples=200, deadline=None)
def test_completions_are_monotone_in_arrival(pairs, t):
    timeline = _build(pairs)
    if timeline is None:
        return
    for rule in (timeline.completion_joining,
                 timeline.completion_aligned,
                 timeline.completion_aligned_strict):
        assert rule(t) <= rule(t + 7)


# ---------------------------------------------------------------------------
# periodic instants
# ---------------------------------------------------------------------------
def test_instants_next_at_or_after():
    instants = PeriodicInstants(100, [0, 40])
    assert instants.next_at_or_after(0) == 0
    assert instants.next_at_or_after(1) == 40
    assert instants.next_at_or_after(41) == 100
    assert instants.next_at_or_after(100) == 100
    assert instants.next_after(0) == 40
    assert instants.next_after(40) == 100


def test_instants_deduplicate_and_sort():
    instants = PeriodicInstants(100, [40, 0, 40])
    assert instants.instants == (0, 40)


def test_instants_validation():
    with pytest.raises(ValueError):
        PeriodicInstants(100, [100])
    with pytest.raises(ValueError):
        PeriodicInstants(0, [0])
    with pytest.raises(LookupError):
        PeriodicInstants(100, []).next_at_or_after(0)


@given(t=st.integers(0, 1000))
@settings(max_examples=200, deadline=None)
def test_instants_are_periodic(t):
    instants = PeriodicInstants(100, [5, 55])
    assert instants.next_at_or_after(t + 100) == \
        instants.next_at_or_after(t) + 100


# ---------------------------------------------------------------------------
# WindowIndex (flat integer view used by the slotted engine)
# ---------------------------------------------------------------------------
@given(t=st.integers(-5, 1000))
@settings(max_examples=200, deadline=None)
def test_index_first_ending_after_matches_generator(t):
    timeline = make_timeline()
    index = timeline.index()
    k = index.first_ending_after(t)
    first = next(timeline.windows_from(t))
    assert index.bounds(k) == (first.start, first.end)


@given(k=st.integers(0, 50))
@settings(max_examples=100, deadline=None)
def test_index_bounds_and_duration_are_periodic(k):
    index = make_timeline().index()
    start, end = index.bounds(k)
    start2, end2 = index.bounds(k + index.n_windows)
    assert (start2 - start, end2 - end) == (100, 100)
    assert end - start == index.duration(k)


@given(times=st.lists(st.integers(-5, 1000), min_size=1, max_size=20),
       min_duration=st.integers(1, 20))
@settings(max_examples=200, deadline=None)
def test_index_entries_joining_match_scalar(times, min_duration):
    timeline = make_timeline()
    index = timeline.index()
    entries = index.earliest_entries_joining(np.asarray(times),
                                             min_duration)
    for t, entry in zip(times, entries.tolist()):
        assert entry == timeline.earliest_entry_joining(t, min_duration)


def test_index_entries_joining_unsatisfiable_raises():
    index = make_timeline().index()
    with pytest.raises(LookupError):
        index.earliest_entries_joining(np.asarray([0]), 21)
    with pytest.raises(LookupError):
        make_timeline().earliest_entry_joining(0, 21)


def test_index_rejects_empty_timeline():
    with pytest.raises(ValueError):
        WindowIndex(OpportunityTimeline(100, []))
