"""Unit tests for MAC vocabulary types."""

import pytest

from repro.mac.types import AccessMode, Direction, SymbolRole


def test_direction_opposite():
    assert Direction.DL.opposite is Direction.UL
    assert Direction.UL.opposite is Direction.DL


def test_symbol_role_parsing():
    assert SymbolRole.from_char("D") is SymbolRole.DL
    assert SymbolRole.from_char("u") is SymbolRole.UL
    assert SymbolRole.from_char("F") is SymbolRole.FLEXIBLE
    with pytest.raises(ValueError):
        SymbolRole.from_char("X")


def test_access_mode_values():
    assert AccessMode.GRANT_BASED.value == "grant-based"
    assert AccessMode.GRANT_FREE.value == "grant-free"
