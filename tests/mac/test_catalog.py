"""Unit tests for the named configuration catalogue."""

import pytest

from repro.mac.catalog import (
    fdd,
    from_letters,
    minimal_common_configurations,
    minimal_dm,
    minimal_du,
    minimal_mini_slot,
    minimal_mu,
    testbed_dddu,
)
from repro.phy.timebase import tc_from_ms


def test_minimal_configs_have_half_ms_period():
    for config in minimal_common_configurations():
        assert config.period_tc == tc_from_ms(0.5)


def test_minimal_names():
    assert minimal_du().name == "DU"
    assert minimal_dm().name == "DM"
    assert minimal_mu().name == "MU"


def test_mu_has_mixed_then_ul():
    assert minimal_mu().slot_letters() == ["M", "U"]


def test_testbed_dddu_matches_section7():
    config = testbed_dddu()
    assert config.numerology.mu == 1          # 0.5 ms slots
    assert config.slot_letters() == ["D", "D", "D", "U"]
    assert config.period_tc == tc_from_ms(2)


def test_from_letters_round_trip():
    config = from_letters("DDDU", mu=1)
    assert config.slot_letters() == ["D", "D", "D", "U"]
    config = from_letters("DM", mu=2)
    assert config.slot_letters() == ["D", "M"]


def test_from_letters_rejects_bad_shapes():
    with pytest.raises(ValueError, match="D\\*M\\?U\\*"):
        from_letters("DUD", mu=2)
    with pytest.raises(ValueError, match="D\\*M\\?U\\*"):
        from_letters("DMMU", mu=2)
    with pytest.raises(ValueError):
        from_letters("DX", mu=2)
    with pytest.raises(ValueError):
        from_letters("", mu=2)


def test_from_letters_rejects_disallowed_period():
    # 3 slots at µ=2 → 0.75 ms: not in the TS 38.331 set.
    with pytest.raises(ValueError, match="38.331"):
        from_letters("DDU", mu=2)


def test_mixed_split_validation():
    with pytest.raises(ValueError, match="guard"):
        minimal_dm(mixed_split=(7, 0, 7))
    with pytest.raises(ValueError, match="14"):
        minimal_dm(mixed_split=(4, 2, 9))
    with pytest.raises(ValueError):
        minimal_dm(mixed_split=(0, 6, 8))


def test_mini_slot_and_fdd_defaults():
    assert minimal_mini_slot().numerology.mu == 2
    assert fdd().numerology.mu == 2
