"""Unit tests for numerologies and exact cyclic-prefix accounting."""

import pytest

from repro.phy.numerology import (
    SYMBOLS_PER_SLOT,
    FrequencyRange,
    Numerology,
    slot_starts_in_subframe,
    symbol_lengths_in_subframe,
    symbol_starts_in_subframe,
)
from repro.phy.timebase import TC_PER_SUBFRAME


@pytest.mark.parametrize("mu,scs", [(0, 15), (1, 30), (2, 60),
                                    (3, 120), (4, 240), (5, 480),
                                    (6, 960)])
def test_subcarrier_spacing(mu, scs):
    assert Numerology(mu).scs_khz == scs


@pytest.mark.parametrize("mu", range(7))
def test_slot_count_and_duration(mu):
    numerology = Numerology(mu)
    assert numerology.slots_per_subframe == 2 ** mu
    assert numerology.slots_per_frame == 10 * 2 ** mu
    assert numerology.slot_duration_ms == pytest.approx(1.0 / 2 ** mu)


def test_mu6_slot_is_15_625_us():
    # The paper's §1 mmWave value.
    slot_tc = Numerology(6).slot_duration_tc
    assert slot_tc / 1966.08 == pytest.approx(15.625, rel=1e-9)


def test_invalid_numerology_rejected():
    with pytest.raises(ValueError):
        Numerology(7)
    with pytest.raises(ValueError):
        Numerology(-1)


@pytest.mark.parametrize("mu", range(7))
def test_symbol_lengths_sum_to_exactly_one_subframe(mu):
    assert sum(symbol_lengths_in_subframe(mu)) == TC_PER_SUBFRAME


@pytest.mark.parametrize("mu", range(7))
def test_exactly_two_extended_cp_symbols_per_subframe(mu):
    lengths = symbol_lengths_in_subframe(mu)
    longest = max(lengths)
    extended = [i for i, l in enumerate(lengths) if l == longest]
    assert extended == [0, 7 * 2 ** mu]
    base = Numerology(mu)
    assert longest - min(lengths) == base.cp_extension_tc


@pytest.mark.parametrize("mu", range(7))
def test_symbol_starts_are_cumulative(mu):
    starts = symbol_starts_in_subframe(mu)
    lengths = symbol_lengths_in_subframe(mu)
    assert starts[0] == 0
    for i in range(1, len(starts)):
        assert starts[i] == starts[i - 1] + lengths[i - 1]


@pytest.mark.parametrize("mu", range(7))
def test_half_subframe_boundary_is_exact(mu):
    # Slot starts at the half-subframe must land exactly on 0.5 ms.
    starts = symbol_starts_in_subframe(mu)
    half_symbol = 7 * 2 ** mu
    assert starts[half_symbol] == TC_PER_SUBFRAME // 2


def test_slot_starts_count(mu=2):
    assert len(slot_starts_in_subframe(mu)) == 4
    assert slot_starts_in_subframe(mu)[0] == 0


def test_frequency_range_numerologies_follow_paper():
    assert FrequencyRange.FR1.numerologies == (0, 1, 2)
    assert FrequencyRange.FR2.numerologies == (2, 3, 4, 5, 6)


def test_numerology_2_is_in_both_ranges():
    assert set(Numerology(2).frequency_ranges()) == {
        FrequencyRange.FR1, FrequencyRange.FR2}


def test_str_rendering():
    assert "SCS 30 kHz" in str(Numerology(1))


def test_symbols_per_slot_is_14():
    assert SYMBOLS_PER_SLOT == 14
