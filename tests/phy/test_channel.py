"""Unit tests for the channel models."""

import numpy as np
import pytest

from repro.phy.channel import (
    GilbertElliottChannel,
    IidErasureChannel,
    PerfectChannel,
    propagation_delay_tc,
)
from repro.phy.timebase import tc_from_ms, us_from_tc


def test_propagation_delay_magnitude():
    # 300 m ≈ 1 µs at light speed.
    delay = propagation_delay_tc(300.0)
    assert us_from_tc(delay) == pytest.approx(1.0, rel=0.01)
    assert propagation_delay_tc(0.0) == 0


def test_propagation_rejects_negative_distance():
    with pytest.raises(ValueError):
        propagation_delay_tc(-1.0)


def test_perfect_channel_always_delivers(rng):
    channel = PerfectChannel()
    assert all(channel.delivered(t, rng) for t in range(100))


def test_iid_erasure_rate(rng):
    channel = IidErasureChannel(bler=0.1)
    outcomes = [channel.delivered(0, rng) for _ in range(40_000)]
    assert np.mean(outcomes) == pytest.approx(0.9, abs=0.01)


def test_iid_erasure_bounds():
    with pytest.raises(ValueError):
        IidErasureChannel(1.5)
    assert IidErasureChannel(0.0).bler == 0.0


def test_gilbert_elliott_stationary_fraction(rng):
    channel = GilbertElliottChannel(
        mean_good_tc=tc_from_ms(7), mean_bad_tc=tc_from_ms(3))
    assert channel.stationary_good_fraction == pytest.approx(0.7)
    # Empirical check over a long trajectory.
    step = tc_from_ms(1) // 4
    good = sum(channel.is_good(t * step, rng) for t in range(80_000))
    assert good / 80_000 == pytest.approx(0.7, abs=0.05)


def test_gilbert_elliott_blocked_state_fails(rng):
    channel = GilbertElliottChannel(
        mean_good_tc=1, mean_bad_tc=10 ** 12,
        bler_good=0.0, bler_bad=1.0)
    # Spin the channel into the (enormous) bad state.
    channel._state_good = False
    channel._next_transition = 10 ** 13
    assert not channel.delivered(100, rng)


def test_gilbert_elliott_validation():
    with pytest.raises(ValueError):
        GilbertElliottChannel(mean_good_tc=0, mean_bad_tc=1)
    with pytest.raises(ValueError):
        GilbertElliottChannel(mean_good_tc=1, mean_bad_tc=1,
                              bler_good=2.0)


def test_gilbert_elliott_time_must_advance_consistently(rng):
    channel = GilbertElliottChannel(
        mean_good_tc=tc_from_ms(1), mean_bad_tc=tc_from_ms(1))
    # Queries at increasing times are fine and deterministic per rng.
    states = [channel.is_good(tc_from_ms(i), rng) for i in range(50)]
    assert any(states) and not all(states)
