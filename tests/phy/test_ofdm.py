"""Unit tests for the OFDM carrier model."""

import pytest

from repro.phy.numerology import Numerology
from repro.phy.ofdm import Carrier, fft_size_for, n_rb_for


def test_n_rb_table_spot_checks():
    # TS 38.101-1 table 5.3.2-1 values.
    assert n_rb_for(20, 15) == 106
    assert n_rb_for(20, 30) == 51
    assert n_rb_for(100, 30) == 273
    assert n_rb_for(100, 120) == 66


def test_unknown_combination_raises():
    with pytest.raises(ValueError, match="38.101"):
        n_rb_for(17, 15)


def test_fft_size_covers_subcarriers():
    assert fft_size_for(51) == 768   # 612 subcarriers
    assert fft_size_for(106) == 1536  # 1272 subcarriers
    assert fft_size_for(273) == 4096


def test_fft_size_overflow():
    with pytest.raises(ValueError):
        fft_size_for(400)


def test_testbed_carrier():
    # §7: n78, 20 MHz, 0.5 ms slots (µ=1, SCS 30 kHz).
    carrier = Carrier(Numerology(1), 20)
    assert carrier.n_rb == 51
    assert carrier.fft_size == 768
    assert carrier.sample_rate_hz == 23_040_000
    assert carrier.samples_per_slot() == 11_520


def test_samples_per_symbols():
    carrier = Carrier(Numerology(1), 20)
    assert carrier.samples_per_symbols(14) == carrier.samples_per_slot()
    assert carrier.samples_per_symbols(0) == 0
    assert 0 < carrier.samples_per_symbols(7) < carrier.samples_per_slot()
    with pytest.raises(ValueError):
        carrier.samples_per_symbols(15)


def test_resource_elements_monotone_in_prbs():
    carrier = Carrier(Numerology(1), 20)
    previous = -1
    for n_prb in range(0, carrier.n_rb + 1, 5):
        current = carrier.resource_elements(n_prb, 14)
        assert current > previous or n_prb == 0
        previous = current


def test_resource_elements_account_overhead():
    carrier = Carrier(Numerology(1), 20)
    gross = 10 * 12 * 14
    assert carrier.resource_elements(10, 14) < gross


def test_resource_elements_validates_prbs():
    carrier = Carrier(Numerology(1), 20)
    with pytest.raises(ValueError):
        carrier.resource_elements(carrier.n_rb + 1, 14)


def test_str_rendering():
    text = str(Carrier(Numerology(1), 20))
    assert "51 PRB" in text and "23.04 MS/s" in text
