"""Unit and property tests for frame-structure arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.frame import FrameStructure
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_FRAME, TC_PER_SUBFRAME


@pytest.fixture(params=[0, 1, 2, 3, 6])
def frame(request):
    return FrameStructure(Numerology(request.param))


def test_slot_zero_starts_at_zero(frame):
    assert frame.slot_start(0) == 0


def test_slot_starts_are_monotone(frame):
    starts = [frame.slot_start(i) for i in range(50)]
    assert starts == sorted(starts)
    assert len(set(starts)) == 50


def test_slot_end_equals_next_start(frame):
    for i in range(20):
        assert frame.slot_end(i) == frame.slot_start(i + 1)


def test_slot_index_inverts_slot_start(frame):
    for i in range(40):
        start = frame.slot_start(i)
        assert frame.slot_index(start) == i
        assert frame.slot_index(start + 1) == i
        assert frame.slot_index(frame.slot_end(i) - 1) == i


def test_slot_durations_near_nominal(frame):
    nominal = frame.numerology.slot_duration_tc
    for i in range(16):
        assert abs(frame.slot_duration(i) - nominal) <= 1024  # 16κ


def test_next_slot_start_is_strictly_after(frame):
    for t in (0, 1, 1000, frame.slot_start(3)):
        nxt = frame.next_slot_start(t)
        assert nxt > t
        assert frame.slot_index(nxt) == frame.slot_index(t) + 1


def test_slot_boundary_at_or_after(frame):
    start = frame.slot_start(5)
    assert frame.slot_boundary_at_or_after(start) == start
    assert frame.slot_boundary_at_or_after(start + 1) == \
        frame.slot_start(6)


def test_symbol_starts_tile_the_slot(frame):
    for slot in range(3):
        assert frame.symbol_start(slot, 0) == frame.slot_start(slot)
        for symbol in range(13):
            assert frame.symbol_end(slot, symbol) == \
                frame.symbol_start(slot, symbol + 1)
        assert frame.symbol_end(slot, 13) == frame.slot_end(slot)


def test_symbol_range_validated(frame):
    with pytest.raises(ValueError):
        frame.symbol_start(0, 14)
    with pytest.raises(ValueError):
        frame.symbol_start(0, -1)


def test_address_resolution():
    frame = FrameStructure(Numerology(1))
    addr = frame.address(TC_PER_FRAME + TC_PER_SUBFRAME)
    assert (addr.frame, addr.subframe, addr.slot, addr.symbol) == \
        (1, 1, 0, 0)
    assert "frame 1" in str(addr)


def test_address_rejects_negative():
    frame = FrameStructure(Numerology(0))
    with pytest.raises(ValueError):
        frame.address(-1)
    with pytest.raises(ValueError):
        frame.slot_index(-5)


def test_slot_in_frame():
    frame = FrameStructure(Numerology(2))
    assert frame.slot_in_frame(0) == (0, 0)
    assert frame.slot_in_frame(40) == (1, 0)
    assert frame.slot_in_frame(45) == (1, 5)


@given(t=st.integers(0, 50 * TC_PER_SUBFRAME), mu=st.sampled_from([0, 1, 2, 3]))
@settings(max_examples=200, deadline=None)
def test_slot_index_consistent_with_boundaries(t, mu):
    frame = FrameStructure(Numerology(mu))
    index = frame.slot_index(t)
    assert frame.slot_start(index) <= t < frame.slot_end(index)


@given(t=st.integers(0, 20 * TC_PER_SUBFRAME))
@settings(max_examples=100, deadline=None)
def test_address_matches_slot_index(t):
    frame = FrameStructure(Numerology(2))
    addr = frame.address(t)
    slots_per_frame = frame.numerology.slots_per_frame
    absolute_slot = (addr.frame * slots_per_frame
                     + addr.subframe * frame.numerology.slots_per_subframe
                     + addr.slot)
    assert absolute_slot == frame.slot_index(t)
