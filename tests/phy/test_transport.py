"""Unit and property tests for transport-block sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.transport import (
    MCS_TABLE_64QAM,
    TBS_TABLE,
    mcs,
    prbs_needed,
    transport_block_size,
)


def test_mcs_table_shape():
    assert len(MCS_TABLE_64QAM) == 29
    assert mcs(0).modulation_order == 2
    assert mcs(28).modulation_order == 6
    assert mcs(28).code_rate == pytest.approx(948 / 1024)


def test_mcs_efficiency_monotone_within_modulation():
    # Efficiency rises with the index within each modulation order;
    # tiny dips at the order switches (16/17) are real table behaviour.
    for index in range(28):
        current, nxt = mcs(index), mcs(index + 1)
        if current.modulation_order == nxt.modulation_order:
            assert nxt.efficiency > current.efficiency
        else:
            assert nxt.efficiency > current.efficiency - 0.01


def test_invalid_mcs_rejected():
    with pytest.raises(ValueError):
        mcs(29)
    with pytest.raises(ValueError):
        mcs(-1)


def test_tbs_table_is_sorted_unique():
    assert list(TBS_TABLE) == sorted(set(TBS_TABLE))
    assert TBS_TABLE[0] == 24 and TBS_TABLE[-1] == 3824


def test_small_allocation_returns_table_entry():
    size = transport_block_size(n_re=100, mcs_index=5)
    assert size in TBS_TABLE


def test_zero_re_gives_zero():
    assert transport_block_size(0, 10) == 0


def test_negative_re_rejected():
    with pytest.raises(ValueError):
        transport_block_size(-1, 0)
    with pytest.raises(ValueError):
        transport_block_size(10, 0, n_layers=0)


def test_large_tbs_byte_aligned():
    size = transport_block_size(n_re=8000, mcs_index=27)
    assert size > 3824
    assert (size + 24) % 8 == 0


def test_layers_scale_capacity():
    one = transport_block_size(2000, 16, n_layers=1)
    two = transport_block_size(2000, 16, n_layers=2)
    assert two > one


def test_prbs_needed_small_payload():
    # 32-byte ping fits in very few PRBs at mid MCS.
    n = prbs_needed(payload_bits=32 * 8, re_per_prb=150, mcs_index=16,
                    max_prb=51)
    assert 1 <= n <= 2


def test_prbs_needed_zero_payload():
    assert prbs_needed(0, 150, 16, 51) == 0


def test_prbs_needed_overflow_signalled():
    n = prbs_needed(payload_bits=10 ** 7, re_per_prb=150, mcs_index=0,
                    max_prb=51)
    assert n == 52


@given(n_re=st.integers(1, 20_000), index=st.integers(0, 28))
@settings(max_examples=200, deadline=None)
def test_tbs_roughly_matches_information_capacity(n_re, index):
    scheme = mcs(index)
    size = transport_block_size(n_re, index)
    capacity = n_re * scheme.efficiency
    assert size <= capacity * 1.10 + 32  # quantisation headroom
    if capacity >= 32:
        assert size >= capacity * 0.80 - 32


@given(n_re=st.integers(1, 5_000), index=st.integers(0, 28))
@settings(max_examples=100, deadline=None)
def test_tbs_monotone_in_re(n_re, index):
    assert transport_block_size(n_re + 50, index) >= \
        transport_block_size(n_re, index)
