"""Unit tests for the band catalogue."""

import pytest

from repro.phy.bands import (
    BANDS,
    DuplexMode,
    fdd_bands,
    get_band,
    private_5g_bands,
)
from repro.phy.numerology import FrequencyRange


def test_n78_is_the_testbed_band():
    band = get_band("n78")
    assert band.duplex is DuplexMode.TDD
    assert band.frequency_range is FrequencyRange.FR1
    assert band.supports_private_5g()


def test_unknown_band_raises_with_known_names():
    with pytest.raises(KeyError, match="n78"):
        get_band("n999")


def test_all_fdd_bands_are_sub_2_6_ghz():
    # Paper §2: FDD only below 2.6 GHz in terrestrial 5G.
    for band in fdd_bands():
        assert band.high_ghz <= 2.7  # n7 tops out at 2.69


def test_no_fdd_band_supports_private_5g():
    # Paper §9: private 5G gets TDD-only spectrum.
    private = private_5g_bands()
    assert private
    assert all(b.duplex is DuplexMode.TDD for b in private)


def test_fr2_bands_have_mmwave_numerologies():
    band = get_band("n258")
    assert band.frequency_range is FrequencyRange.FR2
    assert 6 in band.numerologies


def test_fr1_bands_cap_at_mu2():
    assert max(get_band("n78").numerologies) == 2


def test_center_frequency():
    band = get_band("n78")
    assert band.low_ghz < band.center_ghz < band.high_ghz


def test_str_is_informative():
    text = str(get_band("n41"))
    assert "n41" in text and "TDD" in text


def test_catalogue_is_self_consistent():
    for name, band in BANDS.items():
        assert band.name == name
        assert band.low_ghz < band.high_ghz
        band.frequency_range  # must not straddle FR1/FR2
