"""Unit tests for the link-adaptation model."""

import pytest

from repro.phy.link_adaptation import (
    bler_at,
    efficiency_at,
    required_snr_db,
    select_mcs,
    waterfall_snr_db,
)
from repro.phy.transport import mcs


def test_waterfall_positions_ordered_by_efficiency():
    positions = [waterfall_snr_db(i) for i in range(29)]
    # Higher-efficiency MCSs need (weakly) more SNR, with tiny local
    # dips at the modulation-order switches, mirroring the MCS table.
    assert positions[0] < positions[9] < positions[16] < positions[28]


def test_bler_is_waterfall_shaped():
    index = 16
    mid = waterfall_snr_db(index)
    assert bler_at(index, mid) == pytest.approx(0.5)
    assert bler_at(index, mid + 6.0) < 1e-3
    assert bler_at(index, mid - 10.0) == 1.0


def test_bler_monotone_in_snr():
    for snr in range(-5, 30, 5):
        assert bler_at(10, snr) >= bler_at(10, snr + 5)


def test_required_snr_inverts_bler():
    snr = required_snr_db(20, 1e-5)
    assert bler_at(20, snr) == pytest.approx(1e-5, rel=0.01)
    with pytest.raises(ValueError):
        required_snr_db(20, 0.0)


def test_select_mcs_monotone_in_snr():
    selections = [select_mcs(snr) for snr in (-5.0, 5.0, 15.0, 30.0)]
    assert selections == sorted(selections)
    assert selections[-1] == 28


def test_select_mcs_respects_target():
    snr = 12.0
    chosen = select_mcs(snr, target_bler=1e-4)
    assert bler_at(chosen, snr) <= 1e-4
    if chosen < 28:
        assert bler_at(chosen + 1, snr) > 1e-4


def test_tighter_target_costs_efficiency():
    snr = 15.0
    loose = efficiency_at(snr, target_bler=1e-1)
    tight = efficiency_at(snr, target_bler=1e-6)
    assert tight <= loose


def test_cell_edge_falls_back_to_mcs0():
    assert select_mcs(-30.0) == 0


def test_efficiency_matches_table():
    snr = 40.0
    assert efficiency_at(snr) == mcs(28).efficiency
