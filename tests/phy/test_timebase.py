"""Unit and property tests for the 3GPP timebase."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import timebase


def test_fundamental_constants():
    assert timebase.TC_PER_SECOND == 1_966_080_000
    assert timebase.TC_PER_MS == 1_966_080
    assert timebase.KAPPA == 64
    assert timebase.TC_PER_FRAME == 10 * timebase.TC_PER_MS


def test_one_ms_is_exact():
    assert timebase.tc_from_ms(1) == timebase.TC_PER_MS
    assert timebase.ms_from_tc(timebase.TC_PER_MS) == 1.0


def test_slot_durations_are_exact_divisions():
    # 1 ms / 2^µ is an integer Tc count for every numerology.
    for mu in range(7):
        assert timebase.TC_PER_MS % (2 ** mu) == 0


def test_us_round_trip():
    assert timebase.us_from_tc(timebase.tc_from_us(500.0)) == \
        pytest.approx(500.0, abs=1e-3)


def test_ns_conversion():
    # 1 ns ≈ 1.96608 Tc
    assert timebase.tc_from_ns(1000) == 1966
    assert timebase.ns_from_tc(timebase.TC_PER_SECOND) == \
        pytest.approx(1e9)


def test_seconds_conversion():
    assert timebase.tc_from_seconds(2.0) == 2 * timebase.TC_PER_SECOND
    assert timebase.seconds_from_tc(timebase.TC_PER_SECOND) == 1.0


def test_tc_exact_ms_uses_fractions():
    quarter_ms = timebase.TC_PER_MS // 4
    assert timebase.tc_exact_ms(quarter_ms) == Fraction(1, 4)


@given(us=st.floats(0.0, 1e7))
@settings(max_examples=200, deadline=None)
def test_us_round_trip_error_below_one_tick(us):
    tc = timebase.tc_from_us(us)
    back = timebase.us_from_tc(tc)
    # One Tc is ~0.00051 µs; rounding error must stay below one tick.
    assert abs(back - us) <= 1.0 / 1966.08 + 1e-9


@given(tc=st.integers(0, 10 ** 12))
@settings(max_examples=200, deadline=None)
def test_tc_to_us_to_tc_is_identity(tc):
    assert timebase.tc_from_us(timebase.us_from_tc(tc)) == tc
