"""Unit and property tests for the 3GPP timebase."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy import timebase


def test_fundamental_constants():
    assert timebase.TC_PER_SECOND == 1_966_080_000
    assert timebase.TC_PER_MS == 1_966_080
    assert timebase.KAPPA == 64
    assert timebase.TC_PER_FRAME == 10 * timebase.TC_PER_MS


def test_one_ms_is_exact():
    assert timebase.tc_from_ms(1) == timebase.TC_PER_MS
    assert timebase.ms_from_tc(timebase.TC_PER_MS) == 1.0


def test_slot_durations_are_exact_divisions():
    # 1 ms / 2^µ is an integer Tc count for every numerology.
    for mu in range(7):
        assert timebase.TC_PER_MS % (2 ** mu) == 0


def test_us_round_trip():
    assert timebase.us_from_tc(timebase.tc_from_us(500.0)) == \
        pytest.approx(500.0, abs=1e-3)


def test_ns_conversion():
    # 1 ns ≈ 1.96608 Tc
    assert timebase.tc_from_ns(1000) == 1966
    assert timebase.ns_from_tc(timebase.TC_PER_SECOND) == \
        pytest.approx(1e9)


def test_seconds_conversion():
    assert timebase.tc_from_seconds(2.0) == 2 * timebase.TC_PER_SECOND
    assert timebase.seconds_from_tc(timebase.TC_PER_SECOND) == 1.0


def test_tc_exact_ms_uses_fractions():
    quarter_ms = timebase.TC_PER_MS // 4
    assert timebase.tc_exact_ms(quarter_ms) == Fraction(1, 4)


def test_tc_from_ms_round_trips_through_tc_exact_ms():
    # Integral and dyadic millisecond values are exact in Tc, so the
    # round trip through the Fraction view must be the identity.
    for ms in (1, 2, 5, 10, 0.5, 0.25, 0.125):
        assert timebase.tc_exact_ms(timebase.tc_from_ms(ms)) == \
            Fraction(str(ms))


def test_tc_from_us_round_trips_through_tc_exact_ms():
    # 1000 µs = 1 ms exactly; tc_exact_ms is a Fraction, not a float.
    tc = timebase.tc_from_us(1000.0)
    exact = timebase.tc_exact_ms(tc)
    assert isinstance(exact, Fraction)
    assert exact == 1


def test_tc_from_ns_round_trips_through_tc_exact_ms():
    tc = timebase.tc_from_ns(1_000_000)  # 1 ms in ns
    assert timebase.tc_exact_ms(tc) == 1


def test_tc_exact_ms_is_exact_where_floats_are_not():
    # One Tc is 1/1966080 ms — a denominator no binary float carries.
    assert timebase.tc_exact_ms(1) == Fraction(1, 1_966_080)
    third_ms = timebase.TC_PER_MS // 3 * 3  # exactly divisible
    assert timebase.tc_exact_ms(third_ms) * 3 == 3  # no tolerance games


def test_us_from_ms_scales_exactly():
    assert timebase.us_from_ms(0.5) == 500.0
    assert timebase.us_from_ms(20.0) == 20_000.0
    assert timebase.us_from_ms(0.0) == 0.0


@pytest.mark.parametrize("converter", [
    timebase.tc_from_seconds,
    timebase.tc_from_ms,
    timebase.tc_from_us,
    timebase.tc_from_ns,
    timebase.seconds_from_tc,
    timebase.ms_from_tc,
    timebase.us_from_tc,
    timebase.ns_from_tc,
    timebase.us_from_ms,
    timebase.tc_exact_ms,
])
def test_converters_reject_negative_durations(converter):
    with pytest.raises(ValueError, match=">= 0"):
        converter(-1)


@given(us=st.floats(0.0, 1e7))
@settings(max_examples=200, deadline=None)
def test_us_round_trip_error_below_one_tick(us):
    tc = timebase.tc_from_us(us)
    back = timebase.us_from_tc(tc)
    # One Tc is ~0.00051 µs; rounding error must stay below one tick.
    assert abs(back - us) <= 1.0 / 1966.08 + 1e-9


@given(tc=st.integers(0, 10 ** 12))
@settings(max_examples=200, deadline=None)
def test_tc_to_us_to_tc_is_identity(tc):
    assert timebase.tc_from_us(timebase.us_from_tc(tc)) == tc
