"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.phy.timebase import tc_from_ms, tc_from_us
from repro.traffic.generators import periodic, poisson, uniform_in_horizon


def test_uniform_count_and_range(rng):
    horizon = tc_from_ms(10)
    arrivals = uniform_in_horizon(500, horizon, rng, start_tc=100)
    assert len(arrivals) == 500
    assert arrivals == sorted(arrivals)
    assert min(arrivals) >= 100
    assert max(arrivals) < 100 + horizon


def test_uniform_covers_the_pattern(rng):
    # §7's workload: phases must spread across the whole horizon.
    horizon = tc_from_ms(2)
    arrivals = uniform_in_horizon(2_000, horizon, rng)
    phases = np.array(arrivals) / horizon
    counts, _ = np.histogram(phases, bins=4, range=(0, 1))
    assert counts.min() > 350  # roughly even quarters


def test_uniform_validation(rng):
    with pytest.raises(ValueError):
        uniform_in_horizon(0, 100, rng)
    with pytest.raises(ValueError):
        uniform_in_horizon(10, 0, rng)


def test_periodic_spacing():
    arrivals = periodic(5, tc_from_us(1000), start_tc=50)
    assert arrivals == [50 + i * tc_from_us(1000) for i in range(5)]


def test_periodic_jitter_requires_rng():
    with pytest.raises(ValueError):
        periodic(5, 100, jitter_tc=10)


def test_periodic_jitter_bounded(rng):
    period = tc_from_us(1000)
    arrivals = periodic(100, period, jitter_tc=50, rng=rng)
    for index, arrival in enumerate(arrivals):
        assert abs(arrival - index * period) <= 50


def test_periodic_validation():
    with pytest.raises(ValueError):
        periodic(0, 100)


def test_poisson_rate(rng):
    horizon = tc_from_ms(1_000)
    arrivals = poisson(1_000.0, horizon, rng)
    assert len(arrivals) == pytest.approx(1_000, rel=0.15)
    assert all(0 <= a < horizon for a in arrivals)


def test_poisson_validation(rng):
    with pytest.raises(ValueError):
        poisson(0.0, 100, rng)
