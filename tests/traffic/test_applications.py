"""Unit tests for application workload presets."""

import pytest

from repro.phy.timebase import tc_from_ms, tc_from_us
from repro.traffic.applications import (
    ALL_WORKLOADS,
    INDUSTRIAL_AUTOMATION,
    TESTBED_PING,
    VR_AR,
    Workload,
)
from repro.core.feasibility import Requirement


def test_presets_are_consistent():
    for workload in ALL_WORKLOADS:
        assert workload.payload_bytes > 0
        assert workload.requirement.one_way_budget_tc > 0


def test_industrial_arrivals_are_periodic(rng):
    arrivals = INDUSTRIAL_AUTOMATION.arrivals(10, tc_from_ms(100), rng)
    gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
    assert gaps == {tc_from_us(1000)}


def test_testbed_ping_is_uniform(rng):
    arrivals = TESTBED_PING.arrivals(100, tc_from_ms(50), rng)
    assert len(arrivals) == 100
    assert max(arrivals) < tc_from_ms(50)


def test_vr_ar_is_poisson(rng):
    arrivals = VR_AR.arrivals(0, tc_from_ms(1_000), rng)
    assert len(arrivals) == pytest.approx(2_000, rel=0.2)
    capped = VR_AR.arrivals(10, tc_from_ms(1_000), rng)
    assert len(capped) == 10


def test_unknown_arrival_kind_rejected(rng):
    workload = Workload("x", 10, Requirement("r", 100, 0.9), "fractal")
    with pytest.raises(ValueError):
        workload.arrivals(10, 1000, rng)
