"""Unit tests for traffic phase alignment."""

import pytest

from repro.core.latency_model import LatencyModel
from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms, tc_from_us
from repro.traffic.generators import periodic
from repro.traffic.shaping import (
    align_periodic,
    optimal_phase,
    phase_is_stable,
)


def test_phase_stability_detection():
    scheme = minimal_dm()
    period = scheme.period_tc
    stable = [10, 10 + period, 10 + 3 * period]
    assert phase_is_stable(stable, scheme)
    assert not phase_is_stable([0, period // 3], scheme)
    with pytest.raises(ValueError):
        phase_is_stable([], scheme)


def test_alignment_preserves_spacing_and_order():
    scheme = minimal_dm()
    arrivals = periodic(10, 2 * scheme.period_tc)
    aligned = align_periodic(arrivals, scheme, Direction.UL)
    gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
    aligned_gaps = [b - a for a, b in zip(aligned, aligned[1:])]
    assert gaps == aligned_gaps
    assert all(b >= a for a, b in zip(arrivals, aligned))


def test_aligned_phase_targets_the_window_start():
    scheme = minimal_dm()
    arrivals = periodic(5, scheme.period_tc)
    aligned = align_periodic(arrivals, scheme, Direction.UL,
                             headroom_tc=0)
    ul_start = scheme.ul_timeline().windows[0].start
    assert aligned[0] % scheme.period_tc == ul_start % scheme.period_tc
    # Robustness, not the knife-edge: the analytic best phase (just
    # before the window closes) is deliberately NOT the target.
    model = LatencyModel(scheme)
    best = model.extremes(Direction.UL,
                          AccessMode.GRANT_FREE).best_arrival_tc
    assert aligned[0] % scheme.period_tc != best % scheme.period_tc


def test_unstable_arrivals_rejected():
    scheme = minimal_dm()
    with pytest.raises(ValueError, match="phase-stable"):
        align_periodic([0, scheme.period_tc // 2], scheme, Direction.UL)


def test_headroom_validation():
    with pytest.raises(ValueError):
        optimal_phase(minimal_dm(), Direction.UL, headroom_tc=-1)


def test_alignment_cuts_des_latency_dramatically():
    """The industrial-automation effect: aligned isochronous traffic
    pays near-best-case latency instead of the fixed worst phase."""
    scheme = testbed_dddu()
    config = dict(access=AccessMode.GRANT_FREE,
                  ue_processing_scale=0.01,
                  gnb_processing_scale=0.01)
    arrivals = periodic(200, scheme.period_tc)  # worst phase: 0

    baseline = RanSystem(scheme, RanConfig(seed=61, **config))
    baseline_mean = baseline.run_uplink(arrivals).summary().mean_us

    aligned = align_periodic(arrivals, scheme, Direction.UL,
                             headroom_tc=tc_from_us(120.0))
    system = RanSystem(scheme, RanConfig(seed=61, **config))
    aligned_mean = system.run_uplink(aligned).summary().mean_us

    assert aligned_mean < baseline_mean / 2
