"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    """A deterministic registry, fresh per test."""
    return RngRegistry(seed=42)
