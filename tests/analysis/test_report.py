"""Unit tests for the paper-style renderers."""

import pytest

from repro.analysis.report import (
    render_layer_table,
    render_table,
    render_tdd_configuration,
    render_worst_case_bars,
)
from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.phy.timebase import tc_from_ms


def test_tdd_rendering_shows_symbols():
    text = render_tdd_configuration(minimal_dm())
    assert "slot 0 [D]" in text
    assert "slot 1 [M]" in text
    assert "DDDD--UUUUUUUU" in text  # the 4/2/8 mixed split


def test_tdd_rendering_dddu():
    text = render_tdd_configuration(testbed_dddu())
    assert text.count("DDDDDDDDDDDDDD") == 3
    assert text.count("UUUUUUUUUUUUUU") == 1


def test_generic_table():
    text = render_table(("a", "bb"), [(1, 2), (30, 40)], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert "30" in lines[-1]


def test_generic_table_validates_row_width():
    with pytest.raises(ValueError):
        render_table(("a",), [(1, 2)])


def test_layer_table_side_by_side():
    measured = {"MAC": (54.0, 15.0)}
    paper = {"MAC": (55.21, 16.31)}
    text = render_layer_table(measured, paper)
    assert "54.00" in text and "55.21" in text


def test_worst_case_bars_mark_budget():
    entries = {"Grant-free UL": tc_from_ms(0.5),
               "Grant-based UL": tc_from_ms(1.0)}
    text = render_worst_case_bars(entries, budget_tc=tc_from_ms(0.5))
    assert "|" in text and "#" in text
    assert "budget 500" in text
