"""Unit and property tests for histogram/CDF utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import cdf, histogram


def test_histogram_probabilities_sum_to_one():
    hist = histogram([0.5, 1.5, 1.6, 2.5], bin_width=1.0, low=0.0,
                     high=3.0)
    assert sum(hist.probabilities) == pytest.approx(1.0)
    assert hist.probabilities[1] == pytest.approx(0.5)


def test_histogram_bin_centers():
    hist = histogram([0.5], bin_width=1.0, low=0.0, high=2.0)
    assert hist.bin_centers == (0.5, 1.5)
    assert hist.mode_bin() == 0.5


def test_histogram_render():
    hist = histogram([1.0, 1.0, 2.0], bin_width=1.0, low=0.0, high=3.0)
    text = hist.render(label="test")
    assert "test" in text and "█" in text


def test_histogram_validation():
    with pytest.raises(ValueError):
        histogram([], 1.0)
    with pytest.raises(ValueError):
        histogram([1.0], 0.0)


def test_cdf_basic():
    empirical = cdf([3.0, 1.0, 2.0])
    assert empirical.values == (1.0, 2.0, 3.0)
    assert empirical.cumulative == (pytest.approx(1 / 3),
                                    pytest.approx(2 / 3),
                                    pytest.approx(1.0))
    assert empirical.probability_at_or_below(2.0) == pytest.approx(2 / 3)
    assert empirical.quantile(0.5) == 2.0


def test_cdf_validation():
    with pytest.raises(ValueError):
        cdf([])
    with pytest.raises(ValueError):
        cdf([1.0]).quantile(1.5)


@given(samples=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_histogram_mass_conserved(samples):
    hist = histogram(samples, bin_width=5.0, low=0.0, high=105.0)
    assert sum(hist.probabilities) == pytest.approx(1.0)


@given(samples=st.lists(st.floats(0.0, 100.0), min_size=2, max_size=50))
@settings(max_examples=100, deadline=None)
def test_cdf_is_monotone(samples):
    empirical = cdf(samples)
    assert list(empirical.cumulative) == sorted(empirical.cumulative)
    assert empirical.cumulative[-1] == pytest.approx(1.0)
