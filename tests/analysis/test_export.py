"""Unit tests for CSV export."""

import csv

import pytest

from repro.analysis.export import (
    export_histogram,
    export_probe,
    export_series,
)
from repro.analysis.stats import histogram
from repro.mac.types import Direction
from repro.net.probes import LatencyProbe
from repro.phy.timebase import tc_from_us
from repro.stack.packets import LatencySource, Packet, PacketKind


def make_probe(n=3):
    probe = LatencyProbe()
    for i in range(n):
        packet = Packet(PacketKind.DATA, Direction.DL, 32, created_tc=0)
        packet.charge(LatencySource.PROTOCOL, tc_from_us(100.0 * (i + 1)))
        packet.mark_delivered(tc_from_us(100.0 * (i + 1)))
        probe.record(packet)
    return probe


def read_csv(path):
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.reader(handle))


def test_export_probe_rows(tmp_path):
    probe = make_probe(3)
    path = tmp_path / "probe.csv"
    assert export_probe(probe, path) == 3
    rows = read_csv(path)
    assert rows[0][0] == "packet_id"
    assert len(rows) == 4
    latency = float(rows[1][6])
    assert latency == pytest.approx(100.0, abs=0.01)
    protocol = float(rows[1][7])
    assert protocol == pytest.approx(100.0, abs=0.01)


def test_export_probe_decomposition_columns(tmp_path):
    path = tmp_path / "probe.csv"
    export_probe(make_probe(1), path)
    header = read_csv(path)[0]
    for column in ("protocol_us", "processing_us", "radio_us"):
        assert column in header


def test_export_histogram(tmp_path):
    hist = histogram([0.5, 1.5, 1.6], bin_width=1.0, low=0.0, high=2.0)
    path = tmp_path / "hist.csv"
    assert export_histogram(hist, path, x_label="latency_ms") == 2
    rows = read_csv(path)
    assert rows[0] == ["latency_ms", "probability"]
    assert float(rows[2][1]) == pytest.approx(2 / 3, rel=1e-6)


def test_export_series_long_form(tmp_path):
    series = {2000: [150.0, 151.0], 4000: [160.0]}
    path = tmp_path / "series.csv"
    assert export_series(series, path, "samples", "latency_us") == 3
    rows = read_csv(path)
    assert rows[0] == ["samples", "latency_us"]
    assert rows[1] == ["2000", "150"]
