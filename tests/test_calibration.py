"""Tests for the calibration constants against the paper's numbers."""

import pytest

from repro import calibration


def test_table2_rows_present():
    expected = {"SDAP", "PDCP", "RLC", "MAC", "PHY"}
    assert set(calibration.GNB_LAYER_STATS) == expected


def test_table2_values_are_the_papers():
    assert calibration.GNB_LAYER_STATS["MAC"] == (55.21, 16.31)
    assert calibration.GNB_LAYER_STATS["PHY"] == (41.55, 10.83)
    assert calibration.PAPER_RLC_QUEUE_STATS == (484.20, 89.46)


def test_gnb_layer_delays_scaling(rng):
    base = calibration.gnb_layer_delays()
    scaled = calibration.gnb_layer_delays(scale=0.5)
    assert scaled["MAC"].mean_us == pytest.approx(
        base["MAC"].mean_us / 2)


def test_ue_tx_slower_than_rx():
    # §7: the modem's transmit path dominates.
    assert calibration.UE_TX_PROCESSING_SCALE > \
        calibration.UE_RX_PROCESSING_SCALE > 1.0


def test_ue_delay_factories(rng):
    tx = calibration.ue_tx_layer_delays()
    rx = calibration.ue_rx_layer_delays()
    assert tx["MAC"].mean_us > rx["MAC"].mean_us
    assert "APP" in tx and "APP" in rx


def test_interface_params_cover_fig5_buses():
    assert {"usb2", "usb3"} <= set(calibration.INTERFACE_PARAMS)
    usb2 = calibration.INTERFACE_PARAMS["usb2"]
    usb3 = calibration.INTERFACE_PARAMS["usb3"]
    assert usb2[1] > usb3[1]  # per-sample cost


def test_interface_spike_lookup(rng):
    probability, sampler = calibration.interface_spike("usb3")
    assert 0.0 < probability < 1.0
    assert sampler.sample(rng) >= 0.0


def test_rh_latency_is_the_papers_500us():
    assert calibration.TESTBED_RH_LATENCY_US == 500.0


def test_jitter_regimes_ordered():
    assert calibration.OS_JITTER_GPOS["spike_probability"] > \
        calibration.OS_JITTER_RT_KERNEL["spike_probability"]
    assert calibration.OS_JITTER_GPOS["spike_mean_us"] > \
        calibration.OS_JITTER_RT_KERNEL["spike_mean_us"]
