"""Smoke tests: the example scripts run end to end.

Each example is executed in-process (import + ``main()``) with stdout
captured; the assertions check the headline strings a reader relies on.
The slowest studies are exercised by their benchmark twins instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}",
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Table 1" in out
    assert "✓" in out and "✗" in out
    assert "grant-free" in out


def test_ping_journey(capsys):
    out = run_example("ping_journey", capsys)
    assert "RTT" in out
    assert "grant-free UL data tx" in out
    assert "RLC queue" in out


def test_design_space_exploration(capsys):
    out = run_example("design_space_exploration", capsys)
    assert "µ=2" in out
    assert "Bluetooth" in out
    assert "bottleneck" in out


@pytest.mark.slow
def test_industrial_automation(capsys):
    out = run_example("industrial_automation", capsys)
    assert "MET" in out
    assert "VIOLATED" in out


def test_every_example_has_main_and_docstring():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text(encoding="utf-8")
        assert '"""' in source.split("\n", 2)[2][:500] or \
            source.lstrip().startswith(('#!/usr/bin/env python3\n"""',
                                        '"""')), path.name
        assert "def main()" in source, path.name
        assert "__main__" in source, path.name
