"""CLI wiring: ``urllc5g lint``/``analyze``/``distcheck``/``check``."""

import json
from pathlib import Path

from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
CROSSMOD = Path(__file__).parent / "fixtures_analyze" / "crossmod"
REPO_ROOT = Path(__file__).resolve().parents[2]


def test_lint_src_is_clean_and_exits_zero(capsys):
    code = main(["lint", str(REPO_ROOT / "src"),
                 "--config", str(REPO_ROOT / "pyproject.toml")])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 error(s)" in out


def test_lint_fixture_violations_exit_nonzero(capsys):
    code = main(["lint", str(FIXTURES), "--no-config"])
    out = capsys.readouterr().out
    assert code == 1
    assert "no-wall-clock" in out
    assert "rng-discipline" in out


def test_lint_json_format(capsys):
    code = main(["lint", str(FIXTURES / "bad_exports.py"),
                 "--no-config", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["errors"] == 1
    assert payload["violations"][0]["rule"] == "public-api-exports"


def test_lint_select_narrows_rules(capsys):
    code = main(["lint", str(FIXTURES), "--no-config",
                 "--select", "no-wall-clock"])
    out = capsys.readouterr().out
    assert code == 1
    assert "rng-discipline" not in out


def test_lint_ignore_disables_rule(capsys):
    code = main(["lint", str(FIXTURES / "bad_exports.py"), "--no-config",
                 "--ignore", "public-api-exports"])
    out = capsys.readouterr().out
    assert code == 0, out


def test_lint_sarif_format(capsys):
    code = main(["lint", str(FIXTURES / "bad_exports.py"),
                 "--no-config", "--format", "sarif"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    assert document["version"] == "2.1.0"
    assert document["runs"][0]["tool"]["driver"]["name"] == "urllc5g-lint"


def test_analyze_src_is_clean_and_exits_zero(capsys):
    code = main(["analyze", str(REPO_ROOT / "src"), "--no-cache",
                 "--config", str(REPO_ROOT / "pyproject.toml")])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "0 finding(s)" in out


def test_analyze_fixture_violations_exit_nonzero(capsys):
    code = main(["analyze", str(CROSSMOD), "--no-config", "--no-cache"])
    out = capsys.readouterr().out
    assert code == 1
    assert "cross-unit-arithmetic" in out
    assert "transitive-wall-clock" in out


def test_analyze_sarif_format(capsys):
    code = main(["analyze", str(CROSSMOD), "--no-config", "--no-cache",
                 "--format", "sarif"])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    driver = document["runs"][0]["tool"]["driver"]
    assert driver["name"] == "urllc5g-analyze"
    assert document["runs"][0]["results"]


def test_analyze_write_then_use_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = main(["analyze", str(CROSSMOD), "--no-config", "--no-cache",
                 "--write-baseline", str(baseline)])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    code = main(["analyze", str(CROSSMOD), "--no-config", "--no-cache",
                 "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "baselined" in out


def test_analyze_missing_path_is_an_error(capsys):
    code = main(["analyze", "no/such/dir"])
    assert code == 2
    assert "no such path" in capsys.readouterr().err


def test_distcheck_src_certifies_and_writes_manifest(tmp_path, capsys):
    manifest = tmp_path / "manifest.json"
    code = main(["distcheck", str(REPO_ROOT / "src"),
                 "--config", str(REPO_ROOT / "pyproject.toml"),
                 "--manifest", str(manifest)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "scenario certification" in out
    payload = json.loads(manifest.read_text(encoding="utf-8"))
    assert payload["tool"] == "urllc5g-distcheck"
    assert payload["scenarios"]["chaos-selftest"]["status"] == "refused"
    assert all(entry["status"] != "failed"
               for entry in payload["scenarios"].values())


def test_distcheck_host_stateful_scenario_exits_one(tmp_path, capsys):
    # The CI regression contract: a scenario reaching undeclared host
    # state must fail certification with exit code 1.
    (tmp_path / "probe.py").write_text(
        "import os\n"
        "\n"
        "from repro.runner.scenarios import scenario\n"
        "\n"
        "\n"
        '@scenario("env-probe")\n'
        "def env_probe(params, seed):\n"
        '    return {"tag": os.environ.get("EXPERIMENT_TAG")}\n',
        encoding="utf-8")
    code = main(["distcheck", str(tmp_path), "--no-config",
                 "--no-cache", "--no-manifest"])
    out = capsys.readouterr().out
    assert code == 1
    assert "dist-host-state" in out
    assert "failed" in out


def test_distcheck_write_then_use_baseline(tmp_path, capsys):
    (tmp_path / "state.py").write_text(
        "from repro.runner.scenarios import scenario\n"
        "\n"
        "_SEEN = []\n"
        "\n"
        "\n"
        '@scenario("hoarder")\n'
        "def hoarder(params, seed):\n"
        "    _SEEN.append(seed)\n"
        "    return {\"count\": len(_SEEN)}\n",
        encoding="utf-8")
    baseline = tmp_path / "baseline.json"
    code = main(["distcheck", str(tmp_path), "--no-config", "--no-cache",
                 "--write-baseline", str(baseline)])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    code = main(["distcheck", str(tmp_path), "--no-config", "--no-cache",
                 "--no-manifest", "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "baselined-findings" in out


def test_sarif_metadata_is_unified_across_all_verbs(capsys):
    drivers = {}
    for verb in ("lint", "analyze", "detsan", "distcheck"):
        argv = [verb, str(CROSSMOD), "--no-config", "--format", "sarif"]
        if verb != "lint":
            argv.append("--no-cache")
        if verb == "distcheck":
            argv.append("--no-manifest")
        main(argv)
        document = json.loads(capsys.readouterr().out)
        drivers[verb] = document["runs"][0]["tool"]["driver"]
    # One tool family: urllc5g-<verb>, one shared version, a docs link
    # and an indexed rule table in every driver.
    for verb, driver in drivers.items():
        assert driver["name"] == f"urllc5g-{verb}", verb
        assert driver["informationUri"], verb
        assert driver["rules"], verb
    assert {driver["version"] for driver in drivers.values()} == \
        {"1.0.0"}


def test_check_all_aggregates_the_four_gates(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code = main(["check", "--all"])
    out = capsys.readouterr().out
    assert code == 0, out
    for verb in ("lint", "analyze", "detsan", "distcheck"):
        assert verb in out
    assert "FAIL" not in out
    assert "distcheck scenarios:" in out


def test_check_determinism_passes(capsys):
    code = main(["check", "--determinism", "--seed", "3",
                 "--packets", "8"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "PASS" in out


def test_check_without_sanitizer_flag(capsys):
    code = main(["check"])
    assert code == 2
    assert "--determinism" in capsys.readouterr().out
