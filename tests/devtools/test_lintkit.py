"""The lint framework: rules, suppressions, config, reporters."""

import json
from pathlib import Path

import pytest

from repro.devtools.lintkit import (
    SYNTAX_ERROR_RULE_ID,
    LintConfig,
    Severity,
    lint_paths,
    lint_source,
    load_config,
    registered_rules,
    render_json,
    render_sarif,
    render_text,
)

FIXTURES = Path(__file__).parent / "fixtures"

EXPECTED_RULES = {
    "no-wall-clock",
    "rng-discipline",
    "unit-suffix-mixing",
    "no-float-tick-equality",
    "unordered-iteration-before-schedule",
    "public-api-exports",
    "fault-streams-named",
}


def rules():
    return [cls() for cls in registered_rules().values()]


def rule_ids_in(source: str, path: str = "mod.py") -> set[str]:
    violations, _ = lint_source(source, path, rules())
    return {v.rule_id for v in violations}


def test_all_domain_rules_are_registered():
    assert EXPECTED_RULES <= set(registered_rules())


# ----------------------------------------------------------------------
# the fixture files each trip exactly their intended rule
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fixture, expected_rule, expected_count", [
    ("bad_wall_clock.py", "no-wall-clock", 3),
    ("bad_rng.py", "rng-discipline", 5),
    ("bad_units.py", "unit-suffix-mixing", 2),
    ("bad_float_equality.py", "no-float-tick-equality", 2),
    ("bad_iteration.py", "unordered-iteration-before-schedule", 2),
    ("bad_exports.py", "public-api-exports", 1),
    ("bad_fault_stream_names.py", "fault-streams-named", 3),
])
def test_fixture_caught_by_correct_rule(fixture, expected_rule,
                                        expected_count):
    source = (FIXTURES / fixture).read_text(encoding="utf-8")
    violations, suppressed = lint_source(source, fixture, rules())
    assert suppressed == 0
    by_rule = {v.rule_id for v in violations}
    assert by_rule == {expected_rule}, (
        f"{fixture}: expected only {expected_rule}, got {sorted(by_rule)}")
    assert len(violations) == expected_count


def test_fixture_directory_linted_as_a_tree():
    report = lint_paths([FIXTURES])
    assert report.files_checked == 8
    assert {v.rule_id for v in report.violations} == (
        EXPECTED_RULES | {SYNTAX_ERROR_RULE_ID})
    assert report.exit_code == 1


# ----------------------------------------------------------------------
# unparseable files are findings, not crashes
# ----------------------------------------------------------------------
def test_syntax_error_reported_as_violation_not_traceback():
    report = lint_paths([FIXTURES / "bad_syntax.py"])
    assert report.exit_code == 1
    assert len(report.violations) == 1
    violation = report.violations[0]
    assert violation.rule_id == SYNTAX_ERROR_RULE_ID
    assert violation.severity == Severity.ERROR
    assert violation.line == 3  # points at the malformed def
    assert "could not parse" in violation.message


def test_lint_continues_past_a_broken_file(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n",
                                        encoding="utf-8")
    (tmp_path / "ok.py").write_text("__all__ = []\nimport random\n",
                                    encoding="utf-8")
    report = lint_paths([tmp_path])
    assert report.files_checked == 2
    assert {v.rule_id for v in report.violations} == {
        SYNTAX_ERROR_RULE_ID, "rng-discipline"}


def test_null_bytes_reported_as_syntax_error(tmp_path):
    (tmp_path / "nul.py").write_text("x = 1\x00\n", encoding="utf-8")
    report = lint_paths([tmp_path])
    assert [v.rule_id for v in report.violations] == [
        SYNTAX_ERROR_RULE_ID]


# ----------------------------------------------------------------------
# Severity is an ordered enum
# ----------------------------------------------------------------------
def test_severity_orders_by_rank_not_lexicographically():
    # Alphabetically "error" < "note"; by severity it is the maximum.
    assert Severity.NOTE < Severity.WARNING < Severity.ERROR
    assert Severity.ERROR > Severity.NOTE
    assert max(Severity) is Severity.ERROR
    ordered = sorted([Severity.ERROR, Severity.NOTE, Severity.WARNING])
    assert ordered == [Severity.NOTE, Severity.WARNING, Severity.ERROR]


def test_severity_compares_against_plain_strings():
    # Config files hold plain strings; ranking must still apply.
    assert Severity.ERROR >= "warning"
    assert Severity.NOTE < "warning"
    assert Severity.WARNING == "warning"
    assert Severity("error") is Severity.ERROR


def test_severity_renders_as_its_bare_value():
    assert str(Severity.ERROR) == "error"
    assert f"{Severity.WARNING}" == "warning"
    assert json.dumps({"severity": Severity.NOTE}) == (
        '{"severity": "note"}')


# ----------------------------------------------------------------------
# clean code stays clean
# ----------------------------------------------------------------------
def test_clean_simulation_code_passes():
    source = '''"""A well-behaved component."""
import numpy as np

__all__ = ["Component"]


class Component:
    def __init__(self, sim, rng: np.random.Generator):
        self.sim = sim
        self.rng = rng

    def fire(self, delay_us: float) -> None:
        from repro.phy.timebase import tc_from_us
        self.sim.call_in(tc_from_us(delay_us), self._on_fire)

    def _on_fire(self) -> None:
        pass
'''
    assert rule_ids_in(source) == set()


def test_conversion_calls_reconcile_units():
    source = ('__all__ = []\n'
              'def f(slot_tc, margin_us, tc_from_us):\n'
              '    return slot_tc + tc_from_us(margin_us)\n')
    assert rule_ids_in(source) == set()


def test_sorted_set_iteration_is_fine():
    source = ('__all__ = []\n'
              'def f(sim, ues):\n'
              '    for ue in sorted(set(ues)):\n'
              '        sim.schedule(0, ue)\n')
    assert rule_ids_in(source) == set()


def test_rng_parameter_and_closure_are_fine():
    source = ('__all__ = []\n'
              'def outer(rng):\n'
              '    def inner():\n'
              '        return rng.normal()\n'
              '    return inner\n')
    assert rule_ids_in(source) == set()


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_inline_pragma_suppresses_one_line():
    source = ('__all__ = []\n'
              'import time\n'
              'def f():\n'
              '    return time.time()  # lint: disable=no-wall-clock\n')
    violations, suppressed = lint_source(source, "mod.py", rules())
    assert violations == []
    assert suppressed == 1


def test_file_pragma_suppresses_whole_file():
    source = ('# lint: disable-file=no-wall-clock\n'
              '__all__ = []\n'
              'import time\n'
              'def f():\n'
              '    return time.time()\n')
    violations, _ = lint_source(source, "mod.py", rules())
    assert violations == []


def test_pragma_only_silences_the_named_rule():
    source = ('__all__ = []\n'
              'import random  # lint: disable=no-wall-clock\n')
    violations, _ = lint_source(source, "mod.py", rules())
    assert {v.rule_id for v in violations} == {"rng-discipline"}


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
def test_select_and_ignore():
    config = LintConfig(select=("no-wall-clock", "rng-discipline"),
                        ignore=("rng-discipline",))
    active = {rule.rule_id for rule in config.active_rules()}
    assert active == {"no-wall-clock"}


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="unknown rule"):
        LintConfig(select=("no-such-rule",)).active_rules()


def test_per_path_baseline(tmp_path):
    bad = tmp_path / "generators.py"
    bad.write_text('__all__ = []\nimport random\n', encoding="utf-8")
    strict = lint_paths([tmp_path])
    assert strict.exit_code == 1
    baselined = lint_paths(
        [tmp_path],
        LintConfig(per_path={"generators.py": ("rng-discipline",)}))
    assert baselined.exit_code == 0


def test_exclude_glob(tmp_path):
    bad = tmp_path / "vendored.py"
    bad.write_text("import random\n", encoding="utf-8")
    report = lint_paths([tmp_path], LintConfig(exclude=("vendored.py",)))
    assert report.files_checked == 0


def test_severity_override_downgrades_to_warning(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text("import random\n__all__ = []\n", encoding="utf-8")
    config = LintConfig(
        severity_overrides={"rng-discipline": Severity.WARNING})
    report = lint_paths([tmp_path], config)
    assert report.errors == []
    assert len(report.warnings) == 1
    assert report.exit_code == 0


def test_load_config_from_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.urllc5g.lint]\n'
        'ignore = ["public-api-exports"]\n'
        'exclude = ["gen/*"]\n'
        '[tool.urllc5g.lint.per-path]\n'
        '"sim/rng.py" = ["rng-discipline"]\n'
        '[tool.urllc5g.lint.severity]\n'
        '"no-float-tick-equality" = "warning"\n',
        encoding="utf-8")
    config = load_config(start=tmp_path)
    assert config.ignore == ("public-api-exports",)
    assert config.exclude == ("gen/*",)
    assert config.per_path == {"sim/rng.py": ("rng-discipline",)}
    assert config.severity_overrides == {
        "no-float-tick-equality": "warning"}


def test_load_config_defaults_when_table_missing(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n",
                                             encoding="utf-8")
    config = load_config(start=tmp_path)
    assert config == LintConfig()


def test_load_config_rejects_bad_types(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.urllc5g.lint]\nselect = "oops"\n', encoding="utf-8")
    with pytest.raises(ValueError, match="list of strings"):
        load_config(start=tmp_path)


def test_repo_config_names_only_known_rules():
    repo_root = Path(__file__).resolve().parents[2]
    config = load_config(pyproject=repo_root / "pyproject.toml")
    config.active_rules()  # raises on unknown ids


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_text_reporter_lists_violations_and_summary():
    report = lint_paths([FIXTURES / "bad_units.py"])
    text = render_text(report)
    assert "unit-suffix-mixing" in text
    assert "bad_units.py:" in text
    assert "1 file(s) checked" in text


def test_json_reporter_round_trips():
    report = lint_paths([FIXTURES / "bad_exports.py"])
    payload = json.loads(render_json(report))
    assert payload["errors"] == 1
    assert payload["violations"][0]["rule"] == "public-api-exports"
    assert payload["violations"][0]["line"] == 1


def test_sarif_reporter_shares_the_common_writer():
    report = lint_paths([FIXTURES / "bad_units.py"])
    document = json.loads(render_sarif(report))
    assert document["version"] == "2.1.0"
    driver = document["runs"][0]["tool"]["driver"]
    assert driver["name"] == "urllc5g-lint"
    listed = {rule["id"] for rule in driver["rules"]}
    # Every registered rule appears, found or not.
    assert EXPECTED_RULES | {SYNTAX_ERROR_RULE_ID} <= listed
    results = document["runs"][0]["results"]
    assert {r["ruleId"] for r in results} == {"unit-suffix-mixing"}


def test_clean_report_says_clean(tmp_path):
    good = tmp_path / "mod.py"
    good.write_text('__all__ = []\n', encoding="utf-8")
    text = render_text(lint_paths([tmp_path]))
    assert "clean" in text


# ----------------------------------------------------------------------
# the repository itself is lint-clean
# ----------------------------------------------------------------------
def test_src_tree_is_lint_clean():
    repo_root = Path(__file__).resolve().parents[2]
    config = load_config(pyproject=repo_root / "pyproject.toml")
    report = lint_paths([repo_root / "src"], config)
    assert report.exit_code == 0, render_text(report)
    # The reviewed baseline lives in pyproject.toml, not in scattered
    # pragma comments: the src tree must contain none.
    assert report.suppressed == 0


# ----------------------------------------------------------------------
# fault-streams-named delegates name resolution to the detsan resolver
# ----------------------------------------------------------------------
def test_fault_stream_fstring_with_literal_prefix_is_clean():
    source = (
        "class Injector:\n"
        "    def __init__(self, rngs, kind, index):\n"
        "        self.rng = rngs.stream(f\"fault.{kind}.{index}\")\n"
    )
    assert "fault-streams-named" not in rule_ids_in(
        source, "faults/injectors.py")


def test_fault_stream_dynamic_name_reported_as_unresolvable():
    source = (
        "def acquire(rngs, name):\n"
        "    return rngs.stream(name)\n"
    )
    violations, _ = lint_source(source, "faults/dynamic.py", rules())
    hits = [v for v in violations if v.rule_id == "fault-streams-named"]
    assert len(hits) == 1
    assert "resolved statically" in hits[0].message


def test_fault_stream_resolved_template_in_message():
    source = (
        "def acquire(rngs, index):\n"
        "    return rngs.stream(f\"link.{index}\")\n"
    )
    violations, _ = lint_source(source, "faults/wrongprefix.py", rules())
    hits = [v for v in violations if v.rule_id == "fault-streams-named"]
    assert len(hits) == 1
    assert "'link.{*}'" in hits[0].message
