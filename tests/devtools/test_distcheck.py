"""Distcheck: scenario closure, the five dist-* rules, certification."""

import json
from pathlib import Path

from repro.devtools.analyze import write_baseline
from repro.devtools.analyze.baseline import Baseline, fingerprint
from repro.devtools.distcheck import (
    DistcheckConfig,
    distcheck_paths,
    load_distcheck_config,
    render_distcheck_json,
    render_distcheck_manifest,
    render_distcheck_sarif,
    render_distcheck_text,
)

REPO = Path(__file__).resolve().parents[2]


def write_tree(tmp_path, files):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


def rule_ids(report):
    return {v.rule_id for v in report.violations}


def cert_by_name(report):
    return {cert.name: cert for cert in report.certifications}


# ----------------------------------------------------------------------
# seeded violation fixtures: each trips exactly its intended rule, and
# each has a clean twin the rule must stay silent on
# ----------------------------------------------------------------------
HOST_STATE = """\
import os

from repro.runner.scenarios import scenario


def lookup():
    return os.environ.get("EXPERIMENT_TAG")


@scenario("env-probe")
def env_probe(params, seed):
    return {"tag": lookup()}
"""

HOST_STATE_CLEAN = """\
import os

from repro.runner.scenarios import scenario


def lookup():
    return os.environ.get("URLLC5G_BENCH_WORKERS")


@scenario("env-probe")
def env_probe(params, seed):
    return {"workers": lookup()}
"""


def test_env_read_outside_allowlist_fails_certification(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"dist-host-state"}
    (violation,) = report.violations
    assert "'EXPERIMENT_TAG'" in violation.message
    assert "allow-env" in violation.message
    assert report.scenarios_for(violation) == frozenset({"env-probe"})
    assert cert_by_name(report)["env-probe"].status == "failed"
    # The CI regression contract: a host-stateful scenario exits 1.
    assert report.exit_code == 1


def test_allowlisted_env_read_certifies(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE_CLEAN})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert cert_by_name(report)["env-probe"].status == "certified"
    assert report.exit_code == 0


MUTABLE = """\
from repro.runner.scenarios import scenario

_RESULTS = {}


def record(key, value):
    _RESULTS[key] = value


@scenario("stateful")
def stateful(params, seed):
    record("seed", seed)
    return dict(_RESULTS)
"""

MUTABLE_CLEAN = """\
from repro.runner.scenarios import scenario


def record(results, key, value):
    results[key] = value


@scenario("stateful")
def stateful(params, seed):
    results = {}
    record(results, "seed", seed)
    return results
"""


def test_module_global_write_is_flagged_transitively(tmp_path):
    write_tree(tmp_path, {"state.py": MUTABLE})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"dist-mutable-global"}
    (violation,) = report.violations
    assert "_RESULTS" in violation.message
    assert "remote worker" in violation.message
    # The write is in record(), two hops from the entry point.
    assert report.scenarios_for(violation) == frozenset({"stateful"})


def test_locally_scoped_mutation_is_clean(tmp_path):
    write_tree(tmp_path, {"state.py": MUTABLE_CLEAN})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert cert_by_name(report)["stateful"].status == "certified"


BOUNDARY = """\
from concurrent.futures import ProcessPoolExecutor


def fan_out(points):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda p: p * 2, point)
                   for point in points]
    return [f.result() for f in futures]
"""

BOUNDARY_CLEAN = """\
from concurrent.futures import ProcessPoolExecutor


def double(point):
    return point * 2


def fan_out(points):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(double, point) for point in points]
    return [f.result() for f in futures]
"""


def test_lambda_into_pool_submit_is_flagged(tmp_path):
    write_tree(tmp_path, {"pool.py": BOUNDARY})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"dist-unpicklable-boundary"}
    (violation,) = report.violations
    assert "a lambda" in violation.message
    assert ".submit()" in violation.message
    # Boundary hazards are program-wide: no scenario attribution.
    assert report.scenarios_for(violation) == frozenset()


def test_module_level_callable_crosses_boundary_cleanly(tmp_path):
    write_tree(tmp_path, {"pool.py": BOUNDARY_CLEAN})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []


DIGEST = """\
import json


def point_digest(payload):
    return json.dumps(payload)
"""

DIGEST_CLEAN = """\
import json


def point_digest(payload):
    return json.dumps(payload, sort_keys=True)
"""


def test_unsorted_dumps_in_digest_closure_is_flagged(tmp_path):
    write_tree(tmp_path, {"cachekey.py": DIGEST})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"dist-digest-instability"}
    (violation,) = report.violations
    assert "json.dumps" in violation.message
    assert "bit-identical" in violation.message


def test_sorted_dumps_in_digest_closure_is_clean(tmp_path):
    write_tree(tmp_path, {"cachekey.py": DIGEST_CLEAN})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []


def test_hash_builtin_outside_digest_closure_is_ignored(tmp_path):
    # hash() is only a hazard where it can feed a point digest.
    write_tree(tmp_path, {"plain.py": (
        "def bucket(key):\n"
        "    return hash(key) % 8\n"
    )})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []


FS_ESCAPE = """\
from pathlib import Path

from repro.runner.scenarios import scenario


def spill(out, payload):
    Path(out).write_text(payload)


@scenario("spiller")
def spiller(params, seed):
    spill(params["out"], str(seed))
    return {}
"""

FS_CLEAN = """\
from pathlib import Path

from repro.runner.scenarios import scenario


def slurp(source):
    return Path(source).read_text()


@scenario("reader")
def reader(params, seed):
    return {"config": slurp(params["source"])}
"""


def test_scenario_reachable_fs_write_is_flagged(tmp_path):
    write_tree(tmp_path, {"io.py": FS_ESCAPE})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"dist-filesystem-escape"}
    (violation,) = report.violations
    assert "sanctioned" in violation.message
    assert report.scenarios_for(violation) == frozenset({"spiller"})


def test_reads_are_not_filesystem_escapes(tmp_path):
    write_tree(tmp_path, {"io.py": FS_CLEAN})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert cert_by_name(report)["reader"].status == "certified"


def test_sanctioned_writer_pattern_permits_the_write(tmp_path):
    write_tree(tmp_path, {"io.py": FS_ESCAPE})
    config = DistcheckConfig(sanctioned_writers=("io.spill",))
    report = distcheck_paths([tmp_path], config, use_cache=False)
    assert report.violations == []
    assert cert_by_name(report)["spiller"].status == "certified"


# ----------------------------------------------------------------------
# certification semantics: refusal, review, the manifest
# ----------------------------------------------------------------------
def test_refused_scenario_drops_its_findings(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    config = DistcheckConfig(refuse_scenarios=("env-probe",))
    report = distcheck_paths([tmp_path], config, use_cache=False)
    assert report.violations == []
    assert report.refused_findings == 1
    assert cert_by_name(report)["env-probe"].status == "refused"
    assert report.exit_code == 0


def test_finding_shared_with_certified_scenario_still_gates(tmp_path):
    # Two scenarios reach the same env read; refusing one of them must
    # not launder the finding for the other.
    shared = HOST_STATE + (
        "\n\n@scenario(\"env-probe-b\")\n"
        "def env_probe_b(params, seed):\n"
        "    return {\"tag\": lookup()}\n"
    )
    write_tree(tmp_path, {"probe.py": shared})
    config = DistcheckConfig(refuse_scenarios=("env-probe",))
    report = distcheck_paths([tmp_path], config, use_cache=False)
    assert rule_ids(report) == {"dist-host-state"}
    assert cert_by_name(report)["env-probe-b"].status == "failed"
    assert report.exit_code == 1


def test_analyze_pragma_suppresses_dist_rules(tmp_path):
    suppressed = HOST_STATE.replace(
        'os.environ.get("EXPERIMENT_TAG")',
        'os.environ.get("EXPERIMENT_TAG")'
        '  # analyze: disable=dist-host-state')
    write_tree(tmp_path, {"probe.py": suppressed})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert report.suppressed == 1
    # Reviewed-away findings downgrade failed -> baselined-findings.
    assert cert_by_name(report)["env-probe"].status == \
        "baselined-findings"
    assert report.exit_code == 0


def test_baseline_roundtrip_filters_known_findings(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    report = distcheck_paths([tmp_path], use_cache=False)
    assert report.exit_code == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.violations)
    rerun = distcheck_paths(
        [tmp_path], use_cache=False,
        baseline=Baseline({fingerprint(v) for v in report.violations}))
    assert rerun.violations == []
    assert rerun.baselined == 1
    assert cert_by_name(rerun)["env-probe"].status == \
        "baselined-findings"
    assert rerun.exit_code == 0


def test_config_reads_distcheck_table(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.urllc5g.distcheck]\n"
        'baseline = "accepted.json"\n'
        'cache = ".cache.json"\n'
        'allow-env = ["URLLC5G_*", "CI"]\n'
        'refuse-scenarios = ["chaos-selftest"]\n'
        'sanctioned-writers = ["repro.runner.cache.*"]\n',
        encoding="utf-8")
    config = load_distcheck_config(pyproject=pyproject)
    # Relative paths anchor at the pyproject's directory.
    assert config.baseline == str(tmp_path / "accepted.json")
    assert config.cache == str(tmp_path / ".cache.json")
    assert config.allow_env == ("URLLC5G_*", "CI")
    assert config.refuse_scenarios == ("chaos-selftest",)
    assert config.sanctioned_writers == ("repro.runner.cache.*",)
    # Unset keys keep their contract defaults.
    assert config.entry_decorators == \
        ("repro.runner.scenarios.scenario",)
    assert config.shared_roots == ("repro.runner.scenarios.run_point",)


# ----------------------------------------------------------------------
# renderers and the certification manifest
# ----------------------------------------------------------------------
def test_text_report_shows_certifications_and_attribution(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    text = render_distcheck_text(
        distcheck_paths([tmp_path], use_cache=False))
    assert "scenario certification" in text
    assert "env-probe" in text
    assert "failed" in text
    assert "reached from: env-probe" in text


def test_json_report_carries_scenarios_and_attribution(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    payload = json.loads(render_distcheck_json(
        distcheck_paths([tmp_path], use_cache=False)))
    (scenario_row,) = payload["scenarios"]
    assert scenario_row["name"] == "env-probe"
    assert scenario_row["status"] == "failed"
    (violation,) = payload["violations"]
    assert violation["rule"] == "dist-host-state"
    assert violation["scenarios"] == ["env-probe"]
    assert payload["exit_code"] == 1


def test_sarif_report_uses_distcheck_tool_name(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE})
    doc = json.loads(render_distcheck_sarif(
        distcheck_paths([tmp_path], use_cache=False)))
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "urllc5g-distcheck"
    assert [r["ruleId"] for r in run["results"]] == ["dist-host-state"]


def test_manifest_lists_every_scenario_with_verdict(tmp_path):
    write_tree(tmp_path, {"probe.py": HOST_STATE,
                          "io.py": FS_CLEAN})
    config = DistcheckConfig(refuse_scenarios=("env-probe",))
    report = distcheck_paths([tmp_path], config, use_cache=False)
    manifest = json.loads(render_distcheck_manifest(report))
    assert manifest["tool"] == "urllc5g-distcheck"
    assert manifest["schema_version"] == 1
    assert manifest["exit_code"] == 0
    probe = manifest["scenarios"]["env-probe"]
    assert probe["status"] == "refused"
    assert probe["distributable"] is False
    reader = manifest["scenarios"]["reader"]
    assert reader["status"] == "certified"
    assert reader["distributable"] is True
    assert reader["reachable_functions"] >= 2
    # Deterministic byte-for-byte: CI diffs the artifact.
    assert render_distcheck_manifest(report) == \
        render_distcheck_manifest(report)


# ----------------------------------------------------------------------
# acceptance: the repository itself
# ----------------------------------------------------------------------
def test_every_registered_scenario_is_certified_or_reviewed():
    config = load_distcheck_config(pyproject=REPO / "pyproject.toml")
    report = distcheck_paths([REPO / "src"], config, use_cache=False)
    assert report.exit_code == 0, render_distcheck_text(report)
    from repro.runner.scenarios import SCENARIOS
    by_name = cert_by_name(report)
    assert set(by_name) == set(SCENARIOS)
    for name, cert in by_name.items():
        assert cert.status in ("certified", "baselined-findings",
                               "refused"), (name, cert.status)
        assert cert.findings == 0, (name, cert.findings)
    # chaos-selftest fault-injects the host; it must stay refused.
    assert by_name["chaos-selftest"].status == "refused"
    # No stray pragmas: accepted debt lives in the reviewed baseline.
    assert report.suppressed == 0
    assert report.baselined == 2  # the sanitizer log + sim clock slots


def test_src_closures_reach_the_simulation_core():
    config = load_distcheck_config(pyproject=REPO / "pyproject.toml")
    report = distcheck_paths([REPO / "src"], config, use_cache=False)
    sizes = {cert.name: cert.reachable
             for cert in report.certifications}
    # The latency campaigns pull in the full DES core; the analytic
    # feasibility scenario stays an order of magnitude smaller.
    assert sizes["ran-latency"] > 200
    assert sizes["design-feasibility"] < sizes["ran-latency"]
