"""The dispatch gate: reading distcheck-manifest.json fail-closed."""

import json

import pytest

from repro.devtools.distcheck import (
    DistManifest,
    ManifestError,
    ScenarioVerdict,
    load_manifest,
)


def _write(tmp_path, payload):
    path = tmp_path / "distcheck-manifest.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def _manifest(tmp_path, **scenarios):
    return load_manifest(_write(tmp_path, {
        "schema_version": 1,
        "tool_version": "test",
        "scenarios": {name: {"entry": f"m.{name}", "status": status}
                      for name, status in scenarios.items()},
    }))


def test_certified_and_baselined_are_distributable(tmp_path):
    manifest = _manifest(tmp_path, a="certified",
                         b="baselined-findings", c="failed",
                         d="refused")
    assert manifest.distributable("a")
    assert manifest.distributable("b")
    assert not manifest.distributable("c")
    assert not manifest.distributable("d")


def test_absence_is_refusal(tmp_path):
    manifest = _manifest(tmp_path, a="certified")
    assert not manifest.distributable("never-certified")
    reasons = manifest.refusals(["a", "never-certified"])
    assert len(reasons) == 1
    assert "absent" in reasons[0]


def test_refusals_name_every_refused_scenario(tmp_path):
    manifest = _manifest(tmp_path, a="certified", b="failed")
    reasons = manifest.refusals(["a", "b", "c"])
    assert len(reasons) == 2
    assert any("'b'" in r and "'failed'" in r for r in reasons)
    assert any("'c'" in r for r in reasons)
    assert manifest.refusals(["a"]) == []


def test_verdict_exposes_entry_and_status(tmp_path):
    manifest = _manifest(tmp_path, a="certified")
    verdict = manifest.verdict("a")
    assert verdict == ScenarioVerdict(name="a", entry="m.a",
                                      status="certified")
    assert manifest.verdict("zzz") is None


def test_missing_file_fails_closed(tmp_path):
    with pytest.raises(ManifestError, match="cannot read"):
        load_manifest(tmp_path / "nope.json")


def test_invalid_json_fails_closed(tmp_path):
    path = tmp_path / "m.json"
    path.write_text("{", encoding="utf-8")
    with pytest.raises(ManifestError, match="not valid JSON"):
        load_manifest(path)


def test_wrong_schema_version_fails_closed(tmp_path):
    path = _write(tmp_path, {"schema_version": 99, "scenarios": {}})
    with pytest.raises(ManifestError, match="schema_version"):
        load_manifest(path)


def test_malformed_scenario_entry_fails_closed(tmp_path):
    path = _write(tmp_path, {"schema_version": 1,
                             "scenarios": {"a": {"status": 42}}})
    with pytest.raises(ManifestError, match="malformed"):
        load_manifest(path)


def test_repo_manifest_certifies_all_named_campaign_scenarios():
    # The checked-in manifest must keep every scenario of every named
    # campaign distributable — except chaos-selftest, which stays
    # host-local by design (it kills its own process).
    from repro.runner import CAMPAIGNS, build_campaign
    manifest = load_manifest("distcheck-manifest.json")
    assert isinstance(manifest, DistManifest)
    for name in CAMPAIGNS:
        for point in build_campaign(name).points:
            assert manifest.distributable(point.scenario), \
                f"{point.scenario} (campaign {name}) not distributable"
    selftest = manifest.verdict("chaos-selftest")
    assert selftest is not None and not selftest.distributable
