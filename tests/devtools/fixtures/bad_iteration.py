"""Fixture: hash-ordered iteration feeding the event queue
(unordered-iteration-before-schedule)."""

__all__ = ["kick_all", "retime"]


def kick_all(sim, handlers) -> None:
    for handler in set(handlers):  # violation: set order feeds schedule
        sim.schedule(0, handler)


def retime(sim, timers) -> None:
    for name in timers.keys():  # violation: .keys() view feeds call_in
        sim.call_in(1, timers[name])
