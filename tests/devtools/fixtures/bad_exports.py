"""Fixture: public module without an export list (public-api-exports)."""


def visible() -> int:
    return 1
