"""Fixture: mixed time-unit arithmetic (unit-suffix-mixing)."""

__all__ = ["total_latency", "deadline_missed"]


def total_latency(queueing_tc: int, margin_us: float) -> float:
    return queueing_tc + margin_us  # violation: _tc + _us


def deadline_missed(elapsed_tc: int, deadline_ms: float) -> bool:
    return elapsed_tc > deadline_ms  # violation: compares _tc to _ms
