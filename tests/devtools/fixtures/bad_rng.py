"""Fixture: global/implicit randomness (rng-discipline)."""

import random  # violation: stdlib global-state RNG

import numpy as np

__all__ = ["seed_everything", "jitter_us", "implicit_draw"]


def seed_everything() -> None:
    random.seed(4)
    np.random.seed(4)  # violation: process-global generator


def jitter_us() -> float:
    gen = np.random.default_rng()  # violation: ad-hoc construction
    return float(gen.normal()) + float(np.random.normal())  # violation


def implicit_draw() -> float:
    # violation: uses `rng` without accepting it as a parameter
    return float(rng.uniform())
