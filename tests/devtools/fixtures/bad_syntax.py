"""Fixture: unparseable file — lint must report it, not crash."""

def broken(:
    return 1
