"""Fixture: exact equality on float time values (no-float-tick-equality)."""

__all__ = ["on_deadline", "same_instant"]


def on_deadline(latency_us: float) -> bool:
    return latency_us == 500.0  # violation: float literal equality


def same_instant(arrival_us: float, service_us: float) -> bool:
    return arrival_us != service_us  # violation: float-unit equality
