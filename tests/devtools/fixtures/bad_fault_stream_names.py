"""Fixture: fault code drawing randomness outside named fault streams."""
from numpy.random import default_rng

__all__ = ["BadInjector"]


class BadInjector:
    """Violates the fault.* stream-naming contract three ways."""

    def __init__(self, rngs):
        self.rng = rngs.stream("link")          # no fault. prefix
        self.other = rngs.stream(f"{self.pre}.0")  # prefix not literal
        self.pre = "fault"

    def fires(self):
        return float(default_rng(0).random()) < 0.5  # ad-hoc generator
