"""Fixture: wall-clock reads inside simulation code (no-wall-clock)."""

import time
from datetime import datetime
from time import perf_counter

__all__ = ["stamp", "label"]


def stamp() -> float:
    started = time.time()          # violation
    return started - perf_counter()  # violation


def label() -> str:
    return datetime.now().isoformat()  # violation
