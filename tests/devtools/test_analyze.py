"""Whole-program analyzer: unit inference, purity, cache, SARIF."""

import json
from pathlib import Path

import pytest

from repro.devtools.analyze import (
    AnalyzeConfig,
    analyze_paths,
    load_analyze_config,
    load_baseline,
    render_analysis_json,
    render_analysis_sarif,
    render_analysis_text,
    write_baseline,
)
from repro.devtools.analyze.baseline import Baseline, fingerprint
from repro.devtools.analyze.loader import (
    PARSE_HOOKS,
    conversion_units,
    load_project,
    module_qualname,
    unit_of_name,
)
from repro.devtools.analyze.units import resolve_units
from repro.devtools.lintkit import lint_paths, render_text

CROSSMOD = Path(__file__).parent / "fixtures_analyze" / "crossmod"


def write_tree(tmp_path, files):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


def rule_ids(report):
    return {v.rule_id for v in report.violations}


# ----------------------------------------------------------------------
# name conventions
# ----------------------------------------------------------------------
def test_unit_of_name_suffixes():
    assert unit_of_name("budget_ms") == "ms"
    assert unit_of_name("slot_TC") == "tc"
    assert unit_of_name("x_us") == "us"
    assert unit_of_name("seconds") == "s"
    assert unit_of_name("arms") is None
    assert unit_of_name("plain") is None


def test_conversion_units_parses_converter_names():
    assert conversion_units("tc_from_us") == ("tc", "us")
    assert conversion_units("seconds_from_tc") == ("s", "tc")
    assert conversion_units("us_from_ms") == ("us", "ms")
    assert conversion_units("derive_from_scratch") is None
    assert conversion_units("plain") is None


def test_module_qualname_walks_init_chain():
    assert module_qualname(CROSSMOD / "budget.py") == "crossmod.budget"
    assert module_qualname(CROSSMOD / "__init__.py") == "crossmod"


# ----------------------------------------------------------------------
# the headline requirement: per-file lint passes, analyze flags
# ----------------------------------------------------------------------
def test_cross_module_unit_mismatch_invisible_to_lint():
    lint = lint_paths([CROSSMOD / "budget.py", CROSSMOD / "phy.py"])
    assert lint.violations == [], render_text(lint)
    report = analyze_paths([CROSSMOD], use_cache=False)
    mismatches = [v for v in report.violations
                  if v.rule_id == "cross-unit-arithmetic"]
    assert len(mismatches) == 1
    assert mismatches[0].path.endswith("budget.py")
    assert "_ms" in mismatches[0].message
    assert "_us" in mismatches[0].message


def test_transitive_wall_clock_invisible_to_lint():
    lint = lint_paths([CROSSMOD / "jitter.py"])
    assert lint.violations == [], render_text(lint)
    report = analyze_paths([CROSSMOD], use_cache=False)
    leaks = [v for v in report.violations
             if v.rule_id == "transitive-wall-clock"]
    assert leaks, render_analysis_text(report)
    assert all(v.path.endswith("jitter.py") for v in leaks)
    assert "time.perf_counter()" in leaks[0].message


def test_direct_wall_clock_is_lints_finding_not_analyzes():
    # timing.py reads the clock directly: lint flags it ...
    lint = lint_paths([CROSSMOD / "timing.py"])
    assert {v.rule_id for v in lint.violations} == {"no-wall-clock"}
    # ... so analyze stays silent there (no double-reporting).
    report = analyze_paths([CROSSMOD], use_cache=False)
    assert not any(v.path.endswith("timing.py")
                   for v in report.violations)


def test_transitive_schedule_in_set_loop_invisible_to_lint():
    lint = lint_paths([CROSSMOD / "sched.py"])
    assert lint.violations == [], render_text(lint)
    report = analyze_paths([CROSSMOD], use_cache=False)
    loops = [v for v in report.violations
             if v.rule_id == "transitive-unordered-schedule"]
    assert len(loops) == 1
    assert loops[0].path.endswith("sched.py")
    assert "set(...)" in loops[0].message


# ----------------------------------------------------------------------
# unit-inference details
# ----------------------------------------------------------------------
def test_return_unit_inferred_through_call_chain(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/a.py": ("def base_ms():\n"
                     "    return 2.0\n"),
        "pkg/b.py": ("from pkg.a import base_ms\n"
                     "def indirection():\n"
                     "    return base_ms()\n"),
    })
    project = load_project([tmp_path / "pkg"])
    tables = resolve_units(project)
    assert tables.fn_ret["pkg.a.base_ms"] == "ms"
    assert tables.fn_ret["pkg.b.indirection"] == "ms"


def test_argument_unit_checked_against_callee_signature(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/sink.py": ("def hold(duration_us):\n"
                        "    return duration_us\n"),
        "pkg/caller.py": ("from pkg.sink import hold\n"
                          "def go(timeout_ms):\n"
                          "    return hold(timeout_ms)\n"),
    })
    report = analyze_paths([tmp_path / "pkg"], use_cache=False)
    assert rule_ids(report) == {"cross-unit-argument"}
    message = report.violations[0].message
    assert "duration" not in message or "expects _us" in message


def test_suffixed_assignment_checked(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def f(delay_ms):\n"
                   "    wait_us = delay_ms\n"
                   "    return wait_us\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"cross-unit-assignment"}


def test_declared_return_unit_checked(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def worst_case_us(budget_ms):\n"
                   "    return budget_ms\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"cross-unit-return"}


def test_comparison_between_units_checked(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def late(deadline_ms, elapsed_us):\n"
                   "    return elapsed_us > deadline_ms\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"cross-unit-comparison"}


def test_conversion_call_reconciles_units(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("from repro.phy.timebase import tc_from_us\n"
                   "def f(slot_tc, margin_us):\n"
                   "    return slot_tc + tc_from_us(margin_us)\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert report.violations == [], render_analysis_text(report)


def test_converter_rejects_wrong_source_unit(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("from repro.phy.timebase import tc_from_us\n"
                   "def f(margin_ms):\n"
                   "    return tc_from_us(margin_ms)\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"cross-unit-argument"}


def test_ratio_of_same_unit_is_unitless(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def utilisation(busy_us, window_us, total_ms):\n"
                   "    frac = busy_us / window_us\n"
                   "    return total_ms * frac + total_ms\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert report.violations == [], render_analysis_text(report)


def test_unknown_units_never_flag(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def f(a, b_ms):\n"
                   "    return a + b_ms\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert report.violations == []


def test_transitive_global_rng(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/noise.py": ("import random\n"
                         "def draw():\n"
                         "    return random.random()\n"),
        "pkg/user.py": ("from pkg.noise import draw\n"
                        "def sample_offset():\n"
                        "    return draw() * 10.0\n"),
    })
    report = analyze_paths([tmp_path / "pkg"], use_cache=False)
    leaks = [v for v in report.violations
             if v.rule_id == "transitive-global-rng"]
    assert len(leaks) == 1
    assert leaks[0].path.endswith("user.py")
    assert "random.random()" in leaks[0].message


def test_default_rng_is_not_a_taint_source(tmp_path):
    write_tree(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/registry.py": ("import numpy as np\n"
                            "def make_stream(seed):\n"
                            "    return np.random.default_rng(seed)\n"),
        "pkg/user.py": ("from pkg.registry import make_stream\n"
                        "def sample(seed):\n"
                        "    return make_stream(seed).normal()\n"),
    })
    report = analyze_paths([tmp_path / "pkg"], use_cache=False)
    assert report.violations == [], render_analysis_text(report)


# ----------------------------------------------------------------------
# pragmas, config, baseline
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_finding(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def f(a_ms, b_us):\n"
                   "    return a_ms + b_us"
                   "  # analyze: disable=cross-unit-arithmetic\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert report.suppressed == 1


def test_file_pragma_suppresses_rule_everywhere(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("# analyze: disable-file=cross-unit-arithmetic\n"
                   "def f(a_ms, b_us):\n"
                   "    return a_ms + b_us\n"
                   "def g(c_ms, d_us):\n"
                   "    return c_ms - d_us\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert report.suppressed == 2


def test_unit_annotation_seeds_declared_unit(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def f(raw):\n"
                   "    budget = raw  # unit: ms\n"
                   "    return budget + f_us(raw)\n"
                   "def f_us(raw):\n"
                   "    return 1.0\n"),
    })
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"cross-unit-arithmetic"}


def test_config_ignore_drops_rule(tmp_path):
    write_tree(tmp_path, {
        "mod.py": ("def f(a_ms, b_us):\n"
                   "    return a_ms + b_us\n"),
    })
    config = AnalyzeConfig(ignore=("cross-unit-arithmetic",))
    report = analyze_paths([tmp_path], config, use_cache=False)
    assert report.violations == []


def test_load_analyze_config_from_pyproject(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.urllc5g.analyze]\n'
        'ignore = ["cross-unit-comparison"]\n'
        'exclude = ["gen/*"]\n'
        'baseline = "analyze-baseline.json"\n'
        'cache = ".cache.json"\n', encoding="utf-8")
    config = load_analyze_config(start=tmp_path)
    assert config.ignore == ("cross-unit-comparison",)
    assert config.exclude == ("gen/*",)
    assert config.baseline == "analyze-baseline.json"
    assert config.cache == ".cache.json"


def test_load_analyze_config_rejects_bad_types(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        '[tool.urllc5g.analyze]\nignore = "oops"\n', encoding="utf-8")
    with pytest.raises(ValueError, match="list of strings"):
        load_analyze_config(start=tmp_path)


def test_baseline_round_trip_suppresses_known_findings(tmp_path):
    source_dir = write_tree(tmp_path / "proj", {
        "mod.py": ("def f(a_ms, b_us):\n"
                   "    return a_ms + b_us\n"),
    })
    first = analyze_paths([source_dir], use_cache=False)
    assert first.exit_code == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, first.violations)
    baseline = load_baseline(baseline_file)
    second = analyze_paths([source_dir], baseline=baseline,
                           use_cache=False)
    assert second.exit_code == 0
    assert second.baselined == 1


def test_baseline_survives_line_shifts(tmp_path):
    source = ("def f(a_ms, b_us):\n"
              "    return a_ms + b_us\n")
    source_dir = write_tree(tmp_path / "proj", {"mod.py": source})
    first = analyze_paths([source_dir], use_cache=False)
    baseline = Baseline({fingerprint(v) for v in first.violations})
    # Prepend a line: the finding moves but stays baselined.
    (source_dir / "mod.py").write_text('"""doc."""\n' + source,
                                       encoding="utf-8")
    second = analyze_paths([source_dir], baseline=baseline,
                           use_cache=False)
    assert second.exit_code == 0
    assert second.baselined == 1


def test_new_finding_escapes_the_baseline(tmp_path):
    source_dir = write_tree(tmp_path / "proj", {
        "mod.py": ("def f(a_ms, b_us):\n"
                   "    return a_ms + b_us\n"),
    })
    first = analyze_paths([source_dir], use_cache=False)
    baseline = Baseline({fingerprint(v) for v in first.violations})
    (source_dir / "other.py").write_text(
        "def g(c_tc, d_ns):\n    return c_tc - d_ns\n",
        encoding="utf-8")
    second = analyze_paths([source_dir], baseline=baseline,
                           use_cache=False)
    assert second.exit_code == 1
    assert len(second.violations) == 1
    assert second.violations[0].path.endswith("other.py")


# ----------------------------------------------------------------------
# syntax errors
# ----------------------------------------------------------------------
def test_unparseable_file_becomes_error_finding(tmp_path):
    write_tree(tmp_path, {"broken.py": "def broken(:\n"})
    report = analyze_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"syntax-error"}
    assert report.exit_code == 1


# ----------------------------------------------------------------------
# the incremental cache
# ----------------------------------------------------------------------
def test_cache_rerun_performs_zero_reparses(tmp_path):
    source_dir = write_tree(tmp_path / "proj", {
        "pkg/__init__.py": "",
        "pkg/a.py": "def base_ms():\n    return 2.0\n",
        "pkg/b.py": ("from pkg.a import base_ms\n"
                     "def f(x_us):\n"
                     "    return x_us + base_ms()\n"),
    })
    cache_file = tmp_path / "cache.json"
    parses: list[str] = []
    PARSE_HOOKS.append(parses.append)
    try:
        first = analyze_paths([source_dir], cache_path=cache_file)
        assert len(parses) == first.files_checked == 3
        parses.clear()
        second = analyze_paths([source_dir], cache_path=cache_file)
    finally:
        PARSE_HOOKS.remove(parses.append)
    assert parses == []  # zero re-parses on an unchanged tree
    assert second.from_cache == second.files_checked == 3
    assert second.parsed == 0
    # Cached summaries must reproduce the exact findings.
    assert second.violations == first.violations
    assert rule_ids(second) == {"cross-unit-arithmetic"}


def test_cache_reparses_only_the_changed_file(tmp_path):
    source_dir = write_tree(tmp_path / "proj", {
        "a.py": "def f():\n    return 1\n",
        "b.py": "def g():\n    return 2\n",
    })
    cache_file = tmp_path / "cache.json"
    analyze_paths([source_dir], cache_path=cache_file)
    (source_dir / "a.py").write_text("def f():\n    return 3\n",
                                     encoding="utf-8")
    parses: list[str] = []
    PARSE_HOOKS.append(parses.append)
    try:
        report = analyze_paths([source_dir], cache_path=cache_file)
    finally:
        PARSE_HOOKS.remove(parses.append)
    assert [Path(p).name for p in parses] == ["a.py"]
    assert report.parsed == 1
    assert report.from_cache == 1


# ----------------------------------------------------------------------
# SARIF 2.1.0 output
# ----------------------------------------------------------------------
def test_sarif_document_matches_2_1_0_shape():
    report = analyze_paths([CROSSMOD], use_cache=False)
    assert report.violations  # the fixture must produce findings
    document = json.loads(render_analysis_sarif(report))
    assert document["$schema"] == (
        "https://json.schemastore.org/sarif-2.1.0.json")
    assert document["version"] == "2.1.0"
    assert len(document["runs"]) == 1
    run = document["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "urllc5g-analyze"
    rule_ids_listed = [rule["id"] for rule in driver["rules"]]
    assert rule_ids_listed == sorted(rule_ids_listed)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
        assert rule["defaultConfiguration"]["level"] in (
            "note", "warning", "error")
    assert run["results"]
    for result in run["results"]:
        assert rule_ids_listed[result["ruleIndex"]] == result["ruleId"]
        assert result["message"]["text"]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"]
        region = location["region"]
        assert region["startLine"] >= 1
        assert region["startColumn"] >= 1  # SARIF columns are 1-based


def test_sarif_lists_every_analyzer_rule_even_without_findings(tmp_path):
    write_tree(tmp_path, {"mod.py": "def f():\n    return 1\n"})
    report = analyze_paths([tmp_path], use_cache=False)
    document = json.loads(render_analysis_sarif(report))
    run = document["runs"][0]
    assert run["results"] == []
    listed = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert "cross-unit-arithmetic" in listed
    assert "transitive-wall-clock" in listed


# ----------------------------------------------------------------------
# reporters
# ----------------------------------------------------------------------
def test_text_reporter_mentions_cache_split(tmp_path):
    write_tree(tmp_path, {"mod.py": "def f():\n    return 1\n"})
    text = render_analysis_text(analyze_paths([tmp_path],
                                              use_cache=False))
    assert "1 file(s) analyzed" in text
    assert "1 parsed" in text


def test_json_reporter_round_trips():
    report = analyze_paths([CROSSMOD], use_cache=False)
    payload = json.loads(render_analysis_json(report))
    assert payload["exit_code"] == 1
    assert payload["files_checked"] == report.files_checked
    rules_seen = {v["rule"] for v in payload["violations"]}
    assert "cross-unit-arithmetic" in rules_seen


# ----------------------------------------------------------------------
# the repository itself is analyze-clean
# ----------------------------------------------------------------------
def test_src_tree_is_analyze_clean():
    repo_root = Path(__file__).resolve().parents[2]
    report = analyze_paths([repo_root / "src"], use_cache=False)
    assert report.exit_code == 0, render_analysis_text(report)
    # No scattered escapes: pragmas would hide regressions.
    assert report.suppressed == 0
    assert report.baselined == 0
