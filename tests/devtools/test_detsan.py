"""DetSan static pass: ownership map, the five rules, renderers."""

import json
from pathlib import Path

import pytest

from repro.devtools.analyze import write_baseline
from repro.devtools.analyze.baseline import Baseline, fingerprint
from repro.devtools.detsan import (
    DeterminismViolation,
    detsan_paths,
    load_detsan_config,
    render_detsan_dot,
    render_detsan_json,
    render_detsan_sarif,
    render_detsan_text,
    verify_replay,
)

REPO = Path(__file__).resolve().parents[2]


def write_tree(tmp_path, files):
    for name, source in files.items():
        target = tmp_path / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    return tmp_path


def rule_ids(report):
    return {v.rule_id for v in report.violations}


# ----------------------------------------------------------------------
# seeded violation fixtures: each trips exactly its intended rule
# ----------------------------------------------------------------------
SHARED = """\
from repro.sim.rng import RngRegistry


def jitter(rng):
    return rng.normal()


def drift(rng):
    return rng.random()


def run():
    registry = RngRegistry(0)
    noise = registry.stream("noise")
    return jitter(noise) + drift(noise)
"""


def test_shared_stream_without_contract_is_flagged(tmp_path):
    write_tree(tmp_path, {"sharedmod.py": SHARED})
    report = detsan_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"detsan-shared-stream"}
    (violation,) = report.violations
    assert "'noise'" in violation.message
    assert "2 components" in violation.message
    assert "detsan: shared" in violation.message  # tells you the fix


def test_shared_contract_comment_accepts_the_sharing(tmp_path):
    contracted = SHARED.replace(
        'registry.stream("noise")',
        'registry.stream("noise")  # detsan: shared')
    write_tree(tmp_path, {"sharedmod.py": contracted})
    report = detsan_paths([tmp_path], use_cache=False)
    assert report.violations == []
    info = next(s for s in report.ownership.streams
                if s.template == "noise")
    assert info.shared
    assert len(info.owners) == 2


def test_unresolvable_dynamic_name_is_flagged(tmp_path):
    write_tree(tmp_path, {"dynamic.py": (
        "def acquire(registry, name):\n"
        "    return registry.stream(name)\n"
    )})
    report = detsan_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"detsan-unresolved-stream"}
    assert report.ownership.acquisitions == 1
    assert report.ownership.resolved == 0
    assert report.ownership.resolution_rate == 0.0


def test_literal_prefix_fstring_resolves_to_a_template(tmp_path):
    write_tree(tmp_path, {"templated.py": (
        "def per_ue(registry, ue_id):\n"
        '    rng = registry.stream(f"ue{ue_id}")\n'
        "    return rng.random()\n"
    )})
    report = detsan_paths([tmp_path], use_cache=False)
    assert report.violations == []
    (info,) = report.ownership.streams
    assert info.template == "ue{*}"
    assert report.ownership.resolution_rate == 1.0


ESCAPED = """\
from repro.sim.sampling import BufferedSampler


class Node:
    def __init__(self, sampler, rng):
        self.rng = rng
        self.delays = BufferedSampler(sampler, rng)

    def step(self):
        return self.delays.sample(self.rng) + self.rng.random()
"""


def test_escaped_buffered_stream_is_flagged(tmp_path):
    write_tree(tmp_path, {"escaped.py": ESCAPED})
    report = detsan_paths([tmp_path], use_cache=False)
    assert "detsan-buffered-escape" in rule_ids(report)
    (violation,) = [v for v in report.violations
                    if v.rule_id == "detsan-buffered-escape"]
    assert "BufferedSampler" in violation.message
    assert ".random()" in violation.message


UNORDERED = """\
def one_draw(rng):
    return rng.random()


def spray(rng, targets):
    total = 0.0
    for node in set(targets):
        total += rng.normal()
    return total


def fan_out(rng, items):
    out = []
    for key in {"a", "b"}:
        out.append(one_draw(rng))
    return out
"""


def test_draws_under_unordered_iteration_are_flagged(tmp_path):
    write_tree(tmp_path, {"unordered.py": UNORDERED})
    report = detsan_paths([tmp_path], use_cache=False)
    hits = [v for v in report.violations
            if v.rule_id == "detsan-unordered-draw"]
    assert len(hits) == 2
    direct, transitive = sorted(hits, key=lambda v: v.line)
    assert "spray" in direct.message
    assert "one_draw" in transitive.message  # names the tainted callee


def test_acquired_but_never_drawn_stream_is_flagged(tmp_path):
    write_tree(tmp_path, {"dead.py": (
        "from repro.sim.rng import RngRegistry\n"
        "\n"
        "def setup():\n"
        "    registry = RngRegistry(0)\n"
        "    spare = registry.stream('spare')\n"
        "    return registry\n"
    )})
    report = detsan_paths([tmp_path], use_cache=False)
    assert rule_ids(report) == {"detsan-unused-stream"}
    (violation,) = report.violations
    assert "'spare'" in violation.message
    assert violation.severity.name == "WARNING"


# ----------------------------------------------------------------------
# suppression mechanics: pragmas and the reviewed baseline
# ----------------------------------------------------------------------
def test_analyze_pragma_suppresses_detsan_rules(tmp_path):
    suppressed = SHARED.replace(
        'noise = registry.stream("noise")',
        'noise = registry.stream("noise")'
        '  # analyze: disable=detsan-shared-stream')
    write_tree(tmp_path, {"sharedmod.py": suppressed})
    report = detsan_paths([tmp_path], use_cache=False)
    assert report.violations == []
    assert report.suppressed == 1


def test_baseline_roundtrip_filters_known_findings(tmp_path):
    write_tree(tmp_path, {"sharedmod.py": SHARED})
    report = detsan_paths([tmp_path], use_cache=False)
    assert report.exit_code == 1
    baseline_file = tmp_path / "baseline.json"
    write_baseline(baseline_file, report.violations)
    rerun = detsan_paths(
        [tmp_path], use_cache=False,
        baseline=Baseline({fingerprint(v) for v in report.violations}))
    assert rerun.violations == []
    assert rerun.baselined == 1
    assert rerun.exit_code == 0


def test_config_reads_detsan_table(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        "[tool.urllc5g.detsan]\n"
        'baseline = "accepted.json"\n'
        'cache = ".cache.json"\n'
        'ignore = ["detsan-unused-stream"]\n',
        encoding="utf-8")
    config = load_detsan_config(pyproject=pyproject)
    # Relative paths anchor at the pyproject's directory, so an
    # explicit --config works from any invocation cwd.
    assert config.baseline == str(tmp_path / "accepted.json")
    assert config.cache == str(tmp_path / ".cache.json")
    assert config.ignore == ("detsan-unused-stream",)


# ----------------------------------------------------------------------
# renderers
# ----------------------------------------------------------------------
def test_text_report_shows_map_and_resolution(tmp_path):
    write_tree(tmp_path, {"sharedmod.py": SHARED})
    report = detsan_paths([tmp_path], use_cache=False)
    text = render_detsan_text(report)
    assert "stream ownership map" in text
    assert "1/1 acquisition(s) resolved" in text
    assert "noise" in text


def test_json_report_carries_streams_and_rate(tmp_path):
    write_tree(tmp_path, {"sharedmod.py": SHARED})
    payload = json.loads(render_detsan_json(
        detsan_paths([tmp_path], use_cache=False)))
    assert payload["resolution"] == {
        "acquisitions": 1, "resolved": 1, "rate": 1.0}
    (stream,) = payload["streams"]
    assert stream["template"] == "noise"
    assert len(stream["owners"]) == 2
    assert payload["exit_code"] == 1


def test_sarif_report_uses_detsan_tool_name(tmp_path):
    write_tree(tmp_path, {"sharedmod.py": SHARED})
    doc = json.loads(render_detsan_sarif(
        detsan_paths([tmp_path], use_cache=False)))
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "urllc5g-detsan"
    assert [r["ruleId"] for r in run["results"]] == \
        ["detsan-shared-stream"]


def test_dot_graph_is_deterministic_and_marks_buffering(tmp_path):
    write_tree(tmp_path, {"escaped.py": ESCAPED, "sharedmod.py": SHARED})
    report = detsan_paths([tmp_path], use_cache=False)
    dot = render_detsan_dot(report)
    assert dot == render_detsan_dot(report)
    assert dot.startswith("// Generated by")
    assert "digraph stream_ownership" in dot
    assert "shape=box" in dot  # consumer components


# ----------------------------------------------------------------------
# dynamic side: replay verification over the sanitizer log
# ----------------------------------------------------------------------
def test_verify_replay_passes_for_deterministic_workload():
    from repro.sim.rng import RngRegistry

    def workload():
        rng = RngRegistry(11).stream("replay")
        return [rng.random() for _ in range(5)]

    result, log = verify_replay(workload, label="unit workload")
    assert len(result) == 5
    assert log.draw_counts() == {"replay": 5}


def test_verify_replay_raises_on_draw_count_divergence():
    from repro.sim.rng import RngRegistry

    calls = []

    def workload():
        calls.append(None)
        rng = RngRegistry(11).stream("replay")
        return [rng.random() for _ in range(len(calls))]

    with pytest.raises(DeterminismViolation, match="divergence"):
        verify_replay(workload, label="drifting workload")


# ----------------------------------------------------------------------
# acceptance: the repository itself
# ----------------------------------------------------------------------
def test_src_tree_is_detsan_clean_against_reviewed_baseline():
    config = load_detsan_config(pyproject=REPO / "pyproject.toml")
    report = detsan_paths([REPO / "src"], config, use_cache=False)
    assert report.exit_code == 0, render_detsan_text(report)
    # Every acceptance threshold from the determinism contract:
    # >= 95% of stream names resolve statically, and the only accepted
    # debt is the reviewed baseline (no stray pragmas).
    assert report.ownership.resolution_rate >= 0.95
    assert report.suppressed == 0
    assert report.baselined == 1  # the AirLink escape, reviewed


def test_src_ownership_map_covers_the_core_streams():
    report = detsan_paths([REPO / "src"], use_cache=False)
    by_template = {info.template: info
                   for info in report.ownership.streams}
    assert "upf" in by_template and by_template["upf"].buffered
    assert "link" in by_template and by_template["link"].buffered
    assert by_template["technologies"].shared
    assert "fault.{*}.{*}" in by_template
    for template in ("upf", "link", "gnb", "ue{*}"):
        assert by_template[template].owners, template
