"""The cProfile harness: aggregation, document shape, CLI flag."""

import json

from repro.cli import main
from repro.devtools.profile import (
    ProfileReport,
    _module_of,
    profile_call,
    write_profile_json,
)


def _busy_work():
    from repro.sim.engine import Simulator
    sim = Simulator()
    for t in range(500):
        sim.schedule(t, _nothing)
    return sim.run()


def _nothing():
    return None


def test_profile_call_returns_result_and_report():
    result, report = profile_call(_busy_work)
    assert result == 500
    assert isinstance(report, ProfileReport)
    assert report.total_time_s > 0


def test_module_mapping():
    assert _module_of("/x/src/repro/sim/engine.py") == "repro.sim.engine"
    assert _module_of("/x/src/repro/sim/__init__.py") == "repro.sim"
    assert _module_of("~") == "<builtin>"
    assert _module_of("<string>") == "<builtin>"
    assert _module_of("/usr/lib/python3/json/decoder.py") == "<other>"


def test_per_module_breakdown_is_additive_and_sorted():
    _, report = profile_call(_busy_work)
    modules = report.modules
    assert "repro.sim.engine" in modules
    engine = modules["repro.sim.engine"]
    # schedule() + run() + step-internal pushes: hundreds of calls.
    assert engine["calls"] >= 500
    assert engine["tottime_s"] > 0
    # tottime is additive across modules.
    total = sum(entry["tottime_s"] for entry in modules.values())
    assert abs(total - report.total_time_s) < 1e-9
    # Sorted by descending own-time.
    tottimes = [entry["tottime_s"] for entry in modules.values()]
    assert tottimes == sorted(tottimes, reverse=True)


def test_payload_and_json_document(tmp_path):
    _, report = profile_call(_busy_work)
    path = write_profile_json(tmp_path / "PROFILE_x.json", "x", report)
    document = json.loads(path.read_text())
    assert document["schema"] == "urllc5g-profile/1"
    assert document["campaign"] == "x"
    assert document["modules"] == json.loads(
        json.dumps(report.modules))  # round-trippable
    top = document["top_functions"]
    assert top and len(top) <= 25
    assert {"module", "function", "calls", "tottime_s"} <= set(top[0])
    # Top functions are ranked by own time.
    assert [row["tottime_s"] for row in top] == sorted(
        (row["tottime_s"] for row in top), reverse=True)


def test_bench_profile_flag_writes_document(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)  # the default journal lands in cwd
    output = tmp_path / "BENCH_smoke.json"
    code = main(["bench", "smoke", "--no-cache",
                 "--output", str(output), "--profile"])
    assert code == 0
    profile_path = tmp_path / "PROFILE_smoke.json"
    assert profile_path.exists()
    document = json.loads(profile_path.read_text())
    assert document["campaign"] == "smoke"
    assert any(module.startswith("repro.")
               for module in document["modules"])
    assert "profile:" in capsys.readouterr().out
