"""Fixture: the direct wall-clock read (lint's finding, not analyze's)."""

import time

__all__ = ["now_us"]


def now_us() -> float:
    return time.perf_counter() * 1e6
