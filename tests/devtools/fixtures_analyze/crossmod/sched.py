"""Fixture: unordered iteration scheduling through a helper.

Lint's ``unordered-iteration-before-schedule`` needs the
``.schedule(...)`` call literally inside the loop body; hiding it one
call away in ``_wake`` makes the file lint-clean while the event
order is still set-iteration nondeterministic.
"""

__all__ = ["wake_all"]


def wake_all(sim, ues) -> None:
    for ue in set(ues):
        _wake(sim, ue)


def _wake(sim, ue) -> None:
    sim.schedule(0, ue)
