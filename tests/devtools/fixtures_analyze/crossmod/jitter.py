"""Fixture: transitive wall-clock leak through an imported helper.

This module never imports ``time`` and is lint-clean; only the call
graph reveals that ``now_us`` bottoms out in ``time.perf_counter``.
"""

from crossmod.timing import now_us

__all__ = ["measure_jitter_us"]


def measure_jitter_us() -> float:
    start = now_us()
    return now_us() - start
