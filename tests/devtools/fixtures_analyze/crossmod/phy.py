"""Fixture: a helper returning microseconds."""

__all__ = ["slot_duration_us"]


def slot_duration_us(mu: int) -> float:
    """Slot duration in microseconds for numerology mu."""
    return 1000.0 / (2 ** mu)
