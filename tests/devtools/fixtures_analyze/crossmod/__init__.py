"""Fixture package: cross-module defects per-file lint cannot see.

Every module here is clean under ``urllc5g lint`` (the defects only
exist across module boundaries), yet ``urllc5g analyze`` flags each
one — the test-suite asserts both directions.  ``timing.py`` is the
deliberate exception: it contains the *direct* wall-clock read that
lint does catch, so the tests can show the transitive finding in
``jitter.py`` is new information.
"""

__all__ = []
