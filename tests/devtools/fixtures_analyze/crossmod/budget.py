"""Fixture: cross-module unit mismatch behind an unsuffixed local.

``slot_duration_us`` returns microseconds; stashing it in the bare
name ``used`` erases the suffix per-file lint relies on, and the
subtraction from a millisecond budget goes unflagged.  Whole-program
inference carries the _us return unit through ``used`` and across the
module boundary.
"""

from crossmod.phy import slot_duration_us

__all__ = ["remaining_budget_ms"]


def remaining_budget_ms(budget_ms: float, mu: int) -> float:
    used = slot_duration_us(mu)
    return budget_ms - used
