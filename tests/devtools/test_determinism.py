"""Runtime determinism sanitizer: same seed, same trace digest."""

import pytest

from repro.devtools.determinism import (
    determinism_report,
    run_traced_scenario,
)
from repro.mac.types import AccessMode


@pytest.mark.parametrize("access", [AccessMode.GRANT_FREE,
                                    AccessMode.GRANT_BASED])
def test_same_seed_runs_are_bit_identical(access):
    report = determinism_report(seed=3, packets=12, runs=2, access=access)
    assert report.ok, report.render()


def test_different_seeds_diverge():
    digest_a, _ = run_traced_scenario(seed=3, packets=12)
    digest_b, _ = run_traced_scenario(seed=4, packets=12)
    assert digest_a != digest_b


def test_report_renders_verdict():
    report = determinism_report(seed=3, packets=6, runs=2)
    text = report.render()
    assert "PASS" in text
    assert "seed=3" in text


def test_report_requires_two_runs():
    with pytest.raises(ValueError, match="at least 2"):
        determinism_report(runs=1)
