"""Unit tests for the UPF and ping server."""

import pytest

from repro.mac.types import Direction
from repro.net.core_network import PingServer, Upf
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import (
    HEADER_BYTES,
    LatencySource,
    Packet,
    PacketKind,
)
from repro.phy.timebase import tc_from_us


def test_upf_charges_processing(rng):
    sim = Simulator()
    upf = Upf(sim, Tracer(), rng, delay=Constant(12.0))
    packet = Packet(PacketKind.DATA, Direction.UL, 32, created_tc=0)
    done = []
    upf.forward_uplink(packet, done.append)
    sim.run_until_idle()
    assert sim.now == tc_from_us(12.0)
    assert done[0].budget[LatencySource.PROCESSING] == tc_from_us(12.0)


def test_upf_downlink_adds_gtpu_header(rng):
    sim = Simulator()
    upf = Upf(sim, Tracer(), rng, delay=Constant(1.0))
    packet = Packet(PacketKind.DATA, Direction.DL, 32, created_tc=0)
    upf.forward_downlink(packet, lambda p: None)
    sim.run_until_idle()
    assert packet.header_bytes == HEADER_BYTES["GTP-U"]


def test_ping_server_reflects_with_turnaround():
    sim = Simulator()
    server = PingServer(sim, Tracer(), turnaround_us=20.0)
    request = Packet(PacketKind.PING_REQUEST, Direction.UL, 64,
                     created_tc=0, ue_id=3)
    replies = []
    server.respond(request, replies.append)
    sim.run_until_idle()
    assert sim.now == tc_from_us(20.0)
    reply = replies[0]
    assert reply.kind is PacketKind.PING_REPLY
    assert reply.direction is Direction.DL
    assert reply.ue_id == 3
    assert reply.payload_bytes == 64
    assert reply.related_id == request.packet_id


def test_ping_server_rejects_non_requests():
    sim = Simulator()
    server = PingServer(sim, Tracer())
    data = Packet(PacketKind.DATA, Direction.UL, 64, created_tc=0)
    with pytest.raises(ValueError):
        server.respond(data, lambda p: None)


def test_negative_turnaround_rejected():
    with pytest.raises(ValueError):
        PingServer(Simulator(), Tracer(), turnaround_us=-1.0)
