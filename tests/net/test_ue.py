"""Unit tests for UE-side access behaviour."""

import pytest

from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.scheduler import UlGrant
from repro.mac.types import AccessMode, Direction
from repro.net.ue import Ue
from repro.phy.ofdm import Carrier
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import Packet, PacketKind


def constant_delays():
    return {name: Constant(5.0)
            for name in ("APP", "SDAP", "PDCP", "RLC", "MAC", "PHY")}


def make_ue(rng, scheme=None, access=AccessMode.GRANT_FREE, **kwargs):
    scheme = scheme or testbed_dddu()
    sim = Simulator()
    tracer = Tracer()
    carrier = Carrier(scheme.numerology, 20)
    blocks, srs, delivered = [], [], []
    ue = Ue(sim, tracer, 1, scheme, carrier, rng, access=access,
            tx_layer_delays=constant_delays(),
            rx_layer_delays=constant_delays(),
            on_ul_block=lambda u, w, p: blocks.append((sim.now, w, p)),
            on_sr=lambda u, b: srs.append(sim.now),
            on_delivered=delivered.append,
            **kwargs)
    return sim, ue, blocks, srs, delivered


def make_packet(direction=Direction.UL):
    return Packet(PacketKind.DATA, direction, 32, created_tc=0)


def test_grant_free_transmits_at_window_end(rng):
    scheme = testbed_dddu()
    sim, ue, blocks, srs, _ = make_ue(rng, scheme)
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    assert len(blocks) == 1 and not srs
    time, window, packets = blocks[0]
    assert time == window.end
    ul_windows = {w.start for w in scheme.ul_timeline().windows}
    assert window.start % scheme.period_tc in ul_windows


def test_grant_free_batches_packets_into_one_window(rng):
    sim, ue, blocks, _, _ = make_ue(rng)
    ue.send_uplink(make_packet())
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    assert len(blocks) == 1
    assert len(blocks[0][2]) == 2
    assert ue.counters.ul_blocks_sent == 1


def test_grant_free_respects_cg_capacity(rng):
    # Tiny capacity: one packet per window, the second spills over.
    sim, ue, blocks, _, _ = make_ue(
        rng, cg_capacity_bytes=lambda w: 80)
    ue.send_uplink(make_packet())
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    assert len(blocks) == 2
    assert blocks[0][1].start < blocks[1][1].start


def test_grant_based_sends_sr_once_per_burst(rng):
    sim, ue, blocks, srs, _ = make_ue(rng,
                                      access=AccessMode.GRANT_BASED)
    ue.send_uplink(make_packet())
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    # No grant ever arrives in this isolated test: exactly one SR
    # outstanding, data still queued.
    assert len(srs) == 1
    assert not blocks
    assert len(ue.ul_queue) == 2


def test_grant_pulls_queue_and_transmits(rng):
    scheme = testbed_dddu()
    sim, ue, blocks, srs, _ = make_ue(rng, scheme,
                                      access=AccessMode.GRANT_BASED)
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    window = scheme.ul_timeline().first_start_at_or_after(
        sim.now + scheme.period_tc)
    grant = UlGrant(ue_id=1, window=window, control_time=sim.now,
                    capacity_bytes=10_000)
    ue.receive_grant(grant)
    sim.run_until_idle()
    assert len(blocks) == 1
    assert blocks[0][0] == window.end
    assert ue.counters.grants_received == 1


def test_wasted_grant_counted(rng):
    scheme = testbed_dddu()
    sim, ue, _, _, _ = make_ue(rng, scheme,
                               access=AccessMode.GRANT_BASED)
    window = scheme.ul_timeline().first_start_at_or_after(1000)
    ue.receive_grant(UlGrant(1, window, 0, 10_000))
    assert ue.counters.wasted_grants == 1


def test_grant_deadline_miss_requeues_and_resends_sr(rng):
    scheme = testbed_dddu()
    sim, ue, blocks, srs, _ = make_ue(
        rng, scheme, access=AccessMode.GRANT_BASED,
        radio_submission_us=lambda n, r: 10_000.0)  # hopelessly slow
    ue.send_uplink(make_packet())
    sim.run_until_idle()
    window = scheme.ul_timeline().first_start_at_or_after(sim.now + 1)
    ue.receive_grant(UlGrant(1, window, sim.now, 10_000))
    assert ue.counters.grant_deadline_misses == 1
    assert len(ue.ul_queue) == 1
    sim.run_until_idle()
    assert len(srs) == 2  # original + retry


def test_dl_block_climbs_to_app(rng):
    sim, ue, _, _, delivered = make_ue(rng)
    packet = make_packet(Direction.DL)
    ue.receive_dl_block([packet])
    sim.run_until_idle()
    assert delivered == [packet]
    assert packet.delivered_tc == sim.now
    assert ue.counters.packets_delivered == 1
    assert "ue.phy.block_rx" in packet.timestamps


def test_retransmit_grant_free_replans(rng):
    sim, ue, blocks, _, _ = make_ue(rng)
    packet = make_packet()
    ue.send_uplink(packet)
    sim.run_until_idle()
    first_window = blocks[0][1]
    ue.retransmit_uplink([packet])
    sim.run_until_idle()
    assert len(blocks) == 2
    assert blocks[1][1].start > first_window.start
