"""Unit tests for the gNB node in isolation."""

import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.types import Direction
from repro.net.gnb import Gnb
from repro.phy.ofdm import Carrier
from repro.radio.interface import usb3
from repro.radio.os_jitter import none as no_jitter
from repro.radio.radio_head import RadioHead
from repro.sim.distributions import Constant
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import Packet, PacketKind


def constant_delays():
    return {name: Constant(5.0)
            for name in ("SDAP", "PDCP", "RLC", "MAC", "PHY")}


def make_gnb(rng, **kwargs):
    scheme = testbed_dddu()
    sim = Simulator()
    delivered = []
    gnb = Gnb(sim, Tracer(), scheme, Carrier(scheme.numerology, 20),
              rng, layer_delays=constant_delays(),
              on_ul_delivered=delivered.append, **kwargs)
    return sim, gnb, delivered


def make_packet(direction=Direction.DL):
    return Packet(PacketKind.DATA, direction, 32, created_tc=0,
                  ue_id=1)


def test_dl_path_descends_into_rlc_queue(rng):
    sim, gnb, _ = make_gnb(rng)
    gnb.register_ue(1, grant_free=True)
    gnb.start()
    packet = make_packet()
    gnb.send_downlink(packet)
    sim.run(until=gnb.scheme.period_tc // 4)
    # SDAP+PDCP+RLC processed, headers added, queued (and possibly
    # already scheduled out of the queue).
    assert packet.header_bytes >= 7
    assert gnb.counters.dl_packets_in == 1


def test_ul_block_climbs_to_delivery(rng):
    sim, gnb, delivered = make_gnb(rng)
    gnb.register_ue(1, grant_free=True)
    gnb.start()
    window = gnb.scheme.ul_timeline().windows[0]
    packet = make_packet(Direction.UL)
    gnb.receive_ul_block(1, window, [packet])
    sim.run_until_idle()
    assert delivered == [packet]
    assert "gnb.ul.block_rx" in packet.timestamps
    assert gnb.counters.ul_packets_out == 1


def test_sr_passes_phy_decode_before_mac(rng):
    sim, gnb, _ = make_gnb(rng)
    gnb.register_ue(1)
    gnb.start()
    gnb.receive_sr(1, bsr_bytes=53)
    assert gnb.scheduler.counters.srs_received == 0  # decode pending
    sim.run_until_idle()
    assert gnb.scheduler.counters.srs_received == 1
    assert gnb.counters.srs_decoded == 1


def test_default_margin_covers_radio_head(rng):
    radio_head = RadioHead("b210", usb3(), no_jitter())
    sim, gnb, _ = make_gnb(rng, radio_head=radio_head)
    bare_sim, bare_gnb, _ = make_gnb(rng)
    assert gnb.margin_tc > bare_gnb.margin_tc
    # §7: a ~200 µs-plus RH pushes the margin toward a slot.
    assert gnb.margin_tc > gnb.carrier.numerology.slot_duration_tc // 2


def test_explicit_margin_respected(rng):
    sim, gnb, _ = make_gnb(rng, margin_tc=12345)
    assert gnb.margin_tc == 12345
