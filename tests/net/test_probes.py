"""Unit tests for latency probes."""

import pytest

from repro.mac.types import Direction
from repro.net.probes import LatencyProbe, summarize_us
from repro.phy.timebase import tc_from_us
from repro.stack.packets import LatencySource, Packet, PacketKind


def delivered_packet(latency_us, source=LatencySource.PROTOCOL):
    packet = Packet(PacketKind.DATA, Direction.DL, 32, created_tc=0)
    packet.charge(source, tc_from_us(latency_us))
    packet.mark_delivered(tc_from_us(latency_us))
    return packet


def test_probe_records_only_delivered():
    probe = LatencyProbe()
    with pytest.raises(ValueError):
        probe.record(Packet(PacketKind.DATA, Direction.DL, 32,
                            created_tc=0))
    probe.record(delivered_packet(100.0))
    assert len(probe) == 1


def test_latency_units():
    probe = LatencyProbe()
    probe.record(delivered_packet(1500.0))
    assert probe.latencies_us()[0] == pytest.approx(1500.0, abs=0.01)
    assert probe.latencies_ms()[0] == pytest.approx(1.5, abs=1e-5)


def test_summary_statistics():
    probe = LatencyProbe()
    for latency in (100.0, 200.0, 300.0):
        probe.record(delivered_packet(latency))
    summary = probe.summary()
    assert summary.count == 3
    assert summary.mean_us == pytest.approx(200.0, abs=0.01)
    assert summary.min_us == pytest.approx(100.0, abs=0.01)
    assert summary.max_us == pytest.approx(300.0, abs=0.01)
    assert summary.p50_us == pytest.approx(200.0, abs=0.01)
    assert "n=3" in str(summary)


def test_summarize_requires_samples():
    with pytest.raises(ValueError):
        summarize_us([])


def test_single_sample_summary_has_zero_std():
    assert summarize_us([5.0]).std_us == 0.0


def test_budget_means():
    probe = LatencyProbe()
    probe.record(delivered_packet(100.0, LatencySource.RADIO))
    probe.record(delivered_packet(300.0, LatencySource.RADIO))
    means = probe.budget_means_us()
    assert means["radio"] == pytest.approx(200.0, abs=0.01)
    assert means["protocol"] == 0.0


def test_budget_means_empty_probe():
    assert LatencyProbe().budget_means_us() == {
        "processing": 0.0, "protocol": 0.0, "radio": 0.0}


def test_fraction_within():
    probe = LatencyProbe()
    for latency in (100.0, 400.0, 900.0, 1600.0):
        probe.record(delivered_packet(latency))
    assert probe.fraction_within(500.0) == pytest.approx(0.5)
    assert LatencyProbe().fraction_within(500.0) == 0.0
