"""Integration-style tests for the RanSystem wiring."""

import pytest

from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import IidErasureChannel
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import none as no_jitter
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def arrivals(n=60, horizon_ms=200, seed=10):
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("arrivals"))


def quiet_rh():
    return RadioHead("rh", usb3(), no_jitter())


def test_downlink_delivers_every_packet():
    system = RanSystem(testbed_dddu(), RanConfig(seed=1))
    probe = system.run_downlink(arrivals())
    assert len(probe) == 60
    assert all(p.latency_tc > 0 for p in probe.packets)


def test_uplink_grant_free_delivers_every_packet():
    system = RanSystem(testbed_dddu(), RanConfig(seed=2))
    probe = system.run_uplink(arrivals())
    assert len(probe) == 60


def test_uplink_grant_based_delivers_every_packet():
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_BASED, seed=3))
    probe = system.run_uplink(arrivals())
    assert len(probe) == 60
    ue = system.ues[1]
    assert ue.counters.srs_sent >= 1
    assert ue.counters.grants_received >= 1


def test_grant_based_slower_than_grant_free():
    free = RanSystem(testbed_dddu(), RanConfig(seed=4))
    based = RanSystem(testbed_dddu(),
                      RanConfig(access=AccessMode.GRANT_BASED, seed=4))
    free_mean = free.run_uplink(arrivals()).summary().mean_us
    based_mean = based.run_uplink(arrivals()).summary().mean_us
    assert based_mean > free_mean


def test_budget_decomposition_is_complete():
    system = RanSystem(
        testbed_dddu(),
        RanConfig(seed=5, gnb_radio_head=quiet_rh(),
                  access=AccessMode.GRANT_BASED))
    probe = system.run_uplink(arrivals(40))
    for packet in probe.packets:
        assert packet.unattributed_tc() == 0


def test_ping_round_trips_complete():
    system = RanSystem(testbed_dddu(), RanConfig(seed=6))
    results = system.run_ping(arrivals(20))
    assert len(results) == 20
    for result in results:
        assert result.rtt_tc > 0
        assert result.reply.related_id == result.request.packet_id


def test_deterministic_given_seed():
    def run():
        system = RanSystem(testbed_dddu(), RanConfig(seed=7))
        return RanSystem.run_downlink(system, arrivals(30)).latencies_tc()

    assert run() == run()


def test_different_seeds_differ():
    a = RanSystem(testbed_dddu(), RanConfig(seed=8)).run_downlink(
        arrivals(30)).latencies_tc()
    b = RanSystem(testbed_dddu(), RanConfig(seed=9)).run_downlink(
        arrivals(30)).latencies_tc()
    assert a != b


def test_lossy_channel_triggers_harq_but_still_delivers():
    system = RanSystem(
        testbed_dddu(),
        RanConfig(seed=10, channel=IidErasureChannel(0.3)))
    probe = system.run_downlink(arrivals(50))
    assert len(probe) == 50
    assert system.link.counters.blocks_failed > 0
    assert any(p.harq_retransmissions > 0 for p in probe.packets)


def test_multi_ue_round_robin():
    system = RanSystem(testbed_dddu(), RanConfig(seed=11, n_ues=3))
    for ue_id in (1, 2, 3):
        system.queue_downlink(arrivals(10, seed=ue_id), ue_id=ue_id)
    system.run()
    by_ue = {}
    for packet in system.dl_probe.packets:
        by_ue.setdefault(packet.ue_id, 0)
        by_ue[packet.ue_id] += 1
    assert by_ue == {1: 10, 2: 10, 3: 10}


def test_grant_free_capacity_accounting():
    system = RanSystem(minimal_dm(), RanConfig(seed=12))
    system.run_uplink(arrivals(20))
    counters = system.gnb.scheduler.counters
    assert counters.cg_allocated_bytes > 0
    assert counters.cg_used_bytes > 0
    assert 0.0 <= counters.cg_waste_fraction() < 1.0


def test_dm_configuration_runs_end_to_end():
    system = RanSystem(minimal_dm(), RanConfig(seed=13))
    probe = system.run_downlink(arrivals(30))
    assert len(probe) == 30
    # Pure protocol DL on DM stays within ~0.5 ms + processing.
    assert probe.summary().max_us < 1_500.0
