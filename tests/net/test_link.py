"""Unit tests for the air link."""

from repro.mac.types import Direction
from repro.net.link import AirLink
from repro.phy.channel import IidErasureChannel
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import Packet, PacketKind


def make_link(rng, channel=None, **kwargs):
    sim = Simulator()
    return sim, AirLink(sim, Tracer(), rng, channel=channel, **kwargs)


def make_packet():
    return Packet(PacketKind.DATA, Direction.DL, 32, created_tc=0)


def test_successful_delivery_after_propagation(rng):
    sim, link = make_link(rng, distance_m=300.0)
    delivered, retried = [], []
    link.transmit([make_packet()], 0, delivered.extend, retried.extend)
    sim.run_until_idle()
    assert len(delivered) == 1 and not retried
    assert sim.now == link.propagation_tc > 0


def test_failed_block_goes_to_retransmit(rng):
    sim, link = make_link(rng, channel=IidErasureChannel(1.0))
    delivered, retried = [], []
    packet = make_packet()
    link.transmit([packet], 0, delivered.extend, retried.extend)
    sim.run_until_idle()
    assert not delivered
    assert retried == [packet]
    assert packet.harq_retransmissions == 1
    assert link.counters.block_error_rate() == 1.0


def test_harq_exhaustion_drops(rng):
    sim, link = make_link(rng, channel=IidErasureChannel(1.0),
                          max_harq_retransmissions=2)
    packet = make_packet()
    retried = []

    def retransmit(packets):
        for p in packets:
            link.transmit([p], sim.now, lambda b: None, retransmit)
        retried.extend(packets)

    link.transmit([packet], 0, lambda b: None, retransmit)
    sim.run_until_idle()
    assert packet.dropped
    assert packet.drop_reason == "harq-exhausted"
    assert link.counters.packets_dropped == 1


def test_block_error_rate_counts(rng):
    sim, link = make_link(rng, channel=IidErasureChannel(0.5))
    for _ in range(2_000):
        link.transmit([make_packet()], sim.now, lambda b: None,
                      lambda b: None)
    assert 0.4 < link.counters.block_error_rate() < 0.6


def test_perfect_channel_default(rng):
    sim, link = make_link(rng)
    assert link.counters.block_error_rate() == 0.0
    delivered = []
    link.transmit([make_packet()], 0, delivered.extend, lambda b: None)
    sim.run_until_idle()
    assert delivered
