"""FaultPlan/FaultSpec: validation, serialisation, intensity scaling."""

import pytest

from repro.faults import PRESET_PLANS, FaultKind, FaultPlan, FaultSpec


def test_kind_coerces_from_wire_string():
    spec = FaultSpec("harq-nack")
    assert spec.kind is FaultKind.HARQ_NACK


@pytest.mark.parametrize("kwargs, match", [
    ({"kind": "no-such-kind"}, "no-such-kind"),
    ({"kind": "rlc-loss", "start_ms": -1.0}, "start_ms"),
    ({"kind": "rlc-loss", "start_ms": 5.0, "stop_ms": 5.0}, "stop_ms"),
    ({"kind": "rlc-loss", "probability": 1.5}, "probability"),
    ({"kind": "gnb-overload", "factor": 0.5}, "factor"),
    ({"kind": "radio-stall", "stall_us": -3.0}, "stall_us"),
])
def test_spec_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FaultSpec(**kwargs)


def test_spec_dict_roundtrip_rejects_unknown_fields():
    spec = FaultSpec(FaultKind.RLC_LOSS, start_ms=1.0, stop_ms=2.0,
                     probability=0.25, target="gnb")
    assert FaultSpec.from_dict(spec.to_dict()) == spec
    with pytest.raises(ValueError, match="unknown fault-spec"):
        FaultSpec.from_dict({"kind": "rlc-loss", "oops": 1})
    with pytest.raises(ValueError, match="missing 'kind'"):
        FaultSpec.from_dict({"probability": 0.5})


def test_scaling_clamps_probability_and_interpolates_factor():
    spec = FaultSpec(FaultKind.GNB_OVERLOAD, probability=0.4, factor=4.0)
    half = spec.scaled(0.5)
    assert half.probability == pytest.approx(0.2)
    assert half.factor == pytest.approx(2.5)
    cranked = spec.scaled(10.0)
    assert cranked.probability == 1.0   # clamped
    assert cranked.factor == pytest.approx(31.0)  # keeps growing
    with pytest.raises(ValueError, match="intensity"):
        spec.scaled(-0.1)


def test_intensity_zero_disarms_every_spec():
    disarmed = PRESET_PLANS["standard"].scaled(0.0)
    assert all(spec.probability == 0.0 for spec in disarmed.specs)
    assert all(spec.factor == 1.0 for spec in disarmed.specs)


def test_plan_json_roundtrip_is_canonical():
    plan = PRESET_PLANS["standard"]
    text = plan.to_json()
    assert FaultPlan.from_json(text) == plan
    assert FaultPlan.from_json(text).to_json() == text
    with pytest.raises(ValueError, match="list of specs"):
        FaultPlan.from_json('{"kind": "rlc-loss"}')


def test_empty_plan_is_falsy():
    assert not FaultPlan()
    assert PRESET_PLANS["standard"]


def test_resolve_accepts_presets_and_inline_json():
    assert FaultPlan.resolve("standard") == PRESET_PLANS["standard"]
    inline = FaultPlan((FaultSpec(FaultKind.UPF_OUTAGE, start_ms=1.0,
                                  stop_ms=2.0),))
    assert FaultPlan.resolve(inline.to_json()) == inline
    with pytest.raises(ValueError, match="presets"):
        FaultPlan.resolve("no-such-preset")
