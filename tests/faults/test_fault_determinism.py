"""Fault-injection determinism: same seed, same faults, same digest."""

import pytest

from repro.faults import FaultCounters, PRESET_PLANS, FaultPlan
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import GilbertElliottChannel, IidErasureChannel
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.runner import Campaign, CampaignRunner
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

CHANNELS = {
    "perfect": lambda: None,
    "iid": lambda: IidErasureChannel(0.01),
    "ge": lambda: GilbertElliottChannel(
        mean_good_tc=tc_from_ms(20.0), mean_bad_tc=tc_from_ms(2.0)),
}


def _run(seed, plan, channel="perfect", direction="dl", packets=60,
         horizon_ms=600.0):
    """One traced run; returns (digest, counter metrics, latencies)."""
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE,
                  gnb_radio_head=RadioHead("b210", usb3(), gpos()),
                  channel=CHANNELS[channel](),
                  trace=True,
                  fault_plan=plan,
                  seed=seed))
    arrivals = uniform_in_horizon(
        packets, tc_from_ms(horizon_ms),
        RngRegistry(seed + 1).stream("arrivals"))
    if direction == "dl":
        probe = system.run_downlink(arrivals)
    else:
        probe = system.run_uplink(arrivals)
    counters = (system.faults.counters if system.faults is not None
                else FaultCounters())
    return (system.tracer.digest(), counters.as_metrics(),
            tuple(probe.latencies_us()))


@pytest.mark.parametrize("channel", sorted(CHANNELS))
def test_same_seed_replays_identical_faults(channel):
    plan = PRESET_PLANS["standard"]
    first = _run(7, plan, channel=channel)
    second = _run(7, plan, channel=channel)
    assert first == second


def test_uplink_is_deterministic_too():
    plan = PRESET_PLANS["standard"]
    assert _run(11, plan, channel="iid", direction="ul") == \
        _run(11, plan, channel="iid", direction="ul")


@pytest.mark.parametrize("channel", ["perfect", "iid"])
def test_intensity_zero_plan_is_bit_identical_to_no_plan(channel):
    disarmed = PRESET_PLANS["standard"].scaled(0.0)
    assert _run(3, disarmed, channel=channel) == \
        _run(3, None, channel=channel)
    assert _run(3, FaultPlan(), channel=channel) == \
        _run(3, None, channel=channel)


def test_standard_plan_fires_every_fault_kind_downlink():
    _, metrics, _ = _run(7, PRESET_PLANS["standard"], packets=80)
    assert all(metrics[key] > 0 for key in sorted(metrics)), metrics


def test_fired_faults_are_traced_under_the_fault_category():
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE,
                  gnb_radio_head=RadioHead("b210", usb3(), gpos()),
                  trace=True,
                  fault_plan=PRESET_PLANS["standard"],
                  seed=7))
    arrivals = uniform_in_horizon(80, tc_from_ms(600.0),
                                  RngRegistry(8).stream("arrivals"))
    system.run_downlink(arrivals)
    names = {record.name for record in system.tracer.records("fault")}
    assert names >= {"harq_nack", "harq_dtx", "rlc_loss",
                     "radio_stall", "gnb_overload", "upf_outage"}


def _chaos_campaign():
    return Campaign.from_grid(
        "chaos-mini", seed=404, scenario="chaos-latency",
        grid={"direction": ["dl", "ul"], "intensity": [0.0, 1.0]},
        fixed={"access": "grant-free", "packets": 30,
               "horizon_ms": 600.0, "faults": "standard",
               "channel": "iid", "bler": 0.01})


def test_chaos_campaign_serial_equals_four_workers():
    campaign = _chaos_campaign()
    serial = CampaignRunner(workers=1).run(campaign)
    with CampaignRunner(workers=4) as runner:
        parallel = runner.run(campaign)
    assert [p.result for p in serial.point_results] == \
        [p.result for p in parallel.point_results]
    assert serial.metrics() == parallel.metrics()
