"""Golden equivalence suite: slotted engine ≡ scalar engine, bitwise.

The slotted executor's contract (repro.sim.slotted, "Bit-identity
contract") is not statistical agreement but exact equality: same
latency integers, same budget decomposition, same counters, same
tracer digest.  This suite pins the contract across every execution
regime the engine distinguishes internally:

- channel families (perfect / IID erasure / zero-BLER IID /
  Gilbert-Elliott) — the zero-BLER case draws uniforms without ever
  failing, which must keep the slow transmit path;
- fault intensity 0 and 0.5 of the standard plan (precise-clock mode);
- tracing on and off (per-layer event path vs fused paths);
- sparse and heavily overlapping arrival processes (vectorized
  pre-pass vs interleaved cluster replay);
- block-buffered and forced-sequential sampling;
- the runtime determinism sanitizer, which must see the population
  streams resolve to exclusive owners with unchanged results.
"""

import pytest

from repro.faults import FaultPlan
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import GilbertElliottChannel, IidErasureChannel
from repro.phy.timebase import TC_PER_MS
from repro.sim.rng import RngRegistry
from repro.sim.sampling import force_sequential
from repro.sim.sanitize import sanitizer_session
from repro.traffic.generators import uniform_in_horizon


def _make_channel(kind):
    if kind == "iid":
        return IidErasureChannel(0.3)
    if kind == "iid-zero":
        # Never fails but consumes one uniform per block: exercises
        # the engine's "cannot take the draw-free transmit fast path"
        # distinction.
        return IidErasureChannel(0.0)
    if kind == "ge":
        return GilbertElliottChannel(
            mean_good_tc=20 * TC_PER_MS, mean_bad_tc=2 * TC_PER_MS,
            bler_good=0.01, bler_bad=0.9)
    return None


def _run(engine, channel_kind="perfect", intensity=0.0, trace=False,
         n_ues=4, packets_per_ue=5, horizon_ms=40):
    plan = None
    if intensity:
        plan = FaultPlan.resolve("standard").scaled(intensity)
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues, seed=7,
                  channel=_make_channel(channel_kind), fault_plan=plan,
                  trace=trace, engine=engine))
    rngs = RngRegistry(123)
    horizon = horizon_ms * TC_PER_MS
    for ue_id in range(1, n_ues + 1):
        system.queue_uplink(
            uniform_in_horizon(packets_per_ue, horizon,
                               rngs.stream(f"arrivals.ue{ue_id}")),
            ue_id=ue_id)
    system.run()
    out = {
        "latencies": tuple(system.ul_probe.latencies_tc()),
        "budgets": tuple(sorted(
            system.ul_probe.budget_means_us().items())),
        "delivered": len(system.ul_probe),
        "blocks_sent": system.link.counters.blocks_sent,
        "blocks_failed": system.link.counters.blocks_failed,
        "dropped": system.link.counters.packets_dropped,
        "ul_out": system.gnb.counters.ul_packets_out,
        "cg_alloc": system.gnb.scheduler.counters.cg_allocated_bytes,
        "cg_used": system.gnb.scheduler.counters.cg_used_bytes,
        "engine": system.engine_mode,
    }
    if trace:
        out["digest"] = system.tracer.digest()
    return out


@pytest.mark.parametrize("trace", [False, True])
@pytest.mark.parametrize("intensity", [0.0, 0.5])
@pytest.mark.parametrize("channel_kind",
                         ["perfect", "iid", "iid-zero", "ge"])
def test_slotted_matches_scalar_bitwise(channel_kind, intensity, trace):
    scalar = _run("scalar", channel_kind, intensity, trace)
    slotted = _run("slotted", channel_kind, intensity, trace)
    assert scalar.pop("engine") == "scalar"
    assert slotted.pop("engine") == "slotted"
    assert scalar == slotted


def test_slotted_matches_scalar_with_overlapping_chains():
    """Dense arrivals: most transit chains overlap the UE's next
    arrival, forcing the interleaved-replay path of the plan
    pre-pass (and, under faults, the per-layer event path)."""
    scalar = _run("scalar", n_ues=3, packets_per_ue=40, horizon_ms=25)
    slotted = _run("slotted", n_ues=3, packets_per_ue=40,
                   horizon_ms=25)
    assert scalar.pop("engine") == "scalar"
    assert slotted.pop("engine") == "slotted"
    assert scalar == slotted


def test_slotted_buffered_equals_forced_sequential():
    buffered = _run("slotted")
    with force_sequential():
        sequential = _run("slotted")
    assert buffered == sequential


def test_slotted_under_sanitizer_resolves_streams_and_matches():
    scalar = _run("scalar")
    with sanitizer_session() as log:
        slotted = _run("slotted")
    assert scalar.pop("engine") == "scalar"
    assert slotted.pop("engine") == "slotted"
    assert scalar == slotted
    # Every population stream the slotted engine consumes resolved in
    # the sanitizer's ownership map: the per-UE chain streams and the
    # shared gnb stream are exclusively claimed by their block
    # servers, and all were actually drawn from.
    for name in ["gnb"] + [f"ue{i}" for i in range(1, 5)]:
        stream = log.streams[name]
        assert stream.exclusive_owner is not None, name
        assert stream.draws > 0, name


def test_slotted_runs_are_reproducible():
    assert _run("slotted") == _run("slotted")
