"""Golden traces: buffered sampling is bit-identical to sequential.

The buffered-sampler determinism contract (docs/PERFORMANCE.md) claims
that pre-drawing blocks never changes a simulation: only exclusive
single-consumer streams are buffered, and a vectorized batch consumes
the generator exactly as scalar draws would.  These tests prove it the
strong way — run the same workload with buffering enabled (the default)
and with :func:`repro.sim.sampling.force_sequential`, and require the
full result payload / `Tracer.digest` to be identical, for every
registered scenario and for traced DES runs with every channel model.
"""

import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import GilbertElliottChannel, IidErasureChannel
from repro.phy.timebase import tc_from_ms
from repro.runner import SCENARIOS, Campaign, run_point
from repro.sim.rng import RngRegistry
from repro.sim.sampling import force_sequential
from repro.traffic.generators import uniform_in_horizon

# One representative (cheap) parameter set per registered scenario;
# test_scenario_specs_cover_every_registered_scenario pins completeness.
SCENARIO_SPECS = {
    "radio-sweep": {"bus": "usb3", "samples": 4_000, "repetitions": 15},
    "ran-latency": {"access": "grant-based", "direction": "ul",
                    "packets": 12, "horizon_ms": 80.0},
    "sensitivity-latency": {"rh_setup_us": 145.0,
                            "ue_processing_scale": 8.0,
                            "gnb_processing_scale": 1.0,
                            "packets": 10, "horizon_ms": 60.0,
                            "sim_seed": 171, "arrivals_seed": 172},
    "multi-ue": {"n_ues": 2, "packets_per_ue": 6, "horizon_ms": 60.0},
    "multi-ue-massive": {"n_ues": 8, "packets_per_ue": 5,
                         "horizon_ms": 60.0, "engine": "slotted"},
    "design-feasibility": {"index": 0, "mu": 2, "max_period_ms": 1.0,
                           "budget_ms": 0.5, "reliability": 0.99999},
    "chaos-latency": {"access": "grant-free", "direction": "dl",
                      "packets": 12, "horizon_ms": 600.0,
                      "faults": "standard", "intensity": 1.0,
                      "channel": "iid", "bler": 0.01},
    "chaos-selftest": {"mode": "ok"},
}


def test_scenario_specs_cover_every_registered_scenario():
    assert sorted(SCENARIO_SPECS) == sorted(SCENARIOS)


@pytest.mark.parametrize("name", sorted(SCENARIO_SPECS))
def test_buffered_equals_sequential_for_registered_scenario(name):
    campaign = Campaign.build("golden", 29, [(name, SCENARIO_SPECS[name])])
    point = campaign.points[0]
    buffered = run_point(point)
    with force_sequential():
        sequential = run_point(point)
    assert buffered == sequential  # bit-identical payload


def _traced_digest(channel):
    system = RanSystem(testbed_dddu(), RanConfig(
        seed=7, trace=True, access=AccessMode.GRANT_BASED,
        channel=channel))
    arrivals = uniform_in_horizon(25, tc_from_ms(80.0),
                                  RngRegistry(11).stream("arrivals"))
    system.run_uplink(list(arrivals))
    return system.tracer.digest()


@pytest.mark.parametrize("make_channel", [
    lambda: None,  # PerfectChannel
    lambda: IidErasureChannel(bler=0.3),  # exercises HARQ + buffering
    lambda: GilbertElliottChannel(mean_good_tc=200_000,
                                  mean_bad_tc=100_000,
                                  bler_good=0.05),  # stays scalar
], ids=["perfect", "iid-erasure", "gilbert-elliott"])
def test_traced_des_digest_unchanged_by_buffering(make_channel):
    buffered = _traced_digest(make_channel())
    with force_sequential():
        sequential = _traced_digest(make_channel())
    assert buffered == sequential
