"""Integration tests for feedback-timed HARQ in the full DES."""

import pytest

from repro.mac.catalog import testbed_dddu
from repro.mac.harq import HarqFeedbackModel
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import IidErasureChannel
from repro.phy.timebase import tc_from_ms, us_from_tc
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def arrivals(n, seed, horizon_ms=1_000):
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("a"))


def test_feedback_delays_retransmission_vs_idealised():
    def mean_with(feedback):
        system = RanSystem(
            testbed_dddu(),
            RanConfig(channel=IidErasureChannel(0.3), seed=51,
                      harq_feedback=feedback))
        probe = system.run_downlink(arrivals(200, seed=52))
        retx = [us_from_tc(p.latency_tc) for p in probe.packets
                if p.harq_retransmissions > 0]
        return sum(retx) / len(retx)

    assert mean_with(True) > mean_with(False) + 500.0


def test_pool_releases_keep_in_flight_bounded():
    system = RanSystem(testbed_dddu(), RanConfig(seed=53))
    system.run_downlink(arrivals(300, seed=54))
    assert system.harq_pool is not None
    assert system.harq_pool.in_flight == 0
    assert system.harq_pool.peak_in_flight >= 1


def test_tiny_pool_stalls_under_backlog():
    # One HARQ process on DDDU: the feedback round trip spans the
    # pattern, so at most one block per ~2 ms can fly; a backlog forces
    # window stalls but everything still delivers.
    system = RanSystem(testbed_dddu(),
                       RanConfig(seed=55, harq_processes=1))
    probe = system.run_downlink(arrivals(60, seed=56, horizon_ms=100))
    assert len(probe) == 60
    assert system.harq_pool.stalls > 0


def test_stalls_absent_with_full_pool():
    system = RanSystem(testbed_dddu(),
                       RanConfig(seed=57, harq_processes=16))
    system.run_downlink(arrivals(60, seed=56, horizon_ms=100))
    assert system.harq_pool.stalls == 0


def test_feedback_round_trip_magnitude_on_dddu():
    # DL feedback must wait for the pattern's UL slot: round trip is
    # between 0.5 and ~2.5 ms plus processing, never instantaneous.
    model = HarqFeedbackModel(testbed_dddu())
    for completion_ms in (0.0, 0.7, 1.4):
        timing = model.timing(tc_from_ms(completion_ms))
        rtt_us = us_from_tc(timing.round_trip_tc)
        assert 400.0 <= rtt_us <= 2_600.0


def test_budget_stays_complete_with_harq_losses():
    system = RanSystem(
        testbed_dddu(),
        RanConfig(channel=IidErasureChannel(0.25), seed=58))
    probe = system.run_downlink(arrivals(150, seed=59))
    assert len(probe) == 150
    for packet in probe.packets:
        assert packet.unattributed_tc() == 0
