"""End-to-end reproduction of the paper's quantitative claims.

Each test states the paper sentence it verifies.  Tolerances are loose
by design — we match *shapes* (who wins, by roughly what factor), not
testbed-specific absolute numbers.
"""

import numpy as np
import pytest

from repro import calibration
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def testbed_system(access, seed=100):
    """The §7 configuration: DDDU, 0.5 ms slots, USB SDR, GPOS."""
    rh = RadioHead("b210", usb3(), gpos())
    return RanSystem(testbed_dddu(),
                     RanConfig(access=access, gnb_radio_head=rh,
                               seed=seed))


def arrivals(n=400, horizon_ms=2_000, seed=77):
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("a"))


@pytest.fixture(scope="module")
def fig6():
    """All four Fig 6 series, simulated once."""
    series = {}
    for access in (AccessMode.GRANT_BASED, AccessMode.GRANT_FREE):
        dl = testbed_system(access).run_downlink(arrivals())
        ul = testbed_system(access).run_uplink(arrivals())
        series[access] = {"dl": dl, "ul": ul}
    return series


def test_fig6_ul_latency_much_bigger_than_dl(fig6):
    # §7: "In the UL channel, the latency is much bigger than the DL."
    for access in fig6:
        ul = fig6[access]["ul"].summary().mean_us
        dl = fig6[access]["dl"].summary().mean_us
        assert ul > 1.1 * dl


def test_fig6_sr_grant_adds_about_one_tdd_period(fig6):
    # §7: "the SR and Grant procedure [adds] one TDD period to the
    # latency for the handshake ... eliminated by grant-free access."
    based = fig6[AccessMode.GRANT_BASED]["ul"].summary().mean_us
    free = fig6[AccessMode.GRANT_FREE]["ul"].summary().mean_us
    period_us = 2_000.0
    assert based - free == pytest.approx(period_us, rel=0.25)


def test_fig6_dl_unaffected_by_access_mode(fig6):
    based = fig6[AccessMode.GRANT_BASED]["dl"].summary().mean_us
    free = fig6[AccessMode.GRANT_FREE]["dl"].summary().mean_us
    assert based == pytest.approx(free, rel=0.05)


def test_fig6_magnitudes_match_measured_ranges(fig6):
    # Fig 6: DL mass around 1-3 ms; grant-based UL mass around 3-6 ms,
    # grant-free UL around 1-3 ms.
    dl = fig6[AccessMode.GRANT_BASED]["dl"].summary()
    assert 1_000 <= dl.mean_us <= 3_000
    based_ul = fig6[AccessMode.GRANT_BASED]["ul"].summary()
    assert 3_000 <= based_ul.mean_us <= 6_000
    free_ul = fig6[AccessMode.GRANT_FREE]["ul"].summary()
    assert 1_000 <= free_ul.mean_us <= 3_000


def test_fig6_urllc_requirements_not_met(fig6):
    # §7: "due to the limitations in the software and hardware in use,
    # URLLC requirements are not met in this real-world demonstration."
    for access in fig6:
        for direction in ("dl", "ul"):
            assert fig6[access][direction].fraction_within(500.0) < 0.5


def test_table2_layer_means_match_calibration(fig6):
    # The sampled per-layer processing must agree with the Table 2
    # distributions that calibrate it (self-consistency check).
    probe = fig6[AccessMode.GRANT_FREE]["dl"]
    system = testbed_system(AccessMode.GRANT_FREE, seed=5)
    system.run_downlink(arrivals(600))
    for name in ("SDAP", "PDCP", "RLC"):
        layer = system.gnb.down_pipeline.layer(name)
        mean, _ = calibration.GNB_LAYER_STATS[name]
        assert np.mean(layer.samples_us) == pytest.approx(mean, rel=0.25)


def test_table2_rlc_queue_wait_dominates():
    # Table 2: RLC-q (484 µs) is an order of magnitude above every
    # processing row; the simulated queue wait must reproduce that
    # dominance and the few-hundred-µs magnitude.
    system = testbed_system(AccessMode.GRANT_FREE, seed=8)
    system.run_downlink(arrivals(800))
    waits = system.gnb.scheduler.dl_queue(1).wait_samples_us
    mean_wait = float(np.mean(waits))
    biggest_processing = max(
        mean for mean, _ in calibration.GNB_LAYER_STATS.values())
    assert mean_wait > 3 * biggest_processing
    assert 200.0 <= mean_wait <= 800.0


def test_rh_forces_one_slot_delay():
    # §7: "since the RH in use introduces around 500 µs latency, the
    # transmission must always be delayed for one slot".
    system = testbed_system(AccessMode.GRANT_FREE)
    slot_tc = testbed_dddu().numerology.slot_duration_tc
    assert system.gnb.margin_tc >= slot_tc


def test_deadline_misses_are_rare_but_present():
    # §6: OS spikes occasionally exceed the margin.
    system = testbed_system(AccessMode.GRANT_FREE, seed=31)
    system.run_downlink(arrivals(1_500, horizon_ms=6_000))
    misses = system.gnb.scheduler.counters.dl_deadline_misses
    blocks = system.gnb.scheduler.counters.dl_transport_blocks
    assert blocks > 0
    assert misses / (misses + blocks) < 0.05
