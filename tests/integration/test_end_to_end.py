"""Cross-module integration tests and system-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import LatencyModel
from repro.mac.catalog import (
    fdd,
    minimal_dm,
    minimal_mini_slot,
    testbed_dddu,
)
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms, us_from_tc
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def arrivals(n, seed, horizon_ms=1_000):
    return uniform_in_horizon(n, tc_from_ms(horizon_ms),
                              RngRegistry(seed).stream("x"))


def _slot_format_scheme():
    from repro.mac.slot_format import SlotFormatConfig
    from repro.phy.numerology import Numerology
    return SlotFormatConfig(Numerology(2), [0, 28, 1, 1])


@pytest.mark.parametrize("make_scheme", [minimal_dm, fdd,
                                         minimal_mini_slot,
                                         testbed_dddu,
                                         _slot_format_scheme])
def test_every_scheme_runs_the_full_des(make_scheme):
    system = RanSystem(make_scheme(), RanConfig(seed=3))
    probe = system.run_downlink(arrivals(40, seed=3))
    assert len(probe) == 40


@pytest.mark.parametrize("access", list(AccessMode))
def test_des_latency_bounded_by_analytic_worst_plus_processing(access):
    """The DES can never beat the analytical worst case by more than
    its processing/radio overhead allows — and with a zero-overhead
    configuration, per-packet protocol time must respect the analytic
    extremes."""
    scheme = testbed_dddu()
    system = RanSystem(scheme, RanConfig(access=access, seed=17))
    probe = system.run_uplink(arrivals(120, seed=17))
    model = LatencyModel(scheme)
    extremes = model.extremes(Direction.UL, access)
    worst_us = us_from_tc(extremes.worst_tc)
    for packet in probe.packets:
        from repro.stack.packets import LatencySource
        protocol_us = us_from_tc(packet.budget[LatencySource.PROTOCOL])
        # The analytic model covers a lone packet; in the DES a packet
        # can additionally queue behind an earlier burst whose
        # BSR-sized grant did not cover it, costing one extra SR/grant
        # cycle.  Allow up to two chained cycles plus quantisation
        # slack.
        assert protocol_us <= 2 * worst_us * 1.10 + 300.0


def test_dl_des_within_analytic_worst():
    scheme = testbed_dddu()
    system = RanSystem(scheme, RanConfig(seed=19))
    probe = system.run_downlink(arrivals(120, seed=19))
    worst_us = us_from_tc(
        LatencyModel(scheme).extremes(Direction.DL).worst_tc)
    from repro.stack.packets import LatencySource
    for packet in probe.packets:
        protocol_us = us_from_tc(packet.budget[LatencySource.PROTOCOL])
        assert protocol_us <= worst_us * 1.10 + 300.0


def test_mixed_ping_and_data_traffic():
    system = RanSystem(testbed_dddu(), RanConfig(seed=23))
    system.run_ping(arrivals(10, seed=1))
    assert len(system.ping_results) == 10
    # DL probe saw the replies.
    assert len(system.dl_probe) == 10


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_no_packet_is_lost_on_a_perfect_channel(seed):
    system = RanSystem(testbed_dddu(), RanConfig(seed=seed))
    probe = system.run_downlink(arrivals(25, seed=seed))
    assert len(probe) == 25
    assert not any(p.dropped for p in probe.packets)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_budget_decomposition_always_complete(seed):
    system = RanSystem(minimal_dm(), RanConfig(seed=seed))
    probe = system.run_uplink(arrivals(25, seed=seed, horizon_ms=100))
    for packet in probe.packets:
        assert packet.unattributed_tc() == 0


def test_latencies_are_strictly_positive_everywhere():
    system = RanSystem(fdd(), RanConfig(seed=29))
    dl = system.run_downlink(arrivals(30, seed=29))
    system2 = RanSystem(fdd(), RanConfig(seed=30))
    ul = system2.run_uplink(arrivals(30, seed=30))
    assert min(dl.latencies_tc()) > 0
    assert min(ul.latencies_tc()) > 0
