"""Unit tests for the Wi-Fi DCF baseline."""

import numpy as np
import pytest

from repro.baselines.wifi import WifiBaseline, WifiParameters


def test_single_station_never_collides():
    assert WifiBaseline(n_stations=1).collision_probability() == 0.0


def test_collision_probability_grows_with_stations():
    probabilities = [WifiBaseline(n).collision_probability()
                     for n in (1, 2, 5, 20)]
    assert probabilities == sorted(probabilities)
    assert probabilities[-1] < 1.0


def test_access_delay_floor(rng):
    # DIFS + airtime is the absolute floor (zero backoff, no collision).
    baseline = WifiBaseline(n_stations=1)
    params = baseline.params
    floor = params.difs_us + params.frame_airtime_us
    samples = baseline.sample_access_delays_us(2_000, rng)
    assert min(samples) >= floor


def test_contention_produces_heavy_tail(rng):
    lone = WifiBaseline(n_stations=1)
    crowded = WifiBaseline(n_stations=15)
    lone_samples = np.array(lone.sample_access_delays_us(20_000, rng))
    crowded_samples = np.array(
        crowded.sample_access_delays_us(20_000, rng))
    crowded_finite = crowded_samples[np.isfinite(crowded_samples)]
    assert np.quantile(crowded_finite, 0.99) > \
        2 * np.quantile(lone_samples, 0.99)


def test_drops_possible_under_contention(rng):
    baseline = WifiBaseline(
        n_stations=40,
        params=WifiParameters(max_retries=1, cw_min=3))
    samples = baseline.sample_access_delays_us(5_000, rng)
    assert any(s == float("inf") for s in samples)


def test_deadline_reliability_degrades_with_stations(rng):
    lone = WifiBaseline(1).deadline_reliability(500.0, rng, draws=8_000)
    crowded = WifiBaseline(20).deadline_reliability(500.0, rng,
                                                    draws=8_000)
    assert lone > crowded


def test_urllc_reliability_unreachable(rng):
    # Even a small cell misses 99.999% within 0.5 ms.
    reliability = WifiBaseline(5).deadline_reliability(500.0, rng,
                                                       draws=20_000)
    assert reliability < 0.99999


def test_validation(rng):
    with pytest.raises(ValueError):
        WifiBaseline(0)
    with pytest.raises(ValueError):
        WifiBaseline(1).sample_access_delays_us(0, rng)
