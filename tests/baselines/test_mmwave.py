"""Unit tests for the FR2 mmWave baseline."""

import pytest

from repro.baselines.mmwave import (
    PAPER_SUB_MS_FRACTION,
    MmWaveBaseline,
    MmWaveParameters,
)


def test_sub_ms_fraction_matches_fezeu(rng):
    # §1: "sub-millisecond latencies in 5G mmWave can be achieved only
    # 4.4% of the time rather than 99.99%".  Calibration tolerance is
    # generous — the claim is the order of magnitude, not the digit.
    fraction = MmWaveBaseline().sub_ms_fraction(rng, draws=60_000)
    assert 0.02 <= fraction <= 0.09
    assert abs(fraction - PAPER_SUB_MS_FRACTION) < 0.04


def test_reliability_is_nowhere_near_urllc(rng):
    fraction = MmWaveBaseline().sub_ms_fraction(rng, draws=20_000)
    assert fraction < 0.9999


def test_blockage_adds_heavy_tail(rng):
    baseline = MmWaveBaseline()
    samples = baseline.sample_latencies_us(30_000, rng)
    p50 = sorted(samples)[len(samples) // 2]
    p99 = sorted(samples)[int(len(samples) * 0.99)]
    # Beam recovery puts the p99 tens of milliseconds out.
    assert p99 > 5 * p50
    assert p99 > 10_000


def test_los_fraction_validated():
    with pytest.raises(ValueError):
        MmWaveBaseline(MmWaveParameters(los_fraction=1.0))


def test_sample_count_validated(rng):
    with pytest.raises(ValueError):
        MmWaveBaseline().sample_latencies_us(0, rng)


def test_channel_stationary_fraction():
    baseline = MmWaveBaseline(MmWaveParameters(los_fraction=0.6))
    assert baseline.channel.stationary_good_fraction == \
        pytest.approx(0.6, abs=0.01)
