"""Unit tests for the Bluetooth baseline."""

import pytest

from repro.baselines.bluetooth import (
    BLUETOOTH_SLOT_US,
    MAX_ACTIVE_SLAVES,
    BluetoothPiconet,
)


def test_fixed_slot_length():
    # §9: "a fixed 625 µs slot length".
    assert BLUETOOTH_SLOT_US == 625.0


def test_piconet_size_limit():
    assert MAX_ACTIVE_SLAVES == 7
    with pytest.raises(ValueError):
        BluetoothPiconet(8)
    with pytest.raises(ValueError):
        BluetoothPiconet(0)


def test_polling_cycle_scales_with_slaves():
    assert BluetoothPiconet(1).polling_cycle_us == 2 * 625.0
    assert BluetoothPiconet(7).polling_cycle_us == 14 * 625.0


def test_worst_case_exceeds_urllc_for_full_piconet():
    full = BluetoothPiconet(7)
    assert full.worst_case_uplink_us() > 500.0
    assert not full.meets_urllc_latency()


def test_even_single_slave_misses_urllc():
    # 2 slots cycle + 1 slot tx = 1 875 µs worst case.
    assert not BluetoothPiconet(1).meets_urllc_latency(500.0)


def test_mean_below_worst():
    piconet = BluetoothPiconet(4)
    assert piconet.mean_uplink_us() < piconet.worst_case_uplink_us()


def test_samples_within_bounds(rng):
    piconet = BluetoothPiconet(3)
    samples = piconet.sample_uplinks_us(5_000, rng)
    assert min(samples) >= BLUETOOTH_SLOT_US
    assert max(samples) <= piconet.worst_case_uplink_us()
    with pytest.raises(ValueError):
        piconet.sample_uplinks_us(0, rng)
