"""The public API surface: exports resolve and stay consistent."""

import importlib

import pytest

import repro

PACKAGES = ["repro", "repro.sim", "repro.phy", "repro.mac",
            "repro.stack", "repro.radio", "repro.net", "repro.traffic",
            "repro.baselines", "repro.analysis", "repro.core",
            "repro.devtools", "repro.devtools.lintkit",
            "repro.runner", "repro.faults"]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), (
            f"{package_name}.__all__ lists {name!r} but it is missing")


def test_version():
    assert repro.__version__ == "1.0.0"


def test_headline_workflow_via_top_level_imports():
    matrix = repro.feasibility_matrix()
    text = repro.render_table1(matrix)
    assert "✓" in text
    model = repro.LatencyModel(repro.minimal_dm())
    extremes = model.extremes(repro.Direction.DL)
    assert repro.URLLC_5G.met_by_worst_case(extremes)


def test_every_public_item_has_a_docstring():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        for name in package.__all__:
            item = getattr(package, name)
            if callable(item) or isinstance(item, type):
                assert item.__doc__, (
                    f"{package_name}.{name} lacks a docstring")


def test_module_docstrings_exist():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        assert package.__doc__, f"{package_name} lacks a module docstring"
