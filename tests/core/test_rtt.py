"""Tests for the composed round-trip analysis (the 1 ms RTT target)."""

import pytest

from repro.core.feasibility import URLLC_5G
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import fdd, minimal_dm, testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms, tc_from_us, us_from_tc
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def test_rtt_composes_not_adds():
    # The composed worst RTT is below the sum of per-direction worst
    # cases: the reply never starts at the DL path's own worst phase.
    model = LatencyModel(minimal_dm())
    rtt = model.rtt_extremes(AccessMode.GRANT_FREE)
    ul = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
    dl = model.extremes(Direction.DL)
    assert rtt.worst_tc < ul.worst_tc + dl.worst_tc
    assert rtt.worst_tc >= max(ul.worst_tc, dl.worst_tc)


def test_dm_grant_free_meets_the_1ms_round_trip():
    # The headline requirement: 1 ms round trip (§1).
    model = LatencyModel(minimal_dm())
    rtt = model.rtt_extremes(AccessMode.GRANT_FREE)
    assert rtt.worst_tc <= URLLC_5G.round_trip_budget_tc


def test_dm_grant_based_violates_the_round_trip():
    model = LatencyModel(minimal_dm())
    rtt = model.rtt_extremes(AccessMode.GRANT_BASED)
    assert rtt.worst_tc > URLLC_5G.round_trip_budget_tc


def test_server_turnaround_shifts_rtt():
    model = LatencyModel(fdd())
    fast = model.rtt_extremes(AccessMode.GRANT_FREE)
    slow = model.rtt_extremes(AccessMode.GRANT_FREE,
                              server_turnaround=tc_from_us(100.0))
    assert slow.worst_tc >= fast.worst_tc
    with pytest.raises(ValueError):
        model.rtt_completion(0, server_turnaround=-1)


def test_rtt_bounds_hold_pointwise():
    model = LatencyModel(testbed_dddu())
    extremes = model.rtt_extremes(AccessMode.GRANT_FREE)
    for arrival in range(0, model.scheme.period_tc,
                         model.scheme.period_tc // 37):
        rtt = model.rtt_completion(arrival,
                                   AccessMode.GRANT_FREE) - arrival
        assert extremes.best_tc <= rtt <= extremes.worst_tc


def test_des_pings_respect_analytic_rtt_plus_overheads():
    scheme = testbed_dddu()
    system = RanSystem(scheme, RanConfig(access=AccessMode.GRANT_FREE,
                                         ue_processing_scale=0.001,
                                         gnb_processing_scale=0.001,
                                         seed=71))
    arrivals = uniform_in_horizon(60, tc_from_ms(500),
                                  RngRegistry(72).stream("a"))
    results = system.run_ping(arrivals)
    assert len(results) == 60
    # Server turnaround is 20 µs in the DES; overheads (APP, UPF ×2,
    # min-tx room) stay within a few hundred µs of the analytics.
    analytic = LatencyModel(scheme).rtt_extremes(
        AccessMode.GRANT_FREE, server_turnaround=tc_from_us(20.0))
    worst_measured = max(us_from_tc(r.rtt_tc) for r in results)
    assert worst_measured <= us_from_tc(analytic.worst_tc) + 500.0