"""Tests for the exact phase-averaged mean latency."""

import numpy as np
import pytest

from repro.core.latency_model import LatencyModel
from repro.mac.catalog import (
    fdd,
    minimal_dm,
    minimal_mini_slot,
    testbed_dddu,
)
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms, us_from_tc
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

SCHEMES = [minimal_dm, fdd, minimal_mini_slot, testbed_dddu]
MODES = [("dl", Direction.DL, AccessMode.GRANT_FREE),
         ("gf", Direction.UL, AccessMode.GRANT_FREE),
         ("gb", Direction.UL, AccessMode.GRANT_BASED)]


@pytest.mark.parametrize("make_scheme", SCHEMES)
@pytest.mark.parametrize("label,direction,access", MODES)
def test_mean_matches_monte_carlo(make_scheme, label, direction,
                                  access):
    scheme = make_scheme()
    model = LatencyModel(scheme)
    exact = model.mean_latency_tc(direction, access)
    rng = np.random.default_rng(7)
    arrivals = rng.integers(0, scheme.period_tc, size=4_000)
    sampled = np.mean([model.completion(int(t), direction, access) - t
                       for t in arrivals])
    assert exact == pytest.approx(float(sampled), rel=0.05)


def test_mean_between_best_and_worst():
    model = LatencyModel(testbed_dddu())
    for _, direction, access in MODES:
        extremes = model.extremes(direction, access)
        mean = model.mean_latency_tc(direction, access)
        assert extremes.best_tc <= mean <= extremes.worst_tc


def test_grant_based_mean_exceeds_grant_free():
    model = LatencyModel(testbed_dddu())
    assert model.mean_latency_tc(Direction.UL, AccessMode.GRANT_BASED) \
        > model.mean_latency_tc(Direction.UL, AccessMode.GRANT_FREE)


def test_dddu_grant_free_mean_value():
    # Analytic sanity: windows [1.5, 2.0) per 2 ms pattern under the joining rule:
    # joining rule average exactly 1.0 ms + 0.375 ms·... — validated
    # against a hand integral: E[C(t)-t] = 1.0 ms exactly.
    model = LatencyModel(testbed_dddu())
    mean_us = model.mean_latency_us(Direction.UL, AccessMode.GRANT_FREE)
    assert mean_us == pytest.approx(1_000.0, rel=0.001)


def test_des_mean_tracks_analytic_plus_overheads():
    """With near-zero processing the DES uniform-arrival mean must sit
    close to the analytic phase average."""
    scheme = testbed_dddu()
    system = RanSystem(scheme, RanConfig(access=AccessMode.GRANT_FREE,
                                         ue_processing_scale=0.001,
                                         gnb_processing_scale=0.001,
                                         seed=41))
    arrivals = uniform_in_horizon(600, tc_from_ms(3_000),
                                  RngRegistry(42).stream("a"))
    measured = system.run_uplink(arrivals).summary().mean_us
    analytic = LatencyModel(scheme).mean_latency_us(
        Direction.UL, AccessMode.GRANT_FREE)
    # The DES sits slightly above the pure protocol mean: fixed APP
    # delay (30 µs), UPF forwarding (12 µs), and the 2-symbol minimum
    # transmission room (arrivals in a window's last symbols wait a
    # full pattern, ≈ +70 µs on DDDU).
    assert analytic < measured < analytic + 250.0
