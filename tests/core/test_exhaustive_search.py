"""Unit tests for the exhaustive configuration search."""

from fractions import Fraction

import pytest

from repro.core.design_space import (
    enumerate_common_configurations,
    exhaustive_search,
)
from repro.core.feasibility import Requirement
from repro.phy.timebase import tc_from_ms


def test_enumeration_is_substantial_and_wellformed():
    configs = enumerate_common_configurations()
    assert len(configs) >= 50
    for config in configs:
        letters = config.slot_letters()
        # The grammar shape: D* M? U*.
        stripped = "".join(letters).lstrip("D").rstrip("U")
        assert stripped in ("", "M")


def test_enumeration_respects_max_period():
    short = enumerate_common_configurations(max_period_ms=0.5)
    longer = enumerate_common_configurations(max_period_ms=2.5)
    assert len(short) < len(longer)
    for config in short:
        assert config.period_tc <= tc_from_ms(0.5)


def test_enumeration_contains_the_minimal_three():
    letters = {"".join(c.slot_letters())
               for c in enumerate_common_configurations(
                   max_period_ms=0.5)}
    assert {"DU", "DM", "MU"} <= letters


def test_only_dm_grant_free_survives_at_half_ms():
    feasible = exhaustive_search()
    assert feasible
    assert {("DM", "grant-free")} == {
        ("".join(c.slot_letters()), a) for c, a in feasible}


def test_relaxed_budget_expands_the_set():
    relaxed = Requirement("1ms", tc_from_ms(1.0), 0.9999)
    assert len(exhaustive_search(requirement=relaxed)) > \
        len(exhaustive_search())


def test_tight_budget_empties_the_set():
    impossible = Requirement("0.1ms", tc_from_ms(0.1), 0.99999)
    assert exhaustive_search(requirement=impossible) == []


def test_search_skips_degenerate_configurations():
    # All-DL and all-UL patterns (no windows in one direction) must
    # not crash the search.
    exhaustive_search(mu=1, max_period_ms=1.0)
