"""Unit and property tests for the analytical latency model (Fig 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.latency_model import LatencyModel, ProtocolTimings
from repro.mac.catalog import (
    fdd,
    minimal_dm,
    minimal_du,
    minimal_mini_slot,
    minimal_mu,
    testbed_dddu,
)
from repro.mac.types import AccessMode, Direction
from repro.phy.timebase import tc_from_ms, tc_from_us, us_from_tc


# ---------------------------------------------------------------------------
# Fig 4: the DM configuration's three worst cases
# ---------------------------------------------------------------------------
def test_dm_grant_free_ul_worst_case_is_exactly_half_ms():
    model = LatencyModel(minimal_dm())
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
    assert extremes.worst_tc == tc_from_ms(0.5)


def test_dm_dl_worst_case_is_exactly_half_ms():
    model = LatencyModel(minimal_dm())
    extremes = model.extremes(Direction.DL)
    assert extremes.worst_tc == tc_from_ms(0.5)


def test_dm_grant_based_ul_violates_and_reaches_one_ms():
    # Fig 4 (top): the grant-based chain spans a full 1 ms.
    model = LatencyModel(minimal_dm())
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    assert extremes.worst_tc > tc_from_ms(0.5)
    assert extremes.worst_tc == pytest.approx(tc_from_ms(1.0), rel=0.01)


def test_dm_grant_chain_stage_order():
    model = LatencyModel(minimal_dm())
    trace = model.ul_grant_based_chain(arrival=0)
    assert (trace.arrival <= trace.sr_tx_start <= trace.sr_received
            <= trace.scheduled <= trace.grant_tx
            <= trace.grant_processed <= trace.data_window_start
            < trace.completion)
    durations = trace.stage_durations()
    assert sum(durations.values()) == trace.latency_tc


def test_worst_case_trace_matches_extremes():
    model = LatencyModel(minimal_dm())
    trace = model.worst_case_trace()
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    assert trace.latency_tc == extremes.worst_tc


# ---------------------------------------------------------------------------
# other configurations (Table 1 cells individually)
# ---------------------------------------------------------------------------
def test_du_dl_worst_case_is_three_quarters_ms():
    extremes = LatencyModel(minimal_du()).extremes(Direction.DL)
    assert us_from_tc(extremes.worst_tc) == pytest.approx(750.0, rel=0.01)


def test_mu_dl_violates():
    extremes = LatencyModel(minimal_mu()).extremes(Direction.DL)
    assert extremes.worst_tc > tc_from_ms(0.5)


def test_fdd_grant_based_meets_exactly():
    model = LatencyModel(fdd())
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    assert extremes.worst_tc == tc_from_ms(0.5)


def test_mini_slot_grant_based_well_under_budget():
    model = LatencyModel(minimal_mini_slot())
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    assert extremes.worst_tc < tc_from_ms(0.3)


def test_dddu_grant_based_worst_case_spans_two_periods():
    # §7: the worst case "misses one TDD pattern and must wait for the
    # next one" — ~4 ms for the 2 ms DDDU pattern.
    model = LatencyModel(testbed_dddu())
    extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    assert extremes.worst_tc == pytest.approx(tc_from_ms(4.0), rel=0.01)


def test_grant_free_saves_about_one_period_on_dddu():
    # §7: "this one TDD period overhead can be eliminated by utilizing
    # grant-free access".
    model = LatencyModel(testbed_dddu())
    based = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    free = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
    saving = based.worst_tc - free.worst_tc
    assert saving == pytest.approx(tc_from_ms(2.0), rel=0.01)


# ---------------------------------------------------------------------------
# timings plumbing
# ---------------------------------------------------------------------------
def test_timings_validation():
    with pytest.raises(ValueError):
        ProtocolTimings(sr_duration=-1)
    with pytest.raises(ValueError):
        ProtocolTimings(min_tx_duration=0)


def test_leads_shift_completions():
    lead = tc_from_us(300.0)
    base = LatencyModel(minimal_dm())
    shifted = LatencyModel(minimal_dm(), ProtocolTimings(dl_lead=lead))
    assert shifted.dl_completion(0) >= base.dl_completion(0)


def test_sr_decode_delays_grant():
    base = LatencyModel(minimal_dm()).ul_grant_based_chain(0)
    slow = LatencyModel(
        minimal_dm(),
        ProtocolTimings(sr_decode=tc_from_us(200.0)),
    ).ul_grant_based_chain(0)
    assert slow.scheduled >= base.scheduled


def test_completion_dispatch():
    model = LatencyModel(minimal_dm())
    assert model.completion(0, Direction.DL) == model.dl_completion(0)
    assert model.completion(0, Direction.UL, AccessMode.GRANT_FREE) == \
        model.ul_grant_free_completion(0)
    assert model.completion(0, Direction.UL, AccessMode.GRANT_BASED) == \
        model.ul_grant_based_completion(0)


def test_extremes_metadata():
    model = LatencyModel(minimal_dm())
    dl = model.extremes(Direction.DL)
    assert dl.access is None and dl.direction is Direction.DL
    ul = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
    assert ul.access is AccessMode.GRANT_FREE
    assert "DM" in str(ul)
    assert ul.meets(tc_from_ms(0.5))


# ---------------------------------------------------------------------------
# property: candidate enumeration finds the true extrema
# ---------------------------------------------------------------------------
SCHEMES = [minimal_du, minimal_dm, minimal_mu,
           minimal_mini_slot, fdd, testbed_dddu]


@given(
    scheme_index=st.integers(0, len(SCHEMES) - 1),
    arrivals=st.lists(st.integers(0, 4 * tc_from_ms(2)), min_size=5,
                      max_size=40),
    mode=st.sampled_from(["dl", "gf", "gb"]),
)
@settings(max_examples=120, deadline=None)
def test_no_sampled_latency_exceeds_reported_worst(scheme_index,
                                                   arrivals, mode):
    scheme = SCHEMES[scheme_index]()
    model = LatencyModel(scheme)
    if mode == "dl":
        extremes = model.extremes(Direction.DL)
        completion = model.dl_completion
    elif mode == "gf":
        extremes = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
        completion = model.ul_grant_free_completion
    else:
        extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
        completion = model.ul_grant_based_completion
    for arrival in arrivals:
        latency = completion(arrival) - arrival
        assert extremes.best_tc <= latency <= extremes.worst_tc
