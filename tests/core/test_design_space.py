"""The Table 1 reproduction — the paper's headline analytical result."""

import pytest

from repro.core.design_space import (
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    evaluate_cell,
    feasibility_matrix,
    feasible_designs,
    render_table1,
    table1_schemes,
)
from repro.core.feasibility import URLLC_6G

#: The paper's Table 1, verbatim.
PAPER_TABLE1 = {
    "Grant-Based UL": {"DU": False, "DM": False, "MU": False,
                       "Mini-slot": True, "FDD": True},
    "Grant-Free UL": {"DU": True, "DM": True, "MU": True,
                      "Mini-slot": True, "FDD": True},
    "DL": {"DU": False, "DM": True, "MU": False,
           "Mini-slot": True, "FDD": True},
}


def test_matrix_reproduces_paper_table1_exactly():
    matrix = feasibility_matrix()
    for row in TABLE1_ROWS:
        for column in TABLE1_COLUMNS:
            assert matrix[row][column].meets == \
                PAPER_TABLE1[row][column], (
                    f"cell ({row}, {column}) disagrees with the paper")


def test_dm_is_the_only_common_config_meeting_both_directions():
    # §5: "only one configuration, DM, satisfies the latency
    # requirements of URLLC on both downlink and uplink for the
    # grant-free scenario".
    designs = feasible_designs()
    common_config_designs = [d for d in designs
                             if d[0] in ("DU", "DM", "MU")]
    assert common_config_designs == [("DM", "Grant-Free UL")]


def test_feasible_design_set_is_small():
    designs = feasible_designs()
    assert set(designs) == {
        ("DM", "Grant-Free UL"),
        ("Mini-slot", "Grant-Based UL"),
        ("Mini-slot", "Grant-Free UL"),
        ("FDD", "Grant-Based UL"),
        ("FDD", "Grant-Free UL"),
    }


def test_no_design_meets_the_6g_target():
    # §1: 6G tightens to 0.1 ms — none of the FR1 minimal designs make
    # it with 0.25 ms slots.
    designs = feasible_designs(requirement=URLLC_6G)
    for name, _ in designs:
        assert name in ("Mini-slot",), (
            f"{name} unexpectedly meets the 6G target")


def test_render_contains_marks_and_labels():
    text = render_table1()
    assert "✓" in text and "✗" in text
    for label in TABLE1_COLUMNS:
        assert label in text


def test_table1_schemes_names():
    names = [s.name for s in table1_schemes()]
    assert names == ["DU", "DM", "MU", "mini-slot/7", "FDD"]


def test_evaluate_cell_rejects_unknown_row():
    scheme = table1_schemes()[0]
    with pytest.raises(ValueError, match="row"):
        evaluate_cell(scheme, "Sidelink")


def test_matrix_at_mu1_fails_everywhere_on_tdd():
    # With 0.5 ms slots even DM cannot meet 0.5 ms one-way: the §5
    # argument that only the 0.25 ms slot duration is feasible.
    matrix = feasibility_matrix(mu=1)
    assert not matrix["DL"]["DM"].meets
    assert not matrix["Grant-Free UL"]["DM"].meets
