"""Unit tests for requirement definitions."""

import pytest

from repro.core.feasibility import (
    URLLC_5G,
    URLLC_5G_RELAXED,
    URLLC_6G,
    Requirement,
    verdict_mark,
)
from repro.core.latency_model import LatencyModel
from repro.mac.catalog import minimal_dm
from repro.mac.types import Direction
from repro.phy.timebase import tc_from_ms


def test_urllc_5g_definition():
    assert URLLC_5G.one_way_budget_ms == pytest.approx(0.5)
    assert URLLC_5G.round_trip_budget_tc == tc_from_ms(1.0)
    assert URLLC_5G.reliability == 0.99999


def test_relaxed_variant():
    assert URLLC_5G_RELAXED.reliability == 0.9999


def test_6g_definition():
    assert URLLC_6G.one_way_budget_ms == pytest.approx(0.1)


def test_validation():
    with pytest.raises(ValueError):
        Requirement("x", 0, 0.99)
    with pytest.raises(ValueError):
        Requirement("x", 100, 1.0)


def test_met_by_worst_case():
    extremes = LatencyModel(minimal_dm()).extremes(Direction.DL)
    assert URLLC_5G.met_by_worst_case(extremes)
    assert not URLLC_6G.met_by_worst_case(extremes)


def test_met_by_samples():
    budget = URLLC_5G.one_way_budget_tc
    good = [budget - 1] * 99_999 + [budget + 1]
    assert URLLC_5G_RELAXED.met_by_samples(good)
    bad = [budget - 1] * 9 + [budget + 1]
    assert not URLLC_5G.met_by_samples(bad)
    with pytest.raises(ValueError):
        URLLC_5G.met_by_samples([])


def test_verdict_marks():
    assert verdict_mark(True) == "✓"
    assert verdict_mark(False) == "✗"


def test_str():
    assert "0.5 ms" in str(URLLC_5G)
