"""Unit tests for the Fig 3 journey reconstruction."""

import pytest

from repro.core.journey import reconstruct_ping_journey
from repro.mac.catalog import testbed_dddu
from repro.mac.types import AccessMode
from repro.net.session import RanConfig, RanSystem


def run_one_ping(access):
    system = RanSystem(testbed_dddu(),
                       RanConfig(access=access, trace=True, seed=21))
    results = system.run_ping([1000])
    assert len(results) == 1
    return results[0], system.tracer


def test_grant_based_journey_has_all_eleven_steps():
    result, tracer = run_one_ping(AccessMode.GRANT_BASED)
    journey = reconstruct_ping_journey(result, tracer)
    indices = [step.index for step in journey.steps]
    assert indices == list(range(1, 12))
    assert journey.rtt_tc == result.rtt_tc


def test_grant_free_journey_collapses_sr_steps():
    result, tracer = run_one_ping(AccessMode.GRANT_FREE)
    journey = reconstruct_ping_journey(result, tracer)
    indices = [step.index for step in journey.steps]
    assert 2 not in indices and 5 not in indices
    assert 6 in indices and 9 in indices


def test_steps_are_temporally_consistent():
    result, tracer = run_one_ping(AccessMode.GRANT_BASED)
    journey = reconstruct_ping_journey(result, tracer)
    for step in journey.steps:
        assert step.end_tc >= step.start_tc
        assert step.duration_us >= 0.0


def test_sr_grant_steps_dominate_grant_based_uplink():
    # §4: "the SR and grant procedure noticeably increases the latency
    # of UL transmissions".
    result, tracer = run_one_ping(AccessMode.GRANT_BASED)
    journey = reconstruct_ping_journey(result, tracer)
    handshake = journey.step(3).duration_us + journey.step(5).duration_us
    dl_side = journey.step(10).duration_us
    assert handshake + journey.step(6).duration_us > dl_side


def test_render_mentions_rtt_and_steps():
    result, tracer = run_one_ping(AccessMode.GRANT_BASED)
    journey = reconstruct_ping_journey(result, tracer)
    text = journey.render()
    assert "RTT" in text
    assert "RLC queue" in text


def test_step_lookup():
    result, tracer = run_one_ping(AccessMode.GRANT_BASED)
    journey = reconstruct_ping_journey(result, tracer)
    assert journey.step(9).label.startswith("RLC queue")
    with pytest.raises(KeyError):
        journey.step(12)
