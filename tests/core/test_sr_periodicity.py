"""Tests for the SR-periodicity extension (§1's "period of scheduling
requests" configuration)."""

import pytest

from repro.core.latency_model import LatencyModel, ProtocolTimings
from repro.mac.catalog import fdd, minimal_dm, testbed_dddu
from repro.mac.types import AccessMode, Direction
from repro.net.session import RanConfig, RanSystem
from repro.phy.timebase import tc_from_ms
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon


def test_zero_period_is_the_footnote_idealisation():
    base = LatencyModel(minimal_dm())
    explicit = LatencyModel(minimal_dm(), ProtocolTimings(sr_period=0))
    assert base.extremes(Direction.UL, AccessMode.GRANT_BASED) == \
        explicit.extremes(Direction.UL, AccessMode.GRANT_BASED)


def test_worst_case_grows_monotonically_with_sr_period():
    worsts = []
    for period_ms in (0.25, 0.5, 1.0, 2.5):
        timings = ProtocolTimings(sr_period=tc_from_ms(period_ms))
        model = LatencyModel(fdd(), timings)
        worsts.append(model.extremes(
            Direction.UL, AccessMode.GRANT_BASED).worst_tc)
    assert worsts == sorted(worsts)
    assert worsts[-1] > 2 * worsts[0]


def test_sr_occasions_respect_offset():
    offset = tc_from_ms(0.1)
    timings = ProtocolTimings(sr_period=tc_from_ms(0.25),
                              sr_offset=offset)
    model = LatencyModel(fdd(), timings)
    chain = model.ul_grant_based_chain(0)
    assert (chain.sr_tx_start - offset) % tc_from_ms(0.25) == 0


def test_occasions_must_fall_in_ul_windows():
    # On DDDU the UL region is one slot in four: a 0.5 ms SR grid only
    # hits the UL slot once per 2 ms pattern.
    timings = ProtocolTimings(sr_period=tc_from_ms(0.5))
    model = LatencyModel(testbed_dddu(), timings)
    chain = model.ul_grant_based_chain(0)
    window = model._ul.window_at(chain.sr_tx_start)
    assert window is not None


def test_grant_free_unaffected_by_sr_period():
    timings = ProtocolTimings(sr_period=tc_from_ms(2.5))
    model = LatencyModel(minimal_dm(), timings)
    base = LatencyModel(minimal_dm())
    assert model.extremes(Direction.UL, AccessMode.GRANT_FREE) == \
        base.extremes(Direction.UL, AccessMode.GRANT_FREE)


def test_validation():
    with pytest.raises(ValueError):
        ProtocolTimings(sr_period=100, sr_offset=100)
    with pytest.raises(ValueError):
        ProtocolTimings(sr_period=-1)


def test_des_sr_periodicity_increases_latency():
    arrivals = uniform_in_horizon(150, tc_from_ms(1_000),
                                  RngRegistry(4).stream("a"))

    def mean_with(period_tc, offset_tc=0):
        system = RanSystem(
            testbed_dddu(),
            RanConfig(access=AccessMode.GRANT_BASED, seed=6,
                      sr_period_tc=period_tc, sr_offset_tc=offset_tc))
        return system.run_uplink(arrivals).summary().mean_us

    free_sr = mean_with(0)
    # One occasion per pattern, phased into the UL slot.
    sparse_sr = mean_with(tc_from_ms(2.0), tc_from_ms(1.5))
    assert sparse_sr > free_sr


def test_des_sr_occasion_grid_respected():
    period = tc_from_ms(0.5)
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_BASED, seed=7, trace=True,
                  sr_period_tc=period))
    system.run_uplink(uniform_in_horizon(
        40, tc_from_ms(200), RngRegistry(9).stream("b")))
    records = system.tracer.records("ue1.mac", "sr_tx")
    assert records
    for record in records:
        assert record.fields["entry"] % period == 0


def test_ue_validation_of_sr_config():
    with pytest.raises(ValueError):
        RanSystem(testbed_dddu(),
                  RanConfig(sr_period_tc=10, sr_offset_tc=10))


def test_misphased_sr_grid_is_rejected_loudly():
    # A 2 ms SR grid at phase 0 never falls inside DDDU's UL slot; the
    # model must refuse rather than silently stall.
    timings = ProtocolTimings(sr_period=tc_from_ms(2.0))
    model = LatencyModel(testbed_dddu(), timings)
    with pytest.raises(LookupError, match="SR occasion"):
        model.ul_grant_based_chain(0)
