"""Unit tests for the tornado sensitivity utility."""

import pytest

from repro.core.sensitivity import SensitivityResult, tornado


def linear_metric(values):
    return 10.0 * values["a"] + 1.0 * values["b"]


def test_tornado_ranks_by_swing():
    results = tornado(linear_metric, {
        "a": (0.0, 1.0, 2.0),
        "b": (0.0, 1.0, 2.0),
    })
    assert [r.parameter for r in results] == ["a", "b"]
    assert results[0].swing == pytest.approx(20.0)
    assert results[1].swing == pytest.approx(2.0)


def test_baseline_held_for_other_parameters():
    seen = []

    def recording_metric(values):
        seen.append(dict(values))
        return 0.0

    tornado(recording_metric, {"a": (0, 1, 2), "b": (10, 20, 30)})
    # While perturbing "a", "b" stays at its baseline of 20.
    a_runs = [v for v in seen if v["a"] != 1]
    assert all(v["b"] == 20 for v in a_runs)


def test_validation():
    with pytest.raises(ValueError):
        tornado(linear_metric, {})
    with pytest.raises(ValueError, match="bounds"):
        tornado(linear_metric, {"a": (2.0, 1.0, 0.0)})


def test_result_formatting():
    result = SensitivityResult("x", 0.0, 2.0, 5.0, 9.0)
    assert result.swing == 4.0
    assert "x" in str(result)


def test_non_monotone_metric_swing_is_absolute():
    def vee(values):
        return abs(values["a"] - 1.0)

    results = tornado(vee, {"a": (0.0, 1.0, 2.0)})
    assert results[0].swing == 0.0  # both bounds give |±1| = 1... equal
