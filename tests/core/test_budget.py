"""Unit tests for the three-source budget composition (§4)."""

import pytest

from repro.core.budget import (
    BudgetBreakdown,
    SystemProfile,
    slot_duration_sweep,
    worst_case_budget,
)
from repro.core.feasibility import URLLC_5G
from repro.mac.catalog import minimal_dm, testbed_dddu
from repro.mac.types import AccessMode, Direction


def test_testbed_profile_magnitudes():
    profile = SystemProfile.testbed()
    assert profile.gnb_radio_us == 500.0
    assert profile.gnb_tx_processing_us == pytest.approx(17.06, rel=0.01)
    assert profile.ue_tx_processing_us > profile.gnb_tx_processing_us


def test_pure_protocol_budget_has_zero_radio_processing():
    breakdown = worst_case_budget(minimal_dm(), Direction.DL,
                                  AccessMode.GRANT_FREE, SystemProfile())
    assert breakdown.processing_us == 0.0
    assert breakdown.radio_us == 0.0
    assert breakdown.protocol_us == pytest.approx(500.0, rel=0.01)
    assert breakdown.bottleneck() == "protocol"


def test_usb_radio_head_breaks_the_feasible_design():
    # The paper's demonstration: DM is protocol-feasible, but a 500 µs
    # USB radio head blows the budget regardless.
    breakdown = worst_case_budget(minimal_dm(), Direction.DL,
                                  AccessMode.GRANT_FREE,
                                  SystemProfile.testbed())
    assert breakdown.total_us > 500.0
    assert breakdown.bottleneck() == "radio"


def test_grant_based_pays_radio_three_times():
    profile = SystemProfile(gnb_radio_us=100.0, ue_radio_us=10.0)
    free = worst_case_budget(minimal_dm(), Direction.UL,
                             AccessMode.GRANT_FREE, profile)
    based = worst_case_budget(minimal_dm(), Direction.UL,
                              AccessMode.GRANT_BASED, profile)
    assert based.radio_us == pytest.approx(free.radio_us + 200.0)


def test_budget_total_is_sum():
    breakdown = BudgetBreakdown("X", Direction.DL, None, 100.0, 50.0,
                                25.0)
    assert breakdown.total_us == 175.0
    assert "X DL" in str(breakdown)


def test_dddu_grant_based_matches_fig6_tail():
    # The analytical worst case should sit near the measured ~5 ms
    # upper edge of Fig 6a's uplink distribution.
    breakdown = worst_case_budget(testbed_dddu(), Direction.UL,
                                  AccessMode.GRANT_BASED,
                                  SystemProfile.testbed())
    assert 4_000 <= breakdown.total_us <= 6_000


def test_slot_duration_sweep_shows_radio_floor():
    from repro.mac.catalog import minimal_dm as dm
    sweep = slot_duration_sweep(dm, [0, 1, 2], Direction.DL,
                                AccessMode.GRANT_FREE,
                                radio_us_values=[0.0, 300.0])
    # With no radio latency, higher numerology strictly helps.
    no_radio = sweep[0.0]
    assert no_radio[2] < no_radio[1] < no_radio[0]
    # With 300 µs radio latency the gain from µ=1 to µ=2 shrinks
    # in *relative* terms: the floor dominates (§4's point).
    with_radio = sweep[300.0]
    gain_no_radio = no_radio[1] / no_radio[2]
    gain_radio = with_radio[1] / with_radio[2]
    assert gain_radio < gain_no_radio


def test_feasibility_with_radio_floor():
    # DM meets URLLC without radio latency but not with 500 µs of it.
    clean = worst_case_budget(minimal_dm(), Direction.UL,
                              AccessMode.GRANT_FREE, SystemProfile())
    dirty = worst_case_budget(minimal_dm(), Direction.UL,
                              AccessMode.GRANT_FREE,
                              SystemProfile.testbed())
    budget_us = 500.0
    assert clean.total_us <= budget_us + 1e-6
    assert dirty.total_us > budget_us
