"""Unit tests for the §6 reliability analysis."""

import pytest

from repro.core.feasibility import URLLC_5G, Requirement
from repro.core.reliability import (
    assess,
    margin_tradeoff,
    required_margin_us,
)
from repro.net.probes import LatencyProbe
from repro.mac.types import Direction
from repro.phy.timebase import tc_from_us
from repro.radio.os_jitter import gpos, none, rt_kernel
from repro.stack.packets import Packet, PacketKind


def make_probe(latencies_us):
    probe = LatencyProbe()
    for latency in latencies_us:
        packet = Packet(PacketKind.DATA, Direction.DL, 32, created_tc=0)
        packet.mark_delivered(tc_from_us(latency))
        probe.record(packet)
    return probe


def test_assess_counts_within_budget():
    probe = make_probe([100.0] * 99 + [900.0])
    report = assess(probe, Requirement("test", tc_from_us(500), 0.95))
    assert report.achieved_reliability == pytest.approx(0.99)
    assert report.met
    assert "MET" in str(report)


def test_dropped_packets_count_against_reliability():
    probe = make_probe([100.0] * 50)
    report = assess(probe, URLLC_5G, dropped=50)
    assert report.achieved_reliability == pytest.approx(0.5)
    assert not report.met


def test_assess_requires_packets():
    with pytest.raises(ValueError):
        assess(LatencyProbe(), URLLC_5G)


def test_margin_tradeoff_monotone(rng):
    points = margin_tradeoff(gpos(), deterministic_us=200.0,
                             margins_us=[200.0, 300.0, 500.0],
                             rng=rng, draws=20_000)
    misses = [p.deadline_miss_probability for p in points]
    assert misses == sorted(misses, reverse=True)
    assert points[0].added_latency_us == 0.0
    assert points[2].added_latency_us == 300.0


def test_zero_jitter_needs_no_extra_margin(rng):
    points = margin_tradeoff(none(), deterministic_us=100.0,
                             margins_us=[100.0], rng=rng, draws=100)
    assert points[0].deadline_miss_probability == 0.0


def test_required_margin_ordering(rng):
    gpos_margin = required_margin_us(gpos(), 200.0, 0.999, rng,
                                     draws=50_000)
    rt_margin = required_margin_us(rt_kernel(), 200.0, 0.999, rng,
                                   draws=50_000)
    assert gpos_margin > rt_margin > 200.0


def test_required_margin_grows_with_reliability(rng):
    softer = required_margin_us(gpos(), 0.0, 0.9, rng, draws=50_000)
    harder = required_margin_us(gpos(), 0.0, 0.9999, rng, draws=50_000)
    assert harder > softer


def test_validation(rng):
    with pytest.raises(ValueError):
        margin_tradeoff(gpos(), -1.0, [0.0], rng)
    with pytest.raises(ValueError):
        required_margin_us(gpos(), 0.0, 1.5, rng)
