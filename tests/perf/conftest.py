"""Make tests/perf runnable with or without pytest-benchmark.

The tier-1 CI job installs only numpy + pytest, so these tests must not
hard-require the plugin.  When pytest-benchmark is installed its own
``benchmark`` fixture wins (we define nothing); otherwise a minimal
stand-in runs each benchmarked callable once, so the perf suite still
exercises the hot paths as plain correctness tests.
"""

import pytest

try:
    import pytest_benchmark  # noqa: F401
    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False


if not _HAVE_PLUGIN:

    class _OnceBenchmark:
        """Call-through stand-in for the pytest-benchmark fixture."""

        def __call__(self, fn, *args, **kwargs):
            return fn(*args, **kwargs)

        def pedantic(self, fn, args=(), kwargs=None,
                     rounds=1, iterations=1, warmup_rounds=0):
            return fn(*args, **(kwargs or {}))

    @pytest.fixture
    def benchmark():
        return _OnceBenchmark()
