"""Microbenchmarks for the DES hot paths (pytest-benchmark).

Run locally with ``pytest tests/perf --benchmark-only`` (plugin
installed) to get timing tables; in CI the non-blocking perf job uploads
the JSON.  Without the plugin each case runs once as a correctness
smoke (see conftest.py), so the file never breaks the tier-1 job.

Every case asserts its observable outcome too — a benchmark that stops
computing the right thing is worse than a slow one.
"""

import numpy as np

from repro.sim.distributions import LogNormal
from repro.sim.engine import Simulator
from repro.sim.sampling import BufferedSampler
from repro.sim.trace import Tracer

N_EVENTS = 5_000
N_SAMPLES = 5_000
N_EMITS = 5_000


def test_simulator_schedule_and_run(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        for t in range(N_EVENTS):
            sim.schedule(t, _noop)
        return sim.run()

    assert benchmark(schedule_and_drain) == N_EVENTS


def _noop():
    return None


def test_simulator_call_in_chain(benchmark):
    def chained():
        sim = Simulator()
        remaining = [N_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.call_in(3, tick)

        sim.call_in(3, tick)
        sim.run()
        return sim.events_processed

    assert benchmark(chained) == N_EVENTS


def test_scalar_sampling(benchmark):
    sampler = LogNormal(55.21, 16.31)

    def scalar():
        rng = np.random.default_rng(2)
        return [sampler.sample(rng) for _ in range(N_SAMPLES)]

    values = benchmark(scalar)
    assert len(values) == N_SAMPLES and min(values) > 0


def test_buffered_sampling(benchmark):
    sampler = LogNormal(55.21, 16.31)

    def buffered():
        rng = np.random.default_rng(2)
        wrapped = BufferedSampler(sampler, rng)
        return [wrapped.sample(rng) for _ in range(N_SAMPLES)]

    values = benchmark(buffered)
    assert len(values) == N_SAMPLES and min(values) > 0


def test_tracer_emit_enabled(benchmark):
    def emit_all():
        tracer = Tracer(enabled=True)
        for t in range(N_EMITS):
            tracer.emit(t, "bench.cat", "event", packet_id=t)
        return len(tracer)

    assert benchmark(emit_all) == N_EMITS


def test_tracer_emit_disabled(benchmark):
    def emit_none():
        tracer = Tracer(enabled=False)
        for t in range(N_EMITS):
            # The lazy-fields convention guards call sites like this.
            if tracer.enabled:
                tracer.emit(t, "bench.cat", "event", packet_id=t)
        return len(tracer)

    assert benchmark(emit_none) == 0
