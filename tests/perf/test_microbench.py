"""Microbenchmarks for the DES hot paths (pytest-benchmark).

Run locally with ``pytest tests/perf --benchmark-only`` (plugin
installed) to get timing tables; in CI the non-blocking perf job uploads
the JSON.  Without the plugin each case runs once as a correctness
smoke (see conftest.py), so the file never breaks the tier-1 job.

Every case asserts its observable outcome too — a benchmark that stops
computing the right thing is worse than a slow one.
"""

import numpy as np

from repro.sim.distributions import LogNormal
from repro.sim.engine import Simulator
from repro.sim.sampling import BufferedSampler
from repro.sim.trace import Tracer

N_EVENTS = 5_000
N_SAMPLES = 5_000
N_EMITS = 5_000


def test_simulator_schedule_and_run(benchmark):
    def schedule_and_drain():
        sim = Simulator()
        for t in range(N_EVENTS):
            sim.schedule(t, _noop)
        return sim.run()

    assert benchmark(schedule_and_drain) == N_EVENTS


def _noop():
    return None


def test_simulator_call_in_chain(benchmark):
    def chained():
        sim = Simulator()
        remaining = [N_EVENTS]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.call_in(3, tick)

        sim.call_in(3, tick)
        sim.run()
        return sim.events_processed

    assert benchmark(chained) == N_EVENTS


def test_scalar_sampling(benchmark):
    sampler = LogNormal(55.21, 16.31)

    def scalar():
        rng = np.random.default_rng(2)
        return [sampler.sample(rng) for _ in range(N_SAMPLES)]

    values = benchmark(scalar)
    assert len(values) == N_SAMPLES and min(values) > 0


def test_buffered_sampling(benchmark):
    sampler = LogNormal(55.21, 16.31)

    def buffered():
        rng = np.random.default_rng(2)
        wrapped = BufferedSampler(sampler, rng)
        return [wrapped.sample(rng) for _ in range(N_SAMPLES)]

    values = benchmark(buffered)
    assert len(values) == N_SAMPLES and min(values) > 0


def test_tracer_emit_enabled(benchmark):
    def emit_all():
        tracer = Tracer(enabled=True)
        for t in range(N_EMITS):
            tracer.emit(t, "bench.cat", "event", packet_id=t)
        return len(tracer)

    assert benchmark(emit_all) == N_EMITS


def test_tracer_emit_disabled(benchmark):
    def emit_none():
        tracer = Tracer(enabled=False)
        for t in range(N_EMITS):
            # The lazy-fields convention guards call sites like this.
            if tracer.enabled:
                tracer.emit(t, "bench.cat", "event", packet_id=t)
        return len(tracer)

    assert benchmark(emit_none) == 0


# ---------------------------------------------------------------------------
# slotted-engine slot-batch kernels (repro.sim.slotted)
# ---------------------------------------------------------------------------
def test_population_state_update(benchmark):
    from repro.sim.slotted import UePopulation

    n_ues = 500

    def fill_and_account():
        population = UePopulation(n_ues)
        add = population.add_packet
        for i in range(N_EVENTS):
            add(1 + i % n_ues, i, 32, i * 100)
        # the engine's post-transit accounting pattern: in-place list
        # element updates, one per delivered packet
        bp = population.budget_processing
        delivered = population.delivered_tc
        for row in range(N_EVENTS):
            bp[row] += 1_000
            delivered[row] = row * 100 + 5_000
        return population

    population = benchmark(fill_and_account)
    assert len(population) == N_EVENTS
    assert sum(population.queued) == N_EVENTS


def test_window_entries_batch_vs_scalar(benchmark):
    from repro.mac.catalog import testbed_dddu

    timeline = testbed_dddu().ul_timeline()
    index = timeline.index()
    times = np.arange(N_EVENTS, dtype=np.int64) * 9_973
    min_duration = 2_000

    def batch():
        return index.earliest_entries_joining(times, min_duration)

    entries = benchmark(batch)
    # elementwise identical to the scalar rule on a sample
    step = N_EVENTS // 50
    for i, t in zip(range(0, N_EVENTS, step),
                    times[::step].tolist()):
        assert entries[i] == timeline.earliest_entry_joining(
            t, min_duration)


def test_block_server_vs_scalar_lognormal(benchmark):
    from repro.sim.sampling import LogNormalBlockServer

    mu, sigma = 3.98, 0.29

    def served():
        server = LogNormalBlockServer(np.random.default_rng(6))
        return [server.sample(mu, sigma) for _ in range(N_SAMPLES)]

    values = benchmark(served)
    scalar_rng = np.random.default_rng(6)
    expected = [float(scalar_rng.lognormal(mu, sigma))
                for _ in range(N_SAMPLES)]
    assert values == expected  # bit-identical, not just close
