"""Unit tests for the radio-head model."""

import pytest

from repro.phy.numerology import Numerology
from repro.phy.ofdm import Carrier
from repro.phy.timebase import us_from_tc
from repro.radio.interface import usb2, usb3
from repro.radio.os_jitter import gpos, none, rt_kernel
from repro.radio.radio_head import RadioHead


def testbed_rh(jitter=None):
    return RadioHead("b210", usb3(), jitter or gpos())


def test_tx_latency_composition(rng):
    rh = RadioHead("x", usb3(), none(), rf_chain_us=40.0)
    latency = rh.tx_latency_us(11_520, rng)
    floor = usb3().deterministic_latency_us(11_520) + 40.0
    assert latency >= floor


def test_rx_latency_sampled(rng):
    rh = testbed_rh()
    assert rh.rx_latency_us(11_520, rng) > 0


def test_mean_one_way_magnitude():
    # §7: the USB RH introduces latency of the order of hundreds of µs
    # per direction (round trip ≈ 500 µs).
    rh = testbed_rh()
    carrier = Carrier(Numerology(1), 20)
    mean = rh.mean_one_way_us(carrier.samples_per_slot())
    assert 150 <= mean <= 400


def test_usb2_slower_than_usb3():
    carrier = Carrier(Numerology(1), 20)
    n = carrier.samples_per_slot()
    a = RadioHead("a", usb2(), none()).mean_one_way_us(n)
    b = RadioHead("b", usb3(), none()).mean_one_way_us(n)
    assert a > b


def test_required_margin_grows_with_headroom():
    rh = testbed_rh()
    carrier = Carrier(Numerology(1), 20)
    tight = rh.required_margin_tc(carrier, quantile_headroom=0.0)
    loose = rh.required_margin_tc(carrier, quantile_headroom=4.0)
    assert loose > tight
    with pytest.raises(ValueError):
        rh.required_margin_tc(carrier, quantile_headroom=-1.0)


def test_rt_kernel_needs_less_margin():
    carrier = Carrier(Numerology(1), 20)
    gpos_margin = testbed_rh(gpos()).required_margin_tc(carrier, 3.0)
    rt_margin = testbed_rh(rt_kernel()).required_margin_tc(carrier, 3.0)
    assert us_from_tc(gpos_margin) > us_from_tc(rt_margin)


def test_validation_and_describe():
    with pytest.raises(ValueError):
        RadioHead("x", usb3(), none(), rf_chain_us=-1.0)
    assert "usb3" in testbed_rh().describe()
