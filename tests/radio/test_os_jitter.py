"""Unit tests for OS-jitter models (§6)."""

import numpy as np
import pytest

from repro.radio.os_jitter import OsJitterModel, gpos, none, rt_kernel


def test_samples_non_negative(rng):
    model = gpos()
    samples = [model.sample_us(rng) for _ in range(2_000)]
    assert min(samples) >= 0.0


def test_gpos_has_heavier_tail_than_rt(rng):
    gpos_samples = np.array([gpos().sample_us(rng) for _ in range(30_000)])
    rt_samples = np.array([rt_kernel().sample_us(rng)
                           for _ in range(30_000)])
    assert np.quantile(gpos_samples, 0.999) > \
        5 * np.quantile(rt_samples, 0.999)


def test_none_model_is_zero(rng):
    model = none()
    assert model.sample_us(rng) == 0.0
    assert model.mean_us() == 0.0


def test_mean_formula_matches_samples(rng):
    model = gpos()
    samples = [model.sample_us(rng) for _ in range(60_000)]
    assert np.mean(samples) == pytest.approx(model.mean_us(), rel=0.05)


def test_tail_quantile_increasing(rng):
    model = gpos()
    q99 = model.tail_quantile_us(0.99, rng, draws=20_000)
    q50 = model.tail_quantile_us(0.50, rng, draws=20_000)
    assert q99 > q50
    with pytest.raises(ValueError):
        model.tail_quantile_us(1.5, rng)


def test_validation():
    with pytest.raises(ValueError):
        OsJitterModel("x", -1.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        OsJitterModel("x", 1.0, 2.0, 0.0)
