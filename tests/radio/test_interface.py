"""Unit tests for the interface-bus models (Fig 5's subject)."""

import numpy as np
import pytest

from repro.radio.interface import InterfaceBus, bus, pcie, usb2, usb3


def test_catalogue_lookup():
    assert usb2().name == "usb2"
    assert usb3().name == "usb3"
    assert bus("ethernet").name == "ethernet"
    with pytest.raises(KeyError, match="usb2"):
        bus("scsi")


def test_deterministic_latency_is_affine():
    model = InterfaceBus("x", setup_us=100.0, per_sample_us=0.01,
                         spike_probability=0.0, spike_mean_us=0.0)
    assert model.deterministic_latency_us(0) == 100.0
    assert model.deterministic_latency_us(1000) == 110.0
    with pytest.raises(ValueError):
        model.deterministic_latency_us(-1)


def test_usb2_slope_steeper_than_usb3():
    # The defining feature of Fig 5's two series.
    assert usb2().per_sample_us > usb3().per_sample_us


def test_fig5_magnitudes():
    # At 2 000 samples both series sit around 150-170 µs; at 20 000
    # USB 2.0 approaches 400 µs while USB 3.0 stays under 200 µs.
    assert 130 <= usb2().deterministic_latency_us(2_000) <= 180
    assert 130 <= usb3().deterministic_latency_us(2_000) <= 180
    assert 350 <= usb2().deterministic_latency_us(20_000) <= 420
    assert usb3().deterministic_latency_us(20_000) <= 200


def test_spikes_appear_at_configured_rate(rng):
    model = InterfaceBus("x", 100.0, 0.0, spike_probability=0.25,
                         spike_mean_us=50.0)
    samples = [model.submission_latency_us(0, rng) for _ in range(20_000)]
    spiked = sum(1 for s in samples if s > 100.0)
    assert spiked / len(samples) == pytest.approx(0.25, abs=0.02)


def test_mean_latency_includes_spikes():
    model = InterfaceBus("x", 100.0, 0.0, 0.1, 50.0)
    assert model.mean_latency_us(0) == pytest.approx(105.0)


def test_sweep_shape(rng):
    series = usb3().sweep([2_000, 11_000, 20_000], rng, repetitions=5)
    assert set(series) == {2_000, 11_000, 20_000}
    assert all(len(v) == 5 for v in series.values())
    means = [np.mean(series[n]) for n in (2_000, 11_000, 20_000)]
    assert means == sorted(means)


def test_pcie_is_fastest():
    assert pcie().deterministic_latency_us(11_520) < \
        usb3().deterministic_latency_us(11_520)


def test_validation():
    with pytest.raises(ValueError):
        InterfaceBus("x", -1.0, 0.0, 0.0, 0.0)
    with pytest.raises(ValueError):
        InterfaceBus("x", 1.0, 0.0, 2.0, 0.0)
