"""Setup shim: enables legacy editable installs on offline machines
where the ``wheel`` package is unavailable (metadata lives in
``pyproject.toml``)."""

from setuptools import setup

setup()
