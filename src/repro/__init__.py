"""urllc5g — system-level 5G URLLC latency analysis and simulation.

A reproduction of "Ultra-Reliable Low-Latency in 5G: A Close Reality or
a Distant Goal?" (HotNets 2024): an exact analytical model of protocol
latency for every 5G duplexing configuration, a calibrated
discrete-event simulation of a software gNB/UE stack with an SDR radio
head, and the baselines (FR2 mmWave, Wi-Fi, Bluetooth) the paper
compares against.

Quick start::

    from repro import feasibility_matrix, render_table1
    print(render_table1(feasibility_matrix()))   # the paper's Table 1

    from repro import RanSystem, RanConfig, testbed_dddu
    system = RanSystem(testbed_dddu())           # the §7 testbed
    probe = system.run_downlink(arrivals=[0, 10_000, 20_000])
    print(probe.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core import (
    URLLC_5G,
    URLLC_6G,
    LatencyModel,
    ProtocolTimings,
    Requirement,
    SystemProfile,
    feasibility_matrix,
    feasible_designs,
    reconstruct_ping_journey,
    render_table1,
    worst_case_budget,
)
from repro.mac import (
    AccessMode,
    Direction,
    FddConfig,
    MiniSlotConfig,
    SlotFormatConfig,
    TddCommonConfig,
    TddPattern,
    fdd,
    from_letters,
    minimal_dm,
    minimal_du,
    minimal_mini_slot,
    minimal_mu,
    testbed_dddu,
)
from repro.net import LatencyProbe, PingResult, RanConfig, RanSystem
from repro.phy import Carrier, FrequencyRange, Numerology
from repro.radio import RadioHead, usb2, usb3

__version__ = "1.0.0"

__all__ = [
    "URLLC_5G",
    "URLLC_6G",
    "LatencyModel",
    "ProtocolTimings",
    "Requirement",
    "SystemProfile",
    "feasibility_matrix",
    "feasible_designs",
    "reconstruct_ping_journey",
    "render_table1",
    "worst_case_budget",
    "AccessMode",
    "Direction",
    "FddConfig",
    "MiniSlotConfig",
    "SlotFormatConfig",
    "TddCommonConfig",
    "TddPattern",
    "fdd",
    "from_letters",
    "minimal_dm",
    "minimal_du",
    "minimal_mini_slot",
    "minimal_mu",
    "testbed_dddu",
    "LatencyProbe",
    "PingResult",
    "RanConfig",
    "RanSystem",
    "Carrier",
    "FrequencyRange",
    "Numerology",
    "RadioHead",
    "usb2",
    "usb3",
    "__version__",
]
