"""FR2 mmWave baseline (paper §1, §5; Fezeu et al. [19]).

mmWave offers 15.625 µs slots (µ=6) — protocol latency becomes
negligible — but the band is fragile: line-of-sight blockage, beam
failures and PHY/RAN buffering dominate, and the measurement study the
paper cites found **sub-millisecond latency only 4.4 % of the time**.

The baseline combines

- the µ=6 protocol model (tiny — the point of FR2),
- a calibrated in-LoS latency distribution (PHY/RAN buffering of a
  commercial deployment),
- a Gilbert-Elliott blockage process whose BAD state adds beam-recovery
  delays of tens of milliseconds.

``sub_ms_fraction`` reproduces the 4.4 % figure (within Monte-Carlo
noise); the benchmark records paper-vs-measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.phy.channel import GilbertElliottChannel
from repro.phy.timebase import tc_from_ms, us_from_ms
from repro.sim.distributions import Exponential, LogNormal

__all__ = [
    "MmWaveParameters",
    "MmWaveBaseline",
    "PAPER_SUB_MS_FRACTION",
]


@dataclass(frozen=True)
class MmWaveParameters:
    """Calibration of the FR2 baseline."""

    #: long-run fraction of time with line of sight
    los_fraction: float = 0.70
    #: mean LoS / blocked sojourn (ms) — urban walking blockers
    mean_los_ms: float = 700.0
    #: in-LoS one-way latency (µs): PHY + RAN buffering of a
    #: commercial mmWave deployment (heavy-tailed)
    los_latency_mean_us: float = 4500.0
    los_latency_std_us: float = 4000.0
    #: beam-failure recovery time once blocked (ms, exponential mean)
    recovery_mean_ms: float = 20.0


class MmWaveBaseline:
    """Sampled one-way latency of a commercial-style FR2 deployment."""

    def __init__(self, params: MmWaveParameters | None = None):
        self.params = params or MmWaveParameters()
        if not 0.0 < self.params.los_fraction < 1.0:
            raise ValueError("los_fraction must be in (0, 1)")
        mean_good = tc_from_ms(self.params.mean_los_ms)
        mean_bad = int(mean_good
                       * (1.0 - self.params.los_fraction)
                       / self.params.los_fraction)
        self.channel = GilbertElliottChannel(
            mean_good_tc=mean_good, mean_bad_tc=max(1, mean_bad))
        self._los_latency = LogNormal(self.params.los_latency_mean_us,
                                      self.params.los_latency_std_us)
        self._recovery = Exponential(us_from_ms(self.params.recovery_mean_ms))

    def sample_latency_us(self, rng: np.random.Generator) -> float:
        """One one-way latency sample (µs)."""
        latency = self._los_latency.sample(rng)
        if rng.random() >= self.params.los_fraction:
            # Packet hit a blockage episode: beam recovery first.
            latency += self._recovery.sample(rng)
        return latency

    def sample_latencies_us(self, n: int,
                            rng: np.random.Generator) -> list[float]:
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.sample_latency_us(rng) for _ in range(n)]

    def sub_ms_fraction(self, rng: np.random.Generator,
                        draws: int = 100_000) -> float:
        """Fraction of packets under 1 ms one-way — the paper quotes
        4.4 % for real deployments."""
        samples = self.sample_latencies_us(draws, rng)
        return float(np.mean(np.asarray(samples) <= 1000.0))


#: The reliability figure the paper cites from Fezeu et al.
PAPER_SUB_MS_FRACTION: float = 0.044
