"""Wi-Fi (802.11 DCF) baseline (paper §9).

Wi-Fi's decentralised, contention-based access leads to "unpredictable
medium access delays": every transmission waits DIFS plus a random
backoff, collides with probability growing in the station count, and
doubles its contention window on each retry.  The model is a standard
slotted-DCF abstraction (Bianchi-style constant collision probability)
— enough to exhibit the heavy access-delay tail the paper contrasts
with 5G's centrally scheduled slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WifiParameters", "WifiBaseline"]


@dataclass(frozen=True)
class WifiParameters:
    """802.11 MAC timing (defaults ≈ 802.11n/ac 5 GHz OFDM)."""

    slot_us: float = 9.0
    difs_us: float = 34.0
    cw_min: int = 15
    cw_max: int = 1023
    max_retries: int = 7
    #: time on air for one data frame + SIFS + ACK
    frame_airtime_us: float = 120.0


class WifiBaseline:
    """Sampled medium-access delay of one station among ``n_stations``."""

    def __init__(self, n_stations: int = 5,
                 params: WifiParameters | None = None):
        if n_stations < 1:
            raise ValueError("need at least one station")
        self.n_stations = n_stations
        self.params = params or WifiParameters()

    def collision_probability(self) -> float:
        """Probability a transmission attempt collides.

        Bianchi's decoupling approximation with a fixed per-slot attempt
        rate τ ≈ 2/(CWmin+1) for the competing stations.
        """
        if self.n_stations == 1:
            return 0.0
        tau = 2.0 / (self.params.cw_min + 1)
        return 1.0 - (1.0 - tau) ** (self.n_stations - 1)

    def sample_access_delay_us(self, rng: np.random.Generator) -> float:
        """One medium-access delay sample (µs), retries included.

        Returns ``inf`` when the retry limit is exhausted (the frame is
        dropped — Wi-Fi gives no delivery guarantee)."""
        params = self.params
        collision_p = self.collision_probability()
        delay = 0.0
        cw = params.cw_min
        for _ in range(params.max_retries + 1):
            backoff_slots = int(rng.integers(0, cw + 1))
            delay += params.difs_us + backoff_slots * params.slot_us
            # Other stations' transmissions freeze our backoff; charge
            # the expected busy time per deferred slot.
            busy_slots = rng.binomial(backoff_slots,
                                      collision_p / 2.0)
            delay += busy_slots * params.frame_airtime_us
            delay += params.frame_airtime_us
            if rng.random() >= collision_p:
                return delay
            cw = min(params.cw_max, 2 * cw + 1)
        return float("inf")

    def sample_access_delays_us(self, n: int, rng: np.random.Generator
                                ) -> list[float]:
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.sample_access_delay_us(rng) for _ in range(n)]

    def deadline_reliability(self, budget_us: float,
                             rng: np.random.Generator,
                             draws: int = 50_000) -> float:
        """Fraction of frames delivered within a latency budget."""
        samples = np.asarray(self.sample_access_delays_us(draws, rng))
        return float(np.mean(samples <= budget_us))
