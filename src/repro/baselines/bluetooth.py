"""Bluetooth baseline (paper §9, Core Spec v5.3 [46]).

Bluetooth classic uses a fixed 625 µs slot, master-slave TDD polling,
and at most seven active slaves per piconet — structural limits on both
latency and scalability that the paper contrasts with 5G's adaptable
slot configurations.  A slave can only transmit after being polled, so
its uplink delay is its position in the polling cycle; the master's
2.5 mW transmit-power cap bounds the range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BLUETOOTH_SLOT_US",
    "MAX_ACTIVE_SLAVES",
    "MAX_TX_POWER_MW",
    "BluetoothPiconet",
]

#: Fixed Bluetooth slot length (µs).
BLUETOOTH_SLOT_US: float = 625.0

#: Active slaves per piconet.
MAX_ACTIVE_SLAVES: int = 7

#: Maximum transmit power (mW) — class 2 devices.
MAX_TX_POWER_MW: float = 2.5


@dataclass(frozen=True)
class BluetoothPiconet:
    """One piconet under round-robin polling."""

    n_slaves: int = 7

    def __post_init__(self) -> None:
        if not 1 <= self.n_slaves <= MAX_ACTIVE_SLAVES:
            raise ValueError(
                f"a piconet supports 1..{MAX_ACTIVE_SLAVES} active "
                f"slaves, got {self.n_slaves}")

    @property
    def polling_cycle_us(self) -> float:
        """One full round-robin cycle: each slave gets a master slot
        (poll, even) plus a slave slot (response, odd)."""
        return 2 * self.n_slaves * BLUETOOTH_SLOT_US

    def worst_case_uplink_us(self) -> float:
        """Data arriving just after the slave's poll waits a full cycle
        and then transmits in its slave slot."""
        return self.polling_cycle_us + BLUETOOTH_SLOT_US

    def mean_uplink_us(self) -> float:
        """Uniform arrival phase: half a cycle plus the transmit slot."""
        return self.polling_cycle_us / 2 + BLUETOOTH_SLOT_US

    def sample_uplink_us(self, rng: np.random.Generator) -> float:
        """One uplink latency sample (uniform phase in the cycle)."""
        wait = float(rng.uniform(0.0, self.polling_cycle_us))
        return wait + BLUETOOTH_SLOT_US

    def sample_uplinks_us(self, n: int,
                          rng: np.random.Generator) -> list[float]:
        if n <= 0:
            raise ValueError("n must be positive")
        return [self.sample_uplink_us(rng) for _ in range(n)]

    def meets_urllc_latency(self, budget_us: float = 500.0) -> bool:
        """Whether the worst case fits a URLLC-style one-way budget —
        already false for more than a couple of slaves."""
        return self.worst_case_uplink_us() <= budget_us
