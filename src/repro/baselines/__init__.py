"""Comparison baselines: FR2 mmWave, Wi-Fi DCF, Bluetooth piconets."""

from repro.baselines.bluetooth import (
    BLUETOOTH_SLOT_US,
    MAX_ACTIVE_SLAVES,
    BluetoothPiconet,
)
from repro.baselines.mmwave import (
    PAPER_SUB_MS_FRACTION,
    MmWaveBaseline,
    MmWaveParameters,
)
from repro.baselines.wifi import WifiBaseline, WifiParameters

__all__ = [
    "BLUETOOTH_SLOT_US",
    "MAX_ACTIVE_SLAVES",
    "BluetoothPiconet",
    "PAPER_SUB_MS_FRACTION",
    "MmWaveBaseline",
    "MmWaveParameters",
    "WifiBaseline",
    "WifiParameters",
]
