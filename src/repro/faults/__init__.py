"""Deterministic, seed-driven fault injection.

The paper asks whether 99.999 % reliability survives adversity — HARQ
retransmission bursts, OS-induced radio-bus stalls (Fig 5), processing
tails (Table 2), core outages.  This package turns those adversities
into data: a declarative :class:`FaultPlan` compiled by
:class:`FaultHarness` into injectors hooked through every layer of the
simulated stack, with all randomness drawn from dedicated ``fault.*``
registry streams so faulted runs stay exactly reproducible (same seed ⇒
same faults, serial ≡ parallel) and fault-free runs stay bit-identical
to a run with no plan installed.  See docs/ROBUSTNESS.md.
"""

from repro.faults.injectors import (
    FaultCounters,
    FaultHarness,
    StalledRadioHead,
)
from repro.faults.plan import PRESET_PLANS, FaultKind, FaultPlan, FaultSpec

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "PRESET_PLANS",
    "FaultCounters",
    "FaultHarness",
    "StalledRadioHead",
]
