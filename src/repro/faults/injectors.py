"""Compiled fault injectors.

:class:`FaultHarness` compiles a :class:`~repro.faults.plan.FaultPlan`
into per-kind injector hooks that the network components consult at
their natural decision points: the air link asks for a forced HARQ fate,
RLC queues ask whether to drop a PDU, radio heads ask for extra bus
latency, processing layers ask for a dilation factor, and the UPF asks
for an outage hold.

Determinism contract (see docs/ROBUSTNESS.md):

- every stochastic injector draws from its own named registry stream
  (``fault.<kind>.<index>``), so installing a plan never perturbs the
  draws of fault-free components — a plan at intensity 0 is
  bit-identical to no plan at all;
- an injector consumes draws only while its window is open and only at
  deterministic decision points, so the same seed replays the same
  faults serially and under spawn-based parallelism;
- every fired fault emits a trace record under the ``fault`` category,
  making faulted runs diffable by :class:`~repro.sim.trace.Tracer`
  digest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.phy.timebase import tc_from_ms
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.stack.packets import Packet

__all__ = ["FaultCounters", "FaultHarness", "StalledRadioHead"]


@dataclass
class FaultCounters:
    """Tally of faults that actually fired during a run.

    Exposed through :meth:`as_metrics` so campaign results (and their
    baselines) gate on fault counts bit-for-bit.
    """

    harq_nacks: int = 0
    harq_dtx: int = 0
    rlc_losses: int = 0
    radio_stalls: int = 0
    dilated_jobs: int = 0
    upf_holds: int = 0

    def as_metrics(self) -> dict[str, int]:
        """Flat mapping merged into scenario metrics."""
        return {
            "fault_harq_nacks": self.harq_nacks,
            "fault_harq_dtx": self.harq_dtx,
            "fault_rlc_losses": self.rlc_losses,
            "fault_radio_stalls": self.radio_stalls,
            "fault_dilated_jobs": self.dilated_jobs,
            "fault_upf_holds": self.upf_holds,
        }


class _Injector:
    """One compiled spec: its window in Tc plus its private stream."""

    __slots__ = ("spec", "index", "start_tc", "stop_tc", "rng")

    def __init__(self, spec: FaultSpec, index: int, rngs: RngRegistry):
        self.spec = spec
        self.index = index
        self.start_tc = tc_from_ms(spec.start_ms)
        self.stop_tc = tc_from_ms(spec.stop_ms)
        self.rng = rngs.stream(f"fault.{spec.kind.value}.{index}")

    def active(self, now: int) -> bool:
        return self.start_tc <= now < self.stop_tc

    def fires(self, now: int) -> bool:
        """Consume one draw iff the window is open and p > 0."""
        if not self.active(now) or self.spec.probability <= 0.0:
            return False
        return float(self.rng.random()) < self.spec.probability

    def targets(self, category: str) -> bool:
        target = self.spec.target
        return (not target or category == target
                or category.startswith(target + "."))


class FaultHarness:
    """The per-run fault engine: compiled injectors plus counters."""

    def __init__(self, sim: Simulator, tracer: Tracer, rngs: RngRegistry,
                 plan: FaultPlan):
        self.sim = sim
        self.tracer = tracer
        self.plan = plan
        self.counters = FaultCounters()
        self._link: list[_Injector] = []
        self._rlc: list[_Injector] = []
        self._radio: list[_Injector] = []
        self._overload: list[_Injector] = []
        self._upf: list[_Injector] = []
        buckets = {
            FaultKind.HARQ_NACK: self._link,
            FaultKind.HARQ_DTX: self._link,
            FaultKind.RLC_LOSS: self._rlc,
            FaultKind.RADIO_STALL: self._radio,
            FaultKind.GNB_OVERLOAD: self._overload,
            FaultKind.UPF_OUTAGE: self._upf,
        }
        for index, spec in enumerate(plan.specs):
            buckets[spec.kind].append(_Injector(spec, index, rngs))

    @property
    def stalls_radio(self) -> bool:
        """Whether any spec targets the radio heads (wrap them iff so)."""
        return bool(self._radio)

    def _emit(self, name: str, **fields: Any) -> None:
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "fault", name, **fields)

    # ------------------------------------------------------------------
    # hooks, one per layer
    # ------------------------------------------------------------------
    def link_fate(self, completion_tc: int) -> str | None:
        """Forced HARQ fate for a block completing at ``completion_tc``.

        Every armed HARQ injector consumes its draw (consumption depends
        only on time, never on other injectors' outcomes); the first
        that fires decides between ``"nack"`` and ``"dtx"``.
        """
        fate: str | None = None
        for injector in self._link:
            if not injector.fires(completion_tc) or fate is not None:
                continue
            if injector.spec.kind is FaultKind.HARQ_DTX:
                fate = "dtx"
                self.counters.harq_dtx += 1
            else:
                fate = "nack"
                self.counters.harq_nacks += 1
            self._emit(f"harq_{fate}", spec=injector.index)
        return fate

    def rlc_drop(self, category: str, packet: "Packet") -> bool:
        """Whether the RLC queue ``category`` loses ``packet`` now."""
        for injector in self._rlc:
            if not injector.targets(category):
                continue
            if injector.fires(self.sim.now):
                self.counters.rlc_losses += 1
                self._emit("rlc_loss", spec=injector.index,
                           queue=category, packet_id=packet.packet_id)
                return True
        return False

    def radio_stall_us(self) -> float:
        """Extra bus latency (µs) to add to a radio-head transfer now."""
        stall_us = 0.0
        for injector in self._radio:
            if injector.fires(self.sim.now):
                stall_us += injector.spec.stall_us
                self.counters.radio_stalls += 1
                self._emit("radio_stall", spec=injector.index,
                           stall_us=injector.spec.stall_us)
        return stall_us

    def processing_dilation(self, category: str) -> float:
        """Multiplier for a processing-layer delay sampled now (>= 1)."""
        factor = 1.0
        now = self.sim.now
        for injector in self._overload:
            if injector.active(now) and injector.targets(category):
                factor *= injector.spec.factor
        if factor != 1.0:
            self.counters.dilated_jobs += 1
            self._emit("gnb_overload", layer=category, factor=factor)
        return factor

    def upf_hold_tc(self) -> int:
        """Extra hold (Tc) for a packet entering the UPF now.

        A firing outage holds the packet until its window closes,
        modelling a core-network blackout rather than mere slowness.
        """
        hold_tc = 0
        now = self.sim.now
        for injector in self._upf:
            if injector.fires(now):
                hold_tc = max(hold_tc, injector.stop_tc - now)
        if hold_tc:
            self.counters.upf_holds += 1
            self._emit("upf_outage", hold_tc=hold_tc)
        return hold_tc


class StalledRadioHead:
    """Delegating radio-head wrapper that adds fault bus stalls.

    Only the sampled transfer latencies are touched; the planning-side
    methods (``mean_one_way_us``, ``required_margin_tc``...) delegate to
    the wrapped head so scheduling margins stay those of the healthy
    hardware — a stall is an unplanned spike, exactly like Fig 5's USB
    jitter.
    """

    def __init__(self, inner: Any, harness: FaultHarness):
        self._inner = inner
        self._harness = harness

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def tx_latency_us(self, n_samples: int, rng: Any) -> float:
        """Wrapped TX latency plus any stall firing now."""
        return (self._inner.tx_latency_us(n_samples, rng)
                + self._harness.radio_stall_us())

    def rx_latency_us(self, n_samples: int, rng: Any) -> float:
        """Wrapped RX latency plus any stall firing now."""
        return (self._inner.rx_latency_us(n_samples, rng)
                + self._harness.radio_stall_us())
