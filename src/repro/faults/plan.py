"""Declarative fault schedules.

A :class:`FaultPlan` is an ordered list of :class:`FaultSpec` entries,
each describing one adversarial condition and the time window during
which it is armed.  Plans are data, not code: they serialise to a
canonical JSON string (so they can travel as a scenario parameter and
take part in campaign point digests) and scale uniformly with a single
``intensity`` knob, which is how the ``chaos-latency`` campaign sweeps
reliability-vs-fault-intensity curves against the paper's 99.999 %
target.

The schedule says *when* a fault may fire; whether it actually fires on
a given opportunity is decided by the compiled injectors in
:mod:`repro.faults.injectors`, drawing from dedicated ``fault.*``
registry streams so that fault-free components see the exact same
random draws with or without a plan installed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from enum import Enum
from typing import Any, Mapping

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "PRESET_PLANS",
    "scale_probability",
]


def scale_probability(probability: float, intensity: float) -> float:
    """The canonical probability-times-intensity clamp all plans share.

    Intensity 0 disarms (probability 0); intensity 1 is the spec as
    written; larger intensities clamp at certainty.  Used by both the
    simulation fault plans below and the dispatch chaos plans
    (:mod:`repro.runner.chaos`), so the two fault layers scale with
    one consistent rule.
    """
    if intensity < 0:
        raise ValueError(f"intensity must be >= 0, got {intensity}")
    return min(1.0, probability * intensity)


class FaultKind(str, Enum):
    """The fault families the injectors know how to compile.

    Each kind targets the layer the paper blames for a tail mode:
    HARQ NACK bursts and DTX at the MAC, RLC loss storms in the stack,
    radio-head bus stalls (Fig 5's USB jitter spikes), gNB
    processing-overload dilation of the Table 2 layer times, and
    UPF/core outages.
    """

    HARQ_NACK = "harq-nack"
    HARQ_DTX = "harq-dtx"
    RLC_LOSS = "rlc-loss"
    RADIO_STALL = "radio-stall"
    GNB_OVERLOAD = "gnb-overload"
    UPF_OUTAGE = "upf-outage"


@dataclass(frozen=True)
class FaultSpec:
    """One fault window.

    ``probability`` is the per-opportunity firing probability while the
    window ``[start_ms, stop_ms)`` is open.  ``factor`` (processing
    dilation, ``gnb-overload`` only) and ``stall_us`` (added bus
    latency, ``radio-stall`` only) size the fault when it fires.
    ``target`` narrows ``rlc-loss`` / ``gnb-overload`` to trace
    categories matching the prefix on dot boundaries (empty = all).
    """

    kind: FaultKind
    start_ms: float = 0.0
    stop_ms: float = 1_000.0
    probability: float = 1.0
    factor: float = 1.0
    stall_us: float = 0.0
    target: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {self.start_ms}")
        if self.stop_ms <= self.start_ms:
            raise ValueError(
                f"stop_ms ({self.stop_ms}) must be > start_ms "
                f"({self.start_ms})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got {self.probability}")
        if self.factor < 1.0:
            raise ValueError(
                f"factor dilates processing and must be >= 1, "
                f"got {self.factor}")
        if self.stall_us < 0:
            raise ValueError(f"stall_us must be >= 0, got {self.stall_us}")

    def scaled(self, intensity: float) -> "FaultSpec":
        """This spec with probability and dilation scaled by ``intensity``.

        Intensity 0 disarms the fault entirely (probability 0, dilation
        1.0 — bit-identical to no fault); intensity 1 is the spec as
        written; probabilities clamp at 1.0 beyond that while the
        dilation factor keeps growing linearly.
        """
        return replace(
            self,
            probability=scale_probability(self.probability, intensity),
            factor=max(1.0, 1.0 + (self.factor - 1.0) * intensity))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping with every field spelled out."""
        return {
            "kind": self.kind.value,
            "start_ms": self.start_ms,
            "stop_ms": self.stop_ms,
            "probability": self.probability,
            "factor": self.factor,
            "stall_us": self.stall_us,
            "target": self.target,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"fault spec must be an object, got {payload!r}")
        known = {
            "kind", "start_ms", "stop_ms", "probability", "factor",
            "stall_us", "target",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown fault-spec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise ValueError("fault spec is missing 'kind'")
        return cls(**dict(payload))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable schedule of :class:`FaultSpec` windows.

    Spec order matters: when several HARQ windows overlap, the first
    spec that fires decides the block's fate.  An empty plan is falsy
    and installs no injectors at all.
    """

    specs: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __bool__(self) -> bool:
        return bool(self.specs)

    def scaled(self, intensity: float) -> "FaultPlan":
        """The plan with every spec scaled (see :meth:`FaultSpec.scaled`)."""
        return FaultPlan(tuple(spec.scaled(intensity)
                               for spec in self.specs))

    def to_json(self) -> str:
        """Canonical (sorted-keys, compact) JSON — digest-stable."""
        return json.dumps([spec.to_dict() for spec in self.specs],
                          sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan serialised by :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, list):
            raise ValueError(
                f"fault plan JSON must be a list of specs, got {payload!r}")
        return cls(tuple(FaultSpec.from_dict(entry) for entry in payload))

    @classmethod
    def resolve(cls, value: str) -> "FaultPlan":
        """Turn a scenario parameter into a plan.

        Accepts either inline JSON (leading ``[``) or the name of a
        preset from :data:`PRESET_PLANS`.
        """
        text = value.strip()
        if text.startswith("["):
            return cls.from_json(text)
        try:
            return PRESET_PLANS[text]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {value!r}; presets: "
                f"{sorted(PRESET_PLANS)} (or pass inline JSON)") from None


#: Named plans usable as the ``faults`` scenario parameter.  The
#: ``standard`` preset staggers one window per fault kind across a
#: 600 ms horizon so a single chaos run exercises every injector.
PRESET_PLANS: dict[str, FaultPlan] = {
    "standard": FaultPlan((
        FaultSpec(FaultKind.HARQ_NACK, start_ms=50.0, stop_ms=150.0,
                  probability=0.3),
        FaultSpec(FaultKind.HARQ_DTX, start_ms=150.0, stop_ms=250.0,
                  probability=0.15),
        FaultSpec(FaultKind.RLC_LOSS, start_ms=0.0, stop_ms=300.0,
                  probability=0.05, target="gnb"),
        FaultSpec(FaultKind.RADIO_STALL, start_ms=250.0, stop_ms=400.0,
                  probability=0.2, stall_us=120.0),
        FaultSpec(FaultKind.GNB_OVERLOAD, start_ms=400.0, stop_ms=500.0,
                  factor=4.0),
        FaultSpec(FaultKind.UPF_OUTAGE, start_ms=500.0, stop_ms=520.0,
                  probability=1.0),
    )),
}
