"""URLLC application workload presets (paper §1's motivating classes).

Each preset fixes a payload size, an arrival pattern and a latency
requirement, so examples and benchmarks can speak in application terms
("industrial automation") instead of raw parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feasibility import Requirement
from repro.phy.timebase import tc_from_ms, tc_from_us
from repro.traffic import generators

__all__ = [
    "Workload",
    "INDUSTRIAL_AUTOMATION",
    "PROFESSIONAL_AUDIO",
    "REMOTE_SURGERY",
    "VR_AR",
    "TESTBED_PING",
    "ALL_WORKLOADS",
]


@dataclass(frozen=True)
class Workload:
    """One application traffic profile."""

    name: str
    payload_bytes: int
    requirement: Requirement
    arrival_kind: str          #: "periodic" | "uniform" | "poisson"
    period_us: float = 0.0     #: for periodic
    rate_per_second: float = 0.0  #: for poisson

    def arrivals(self, n_packets: int, horizon_tc: int,
                 rng: np.random.Generator) -> list[int]:
        """Generate arrival ticks for this workload."""
        if self.arrival_kind == "periodic":
            return generators.periodic(
                n_packets, tc_from_us(self.period_us))
        if self.arrival_kind == "uniform":
            return generators.uniform_in_horizon(
                n_packets, horizon_tc, rng)
        if self.arrival_kind == "poisson":
            arrivals = generators.poisson(
                self.rate_per_second, horizon_tc, rng)
            return arrivals[:n_packets] if n_packets else arrivals
        raise ValueError(f"unknown arrival kind {self.arrival_kind!r}")


#: Factory-floor control loop: small command packets every millisecond,
#: hard 0.5 ms one-way deadline (§1, [13, 16]).
INDUSTRIAL_AUTOMATION = Workload(
    name="industrial-automation",
    payload_bytes=48,
    requirement=Requirement("industrial", tc_from_ms(0.5), 0.99999),
    arrival_kind="periodic",
    period_us=1000.0,
)

#: Professional live audio (§1, [33]): 48 kHz frames every 250 µs
#: equivalent, ~1 ms budget.
PROFESSIONAL_AUDIO = Workload(
    name="professional-audio",
    payload_bytes=120,
    requirement=Requirement("pro-audio", tc_from_ms(1.0), 0.9999),
    arrival_kind="periodic",
    period_us=250.0,
)

#: Remote surgery haptics (§1, [20]): periodic 1 kHz haptic feedback.
REMOTE_SURGERY = Workload(
    name="remote-surgery",
    payload_bytes=64,
    requirement=Requirement("surgery", tc_from_ms(0.5), 0.99999),
    arrival_kind="periodic",
    period_us=1000.0,
)

#: VR/AR pose updates (§1, [24]): higher rate, slightly relaxed budget.
VR_AR = Workload(
    name="vr-ar",
    payload_bytes=256,
    requirement=Requirement("vr-ar", tc_from_ms(1.0), 0.999),
    arrival_kind="poisson",
    rate_per_second=2000.0,
)

#: The paper's §7 measurement workload: pings uniform in the pattern.
TESTBED_PING = Workload(
    name="testbed-ping",
    payload_bytes=32,
    requirement=Requirement("urllc", tc_from_ms(0.5), 0.99999),
    arrival_kind="uniform",
)

ALL_WORKLOADS = (INDUSTRIAL_AUTOMATION, PROFESSIONAL_AUDIO,
                 REMOTE_SURGERY, VR_AR, TESTBED_PING)
