"""Traffic substrate: arrival processes and application workloads."""

from repro.traffic.applications import (
    ALL_WORKLOADS,
    INDUSTRIAL_AUTOMATION,
    PROFESSIONAL_AUDIO,
    REMOTE_SURGERY,
    TESTBED_PING,
    VR_AR,
    Workload,
)
from repro.traffic.generators import periodic, poisson, uniform_in_horizon
from repro.traffic.shaping import (
    align_periodic,
    optimal_phase,
    phase_is_stable,
)

__all__ = [
    "align_periodic",
    "optimal_phase",
    "phase_is_stable",
    "ALL_WORKLOADS",
    "INDUSTRIAL_AUTOMATION",
    "PROFESSIONAL_AUDIO",
    "REMOTE_SURGERY",
    "TESTBED_PING",
    "VR_AR",
    "Workload",
    "periodic",
    "poisson",
    "uniform_in_horizon",
]
