"""Traffic arrival processes.

The paper's demonstration generates packets "uniformly within the
pattern" (§7); other processes model the URLLC application classes the
introduction motivates (periodic industrial control, Poisson background
traffic).
"""

from __future__ import annotations

import numpy as np

from repro.phy.timebase import tc_from_us

__all__ = ["uniform_in_horizon", "periodic", "poisson"]


def uniform_in_horizon(n_packets: int, horizon_tc: int,
                       rng: np.random.Generator,
                       start_tc: int = 0) -> list[int]:
    """``n_packets`` arrivals uniform over ``[start, start + horizon)``.

    With ``horizon`` a multiple of the TDD period this is exactly the
    paper's "uniformly generated within the pattern" workload: arrival
    phases cover the whole pattern evenly.
    """
    if n_packets <= 0:
        raise ValueError(f"n_packets must be positive, got {n_packets}")
    if horizon_tc <= 0:
        raise ValueError(f"horizon must be positive, got {horizon_tc}")
    arrivals = start_tc + rng.integers(0, horizon_tc, size=n_packets)
    return sorted(int(a) for a in arrivals)


def periodic(n_packets: int, period_tc: int, start_tc: int = 0,
             jitter_tc: int = 0,
             rng: np.random.Generator | None = None) -> list[int]:
    """Isochronous arrivals (industrial control loops, pro audio).

    Optional ±jitter models sensor clock wander; requires ``rng``.
    """
    if n_packets <= 0 or period_tc <= 0:
        raise ValueError("n_packets and period must be positive")
    if jitter_tc and rng is None:
        raise ValueError("jitter requires an rng")
    arrivals = []
    for index in range(n_packets):
        arrival = start_tc + index * period_tc
        if jitter_tc:
            assert rng is not None
            arrival += int(rng.integers(-jitter_tc, jitter_tc + 1))
        arrivals.append(max(0, arrival))
    return sorted(arrivals)


def poisson(rate_per_second: float, horizon_tc: int,
            rng: np.random.Generator, start_tc: int = 0) -> list[int]:
    """Poisson arrivals at ``rate_per_second`` over a horizon."""
    if rate_per_second <= 0 or horizon_tc <= 0:
        raise ValueError("rate and horizon must be positive")
    mean_gap_us = 1e6 / rate_per_second
    arrivals: list[int] = []
    cursor = start_tc
    while True:
        cursor += tc_from_us(float(rng.exponential(mean_gap_us)))
        if cursor >= start_tc + horizon_tc:
            return arrivals
        arrivals.append(cursor)
