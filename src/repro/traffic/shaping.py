"""Traffic shaping: phase-aligning isochronous traffic to the pattern.

Deterministic-latency networking over TDD needs synchronisation between
the application and the radio pattern (the paper's deterministic-latency
reference [12]): a 1 kHz control loop whose packets always arrive at
the start of a DL region pays the worst-case protocol latency on every
single packet, while the same loop phased just ahead of the UL region
pays close to the best case.

:func:`align_periodic` computes the optimal constant shift from the
analytical model's best-case arrival phase.  It requires the traffic
period to be a multiple of the scheme period (otherwise the phase
drifts and no constant shift helps — :func:`phase_is_stable` checks).
"""

from __future__ import annotations

from repro.mac.scheme import DuplexingScheme
from repro.mac.types import AccessMode, Direction

__all__ = ["phase_is_stable", "optimal_phase", "align_periodic"]


def phase_is_stable(arrivals: list[int],
                    scheme: DuplexingScheme) -> bool:
    """Whether all arrivals share one phase of the scheme period.

    True for isochronous traffic whose period divides into the TDD
    pattern; alignment only helps in that case.
    """
    if not arrivals:
        raise ValueError("no arrivals")
    phase = arrivals[0] % scheme.period_tc
    return all(a % scheme.period_tc == phase for a in arrivals)


def optimal_phase(scheme: DuplexingScheme, direction: Direction,
                  access: AccessMode = AccessMode.GRANT_FREE,
                  headroom_tc: int = 0) -> int:
    """Robust arrival phase: just ahead of the first opportunity.

    The analytically *minimal* latency phase sits a tick before an
    opportunity closes — a knife-edge that any processing jitter tips
    into a full extra period.  The robust choice targets the window
    *start* instead: latency ≈ one window duration plus the headroom,
    with the entire window as slack.  ``headroom_tc`` backs the phase
    off further to cover preparation (processing + radio submission).
    """
    if headroom_tc < 0:
        raise ValueError("headroom must be >= 0")
    timeline = (scheme.dl_timeline() if direction is Direction.DL
                else scheme.ul_timeline())
    start = timeline.first_start_at_or_after(0).start
    return (start - headroom_tc) % scheme.period_tc


def align_periodic(arrivals: list[int], scheme: DuplexingScheme,
                   direction: Direction,
                   access: AccessMode = AccessMode.GRANT_FREE,
                   headroom_tc: int = 0) -> list[int]:
    """Shift phase-stable arrivals onto the optimal phase.

    The shift is a single forward constant (0 ≤ shift < period), so
    ordering and inter-arrival spacing are preserved exactly.
    """
    if not phase_is_stable(arrivals, scheme):
        raise ValueError(
            "arrivals are not phase-stable over the scheme period; "
            "a constant shift cannot align them")
    target = optimal_phase(scheme, direction, access, headroom_tc)
    current = arrivals[0] % scheme.period_tc
    shift = (target - current) % scheme.period_tc
    return [arrival + shift for arrival in arrivals]
