"""Work-stealing distributed dispatch for campaigns.

:class:`DispatchCoordinator` turns a campaign into idempotent jobs —
keyed by the existing point digest — in a shared *queue directory*
(:mod:`repro.runner.lease`), spawns N independent worker processes, and
merges their journals (:mod:`repro.runner.merge`) into a document that
is bit-identical to a serial run.  Workers coordinate only through the
queue directory, so additional workers can attach from any host that
shares the filesystem: ``urllc5g bench --worker <queue-dir>``.

The safety argument, end to end:

- **Gate.**  Only scenarios certified distributable by ``urllc5g
  distcheck`` — status ``certified`` or ``baselined-findings`` in
  ``distcheck-manifest.json`` — may be enqueued.  A campaign touching
  any other scenario (absent counts as refused) raises
  :class:`DispatchRefusedError` before a single job file is written.
- **Idempotence.**  Every point payload is a pure function of
  ``(scenario, params, seed)`` plus the source tree, so executing a
  job twice — the worst a falsely reclaimed lease can do — produces
  bit-identical payloads, which the merge layer deduplicates.
- **Crash windows.**  A worker journals a payload *before* publishing
  the done marker and releases its lease only after.  Whatever instant
  a worker dies, either its lease is reclaimed and the point re-run, or
  the done marker exists and the journal entry is already on disk.
- **Convergence.**  If every local worker dies (or the queue stalls),
  the coordinator itself drains the remaining jobs inline, so a
  dispatched run always terminates with the full document.
- **Single-writer caches.**  Workers never write the shared
  :class:`~repro.runner.cache.ResultCache`; the coordinator consults it
  before enqueueing and stores merged payloads at collect time, so the
  whole-file atomic rewrite can never lose concurrent entries.

The wall clock is read only for the campaign-level ``wall_clock_s``
span (``time.perf_counter`` is excused for this file in
``[tool.urllc5g.lint.per-path]``); the queue protocol itself is
entirely stamp-based and clock-free.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.devtools.distcheck.manifest import DistManifest
from repro.runner import envconfig
from repro.runner.cache import ResultCache, source_fingerprint
from repro.runner.campaign import Campaign, ScenarioPoint
from repro.runner.executor import CampaignResult, PointResult
from repro.runner.fsops import FsOps
from repro.runner.journal import CampaignJournal
from repro.runner.lease import (
    QUEUE_MANIFEST_NAME,
    EventLog,
    HeartbeatWriter,
    Job,
    LivenessTracker,
    QueueDir,
    read_queue_manifest,
    write_queue_manifest,
)
from repro.runner.merge import (
    MergedEntry,
    merge_worker_journals,
    write_merged_journal,
)
from repro.runner.scenarios import run_point
from repro.sim.rng import RngRegistry

__all__ = [
    "DispatchCoordinator",
    "DispatchRefusedError",
    "DispatchStats",
    "MERGED_JOURNAL_NAME",
    "run_worker",
]

#: The coordinator's actor id in event logs, inline journals and claims.
_COORDINATOR = "coordinator"

#: Filename of the serial-equivalent merged journal inside the queue.
MERGED_JOURNAL_NAME = "merged-journal.jsonl"


class _Backoff:
    """Bounded exponential backoff with deterministic per-actor jitter.

    Replaces the fixed-interval claim/attach polls: each consecutive
    empty poll doubles the delay up to ``cap_factor`` base intervals,
    scaled by a jitter factor in ``[0.5, 1.5)`` drawn from the named
    ``dispatch.backoff`` stream of a registry forked per actor id — so
    a fleet of workers spun up together never polls in lockstep, yet
    every worker's delay sequence is a pure function of its id.

    :meth:`sleep` returns the *poll units* consumed (delay divided by
    the base interval).  Callers budget liveness strikes and stall
    detection in accumulated units, exactly as they previously counted
    fixed polls — the protocol stays wall-clock-free even though the
    sleeps themselves stretch.
    """

    def __init__(self, base_s: float, actor: str, cap_factor: int = 16):
        self.base_s = base_s
        self.cap_factor = cap_factor
        self._rng = RngRegistry(0).fork(
            f"backoff:{actor}").stream("dispatch.backoff")
        self._attempt = 0

    def reset(self) -> None:
        """Work was found: drop back to the base interval."""
        self._attempt = 0

    def sleep(self) -> float:
        """Sleep the current delay; returns poll units consumed."""
        factor = min(float(self.cap_factor), float(2 ** self._attempt))
        if self._attempt < 30:  # avoid pointless huge exponents
            self._attempt += 1
        units = factor * (0.5 + float(self._rng.random()))
        if self.base_s > 0:
            time.sleep(self.base_s * units)
        return units


class DispatchRefusedError(RuntimeError):
    """The distcheck manifest refuses to distribute this campaign."""

    def __init__(self, reasons: Sequence[str]):
        self.reasons = tuple(reasons)
        super().__init__(
            "dispatch refused by the distcheck manifest:\n  - "
            + "\n  - ".join(self.reasons))


@dataclass(frozen=True)
class DispatchStats:
    """Scheduling provenance of one dispatched run.

    Everything here describes *how* points were executed, never *what*
    they computed — scheduling may differ between two equal runs (which
    workers stole what, how many leases expired), so none of it feeds
    :meth:`~repro.runner.executor.CampaignResult.results_digest`.
    """

    #: Local worker processes the coordinator spawned.
    workers: int
    #: Jobs enqueued (campaign points minus warm cache hits).
    jobs: int
    #: Done markers published by a worker other than the job's home.
    steals: int
    #: Leases whose owner was declared dead by the liveness tracker.
    lease_expirations: int
    #: Expired leases successfully returned to the job queue.
    reclaims: int
    #: Points journaled by more than one worker (benign duplicate
    #: executions after a false reclaim; payloads verified identical).
    duplicate_points: int
    #: Worker journals rejected whole at merge (foreign fingerprint,
    #: wrong campaign/seed/format).
    journals_rejected: int
    #: Points the coordinator executed itself after every local worker
    #: died or the queue stalled.
    inline_points: int
    #: Points recomputed at collect because no merged payload survived
    #: (e.g. their journal was rejected).
    recovered_points: int
    #: Corrupt job/lease files sidelined to ``*.corrupt-<digest>``.
    quarantined_files: int
    #: Heartbeat stamps workers failed to write (ENOSPC/EIO).
    heartbeat_drops: int
    #: Event-log records workers failed to append (ENOSPC/EIO).
    event_drops: int
    #: Journal appends that failed (the point still published a done
    #: marker; its payload is recovered at collect).
    journal_drops: int
    #: Done markers per worker id.
    per_worker_points: dict[str, int]

    def as_payload(self) -> dict[str, Any]:
        """JSON-ready form for the bench document."""
        return {
            "workers": self.workers,
            "jobs": self.jobs,
            "steals": self.steals,
            "lease_expirations": self.lease_expirations,
            "reclaims": self.reclaims,
            "duplicate_points": self.duplicate_points,
            "journals_rejected": self.journals_rejected,
            "inline_points": self.inline_points,
            "recovered_points": self.recovered_points,
            "quarantined_files": self.quarantined_files,
            "heartbeat_drops": self.heartbeat_drops,
            "event_drops": self.event_drops,
            "journal_drops": self.journal_drops,
            "per_worker_points": dict(
                sorted(self.per_worker_points.items())),
        }

    def degraded(self) -> dict[str, int]:
        """The nonzero degradation counters (empty on a clean run)."""
        counters = {
            "quarantined_files": self.quarantined_files,
            "heartbeat_drops": self.heartbeat_drops,
            "event_drops": self.event_drops,
            "journal_drops": self.journal_drops,
        }
        return {key: value for key, value in counters.items() if value}


def _execute_job(point: ScenarioPoint, max_retries: int
                 ) -> tuple[dict[str, Any] | None, int, str | None]:
    """Run one point with the standard bounded-retry budget."""
    error = None
    for attempt in range(1, max_retries + 2):
        try:
            return run_point(point), attempt, None
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
    return None, max_retries + 1, error


def _publish(queue: QueueDir, events: EventLog, job: Job,
             worker_id: str, *, attempts: int,
             error: str | None, stolen: bool) -> None:
    """Publish the done marker, then drop the lease — fault-tolerantly.

    A marker write that fails (ENOSPC/EIO) is retried a bounded number
    of times; if it *keeps* failing the worker requeues its own lease
    so the point is re-offered to the fleet rather than held hostage
    by a host that can no longer write.  If even the requeue rename
    fails, the lease stays put — a worker that cannot write also stops
    heartbeating, so the orphan is reclaimed by a peer.
    """
    for _ in range(3):
        try:
            queue.mark_done(job.digest, worker_id, attempts=attempts,
                            error=error, stolen=stolen)
            queue.release(job.digest, worker_id)
            return
        except OSError:
            continue
    try:
        queue.requeue(job.digest, worker_id, job.home)
        events.emit("requeue", digest=job.digest)
    except OSError:
        events.emit("publish-stuck", digest=job.digest)


def _process_job(queue: QueueDir, journal: CampaignJournal,
                 events: EventLog, job: Job, worker_id: str,
                 max_retries: int) -> None:
    """Execute a claimed job through the crash-safe publish sequence.

    Order matters: the journal entry is flushed *before* the done
    marker is published, and the lease is dropped only after — so a
    done marker always implies a durable payload, and a crash at any
    point leaves the job either reclaimable or fully published.  A
    journal append that fails (ENOSPC/EIO) is dropped and counted:
    the marker still goes out, and the coordinator recomputes the
    point at collect from the campaign's own point list.
    """
    stolen = job.home != worker_id
    if stolen:
        events.emit("steal", digest=job.digest, home=job.home)
    try:
        point = job.point()
    except ValueError as exc:
        _publish(queue, events, job, worker_id, attempts=1,
                 error=str(exc), stolen=stolen)
        return
    result, attempts, error = _execute_job(point, max_retries)
    if result is not None:
        try:
            journal.record(job.digest, result, attempts)
        except OSError:
            events.emit("journal-drop", digest=job.digest)
    _publish(queue, events, job, worker_id, attempts=attempts,
             error=error, stolen=stolen)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
def run_worker(queue_dir: str | Path, worker_id: str, *,
               max_retries: int = 2, poll_interval_s: float = 0.05,
               strikes: int = 8, heartbeat_interval_s: float = 0.05,
               fingerprint: str | None = None,
               attach_polls: int = 200,
               fs: FsOps | None = None) -> int:
    """Attach one worker to a queue directory; returns an exit code.

    The worker claims own-shard jobs first, steals other shards when
    idle, reclaims orphaned leases of dead peers, and exits 0 once
    every enqueued digest has a done marker.  Exit 2 means the worker
    refused to participate: missing/invalid queue manifest, or a
    source fingerprint differing from the coordinator's (mixed code
    versions would silently poison the document — merge-time journal
    rejection is the backstop, this is the front door).

    ``fs`` is the filesystem seam for every queue operation.  When it
    is None and the environment snapshot carries a chaos plan
    (``URLLC5G_CHAOS_PLAN``, set by ``urllc5g chaosdispatch`` in the
    worker's environment only), the worker runs under a fault-
    injecting :class:`~repro.runner.chaos.ChaosFsOps`; otherwise the
    zero-overhead passthrough.
    """
    # One consistent URLLC5G_* reading for this worker's whole run.
    config = envconfig.refresh()
    if fs is None and config.chaos_plan:
        from repro.runner.chaos import ChaosFsOps, ChaosPlan
        fs = ChaosFsOps(ChaosPlan.from_json(config.chaos_plan),
                        worker_id)
    queue = QueueDir(queue_dir, fs=fs)
    backoff = _Backoff(poll_interval_s, worker_id)
    manifest: dict[str, Any] | None = None
    budget = float(max(1, attach_polls))
    waited = 0.0
    while waited < budget:
        try:
            manifest = read_queue_manifest(queue)
            break
        except ValueError:
            waited += backoff.sleep()
    if manifest is None:
        print(f"worker {worker_id}: no readable queue manifest in "
              f"{queue.root}; not a dispatch queue directory (or the "
              "coordinator never started)", file=sys.stderr)
        return 2
    local = fingerprint if fingerprint is not None \
        else source_fingerprint()
    if local != manifest["fingerprint"]:
        print(f"worker {worker_id}: source fingerprint {local[:12]}... "
              f"does not match the queue manifest's "
              f"{str(manifest['fingerprint'])[:12]}... — this host is "
              "running different code than the coordinator; refusing "
              "to compute points", file=sys.stderr)
        return 2
    expected = set(manifest.get("enqueued") or manifest["digests"])
    events = EventLog(queue, worker_id)
    journal = CampaignJournal(queue.journals / f"{worker_id}.jsonl",
                              fs=queue.fs)
    journal.start_raw(name=str(manifest["campaign"]),
                      seed=int(manifest["seed"]),
                      fingerprint=str(manifest["fingerprint"]),
                      points=int(manifest["points"]),
                      digests=set(manifest["digests"]))
    tracker = LivenessTracker(queue, strikes=strikes)
    completed = 0
    try:
        with HeartbeatWriter(queue, worker_id,
                             interval_s=heartbeat_interval_s) as heart:
            events.emit("start")
            backoff.reset()
            while True:
                job = queue.claim(worker_id, events)
                if job is not None:
                    _process_job(queue, journal, events, job,
                                 worker_id, max_retries)
                    completed += 1
                    backoff.reset()
                    continue
                if expected <= queue.done_markers().keys():
                    break
                tracker.reclaim_dead(tracker.observe(), events)
                backoff.sleep()
            events.emit("exit", points=completed,
                        heartbeat_drops=heart.dropped,
                        event_drops=events.dropped)
    finally:
        journal.close()
    return 0


# ----------------------------------------------------------------------
# coordinator side
# ----------------------------------------------------------------------
class DispatchCoordinator:
    """Runs one campaign across N workers through a queue directory.

    Drop-in producer of the same :class:`CampaignResult` a
    :class:`~repro.runner.executor.CampaignRunner` returns — plus a
    :class:`DispatchStats` block — so ``bench_payload`` and baseline
    checking work unchanged on dispatched runs.

    ``spawn_command`` (worker id -> argv) exists for tests; the default
    spawns ``python -m repro.cli bench --worker <queue> ...`` with the
    package's source root prepended to ``PYTHONPATH``.
    """

    def __init__(self, workers: int, queue_dir: str | Path,
                 manifest: DistManifest, *,
                 cache: ResultCache | None = None,
                 fingerprint: str | None = None,
                 max_retries: int = 2,
                 poll_interval_s: float = 0.05,
                 strikes: int = 8,
                 stall_polls: int = 6000,
                 spawn_command: Callable[[str], list[str]] | None = None,
                 worker_env: Mapping[str, str] | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}")
        if strikes < 1:
            raise ValueError(f"strikes must be >= 1, got {strikes}")
        self.workers = workers
        self.queue = QueueDir(queue_dir)
        self.manifest = manifest
        self.cache = cache
        self.max_retries = max_retries
        self.poll_interval_s = poll_interval_s
        self.strikes = strikes
        self.stall_polls = stall_polls
        self.spawn_command = spawn_command
        #: Extra environment for spawned workers only (the chaos
        #: explorer plants URLLC5G_CHAOS_PLAN here, so the coordinator
        #: process itself always runs the passthrough seam).
        self.worker_env = dict(worker_env or {})
        self._fingerprint = fingerprint

    @property
    def fingerprint(self) -> str:
        """The source fingerprint jobs and cache entries are keyed on."""
        if self._fingerprint is None:
            self._fingerprint = source_fingerprint()
        return self._fingerprint

    # ------------------------------------------------------------------
    def run(self, campaign: Campaign) -> CampaignResult:
        """Dispatch, wait, merge; bit-identical to a serial run."""
        # Measurement boundary: elapsed-time span only, never results.
        start_s = time.perf_counter()
        refusals = self.manifest.refusals(
            sorted({point.scenario for point in campaign.points}))
        if refusals:
            raise DispatchRefusedError(refusals)
        envconfig.refresh()
        warnings: list[str] = []
        if self.cache is not None:
            warnings.extend(self.cache.warnings)

        self._reset_queue()
        cached: dict[str, dict[str, Any]] = {}
        pending: list[ScenarioPoint] = []
        for point in campaign.points:
            digest = point.digest()
            if self.cache is not None:
                payload = self.cache.lookup(digest, self.fingerprint)
                if payload is not None:
                    cached[digest] = payload
                    continue
            pending.append(point)

        worker_ids = [f"w{k + 1}" for k in range(self.workers)]
        write_queue_manifest(self.queue, {
            "campaign": campaign.name,
            "seed": campaign.seed,
            "fingerprint": self.fingerprint,
            "points": len(campaign.points),
            "digests": [point.digest() for point in campaign.points],
            "enqueued": sorted(point.digest() for point in pending),
            "workers": worker_ids,
        })
        for index, point in enumerate(pending):
            self.queue.enqueue(point,
                               home=worker_ids[index % self.workers])
        events = EventLog(self.queue, _COORDINATOR)
        events.emit("enqueue", jobs=len(pending), cached=len(cached))

        procs: list[tuple[subprocess.Popen[bytes], str]] = []
        inline_points = 0
        if pending:
            procs = self._spawn(worker_ids)
            inline_points = self._wait(pending, procs, events, warnings)

        point_results, stats = self._collect(
            campaign, cached, pending, inline_points, warnings)
        end_s = time.perf_counter()
        return CampaignResult(
            campaign=campaign,
            point_results=tuple(point_results),
            workers=self.workers,
            cache_hits=len(cached),
            cache_misses=len(pending),
            wall_clock_s=end_s - start_s,
            journal_replays=0,
            warnings=tuple(dict.fromkeys(warnings)),
            dispatch=stats,
        )

    # ------------------------------------------------------------------
    def _reset_queue(self) -> None:
        """Wipe-and-recreate the queue directory — with a safety latch.

        A non-empty directory is wiped only if it contains a queue
        manifest (i.e. it really is a previous dispatch queue); a
        random non-empty directory passed by mistake is refused rather
        than deleted.
        """
        root = self.queue.root
        if root.exists():
            if not root.is_dir():
                raise ValueError(
                    f"queue path {root} exists and is not a directory")
            if any(root.iterdir()) \
                    and not (root / QUEUE_MANIFEST_NAME).exists():
                raise ValueError(
                    f"refusing to wipe {root}: non-empty and missing "
                    f"{QUEUE_MANIFEST_NAME} — not a dispatch queue "
                    "directory")
            shutil.rmtree(root)
        self.queue.initialise()

    def _default_command(self, worker_id: str) -> list[str]:
        return [sys.executable, "-m", "repro.cli", "bench",
                "--worker", str(self.queue.root),
                "--worker-id", worker_id,
                "--retries", str(self.max_retries)]

    def _spawn(self, worker_ids: list[str]
               ) -> list[tuple[subprocess.Popen[bytes], str]]:
        env = dict(os.environ)
        source_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        parts = [p for p in existing.split(os.pathsep) if p]
        if source_root not in parts:
            env["PYTHONPATH"] = os.pathsep.join([source_root] + parts)
        env.update(self.worker_env)
        procs = []
        for worker_id in worker_ids:
            command = (self.spawn_command(worker_id)
                       if self.spawn_command is not None
                       else self._default_command(worker_id))
            procs.append((subprocess.Popen(command, env=env),
                          worker_id))
        return procs

    def _wait(self, pending: list[ScenarioPoint],
              procs: list[tuple[subprocess.Popen[bytes], str]],
              events: EventLog, warnings: list[str]) -> int:
        """Poll until every enqueued point has a done marker.

        Reclaims orphaned leases of dead workers each cycle.  When no
        local worker is left alive — or the queue makes no progress
        for ``stall_polls`` cycles — the coordinator drains the
        remaining jobs inline, guaranteeing termination.
        """
        expected = {point.digest() for point in pending}
        tracker = LivenessTracker(self.queue, strikes=self.strikes)
        backoff = _Backoff(self.poll_interval_s, _COORDINATOR)
        inline_journal: CampaignJournal | None = None
        inline_points = 0
        reaped: set[str] = set()
        stall = 0.0
        last_done = -1
        try:
            while True:
                done = set(self.queue.done_markers())
                if expected <= done:
                    break
                for proc, worker_id in procs:
                    if proc.poll() is not None \
                            and worker_id not in reaped:
                        reaped.add(worker_id)
                        if proc.returncode != 0:
                            warnings.append(
                                f"dispatch worker {worker_id} exited "
                                f"with code {proc.returncode}; its "
                                "leases will be reclaimed")
                tracker.reclaim_dead(tracker.observe(), events)
                alive = any(proc.returncode is None
                            for proc, _ in procs)
                if not alive:
                    job = self.queue.claim(_COORDINATOR, events)
                    if job is not None:
                        if inline_journal is None:
                            inline_journal = self._start_inline_journal(
                                pending)
                        _process_job(self.queue, inline_journal,
                                     events, job, _COORDINATOR,
                                     self.max_retries)
                        inline_points += 1
                        backoff.reset()
                        continue
                if len(done) == last_done:
                    stall += 1.0
                else:
                    last_done, stall = len(done), 0.0
                    backoff.reset()
                if stall >= self.stall_polls:
                    if alive:
                        warnings.append(
                            f"dispatch made no progress for "
                            f"{self.stall_polls} polls; killing local "
                            "workers and finishing inline")
                        for proc, _ in procs:
                            proc.kill()
                        stall = 0.0
                    else:
                        # Every worker is gone and nothing is
                        # claimable or completing: some digest can
                        # never earn a marker (e.g. its done-marker
                        # write was faulted away after the job file
                        # was retired).  Collect recomputes the
                        # missing points, so bail out rather than
                        # poll forever.
                        warnings.append(
                            f"dispatch stalled with no live workers "
                            f"for {self.stall_polls} polls; "
                            "abandoning the queue and recovering "
                            "missing points at collect")
                        break
                stall += max(0.0, backoff.sleep() - 1.0)
        finally:
            if inline_journal is not None:
                inline_journal.close()
            for proc, _ in procs:
                if proc.returncode is None:
                    try:
                        proc.wait(timeout=15.0)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait()
        return inline_points

    def _start_inline_journal(self, pending: list[ScenarioPoint]
                              ) -> CampaignJournal:
        journal = CampaignJournal(
            self.queue.journals / f"{_COORDINATOR}.jsonl")
        manifest = read_queue_manifest(self.queue)
        journal.start_raw(name=str(manifest["campaign"]),
                          seed=int(manifest["seed"]),
                          fingerprint=self.fingerprint,
                          points=int(manifest["points"]),
                          digests={p.digest() for p in pending})
        return journal

    # ------------------------------------------------------------------
    def _collect(self, campaign: Campaign,
                 cached: dict[str, dict[str, Any]],
                 pending: list[ScenarioPoint], inline_points: int,
                 warnings: list[str]
                 ) -> tuple[list[PointResult], DispatchStats]:
        """Merge journals into campaign-order results + stats."""
        all_digests = [point.digest() for point in campaign.points]
        merge = merge_worker_journals(
            sorted(self.queue.journals.glob("*.jsonl")),
            name=campaign.name, seed=campaign.seed,
            fingerprint=self.fingerprint, digests=set(all_digests))
        warnings.extend(merge.warnings)
        markers = self.queue.done_markers()

        point_results: list[PointResult] = []
        recovered = 0
        for point in campaign.points:
            digest = point.digest()
            if digest in cached:
                point_results.append(
                    PointResult(point, cached[digest], from_cache=True))
                continue
            entry = merge.entries.get(digest)
            if entry is not None:
                point_results.append(PointResult(
                    point, entry.result, from_cache=False,
                    attempts=entry.attempts))
                if self.cache is not None:
                    self.cache.store(digest, self.fingerprint,
                                     entry.result)
                continue
            marker = markers.get(digest)
            if marker is not None and marker.get("error"):
                attempts = marker.get("attempts")
                point_results.append(PointResult(
                    point, {}, from_cache=False,
                    attempts=attempts if isinstance(attempts, int)
                    else 1,
                    error=str(marker["error"])))
                continue
            # No journaled payload survived (journal rejected at merge,
            # or lost with its worker).  Points are pure functions, so
            # recomputing here cannot change the document.
            recovered += 1
            warnings.append(
                f"point {digest[:12]}... had no merged payload; "
                "recomputed by the coordinator at collect")
            result, attempts, error = _execute_job(point,
                                                   self.max_retries)
            point_results.append(PointResult(
                point, result or {}, from_cache=False,
                attempts=attempts, error=error))
            if result is not None:
                merge.entries[digest] = MergedEntry(
                    digest=digest, result=result, attempts=attempts,
                    workers=(_COORDINATOR,))
                if self.cache is not None:
                    self.cache.store(digest, self.fingerprint, result)
        if self.cache is not None:
            self.cache.save()

        write_merged_journal(
            self.queue.root / MERGED_JOURNAL_NAME,
            name=campaign.name, seed=campaign.seed,
            fingerprint=self.fingerprint,
            ordered_digests=all_digests, entries=merge.entries)

        all_events = EventLog.read_all(self.queue)
        per_worker: dict[str, int] = {}
        steals = 0
        for marker in markers.values():
            worker = str(marker.get("worker"))
            per_worker[worker] = per_worker.get(worker, 0) + 1
            if marker.get("stolen"):
                steals += 1

        def _count(event: str) -> int:
            return sum(1 for e in all_events if e.get("event") == event)

        def _exit_total(field: str) -> int:
            total = 0
            for e in all_events:
                if e.get("event") != "exit":
                    continue
                value = e.get(field)
                total += value if isinstance(value, int) else 0
            return total

        stats = DispatchStats(
            workers=self.workers,
            jobs=len(pending),
            steals=steals,
            lease_expirations=_count("expire"),
            reclaims=_count("reclaim"),
            duplicate_points=merge.duplicate_points,
            journals_rejected=merge.journals_rejected,
            inline_points=inline_points,
            recovered_points=recovered,
            quarantined_files=_count("quarantine"),
            heartbeat_drops=_exit_total("heartbeat_drops"),
            event_drops=_exit_total("event_drops"),
            journal_drops=_count("journal-drop"),
            per_worker_points=per_worker,
        )
        return point_results, stats
