"""The injectable filesystem-operations seam of the queue protocol.

Every filesystem transition the dispatch layer performs — the atomic
renames of claim/reclaim, done-marker and heartbeat writes, journal and
event appends, directory scans — goes through one small :class:`FsOps`
object instead of calling :mod:`os` directly.  The default instance
(:data:`DEFAULT_FS`) is a pure passthrough: no state, no branching
beyond the call, zero overhead — so with no chaos plan installed the
protocol behaves exactly as it did before the seam existed.

The seam exists for :mod:`repro.runner.chaos`: a ``ChaosFsOps``
subclass injects deterministic EIO/ENOSPC write failures, delayed or
stale directory listings, and — at the named :data:`CRASH_POINTS` —
kills the worker process mid-transition, so every crash window of the
lease protocol can be explored systematically (``urllc5g
chaosdispatch``).

Crash points mark the instants where the protocol's crash-safety
argument changes shape (see docs/ROBUSTNESS.md for the taxonomy):

======================  ================================================
``claim.pre-rename``    before ``jobs/ -> leases/``: job file intact
``claim.post-rename``   lease held, payload unread: orphaned lease
``journal.pre-flush``   point computed, payload not yet durable
``done-marker.pre``     journal durable, completion not yet visible
``done-marker.post``    marker visible, lease still held
``release.pre``         fully published, lease not yet dropped
``reclaim.pre-rename``  dead peer's lease about to be re-homed
``reclaim.post-rename`` job re-published, reclaimer about to move on
======================  ================================================
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.runner.cache import atomic_write_text

__all__ = ["CRASH_POINTS", "DEFAULT_FS", "FsOps"]

#: Every named protocol transition a chaos plan may kill a worker at.
CRASH_POINTS = (
    "claim.pre-rename",
    "claim.post-rename",
    "journal.pre-flush",
    "done-marker.pre",
    "done-marker.post",
    "release.pre",
    "reclaim.pre-rename",
    "reclaim.post-rename",
)


class FsOps:
    """Passthrough filesystem operations (the zero-overhead default).

    Subclasses override individual operations to inject faults; the
    base class performs the real operation and nothing else.  Callers
    hold whatever error-handling policy they had before the seam —
    every method raises exactly what the underlying :mod:`os` call
    raises.
    """

    def crash_point(self, name: str) -> None:
        """Announce a named protocol transition (no-op by default).

        The name must be registered in :data:`CRASH_POINTS` so a typo'd
        call site cannot silently create an unexplorable crash window.
        """
        if name not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash point {name!r}; register it in "
                "repro.runner.fsops.CRASH_POINTS")

    def replace(self, source: str | Path, target: str | Path) -> None:
        """Atomic rename (the protocol's only transition primitive)."""
        os.replace(source, target)

    def unlink(self, path: str | Path) -> None:
        os.unlink(path)

    def mkdir(self, path: str | Path) -> None:
        Path(path).mkdir(parents=True, exist_ok=True)

    def listdir(self, directory: str | Path) -> list[str]:
        """Sorted entry names of ``directory`` (raises ``OSError``)."""
        return sorted(entry.name for entry in Path(directory).iterdir())

    def read_text(self, path: str | Path) -> str:
        return Path(path).read_text(encoding="utf-8")

    def write_text(self, path: str | Path, text: str) -> None:
        """Atomic whole-file write (temp file + rename)."""
        atomic_write_text(Path(path), text)

    def append_text(self, path: str | Path, text: str) -> None:
        """Append and flush one record (journals, event logs)."""
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()


#: The shared passthrough instance every component defaults to.
DEFAULT_FS = FsOps()
