"""Deterministic merge of per-worker campaign journals.

A dispatched campaign leaves one :class:`~repro.runner.journal.
CampaignJournal` per worker in ``<queue>/journals/``.  Collect-time
merging must produce *exactly* the document a serial run produces, so
the merge is deterministic in everything observable:

- journals are processed in sorted-filename order;
- a journal whose header does not match the campaign identity —
  foreign fingerprint (a worker running different code), different
  campaign, seed, or format — is rejected whole, with a warning, and
  its points recomputed by the coordinator rather than trusted;
- a corrupt or truncated *tail* (the crash artifact of a killed
  worker) discards entries from the first bad line onward of that one
  journal only, never touching other workers' entries;
- two workers journaling the same point (a lease falsely reclaimed
  while the original owner was still computing) is legal **iff** the
  payloads are bit-identical — points are pure functions of
  ``(scenario, params, seed)``, so a divergent duplicate is a
  determinism violation and raises :class:`JournalMergeError` loudly
  instead of silently picking a winner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.runner.cache import RUNNER_VERSION
from repro.runner.fsops import DEFAULT_FS, FsOps
from repro.runner.journal import CampaignJournal

__all__ = [
    "JournalMergeError",
    "MergeOutcome",
    "MergedEntry",
    "merge_worker_journals",
    "write_merged_journal",
]


class JournalMergeError(RuntimeError):
    """Two workers produced different payloads for the same point."""


@dataclass(frozen=True)
class MergedEntry:
    """One point's merged payload plus its provenance."""

    digest: str
    result: dict[str, Any]
    attempts: int
    workers: tuple[str, ...]


@dataclass
class MergeOutcome:
    """Everything collect needs from the journal directory."""

    entries: dict[str, MergedEntry] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)
    journals_read: int = 0
    journals_rejected: int = 0
    duplicate_points: int = 0


def _parse(line: str) -> Any:
    try:
        return json.loads(line)
    except ValueError:
        return None


def merge_worker_journals(paths: Iterable[str | Path], *,
                          name: str, seed: int, fingerprint: str,
                          digests: set[str],
                          fs: FsOps | None = None) -> MergeOutcome:
    """Merge worker journals into one digest-keyed result map.

    ``digests`` is the campaign's full point-digest set; entries
    outside it are ignored (a reused queue directory cannot smuggle
    stale points into the document).  Reads go through the ``fs``
    seam (passthrough by default) like every other queue operation.
    """
    fs = fs if fs is not None else DEFAULT_FS
    outcome = MergeOutcome()
    for path in sorted(Path(p) for p in paths):
        try:
            lines = fs.read_text(path).splitlines()
        except OSError as exc:
            outcome.warnings.append(
                f"worker journal {path.name} is unreadable ({exc}); "
                "its points will be recomputed")
            outcome.journals_rejected += 1
            continue
        header = _parse(lines[0]) if lines else None
        if (not isinstance(header, dict)
                or header.get("journal_version") != RUNNER_VERSION
                or header.get("campaign") != name
                or header.get("seed") != seed):
            outcome.warnings.append(
                f"worker journal {path.name} belongs to a different "
                "campaign, seed or format; rejected at merge")
            outcome.journals_rejected += 1
            continue
        if header.get("fingerprint") != fingerprint:
            outcome.warnings.append(
                f"worker journal {path.name} was written against a "
                "different source fingerprint (mixed code versions on "
                "the fleet); rejected at merge")
            outcome.journals_rejected += 1
            continue
        outcome.journals_read += 1
        worker = path.stem
        for number, line in enumerate(lines[1:], start=2):
            entry = _parse(line)
            if (not isinstance(entry, dict)
                    or not isinstance(entry.get("digest"), str)
                    or not isinstance(entry.get("result"), dict)):
                outcome.warnings.append(
                    f"worker journal {path.name} line {number} is "
                    "corrupt or truncated; discarding it and any "
                    "later entries of that journal")
                break
            digest = entry["digest"]
            if digest not in digests:
                continue
            attempts = entry.get("attempts")
            attempts = attempts if isinstance(attempts, int) else 1
            existing = outcome.entries.get(digest)
            if existing is None:
                outcome.entries[digest] = MergedEntry(
                    digest=digest, result=entry["result"],
                    attempts=attempts, workers=(worker,))
                continue
            outcome.duplicate_points += 1
            if existing.result != entry["result"]:
                raise JournalMergeError(
                    f"point {digest[:12]}... was journaled by "
                    f"{existing.workers[0]} and {worker} with "
                    "different payloads — scenario points must be "
                    "pure functions of (scenario, params, seed); "
                    "this is a determinism violation, not a merge "
                    "conflict")
            outcome.entries[digest] = MergedEntry(
                digest=digest, result=existing.result,
                attempts=existing.attempts,
                workers=existing.workers + (worker,))
    return outcome


def write_merged_journal(path: str | Path, *, name: str, seed: int,
                         fingerprint: str,
                         ordered_digests: Iterable[str],
                         entries: dict[str, MergedEntry],
                         fs: FsOps | None = None) -> None:
    """Write the bit-identical-to-serial merged journal.

    Entries land in campaign order (``ordered_digests``), behind a
    standard journal header — so the merged file is exactly what a
    serial ``--journal`` run would have produced and feeds straight
    into ``urllc5g bench --resume``.
    """
    digests = list(ordered_digests)
    journal = CampaignJournal(path, fs=fs)
    journal.start_raw(name=name, seed=seed, fingerprint=fingerprint,
                      points=len(digests), digests=set(digests))
    try:
        for digest in digests:
            entry = entries.get(digest)
            if entry is not None:
                journal.record(digest, entry.result, entry.attempts)
    finally:
        journal.close()
