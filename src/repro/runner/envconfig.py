"""Frozen snapshot of the ``URLLC5G_*`` environment knobs.

The runner and benchmarks used to read ``URLLC5G_BENCH_WORKERS``,
``URLLC5G_BENCH_NO_CACHE``, ``URLLC5G_SANITIZE``, and
``URLLC5G_CHAOS`` at scattered call sites, which meant a mid-run
``os.environ`` mutation could be observed by some components and not
others.  This module is the single anchor: every knob is read once
into an immutable :class:`EnvSnapshot`, refreshed only at campaign
start (:meth:`repro.runner.executor.CampaignRunner.run`), so one run
sees one consistent configuration.

This is also the reviewed ``allow-env`` contract for ``urllc5g
distcheck``: scenario-reachable code may consult ``URLLC5G_*`` knobs
only through this snapshot (or, for the sanitizer's own gate,
:func:`repro.sim.sanitize.sanitize_active` — kept in :mod:`repro.sim`
because the core may never import the runner).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["EnvSnapshot", "snapshot", "current", "refresh"]

#: Pool size for parallel campaign execution (None = runner default).
BENCH_WORKERS = "URLLC5G_BENCH_WORKERS"
#: Any non-empty value disables the result cache in benchmarks.
BENCH_NO_CACHE = "URLLC5G_BENCH_NO_CACHE"
#: "1" enables the determinism sanitizer (see repro.sim.sanitize).
SANITIZE = "URLLC5G_SANITIZE"
#: "1" arms the chaos-selftest scenario's failure modes.
CHAOS = "URLLC5G_CHAOS"
#: Canonical ChaosPlan JSON installing filesystem fault injection in
#: dispatch workers (see repro.runner.chaos); empty/unset = no chaos.
CHAOS_PLAN = "URLLC5G_CHAOS_PLAN"


@dataclass(frozen=True)
class EnvSnapshot:
    """One consistent reading of every ``URLLC5G_*`` knob."""

    bench_workers: int | None = None
    bench_no_cache: bool = False
    sanitize: bool = False
    chaos: bool = False
    chaos_plan: str | None = None


def snapshot() -> EnvSnapshot:
    """Read the environment now and freeze the result."""
    workers_raw = os.environ.get(BENCH_WORKERS)
    workers: int | None = None
    if workers_raw is not None:
        try:
            workers = int(workers_raw)
        except ValueError:
            raise ValueError(
                f"{BENCH_WORKERS} must be an integer, got "
                f"{workers_raw!r}") from None
    return EnvSnapshot(
        bench_workers=workers,
        bench_no_cache=bool(os.environ.get(BENCH_NO_CACHE)),
        sanitize=os.environ.get(SANITIZE) == "1",
        chaos=os.environ.get(CHAOS) == "1",
        chaos_plan=os.environ.get(CHAOS_PLAN) or None,
    )


_current: EnvSnapshot | None = None


def current() -> EnvSnapshot:
    """The active snapshot (taken lazily on first use per process)."""
    global _current
    if _current is None:
        _current = snapshot()
    return _current


def refresh() -> EnvSnapshot:
    """Re-read the environment; called once at campaign start."""
    global _current
    _current = snapshot()
    return _current
