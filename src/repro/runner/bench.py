"""Named campaigns, ``BENCH_<name>.json`` artifacts, the regression gate.

This is the CI-facing layer of the campaign subsystem: a registry of
named campaign builders (``urllc5g bench <name>`` resolves here), a
merger that flattens a :class:`~repro.runner.executor.CampaignResult`
into one JSON artifact, and :func:`check_against_baseline` — the gate
that compares current metrics against a reviewed baseline file and
reports every deviation beyond tolerance.

Baseline files are JSON::

    {
      "campaign": "smoke",
      "tolerance_rel": 0.01,
      "tolerances": {"<metric key>": 0.05},
      "max_wall_clock_s": 120.0,
      "metrics": {"<point label>/<metric>": <value>, ...}
    }

Domain metrics are deterministic (same source, same seeds, same
numbers), so the default tolerance is tight; ``max_wall_clock_s`` is
the only wall-clock gate and should carry generous headroom — CI
machines are noisy.  Refresh a baseline after an intentional behaviour
change with ``urllc5g bench <name> --write-baseline <file>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.core.design_space import enumerate_common_configurations
from repro.runner.cache import atomic_write_text
from repro.runner.campaign import Campaign, grid_params
from repro.runner.executor import CampaignResult

__all__ = [
    "CAMPAIGNS",
    "CheckOutcome",
    "bench_payload",
    "build_campaign",
    "check_against_baseline",
    "load_baseline",
    "render_baseline",
    "write_bench_json",
]

#: Default two-sided relative tolerance of the regression gate.
_DEFAULT_TOLERANCE_REL = 0.01


def _smoke() -> Campaign:
    """Small but representative: one point per scenario family.

    This is the blocking CI campaign — it must finish in seconds while
    still exercising the simulator end to end (both access modes and
    directions), the radio model and the analytic design space.
    """
    specs: list[tuple[str, dict[str, Any]]] = [
        ("ran-latency", {"access": access, "direction": direction,
                         "packets": 40, "horizon_ms": 200.0})
        for access in ("grant-based", "grant-free")
        for direction in ("dl", "ul")
    ]
    specs += [("radio-sweep", {"bus": bus_name, "samples": samples,
                               "repetitions": 50})
              for bus_name in ("usb2", "usb3")
              for samples in (2_000, 20_000)]
    specs += [("design-feasibility",
               {"index": index, "mu": 2, "max_period_ms": 2.5,
                "budget_ms": 0.5, "reliability": 0.99999})
              for index in (0, 1)]
    return Campaign.build("smoke", seed=2024, specs=specs)


def _fig5() -> Campaign:
    """Fig 5's full grid: bus × submission size, 300 repetitions each."""
    return Campaign.from_grid(
        "fig5", seed=5, scenario="radio-sweep",
        grid={"bus": ["usb2", "usb3"],
              "samples": list(range(2_000, 20_001, 1_000))},
        fixed={"repetitions": 300})


def _fig6() -> Campaign:
    """Fig 6's four series: access mode × direction, 800 packets each."""
    return Campaign.from_grid(
        "fig6", seed=11, scenario="ran-latency",
        grid={"access": ["grant-based", "grant-free"],
              "direction": ["dl", "ul"]},
        fixed={"packets": 800, "horizon_ms": 4_000.0})


#: The A14 tornado bounds: parameter -> (low, baseline, high).
SENSITIVITY_BOUNDS: dict[str, tuple[float, float, float]] = {
    "rh_setup_us": (72.5, 145.0, 290.0),
    "ue_processing_scale": (4.0, 8.0, 16.0),
    "gnb_processing_scale": (0.5, 1.0, 2.0),
}


def _sensitivity() -> Campaign:
    """A14's one-at-a-time grid: baseline plus each low/high bound."""
    baseline = {name: bounds[1]
                for name, bounds in SENSITIVITY_BOUNDS.items()}
    fixed = {"packets": 250, "horizon_ms": 1_500.0,
             "sim_seed": 171, "arrivals_seed": 172}
    assignments = [dict(baseline)]
    for name in sorted(SENSITIVITY_BOUNDS):
        low, _, high = SENSITIVITY_BOUNDS[name]
        for value in (low, high):
            assignments.append({**baseline, name: value})
    return Campaign.build(
        "sensitivity", seed=171,
        specs=[("sensitivity-latency", {**fixed, **params})
               for params in assignments])


def _multi_ue() -> Campaign:
    """A3's population sweep at a fixed per-UE rate."""
    return Campaign.from_grid(
        "multi-ue", seed=50, scenario="multi-ue",
        grid={"n_ues": [1, 2, 4, 8]},
        fixed={"packets_per_ue": 60, "horizon_ms": 1_500.0})


def _multi_ue_massive() -> Campaign:
    """Population scale on the slotted engine: 10k-100k UEs per cell.

    One cell, dedicated per-UE CG resources, a fixed per-UE packet
    rate — the regime the slotted executor exists for.  Three points
    keep the campaign dispatchable with useful work per worker while
    still covering a decade of population size.
    """
    return Campaign.from_grid(
        "multi-ue-massive", seed=77, scenario="multi-ue-massive",
        grid={"n_ues": [10_000, 30_000, 100_000]},
        fixed={"packets_per_ue": 4, "horizon_ms": 2_000.0})


def _multi_ue_massive_smoke() -> Campaign:
    """Blocking-CI shape of the massive campaign: same scenario and
    per-UE rate, small-N populations straddling the engine threshold
    (so the baseline pins both the slotted path and the numbers)."""
    return Campaign.from_grid(
        "multi-ue-massive-smoke", seed=77,
        scenario="multi-ue-massive",
        grid={"n_ues": [256, 1_024]},
        fixed={"packets_per_ue": 4, "horizon_ms": 500.0})


def _search() -> Campaign:
    """E3: every Common Configuration at the 0.5 ms and 1 ms budgets."""
    universe = len(enumerate_common_configurations(mu=2,
                                                   max_period_ms=2.5))
    return Campaign.from_grid(
        "search", seed=38331, scenario="design-feasibility",
        grid={"index": list(range(universe)),
              "budget_ms": [0.5, 1.0]},
        fixed={"mu": 2, "max_period_ms": 2.5, "reliability": 0.9999})


def _sweep() -> Campaign:
    """The scale campaign: every bus × a dense submission-size grid
    plus the whole design grammar — hundreds of independent points,
    the shape the runner's parallel/caching machinery is sized for."""
    specs = [("radio-sweep", params) for params in grid_params(
        {"bus": ["usb2", "usb3", "pcie", "ethernet"],
         "samples": list(range(1_000, 20_001, 500))},
        fixed={"repetitions": 100})]
    universe = len(enumerate_common_configurations(mu=2,
                                                   max_period_ms=2.5))
    specs += [("design-feasibility",
               {"index": index, "mu": 2, "max_period_ms": 2.5,
                "budget_ms": 0.5, "reliability": 0.99999})
              for index in range(universe)]
    return Campaign.build("sweep", seed=9000, specs=specs)


def _chaos() -> Campaign:
    """Reliability vs fault intensity under the standard fault plan.

    Sweeps the ``standard`` preset's intensity from 0 (faults disabled —
    must match the fault-free simulator bit-for-bit) up to full strength
    in both directions, reporting reliability against the paper's
    99.999 % target.  Doubles as the CI chaos gate: the campaign is
    deterministic, so its fault counts are baseline-gated like every
    other metric.
    """
    return Campaign.from_grid(
        "chaos-latency", seed=4242, scenario="chaos-latency",
        grid={"direction": ["dl", "ul"],
              "intensity": [0.0, 0.25, 0.5, 1.0]},
        fixed={"access": "grant-free", "packets": 120,
               "horizon_ms": 600.0, "faults": "standard",
               "channel": "iid", "bler": 0.01})


#: Campaign name -> builder; ``urllc5g bench --list`` renders this.
CAMPAIGNS: dict[str, Callable[[], Campaign]] = {
    "smoke": _smoke,
    "fig5": _fig5,
    "fig6": _fig6,
    "sensitivity": _sensitivity,
    "multi-ue": _multi_ue,
    "multi-ue-massive": _multi_ue_massive,
    "multi-ue-massive-smoke": _multi_ue_massive_smoke,
    "search": _search,
    "sweep": _sweep,
    "chaos-latency": _chaos,
}


def build_campaign(name: str) -> Campaign:
    """Resolve a named campaign to its point grid."""
    builder = CAMPAIGNS.get(name)
    if builder is None:
        known = ", ".join(sorted(CAMPAIGNS))
        raise ValueError(f"unknown campaign {name!r}; known: {known}")
    return builder()


# ----------------------------------------------------------------------
# BENCH artifacts
# ----------------------------------------------------------------------
def bench_payload(result: CampaignResult) -> dict[str, Any]:
    """The ``BENCH_<name>.json`` document for one campaign run."""
    return {
        "campaign": result.campaign.name,
        "seed": result.campaign.seed,
        "points": len(result.campaign),
        "workers": result.workers,
        "cache": {
            "hits": result.cache_hits,
            "misses": result.cache_misses,
            "hit_rate": result.cache_hit_rate,
        },
        "wall_clock_s": result.wall_clock_s,
        "journal_replays": result.journal_replays,
        "retries": result.retries,
        "failed_points": [
            {"label": entry.point.label, "attempts": entry.attempts,
             "error": entry.error}
            for entry in result.failures
        ],
        "warnings": list(result.warnings),
        "metrics": result.metrics(),
        # Content hash of every full point payload, in campaign order —
        # what the dispatch CI job compares between serial and
        # distributed runs (metrics alone only cover scalars).
        "results_digest": result.results_digest(),
        # Scheduling provenance of a dispatched run; null for
        # in-process runs.  Never part of the bit-identity contract.
        "dispatch": (result.dispatch.as_payload()
                     if result.dispatch is not None else None),
    }


def write_bench_json(path: str | Path,
                     payload: Mapping[str, Any]) -> None:
    """Persist a bench document atomically."""
    atomic_write_text(path, json.dumps(payload, indent=2,
                                       sort_keys=True) + "\n")


def render_baseline(payload: Mapping[str, Any],
                    tolerance_rel: float = _DEFAULT_TOLERANCE_REL
                    ) -> dict[str, Any]:
    """A fresh baseline document from a bench payload."""
    return {
        "campaign": payload["campaign"],
        "tolerance_rel": tolerance_rel,
        "metrics": dict(payload["metrics"]),
    }


def load_baseline(path: str | Path) -> dict[str, Any]:
    """Parse and validate a baseline file."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) \
            or not isinstance(document.get("metrics"), dict):
        raise ValueError(f"{path}: baseline must be a JSON object "
                         "with a 'metrics' table")
    return document


@dataclass
class CheckOutcome:
    """The verdict of one baseline comparison."""

    failures: list[str] = field(default_factory=list)
    checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [f"checked {self.checked} baseline metric(s): "
                 + ("PASS" if self.ok
                    else f"{len(self.failures)} regression(s)")]
        lines.extend(f"  REGRESSION: {failure}"
                     for failure in self.failures)
        return "\n".join(lines)


def check_against_baseline(payload: Mapping[str, Any],
                           baseline: Mapping[str, Any]) -> CheckOutcome:
    """Compare a bench payload against a reviewed baseline.

    Every baseline metric must exist in the payload and sit within
    tolerance (two-sided: the simulation is deterministic, so *any*
    unexplained drift is a behaviour change someone should review).
    ``max_wall_clock_s``, when present, additionally bounds the
    campaign's measured wall-clock time.
    """
    outcome = CheckOutcome()
    default_tol = float(baseline.get("tolerance_rel",
                                     _DEFAULT_TOLERANCE_REL))
    per_metric = baseline.get("tolerances", {})
    current = payload.get("metrics", {})
    for key in sorted(baseline["metrics"]):
        expected = float(baseline["metrics"][key])
        outcome.checked += 1
        if key not in current:
            outcome.failures.append(
                f"{key}: metric missing from current run "
                f"(baseline {expected:g})")
            continue
        actual = float(current[key])
        tolerance = float(per_metric.get(key, default_tol))
        allowed = tolerance * max(abs(expected), 1.0)
        if abs(actual - expected) > allowed:
            outcome.failures.append(
                f"{key}: {actual:g} deviates from baseline "
                f"{expected:g} by more than {tolerance:.2%}")
    limit = baseline.get("max_wall_clock_s")
    if limit is not None:
        outcome.checked += 1
        elapsed = float(payload.get("wall_clock_s", 0.0))
        if elapsed > float(limit):
            outcome.failures.append(
                f"wall_clock_s: {elapsed:.2f}s exceeds the "
                f"{float(limit):.2f}s budget")
    return outcome
