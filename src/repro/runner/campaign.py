"""Declarative campaign grids of independent scenario points.

A *campaign* is a named, seeded collection of :class:`ScenarioPoint`s —
one point per (scenario, parameter assignment).  Points are pure data:
a scenario name resolved through :mod:`repro.runner.scenarios`, a
canonicalised parameter tuple, and a per-point seed derived
deterministically from the campaign seed via
:class:`repro.sim.rng.RngRegistry`.  Because every point carries its
own seed and every scenario draws only from the point's registry, the
metrics of a point are a pure function of ``(scenario, params, seed)``
and the source tree — which is exactly what the result cache hashes
(:mod:`repro.runner.cache`) and why parallel execution is bit-identical
to serial execution (:mod:`repro.runner.executor`).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.sim.rng import RngRegistry

__all__ = [
    "Campaign",
    "ScenarioPoint",
    "canonical_params",
    "derive_point_seed",
    "grid_params",
]

_SCALAR_TYPES = (str, int, float, bool)


def canonical_params(params: Mapping[str, Any]
                     ) -> tuple[tuple[str, Any], ...]:
    """Sort and validate a parameter mapping into a hashable tuple.

    Values must be JSON scalars (str/int/float/bool/None) so the point
    key — and therefore the cache key — has one canonical rendering.
    """
    items = []
    for name in sorted(params):
        if not isinstance(name, str) or not name:
            raise ValueError(f"parameter names must be non-empty "
                             f"strings, got {name!r}")
        value = params[name]
        if value is not None and not isinstance(value, _SCALAR_TYPES):
            raise ValueError(
                f"parameter {name!r} must be a JSON scalar "
                f"(str/int/float/bool/None), got {type(value).__name__}")
        items.append((name, value))
    return tuple(items)


def _params_json(params: tuple[tuple[str, Any], ...]) -> str:
    return json.dumps(dict(params), sort_keys=True)


def derive_point_seed(campaign_seed: int, scenario: str,
                      params: tuple[tuple[str, Any], ...]) -> int:
    """The deterministic per-point seed.

    Derived through :meth:`RngRegistry.fork` from the campaign seed and
    the point's canonical identity, so it depends neither on the
    position of the point inside the campaign nor on how many workers
    execute it — the property that makes parallel runs bit-identical
    to serial ones.
    """
    salt = f"point/{scenario}/{_params_json(params)}"
    return RngRegistry(campaign_seed).fork(salt).seed


@dataclass(frozen=True)
class ScenarioPoint:
    """One unit of campaign work: a scenario at one parameter assignment."""

    scenario: str
    params: tuple[tuple[str, Any], ...]
    seed: int

    def __post_init__(self) -> None:
        if not self.scenario:
            raise ValueError("scenario name must be non-empty")
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"point seed must be a non-negative int, got {self.seed!r}")

    def params_dict(self) -> dict[str, Any]:
        """The parameters as a plain mapping (scenario-function input)."""
        return dict(self.params)

    @property
    def label(self) -> str:
        """Stable human-readable identity, used in merged metric keys."""
        rendered = ",".join(f"{name}={value}"
                            for name, value in self.params)
        return f"{self.scenario}[{rendered}]"

    def key(self) -> str:
        """Canonical JSON identity of the point (input to the digest)."""
        return json.dumps({"scenario": self.scenario,
                           "params": dict(self.params),
                           "seed": self.seed}, sort_keys=True)

    def digest(self) -> str:
        """Content hash of the point's identity (cache key component)."""
        return hashlib.sha256(self.key().encode("utf-8")).hexdigest()


def grid_params(grid: Mapping[str, Sequence[Any]],
                fixed: Mapping[str, Any] | None = None
                ) -> list[dict[str, Any]]:
    """Cartesian product of a parameter grid, in deterministic order.

    Axes iterate in sorted-name order, values in the order given;
    ``fixed`` entries are merged into every assignment.
    """
    if not grid:
        raise ValueError("grid must have at least one axis")
    names = sorted(grid)
    for name in names:
        if not grid[name]:
            raise ValueError(f"grid axis {name!r} has no values")
    assignments = []
    for values in itertools.product(*(grid[name] for name in names)):
        params = dict(fixed or {})
        params.update(zip(names, values))
        assignments.append(params)
    return assignments


@dataclass(frozen=True)
class Campaign:
    """A named, seeded set of scenario points to execute together."""

    name: str
    seed: int
    points: tuple[ScenarioPoint, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if not self.points:
            raise ValueError(f"campaign {self.name!r} has no points")
        seen: set[str] = set()
        for point in self.points:
            digest = point.digest()
            if digest in seen:
                raise ValueError(
                    f"campaign {self.name!r} repeats point {point.label}")
            seen.add(digest)

    def __len__(self) -> int:
        return len(self.points)

    @classmethod
    def build(cls, name: str, seed: int,
              specs: Iterable[tuple[str, Mapping[str, Any]]]
              ) -> "Campaign":
        """Build from ``(scenario, params)`` pairs, deriving each seed."""
        points = []
        for scenario, raw in specs:
            params = canonical_params(raw)
            points.append(ScenarioPoint(
                scenario, params,
                derive_point_seed(seed, scenario, params)))
        return cls(name, seed, tuple(points))

    @classmethod
    def from_grid(cls, name: str, seed: int, scenario: str,
                  grid: Mapping[str, Sequence[Any]],
                  fixed: Mapping[str, Any] | None = None) -> "Campaign":
        """Build one scenario's full parameter grid as a campaign."""
        return cls.build(name, seed,
                         [(scenario, params)
                          for params in grid_params(grid, fixed)])
