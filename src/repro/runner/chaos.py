"""Dispatch chaos certification: systematic crash-point exploration.

PR 8's dispatch layer argues that a worker killed at *any* instant
leaves a queue that still converges to the serial document.  That
argument was tested against exactly one hand-picked failure; this
module turns it into an exhaustive machine-checked contract — the same
sweep discipline the paper applies to TDD patterns, pointed at our own
infrastructure.

Three pieces:

- :class:`ChaosPlan` / :class:`ChaosSpec` — a declarative, canonically
  serialisable schedule of filesystem faults, mirroring (and reusing
  the intensity machinery of) :mod:`repro.faults.plan`.  Plans travel
  to worker processes through the ``URLLC5G_CHAOS_PLAN`` environment
  knob (read once into the :mod:`repro.runner.envconfig` snapshot).
- :class:`ChaosFsOps` — a deterministic
  :class:`~repro.runner.fsops.FsOps` that injects EIO/ENOSPC write
  failures, delayed/stale directory listings, and — at the named
  :data:`~repro.runner.fsops.CRASH_POINTS` — kills the worker process
  mid-transition.  Whether a fault fires on a given opportunity is
  drawn from the named ``chaos.dispatch`` registry stream, so the
  same plan and seed replay the same schedule.
- the explorer (:func:`enumerate_schedules`, :func:`run_schedule`,
  :func:`certify_dispatch`) behind ``urllc5g chaosdispatch``: one
  dispatched campaign run per (crash point × worker) and per
  (fault kind × worker) schedule, each required to converge with a
  merged ``results_digest`` bit-identical to the serial reference,
  emitting a ``CHAOS_<campaign>.json`` certification document.

The module never imports :mod:`repro.runner.dispatch` at the top level
(the worker lazily imports *us* when a plan is installed); the
explorer functions import it inside their bodies.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
from dataclasses import dataclass, replace
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.faults.plan import scale_probability
from repro.runner.fsops import CRASH_POINTS, FsOps
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.devtools.distcheck.manifest import DistManifest
    from repro.runner.campaign import Campaign

__all__ = [
    "ChaosFsOps",
    "ChaosPlan",
    "ChaosSchedule",
    "ChaosSpec",
    "FsFaultKind",
    "ScheduleOutcome",
    "certify_dispatch",
    "enumerate_schedules",
    "run_schedule",
]

#: File (inside a plan's marker directory) recording every fired fault.
FIRES_NAME = "fires.jsonl"


class FsFaultKind(str, Enum):
    """The filesystem fault families :class:`ChaosFsOps` injects.

    Each targets a distinct failure mode of real shared filesystems:
    I/O errors and full disks on writes, NFS attribute-cache lag
    (entries appearing late), and stale readdir caches (entries that
    no longer exist still being listed).
    """

    EIO_WRITE = "eio-write"
    ENOSPC_WRITE = "enospc-write"
    LIST_DELAY = "list-delay"
    LIST_STALE = "list-stale"
    CRASH = "crash"


#: The non-crash kinds the explorer sweeps as standalone schedules.
FS_FAULT_KINDS = (
    FsFaultKind.EIO_WRITE,
    FsFaultKind.ENOSPC_WRITE,
    FsFaultKind.LIST_DELAY,
    FsFaultKind.LIST_STALE,
)

_ERRNO = {FsFaultKind.EIO_WRITE: 5, FsFaultKind.ENOSPC_WRITE: 28}


@dataclass(frozen=True)
class ChaosSpec:
    """One armed fault.

    ``worker`` narrows the spec to one worker id (empty = every worker
    running the plan).  Crash specs name their ``crash_point`` and
    fire deterministically on the ``skip``-th opportunity; the other
    kinds fire per-opportunity with ``probability`` (drawn from the
    ``chaos.dispatch`` stream), at most ``max_fires`` times — finite
    by construction, so every chaos run terminates.
    """

    kind: FsFaultKind
    crash_point: str = ""
    worker: str = ""
    probability: float = 1.0
    skip: int = 0
    max_fires: int = 1

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FsFaultKind(self.kind))
        if self.kind is FsFaultKind.CRASH:
            if self.crash_point not in CRASH_POINTS:
                raise ValueError(
                    f"crash spec needs a registered crash point, got "
                    f"{self.crash_point!r} (see "
                    "repro.runner.fsops.CRASH_POINTS)")
        elif self.crash_point:
            raise ValueError(
                f"{self.kind.value} specs take no crash_point "
                f"(got {self.crash_point!r})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be within [0, 1], got "
                f"{self.probability}")
        if self.skip < 0:
            raise ValueError(f"skip must be >= 0, got {self.skip}")
        if self.max_fires < 1:
            raise ValueError(
                f"max_fires must be >= 1, got {self.max_fires}")

    def scaled(self, intensity: float) -> "ChaosSpec":
        """This spec with its probability scaled by ``intensity``.

        Same clamp rule as :meth:`repro.faults.plan.FaultSpec.scaled`
        — the two fault layers share one intensity semantics.
        """
        return replace(self, probability=scale_probability(
            self.probability, intensity))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping with every field spelled out."""
        return {
            "kind": self.kind.value,
            "crash_point": self.crash_point,
            "worker": self.worker,
            "probability": self.probability,
            "skip": self.skip,
            "max_fires": self.max_fires,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaosSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"chaos spec must be an object, got {payload!r}")
        known = {"kind", "crash_point", "worker", "probability",
                 "skip", "max_fires"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown chaos-spec fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise ValueError("chaos spec is missing 'kind'")
        return cls(**dict(payload))


@dataclass(frozen=True)
class ChaosPlan:
    """An immutable fault schedule for one dispatched run.

    ``seed`` feeds the ``chaos.dispatch`` stream (same seed, same
    plan ⇒ same injection schedule in a single-threaded replay).
    ``marker_dir``, when set, receives one JSONL record per fired
    fault — written with raw ``os`` calls so the record of a fault
    cannot itself be faulted away.
    """

    seed: int = 0
    specs: tuple[ChaosSpec, ...] = ()
    marker_dir: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError(
                f"seed must be a non-negative int, got {self.seed!r}")

    def __bool__(self) -> bool:
        return bool(self.specs)

    def scaled(self, intensity: float) -> "ChaosPlan":
        """The plan with every spec scaled (see :meth:`ChaosSpec.scaled`)."""
        return replace(self, specs=tuple(spec.scaled(intensity)
                                         for spec in self.specs))

    def to_json(self) -> str:
        """Canonical (sorted-keys, compact) JSON — env-var portable."""
        return json.dumps(
            {"seed": self.seed, "marker_dir": self.marker_dir,
             "specs": [spec.to_dict() for spec in self.specs]},
            sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        """Parse a plan serialised by :meth:`to_json`."""
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(
                f"chaos plan JSON must be an object, got {payload!r}")
        unknown = set(payload) - {"seed", "marker_dir", "specs"}
        if unknown:
            raise ValueError(
                f"unknown chaos-plan fields: {sorted(unknown)}")
        specs = payload.get("specs", [])
        if not isinstance(specs, list):
            raise ValueError("chaos plan 'specs' must be a list")
        return cls(seed=payload.get("seed", 0),
                   specs=tuple(ChaosSpec.from_dict(entry)
                               for entry in specs),
                   marker_dir=str(payload.get("marker_dir", "")))


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class ChaosFsOps(FsOps):
    """Deterministic fault-injecting filesystem seam for one worker.

    Fault decisions are drawn from the named ``chaos.dispatch``
    registry stream under a lock (the heartbeat thread shares the
    seam with the worker loop): a single-threaded replay of the same
    operations with the same plan fires identically, and the
    certification contract — results-digest invariance — never
    depends on the interleaving either way.

    ``kill`` exists for unit tests; the default SIGKILLs the current
    process, the same no-cleanup death a power loss inflicts.
    """

    def __init__(self, plan: ChaosPlan, worker_id: str,
                 kill: Callable[[], None] | None = None):
        self._plan = plan
        self._worker = worker_id
        self._kill = kill if kill is not None else _sigkill_self
        self._rng = RngRegistry(plan.seed).stream("chaos.dispatch")
        self._lock = threading.Lock()
        self._fired = [0] * len(plan.specs)
        self._skipped = [0] * len(plan.specs)
        self._stale: dict[str, list[str]] = {}

    # -- plan bookkeeping ----------------------------------------------
    def _armed(self, *kinds: FsFaultKind
               ) -> list[tuple[int, ChaosSpec]]:
        return [(index, spec)
                for index, spec in enumerate(self._plan.specs)
                if spec.kind in kinds
                and spec.worker in ("", self._worker)]

    def _record_fire(self, spec: ChaosSpec, detail: str) -> None:
        if not self._plan.marker_dir:
            return
        record = {"kind": spec.kind.value,
                  "crash_point": spec.crash_point,
                  "worker": self._worker, "detail": detail}
        # Raw os-level append: the record of a fault must not itself
        # be injectable.
        try:
            with open(Path(self._plan.marker_dir) / FIRES_NAME, "a",
                      encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
        except OSError:
            pass

    def _maybe_fail_write(self, path: str | Path) -> None:
        for index, spec in self._armed(FsFaultKind.EIO_WRITE,
                                       FsFaultKind.ENOSPC_WRITE):
            with self._lock:
                if self._fired[index] >= spec.max_fires:
                    continue
                if float(self._rng.random()) >= spec.probability:
                    continue
                self._fired[index] += 1
            self._record_fire(spec, str(path))
            raise OSError(_ERRNO[spec.kind],
                          f"chaos {spec.kind.value}", str(path))

    # -- faulted operations --------------------------------------------
    def crash_point(self, name: str) -> None:
        super().crash_point(name)  # validates the name
        for index, spec in self._armed(FsFaultKind.CRASH):
            if spec.crash_point != name:
                continue
            with self._lock:
                if self._fired[index] >= spec.max_fires:
                    continue
                if self._skipped[index] < spec.skip:
                    self._skipped[index] += 1
                    continue
                self._fired[index] += 1
            self._record_fire(spec, name)
            self._kill()

    def write_text(self, path: str | Path, text: str) -> None:
        self._maybe_fail_write(path)
        super().write_text(path, text)

    def append_text(self, path: str | Path, text: str) -> None:
        self._maybe_fail_write(path)
        super().append_text(path, text)

    def listdir(self, directory: str | Path) -> list[str]:
        names = super().listdir(directory)
        key = str(directory)
        previous = self._stale.get(key, [])
        self._stale[key] = list(names)
        for index, spec in self._armed(FsFaultKind.LIST_DELAY):
            if not names:
                continue
            with self._lock:
                if self._fired[index] >= spec.max_fires:
                    continue
                if float(self._rng.random()) >= spec.probability:
                    continue
                self._fired[index] += 1
            # Attribute-cache lag: the newest half of the directory
            # has not "appeared" yet on this NFS client.
            self._record_fire(spec, key)
            names = names[:max(1, len(names) // 2)] \
                if len(names) > 1 else []
        for index, spec in self._armed(FsFaultKind.LIST_STALE):
            if not previous:
                continue
            with self._lock:
                if self._fired[index] >= spec.max_fires:
                    continue
                if float(self._rng.random()) >= spec.probability:
                    continue
                self._fired[index] += 1
            # Stale readdir cache: entries renamed away since the
            # last scan are still listed (duplicates collapse).
            self._record_fire(spec, key)
            names = sorted(set(names) | set(previous))
        return names


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSchedule:
    """One enumerated injection: the unit the certifier sweeps."""

    label: str
    crash_point: str  # "" for pure fault-kind schedules
    kind: str
    worker: str  # the worker the primary fault targets
    specs: tuple[ChaosSpec, ...]


@dataclass(frozen=True)
class ScheduleOutcome:
    """What one schedule's dispatched run did."""

    schedule: ChaosSchedule
    converged: bool
    identical: bool
    results_digest: str | None
    fired: int
    error: str | None
    stats: dict[str, Any] | None

    def as_payload(self) -> dict[str, Any]:
        return {
            "label": self.schedule.label,
            "crash_point": self.schedule.crash_point,
            "kind": self.schedule.kind,
            "worker": self.schedule.worker,
            "converged": self.converged,
            "identical": self.identical,
            "results_digest": self.results_digest,
            "fired": self.fired,
            "error": self.error,
            "stats": self.stats,
        }


def enumerate_schedules(worker_ids: Sequence[str], *,
                        exhaustive: bool = False
                        ) -> list[ChaosSchedule]:
    """Every (crash point × worker) and (fault kind × worker) schedule.

    Non-reclaim crash points are armed on *every* worker (``worker=""``)
    — each worker process dies at its own first passage, which makes
    the injection independent of claim races: the queue can only drain
    through the crash point, so it always fires, and the coordinator's
    inline drain is exercised on every such schedule too.

    ``reclaim.*`` windows only open inside a *surviving* worker, so
    those schedules are asymmetric composites: the first worker dies
    at ``claim.post-rename`` to orphan a lease, and the *peer* — the
    worker that will observe the death and reclaim — is armed to die
    at the reclaim transition itself.  The default sweep arms the
    first worker as the orphaner (bounded — what CI runs on every
    merge); ``exhaustive`` rotates the role over every worker (the
    nightly sweep), which also multiplies the per-worker fault-kind
    schedules.
    """
    if len(worker_ids) < 2:
        raise ValueError(
            "chaos schedules need at least 2 workers (the reclaim "
            f"windows need a surviving peer), got {list(worker_ids)}")
    targets = list(worker_ids) if exhaustive else [worker_ids[0]]
    schedules: list[ChaosSchedule] = []
    for point in CRASH_POINTS:
        if point.startswith("reclaim."):
            for target in targets:
                peer = next(w for w in worker_ids if w != target)
                specs = (
                    ChaosSpec(kind=FsFaultKind.CRASH,
                              crash_point="claim.post-rename",
                              worker=target),
                    ChaosSpec(kind=FsFaultKind.CRASH,
                              crash_point=point, worker=peer),
                )
                schedules.append(ChaosSchedule(
                    label=f"crash:{point}@{peer}", crash_point=point,
                    kind=FsFaultKind.CRASH.value, worker=peer,
                    specs=specs))
        else:
            schedules.append(ChaosSchedule(
                label=f"crash:{point}@any", crash_point=point,
                kind=FsFaultKind.CRASH.value, worker="",
                specs=(ChaosSpec(kind=FsFaultKind.CRASH,
                                 crash_point=point),)))
    for kind in FS_FAULT_KINDS:
        for target in targets:
            # Listing faults fire on every opportunity (stale listings
            # need a cached previous scan, so opportunities can be
            # scarce in small campaigns); write faults stay
            # probabilistic so the worker's retry paths — not just its
            # first attempts — get exercised.
            probability = (1.0 if kind in (FsFaultKind.LIST_DELAY,
                                           FsFaultKind.LIST_STALE)
                           else 0.5)
            schedules.append(ChaosSchedule(
                label=f"fault:{kind.value}@{target}", crash_point="",
                kind=kind.value, worker=target,
                specs=(ChaosSpec(kind=kind, worker=target,
                                 probability=probability,
                                 max_fires=4),)))
    return schedules


def _count_fires(marker_dir: Path) -> int:
    try:
        text = (marker_dir / FIRES_NAME).read_text(encoding="utf-8")
    except OSError:
        return 0
    return sum(1 for line in text.splitlines() if line.strip())


def run_schedule(schedule: ChaosSchedule, campaign: "Campaign",
                 manifest: "DistManifest", *,
                 queue_dir: str | Path, marker_dir: str | Path,
                 workers: int = 2, seed: int | None = None,
                 max_retries: int = 2, worker_strikes: int = 4,
                 coordinator_strikes: int = 12,
                 stall_polls: int = 600) -> ScheduleOutcome:
    """Run one dispatched campaign under one injection schedule.

    The plan reaches worker processes through ``URLLC5G_CHAOS_PLAN``
    in their (and only their) environment; the coordinator process
    itself always runs the passthrough seam.  Workers poll with a
    tighter strike budget than the coordinator so a surviving peer —
    not the coordinator — wins the reclaim race and the ``reclaim.*``
    windows actually get exercised.  For the same reason, the peer of
    a reclaim composite starts with a head start *against* it: its
    process sleeps briefly before attaching, so the orphaning target
    reliably claims a job first.  Both are pure scheduling bias —
    results are digest-checked against serial regardless.
    """
    from repro.runner import envconfig
    from repro.runner.dispatch import DispatchCoordinator

    marker = Path(marker_dir)
    marker.mkdir(parents=True, exist_ok=True)
    fires = marker / FIRES_NAME
    if fires.exists():
        fires.unlink()
    plan = ChaosPlan(
        seed=campaign.seed if seed is None else seed,
        specs=schedule.specs, marker_dir=str(marker))
    delayed = ({schedule.worker} if len(schedule.specs) > 1 else set())

    def spawn(worker_id: str) -> list[str]:
        argv = ["bench", "--worker", str(queue_dir),
                "--worker-id", worker_id,
                "--retries", str(max_retries),
                "--strikes", str(worker_strikes)]
        if worker_id in delayed:
            return [sys.executable, "-c",
                    "import sys, time; time.sleep(0.8); "
                    "from repro.cli import main; "
                    "sys.exit(main(sys.argv[1:]))"] + argv
        return [sys.executable, "-m", "repro.cli"] + argv

    coordinator = DispatchCoordinator(
        workers=workers, queue_dir=queue_dir, manifest=manifest,
        cache=None, max_retries=max_retries,
        strikes=coordinator_strikes, stall_polls=stall_polls,
        spawn_command=spawn,
        worker_env={envconfig.CHAOS_PLAN: plan.to_json()})
    error = None
    digest = None
    stats = None
    try:
        result = coordinator.run(campaign)
        digest = result.results_digest()
        stats = (result.dispatch.as_payload()
                 if result.dispatch is not None else None)
    except Exception as exc:
        # Certification reports failures; it never dies on one.
        error = f"{type(exc).__name__}: {exc}"
    return ScheduleOutcome(
        schedule=schedule, converged=error is None,
        identical=False,  # settled by the caller against serial
        results_digest=digest, fired=_count_fires(marker),
        error=error, stats=stats)


def certify_dispatch(campaign: "Campaign", manifest: "DistManifest", *,
                     work_dir: str | Path, workers: int = 2,
                     exhaustive: bool = False, seed: int | None = None,
                     log: Callable[[str], None] | None = None
                     ) -> dict[str, Any]:
    """Sweep every schedule and emit the certification document.

    Runs the campaign serially once (the reference digest), then once
    per schedule under dispatch with the injection armed; a schedule
    passes when the queue converges *and* its merged
    ``results_digest`` equals the serial reference bit for bit.  The
    returned payload is the ``CHAOS_<campaign>.json`` document.
    """
    from repro.runner.cache import source_fingerprint
    from repro.runner.executor import CampaignRunner

    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    with CampaignRunner(workers=1) as runner:
        serial_digest = runner.run(campaign).results_digest()
    if log is not None:
        log(f"serial reference digest {serial_digest[:12]}...")

    worker_ids = [f"w{k + 1}" for k in range(workers)]
    schedules = enumerate_schedules(worker_ids, exhaustive=exhaustive)
    outcomes: list[ScheduleOutcome] = []
    for index, schedule in enumerate(schedules):
        outcome = run_schedule(
            schedule, campaign, manifest,
            queue_dir=work / "queue",
            marker_dir=work / "markers" / f"{index:03d}",
            workers=workers, seed=seed)
        outcome = replace(
            outcome,
            identical=outcome.results_digest == serial_digest)
        outcomes.append(outcome)
        if log is not None:
            status = ("ok" if outcome.converged and outcome.identical
                      else f"FAIL ({outcome.error or 'digest differs'})")
            log(f"[{index + 1}/{len(schedules)}] "
                f"{schedule.label}: {status}, "
                f"{outcome.fired} fault(s) fired")

    def _verdict(selected: list[ScheduleOutcome]) -> str:
        return ("certified"
                if selected and all(o.converged and o.identical
                                    for o in selected)
                else "failed")

    crash_verdicts = {
        point: _verdict([o for o in outcomes
                         if o.schedule.crash_point == point])
        for point in CRASH_POINTS}
    fault_verdicts = {
        kind.value: _verdict([o for o in outcomes
                              if o.schedule.kind == kind.value])
        for kind in FS_FAULT_KINDS}
    return {
        "campaign": campaign.name,
        "seed": campaign.seed,
        "fingerprint": source_fingerprint(),
        "workers": workers,
        "exhaustive": exhaustive,
        "serial_results_digest": serial_digest,
        "schedules": [outcome.as_payload() for outcome in outcomes],
        "crash_points": crash_verdicts,
        "fault_kinds": fault_verdicts,
        "certified": all(
            verdict == "certified"
            for verdict in list(crash_verdicts.values())
            + list(fault_verdicts.values())),
    }
