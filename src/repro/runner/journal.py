"""Append-only campaign journal: checkpoint/resume for bench runs.

A campaign that dies mid-run (OOM-killed worker host, Ctrl-C, power
loss) should not have to recompute the points it already finished.  The
journal is a JSONL file: a header line identifying the campaign (name,
seed, source fingerprint, runner version) followed by one line per
completed point, flushed as soon as the point's payload is known.

On ``--resume`` the runner replays matching journal entries instead of
recomputing them.  Because every point payload is a pure function of
(point identity, seed, source tree), a replayed result is bit-identical
to a recomputed one — a killed-and-resumed campaign merges to exactly
the document an uninterrupted run produces (the acceptance criterion of
docs/ROBUSTNESS.md).  A header that does not match the campaign being
run — different campaign, seed, fingerprint or format — makes the whole
journal non-replayable; a corrupt or truncated *tail* (the typical
crash artifact) only discards entries from the first bad line onward.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.runner.cache import RUNNER_VERSION
from repro.runner.fsops import DEFAULT_FS, FsOps

if TYPE_CHECKING:
    from repro.runner.campaign import Campaign

__all__ = ["CampaignJournal"]


class CampaignJournal:
    """Crash-safe record of completed points for one campaign run.

    Every write goes through the ``fs`` seam (passthrough by default)
    so dispatch workers under a chaos plan can have journal appends
    fail with EIO/ENOSPC — or die at the ``journal.pre-flush`` crash
    point — exactly where a real filesystem would fail them.
    """

    def __init__(self, path: str | Path, fs: FsOps | None = None):
        self.path = Path(path)
        self.fs = fs if fs is not None else DEFAULT_FS
        #: Anomalies met while reading a prior journal (mismatched
        #: header, truncated tail...), surfaced in bench documents.
        self.warnings: list[str] = []
        self._started = False

    # ------------------------------------------------------------------
    def start(self, campaign: "Campaign", fingerprint: str,
              resume: bool = False) -> dict[str, tuple[dict[str, Any],
                                                       int]]:
        """Open the journal for this run; returns replayable results.

        With ``resume`` the existing file is read first and every entry
        matching the campaign comes back as ``digest -> (result,
        attempts)``.  The file is then rewritten (atomically) as a clean
        header plus the surviving entries — healing any truncated tail —
        and left open for appending.  Without ``resume`` the file is
        simply truncated to a fresh header.
        """
        return self.start_raw(
            name=campaign.name, seed=campaign.seed,
            fingerprint=fingerprint, points=len(campaign.points),
            digests={point.digest() for point in campaign.points},
            resume=resume)

    def start_raw(self, *, name: str, seed: int, fingerprint: str,
                  points: int, digests: set[str],
                  resume: bool = False
                  ) -> dict[str, tuple[dict[str, Any], int]]:
        """:meth:`start` for callers holding only the campaign identity.

        Dispatch workers (:mod:`repro.runner.dispatch`) journal against
        the queue manifest's ``(name, seed, fingerprint, digests)``
        without ever materialising a :class:`Campaign` — the campaign
        object stays on the coordinating host; workers receive points
        as job files.
        """
        self.close()
        replayed: dict[str, tuple[dict[str, Any], int]] = {}
        if resume:
            replayed = self._load(name=name, seed=seed,
                                  fingerprint=fingerprint,
                                  digests=digests)
        header = {
            "journal_version": RUNNER_VERSION,
            "campaign": name,
            "seed": seed,
            "fingerprint": fingerprint,
            "points": points,
        }
        lines = [json.dumps(header, sort_keys=True)]
        for digest, (result, attempts) in replayed.items():
            lines.append(self._entry_line(digest, result, attempts))
        self.fs.write_text(self.path, "\n".join(lines) + "\n")
        self._started = True
        return replayed

    def record(self, digest: str, result: Mapping[str, Any],
               attempts: int = 1) -> None:
        """Checkpoint one completed point (appended and flushed now)."""
        if not self._started:
            raise RuntimeError("journal not started; call start() first")
        self.fs.crash_point("journal.pre-flush")
        self.fs.append_text(self.path,
                            self._entry_line(digest, result, attempts)
                            + "\n")

    def close(self) -> None:
        """End the recording session (idempotent)."""
        self._started = False

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _entry_line(digest: str, result: Mapping[str, Any],
                    attempts: int) -> str:
        return json.dumps({"digest": digest, "result": dict(result),
                           "attempts": attempts}, sort_keys=True)

    @staticmethod
    def _parse(line: str) -> Any:
        try:
            return json.loads(line)
        except ValueError:
            return None

    def _load(self, *, name: str, seed: int, fingerprint: str,
              digests: set[str]
              ) -> dict[str, tuple[dict[str, Any], int]]:
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        header = self._parse(lines[0])
        if (not isinstance(header, dict)
                or header.get("journal_version") != RUNNER_VERSION
                or header.get("campaign") != name
                or header.get("seed") != seed
                or header.get("fingerprint") != fingerprint):
            self.warnings.append(
                f"journal {self.path} belongs to a different campaign, "
                "seed, source tree or format; ignoring it")
            return {}
        replayed: dict[str, tuple[dict[str, Any], int]] = {}
        for number, line in enumerate(lines[1:], start=2):
            entry = self._parse(line)
            if (not isinstance(entry, dict)
                    or not isinstance(entry.get("digest"), str)
                    or not isinstance(entry.get("result"), dict)):
                self.warnings.append(
                    f"journal {self.path} line {number} is corrupt or "
                    "truncated; discarding it and any later entries")
                break
            if entry["digest"] in digests:
                attempts = entry.get("attempts")
                replayed[entry["digest"]] = (
                    entry["result"],
                    attempts if isinstance(attempts, int) else 1)
        return replayed
