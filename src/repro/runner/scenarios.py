"""Scenario functions a campaign point can reference by name.

A *scenario* maps ``(params, rngs) -> result`` where ``params`` is the
point's parameter mapping, ``rngs`` is a registry seeded with the
point's derived seed, and the result is a JSON-serialisable mapping of
metrics (plus, optionally, raw sample lists for artifact rendering).
Scenarios must be pure simulation: no wall-clock reads, no
process-global RNG state, no filesystem access — the result cache
assumes a point's payload is a function of its parameters, its seed
and the source tree, nothing else.

The registry is what lets worker *processes* execute points: a point
travels to the worker as plain data and is resolved back to a callable
here, on the worker's side of the pickle boundary.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.design_space import enumerate_common_configurations
from repro.core.feasibility import Requirement
from repro.core.latency_model import LatencyModel
from repro.faults.injectors import FaultCounters
from repro.faults.plan import FaultPlan
from repro.mac.catalog import testbed_dddu
from repro.runner import envconfig
from repro.mac.types import AccessMode, Direction
from repro.net.probes import LatencyProbe
from repro.net.session import RanConfig, RanSystem
from repro.phy.channel import (
    Channel,
    GilbertElliottChannel,
    IidErasureChannel,
)
from repro.phy.timebase import tc_from_ms
from repro.radio.interface import InterfaceBus, bus, usb3
from repro.radio.os_jitter import gpos
from repro.radio.radio_head import RadioHead
from repro.sim.rng import RngRegistry
from repro.traffic.generators import uniform_in_horizon

__all__ = ["SCENARIOS", "ScenarioFn", "run_point", "scenario"]

ScenarioFn = Callable[[Mapping[str, Any], RngRegistry],
                      dict[str, Any]]

#: Scenario name -> function; populated by the :func:`scenario`
#: decorator at import time, read by workers via :func:`run_point`.
SCENARIOS: dict[str, ScenarioFn] = {}


def scenario(name: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario function under ``name``."""
    def register(fn: ScenarioFn) -> ScenarioFn:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = fn
        return fn
    return register


def run_point(point: Any) -> dict[str, Any]:
    """Execute one :class:`~repro.runner.campaign.ScenarioPoint`.

    This is the worker-side entry: it rebuilds the point's private RNG
    namespace from the point seed, so the result does not depend on
    which process — or in which order — the point runs.
    """
    fn = SCENARIOS.get(point.scenario)
    if fn is None:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {point.scenario!r}; known: {known}")
    return fn(point.params_dict(), RngRegistry(point.seed))


# ----------------------------------------------------------------------
# scenario library
# ----------------------------------------------------------------------
def _probe_metrics(probe: LatencyProbe,
                   keep_samples: bool) -> dict[str, Any]:
    summary = probe.summary()
    metrics: dict[str, Any] = {
        "count": summary.count,
        "mean_us": summary.mean_us,
        "p50_us": summary.p50_us,
        "p99_us": summary.p99_us,
        "p999_us": summary.p999_us,
        "max_us": summary.max_us,
        "reliability": probe.fraction_within(500.0),
    }
    if keep_samples:
        metrics["latencies_us"] = probe.latencies_us()
    return metrics


@scenario("radio-sweep")
def radio_sweep(params: Mapping[str, Any],
                rngs: RngRegistry) -> dict[str, Any]:
    """Fig 5's unit of work: repeated sample submissions on one bus.

    Params: ``bus`` (calibrated bus name), ``samples`` (submission
    size), ``repetitions``.
    """
    interface = bus(str(params["bus"]))
    repetitions = int(params["repetitions"])
    generator = rngs.stream("submission")
    values = [interface.submission_latency_us(int(params["samples"]),
                                              generator)
              for _ in range(repetitions)]
    median_us = float(np.median(values))
    return {
        "median_us": median_us,
        "mean_us": float(np.mean(values)),
        "max_us": float(np.max(values)),
        "spike_count": sum(1 for v in values if v > median_us + 20.0),
        "repetitions": repetitions,
    }


def _ran_system(params: Mapping[str, Any], seed: int) -> RanSystem:
    """The §7 testbed (DDDU @ 0.5 ms, USB 3.0 B210, stock kernel)."""
    radio_head = RadioHead("b210", usb3(), gpos())
    return RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode(str(params["access"])),
                  gnb_radio_head=radio_head, seed=seed))


@scenario("ran-latency")
def ran_latency(params: Mapping[str, Any],
                rngs: RngRegistry) -> dict[str, Any]:
    """One-way latency distribution on the §7 testbed (Fig 6's unit).

    Params: ``access`` (``grant-based``/``grant-free``), ``direction``
    (``dl``/``ul``), ``packets``, ``horizon_ms``.
    """
    system = _ran_system(params, seed=rngs.fork("system").seed)
    arrivals = uniform_in_horizon(
        int(params["packets"]),
        tc_from_ms(float(params["horizon_ms"])),
        rngs.stream("arrivals"))
    direction = str(params["direction"])
    if direction == "dl":
        probe = system.run_downlink(arrivals)
    elif direction == "ul":
        probe = system.run_uplink(arrivals)
    else:
        raise ValueError(f"direction must be 'dl' or 'ul', "
                         f"got {direction!r}")
    return _probe_metrics(probe, keep_samples=True)


def _chaos_channel(params: Mapping[str, Any]) -> Channel | None:
    """Channel model for the chaos scenario (perfect/iid/ge)."""
    kind = str(params.get("channel", "perfect"))
    if kind == "perfect":
        return None
    if kind == "iid":
        return IidErasureChannel(float(params.get("bler", 0.01)))
    if kind == "ge":
        return GilbertElliottChannel(
            mean_good_tc=tc_from_ms(float(params.get("ge_good_ms",
                                                     20.0))),
            mean_bad_tc=tc_from_ms(float(params.get("ge_bad_ms", 2.0))))
    raise ValueError(
        f"channel must be 'perfect', 'iid' or 'ge', got {kind!r}")


@scenario("chaos-latency")
def chaos_latency(params: Mapping[str, Any],
                  rngs: RngRegistry) -> dict[str, Any]:
    """Delivery reliability under a deterministic fault schedule.

    The §7 testbed driven through a :class:`~repro.faults.plan.FaultPlan`
    — the reliability-vs-fault-intensity unit of docs/ROBUSTNESS.md.
    Params: ``access``, ``direction`` (``dl``/``ul``), ``packets``,
    ``horizon_ms``, ``faults`` (a preset name or inline FaultPlan
    JSON), ``intensity`` (scales the plan; 0 disarms it bit-exactly),
    ``channel`` (``perfect``/``iid``/``ge``) plus the channel knobs
    ``bler``, ``ge_good_ms``, ``ge_bad_ms``.  Reliability counts
    packets delivered within ``budget_us`` (default 5 ms, where the
    fault intensity actually moves the curve on this testbed) over
    packets *offered* — a dropped packet is a reliability failure,
    which is the whole point of injecting faults.  ``reliability_1ms``
    reports the same ratio against the paper's 1 ms URLLC bound.
    """
    plan = FaultPlan.resolve(str(params["faults"]))
    plan = plan.scaled(float(params.get("intensity", 1.0)))
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode(str(params["access"])),
                  gnb_radio_head=RadioHead("b210", usb3(), gpos()),
                  channel=_chaos_channel(params),
                  fault_plan=plan,
                  seed=rngs.fork("system").seed))
    offered = int(params["packets"])
    arrivals = uniform_in_horizon(
        offered, tc_from_ms(float(params["horizon_ms"])),
        rngs.stream("arrivals"))
    direction = str(params["direction"])
    if direction == "dl":
        probe = system.run_downlink(arrivals)
    elif direction == "ul":
        probe = system.run_uplink(arrivals)
    else:
        raise ValueError(f"direction must be 'dl' or 'ul', "
                         f"got {direction!r}")
    latencies_us = probe.latencies_us()
    budget_us = float(params.get("budget_us", 5_000.0))
    on_time = sum(1 for value in latencies_us if value <= budget_us)
    within_1ms = sum(1 for value in latencies_us if value <= 1_000.0)
    metrics: dict[str, Any] = {
        "offered": offered,
        "delivered": len(latencies_us),
        "dropped": offered - len(latencies_us),
        "reliability": on_time / offered,
        "reliability_1ms": within_1ms / offered,
        "blocks_sent": system.link.counters.blocks_sent,
        "blocks_failed": system.link.counters.blocks_failed,
        "harq_drops": system.link.counters.packets_dropped,
    }
    if latencies_us:
        summary = probe.summary()
        metrics.update({
            "mean_us": summary.mean_us,
            "p50_us": summary.p50_us,
            "p99_us": summary.p99_us,
            "max_us": summary.max_us,
        })
    else:  # total outage: keep the key set stable for baselines
        metrics.update({"mean_us": 0.0, "p50_us": 0.0, "p99_us": 0.0,
                        "max_us": 0.0})
    counters = (system.faults.counters if system.faults is not None
                else FaultCounters())
    metrics.update(counters.as_metrics())
    return metrics


@scenario("chaos-selftest")
def chaos_selftest(params: Mapping[str, Any],
                   rngs: RngRegistry) -> dict[str, Any]:
    """Runner-hardening self-test: misbehave deliberately, once.

    The one sanctioned *impure* scenario: it exists so the chaos tests
    and CI job can prove that a crashed, raising or wedged worker fails
    (or retries) a single point instead of the campaign.  The fault
    path is double-gated — it needs ``URLLC5G_CHAOS=1`` in the
    environment *and* a ``token`` marker-file path — and fires only
    while the marker is absent: the first attempt creates the marker
    and then misbehaves per ``mode`` (``raise``/``kill``/``hang``), so
    the retry of the same point finds the marker and succeeds.  The
    returned payload is computed from the point's own streams and never
    depends on the fault path, keeping replays and caches coherent.
    """
    mode = str(params.get("mode", "ok"))
    token = str(params.get("token", ""))
    if mode != "ok" and token and envconfig.current().chaos:
        marker = Path(token)
        if not marker.exists():
            try:
                marker.touch()
            except OSError:
                pass  # unwritable token: the fault fires every attempt
            if mode == "kill":
                os._exit(17)  # simulate a segfaulting worker
            if mode == "hang":
                while True:  # simulate a wedged worker
                    pass
            raise RuntimeError("chaos-selftest: injected worker failure")
    draws = rngs.stream("noise").random(4)
    return {"value": float(np.sum(draws)), "draws": 4}


@scenario("sensitivity-latency")
def sensitivity_latency(params: Mapping[str, Any],
                        rngs: RngRegistry) -> dict[str, Any]:
    """Mean DL latency under perturbed calibration constants (A14).

    Params: ``rh_setup_us``, ``ue_processing_scale``,
    ``gnb_processing_scale``, ``packets``, ``horizon_ms``, plus
    explicit ``sim_seed``/``arrivals_seed`` so every perturbation is
    evaluated under *identical* randomness — a tornado analysis is a
    paired comparison, and per-point seeds would add noise exactly
    where the smallest swings are measured.
    """
    interface = InterfaceBus("usb3-like",
                             setup_us=float(params["rh_setup_us"]),
                             per_sample_us=0.0022,
                             spike_probability=0.04,
                             spike_mean_us=35.0)
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE,
                  gnb_radio_head=RadioHead("rh", interface, gpos()),
                  ue_processing_scale=float(
                      params["ue_processing_scale"]),
                  gnb_processing_scale=float(
                      params["gnb_processing_scale"]),
                  seed=int(params["sim_seed"])))
    arrivals = uniform_in_horizon(
        int(params["packets"]),
        tc_from_ms(float(params["horizon_ms"])),
        RngRegistry(int(params["arrivals_seed"])).stream("arrivals"))
    probe = system.run_downlink(arrivals)
    return _probe_metrics(probe, keep_samples=False)


@scenario("multi-ue")
def multi_ue(params: Mapping[str, Any],
             rngs: RngRegistry) -> dict[str, Any]:
    """Grant-free scalability at one UE population (A3's unit).

    Params: ``n_ues``, ``packets_per_ue``, ``horizon_ms``.
    """
    n_ues = int(params["n_ues"])
    packets_per_ue = int(params["packets_per_ue"])
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                  seed=rngs.fork("system").seed))
    horizon_tc = tc_from_ms(float(params["horizon_ms"]))
    for ue_id in range(1, n_ues + 1):
        system.queue_uplink(
            uniform_in_horizon(packets_per_ue, horizon_tc,
                               rngs.stream(f"arrivals.ue{ue_id}")),
            ue_id=ue_id)
    system.run()
    counters = system.gnb.scheduler.counters
    metrics = _probe_metrics(system.ul_probe, keep_samples=False)
    metrics.update({
        "delivered": len(system.ul_probe),
        "cg_waste": counters.cg_waste_fraction(),
        "cg_allocated_bytes": counters.cg_allocated_bytes,
    })
    return metrics


@scenario("multi-ue-massive")
def multi_ue_massive(params: Mapping[str, Any],
                     rngs: RngRegistry) -> dict[str, Any]:
    """Grant-free uplink at population scale (10k-100k UEs per cell).

    Params: ``n_ues``, ``packets_per_ue``, ``horizon_ms``, and
    optionally ``engine`` (default ``"slotted"`` — the point of the
    scenario; ``"scalar"`` exists for small-N equivalence checks).
    Each UE owns dedicated configured-grant resources
    (``cg_share=1.0``), the regime in which per-cell populations this
    large are schedulable at all.  Metrics are identical in shape to
    ``multi-ue`` plus the engine actually used, so baselines pin that
    large runs really take the slotted path.
    """
    n_ues = int(params["n_ues"])
    packets_per_ue = int(params["packets_per_ue"])
    engine = str(params.get("engine", "slotted"))
    system = RanSystem(
        testbed_dddu(),
        RanConfig(access=AccessMode.GRANT_FREE, n_ues=n_ues,
                  cg_share=1.0, engine=engine,
                  seed=rngs.fork("system").seed))
    horizon_tc = tc_from_ms(float(params["horizon_ms"]))
    for ue_id in range(1, n_ues + 1):
        system.queue_uplink(
            uniform_in_horizon(packets_per_ue, horizon_tc,
                               rngs.stream(f"arrivals.ue{ue_id}")),
            ue_id=ue_id)
    system.run()
    counters = system.gnb.scheduler.counters
    metrics = _probe_metrics(system.ul_probe, keep_samples=False)
    metrics.update({
        "delivered": len(system.ul_probe),
        "cg_waste": counters.cg_waste_fraction(),
        "cg_allocated_bytes": counters.cg_allocated_bytes,
        "engine": system.engine_mode,
        # Numeric twin of "engine" (strings are digest material, not
        # gateable): baselines pin that big points stay slotted.
        "engine_slotted": int(system.engine_mode == "slotted"),
    })
    return metrics


@scenario("design-feasibility")
def design_feasibility(params: Mapping[str, Any],
                       rngs: RngRegistry) -> dict[str, Any]:
    """Feasibility of one TS 38.331 Common Configuration (E3's unit).

    Params: ``index`` (position in the enumerated grammar), ``mu``,
    ``max_period_ms``, ``budget_ms``, ``reliability``.  Purely
    analytic — ``rngs`` is unused, the point is cached like any other.
    """
    configs = enumerate_common_configurations(
        int(params["mu"]), float(params["max_period_ms"]))
    config = configs[int(params["index"])]
    budget_ms = float(params["budget_ms"])
    requirement = Requirement(f"{budget_ms:g} ms one-way",
                              tc_from_ms(budget_ms),
                              float(params["reliability"]))
    model = LatencyModel(config)
    feasible: list[str] = []
    dl_ok = False
    try:
        dl_ok = requirement.met_by_worst_case(
            model.extremes(Direction.DL))
    except LookupError:
        dl_ok = False
    if dl_ok:
        for access in (AccessMode.GRANT_FREE, AccessMode.GRANT_BASED):
            try:
                extremes = model.extremes(Direction.UL, access)
            except LookupError:
                continue
            if requirement.met_by_worst_case(extremes):
                feasible.append(access.value)
    return {
        "letters": "".join(config.slot_letters()),
        "period_tc": config.period_tc,
        "universe": len(configs),
        "dl_ok": dl_ok,
        "feasible_accesses": feasible,
        "feasible_count": len(feasible),
    }
