"""Campaign execution subsystem: parallel, cached scenario sweeps.

The paper's artifacts are thousands of independent simulation
replications; this package turns such sweeps into declarative
:class:`Campaign` grids of :class:`ScenarioPoint`s, executes them
across worker processes with bit-identical-to-serial results
(:class:`CampaignRunner`), and skips already-computed points through a
content-hash :class:`ResultCache` keyed on point identity plus a
source fingerprint.  ``urllc5g bench`` and the benchmark harness are
the two front-ends; see ``docs/CAMPAIGNS.md``.
"""

from repro.runner import envconfig
from repro.runner.bench import (
    CAMPAIGNS,
    CheckOutcome,
    bench_payload,
    build_campaign,
    check_against_baseline,
    load_baseline,
    render_baseline,
    write_bench_json,
)
from repro.runner.cache import (
    ResultCache,
    atomic_write_text,
    source_fingerprint,
)
from repro.runner.chaos import (
    ChaosFsOps,
    ChaosPlan,
    ChaosSpec,
    certify_dispatch,
    enumerate_schedules,
)
from repro.runner.dispatch import (
    DispatchCoordinator,
    DispatchRefusedError,
    DispatchStats,
    run_worker,
)
from repro.runner.campaign import (
    Campaign,
    ScenarioPoint,
    canonical_params,
    derive_point_seed,
    grid_params,
)
from repro.runner.executor import (
    CampaignResult,
    CampaignRunner,
    PointResult,
)
from repro.runner.fsops import CRASH_POINTS, DEFAULT_FS, FsOps
from repro.runner.journal import CampaignJournal
from repro.runner.lease import QueueDir
from repro.runner.merge import (
    JournalMergeError,
    merge_worker_journals,
    write_merged_journal,
)
from repro.runner.scenarios import SCENARIOS, run_point, scenario

__all__ = [
    "CAMPAIGNS",
    "CRASH_POINTS",
    "Campaign",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "ChaosFsOps",
    "ChaosPlan",
    "ChaosSpec",
    "CheckOutcome",
    "DEFAULT_FS",
    "DispatchCoordinator",
    "DispatchRefusedError",
    "DispatchStats",
    "FsOps",
    "JournalMergeError",
    "PointResult",
    "QueueDir",
    "ResultCache",
    "SCENARIOS",
    "ScenarioPoint",
    "atomic_write_text",
    "bench_payload",
    "build_campaign",
    "canonical_params",
    "certify_dispatch",
    "check_against_baseline",
    "derive_point_seed",
    "envconfig",
    "enumerate_schedules",
    "grid_params",
    "load_baseline",
    "merge_worker_journals",
    "render_baseline",
    "run_point",
    "run_worker",
    "scenario",
    "source_fingerprint",
    "write_bench_json",
    "write_merged_journal",
]
