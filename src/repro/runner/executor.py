"""Campaign execution: fan points out across worker processes.

:class:`CampaignRunner` executes a :class:`~repro.runner.campaign.Campaign`
either serially in-process or across a pool of ``spawn``-start worker
processes.  Three properties make the two modes interchangeable:

- every point carries its own derived seed, so no point's randomness
  depends on which worker runs it or what ran before it;
- ``pool.map`` merges worker payloads back in campaign order, so the
  merged result is independent of completion order;
- workers never touch shared mutable state — the result cache is
  consulted and written only by the coordinating process.

Consequently a parallel run is bit-identical to a serial run of the
same campaign, which the test-suite asserts.  :meth:`CampaignRunner.run`
is the one annotated measurement boundary of the subsystem: the only
place allowed to read the wall clock (``time.perf_counter``, excused
for this file in ``[tool.urllc5g.lint.per-path]``), and only for the
campaign-level elapsed time reported as ``wall_clock_s``.  Scenario
workers are pure simulation and remain content-hashable: no worker
result may ever depend on a clock read.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any

from repro.runner.cache import ResultCache, source_fingerprint
from repro.runner.campaign import Campaign, ScenarioPoint
from repro.runner.scenarios import run_point

__all__ = ["CampaignResult", "CampaignRunner", "PointResult"]


@dataclass(frozen=True)
class PointResult:
    """One executed (or cache-replayed) scenario point."""

    point: ScenarioPoint
    result: dict[str, Any]
    from_cache: bool


@dataclass(frozen=True)
class CampaignResult:
    """The merged outcome of one campaign run."""

    campaign: Campaign
    point_results: tuple[PointResult, ...]
    workers: int
    cache_hits: int
    cache_misses: int
    wall_clock_s: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points replayed from the result cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def metrics(self) -> dict[str, float]:
        """Flat ``"<point label>/<metric>"`` map of scalar metrics.

        Only int/float values are merged (sample lists and strings are
        artifact material, not gateable metrics); key order follows
        campaign order, so the rendering is deterministic.
        """
        merged: dict[str, float] = {}
        for point_result in self.point_results:
            label = point_result.point.label
            for name in sorted(point_result.result):
                value = point_result.result[name]
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                merged[f"{label}/{name}"] = float(value)
        return merged


def _execute_point(point: ScenarioPoint) -> dict[str, Any]:
    """Worker-side entry: must stay a module-level importable."""
    return run_point(point)


class CampaignRunner:
    """Executes campaigns through an optional pool and result cache.

    ``workers=1`` runs serially in-process; higher counts fan points
    out over ``spawn``-start processes (``fork`` would silently share
    whatever RNG/simulator state the parent already holds — ``spawn``
    makes every worker import the simulation fresh).  The pool is
    created lazily and reused across :meth:`run` calls so several
    campaigns (e.g. a whole benchmark session) share it; call
    :meth:`close` — or use the runner as a context manager — when done.
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 fingerprint: str | None = None):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.cache = cache
        self._fingerprint = fingerprint
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The source fingerprint cached results are keyed against."""
        if self._fingerprint is None:
            self._fingerprint = source_fingerprint()
        return self._fingerprint

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("spawn"))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, campaign: Campaign) -> CampaignResult:
        """Execute every point, merging results in campaign order."""
        # Measurement boundary: elapsed-time span only, never results.
        start_s = time.perf_counter()
        cached: dict[str, dict[str, Any]] = {}
        pending: list[ScenarioPoint] = []
        if self.cache is not None:
            for point in campaign.points:
                payload = self.cache.lookup(point.digest(),
                                            self.fingerprint)
                if payload is None:
                    pending.append(point)
                else:
                    cached[point.digest()] = payload
        else:
            pending = list(campaign.points)

        computed: dict[str, dict[str, Any]] = {}
        if pending:
            if self.workers == 1 or len(pending) == 1:
                payloads = [_execute_point(point) for point in pending]
            else:
                pool = self._acquire_pool()
                chunksize = max(1, len(pending) // (4 * self.workers))
                payloads = list(pool.map(_execute_point, pending,
                                         chunksize=chunksize))
            for point, payload in zip(pending, payloads):
                computed[point.digest()] = payload
                if self.cache is not None:
                    self.cache.store(point.digest(), self.fingerprint,
                                     payload)
            if self.cache is not None:
                self.cache.save()

        point_results = tuple(
            PointResult(point,
                        cached.get(point.digest(),
                                   computed.get(point.digest(), {})),
                        from_cache=point.digest() in cached)
            for point in campaign.points)
        end_s = time.perf_counter()
        return CampaignResult(
            campaign=campaign,
            point_results=point_results,
            workers=self.workers,
            cache_hits=len(cached),
            cache_misses=len(pending),
            wall_clock_s=end_s - start_s,
        )
