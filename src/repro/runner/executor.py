"""Campaign execution: fan points out across worker processes.

:class:`CampaignRunner` executes a :class:`~repro.runner.campaign.Campaign`
either serially in-process or across a pool of ``spawn``-start worker
processes.  Three properties make the two modes interchangeable:

- every point carries its own derived seed, so no point's randomness
  depends on which worker runs it or what ran before it;
- merged results are assembled in campaign order, keyed by point
  digest, so the document is independent of completion order;
- workers never touch shared mutable state — the result cache and the
  journal are consulted and written only by the coordinating process.

Consequently a parallel run is bit-identical to a serial run of the
same campaign, which the test-suite asserts.

The runner is also *hardened* (docs/ROBUSTNESS.md): a worker that
raises, segfaults or wedges fails — after bounded retries — only its
own point, never the campaign.  Failure handling is deterministic in
everything that reaches the result document: retries are *counted* (in
:class:`PointResult.attempts`), never timed, and a retried point
recomputes from its own derived seed so the payload is the same
whichever attempt produced it.  The wall clock is read only for the
campaign-level ``wall_clock_s`` span and for the liveness timeout that
detects wedged workers (``time.perf_counter`` is excused for this file
in ``[tool.urllc5g.lint.per-path]``); neither can alter a payload.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import TYPE_CHECKING, Any, Callable

from repro.runner import envconfig
from repro.runner.cache import ResultCache, source_fingerprint
from repro.runner.campaign import Campaign, ScenarioPoint
from repro.runner.journal import CampaignJournal
from repro.runner.scenarios import run_point

if TYPE_CHECKING:
    from repro.runner.dispatch import DispatchStats

__all__ = ["CampaignResult", "CampaignRunner", "PointResult"]


@dataclass(frozen=True)
class PointResult:
    """One executed (or replayed) scenario point.

    ``attempts`` counts executions including the successful (or final
    failing) one; ``error`` is None for a successful point and holds
    the last failure description otherwise (``result`` is then empty).
    ``from_journal`` marks points replayed from a resume journal rather
    than executed or cache-replayed in this run.
    """

    point: ScenarioPoint
    result: dict[str, Any]
    from_cache: bool
    attempts: int = 1
    error: str | None = None
    from_journal: bool = False

    @property
    def failed(self) -> bool:
        """Whether the point exhausted its attempts without a payload."""
        return self.error is not None


@dataclass(frozen=True)
class _Outcome:
    """Internal record of how one pending point ended up."""

    result: dict[str, Any] | None
    attempts: int
    error: str | None


@dataclass(frozen=True)
class CampaignResult:
    """The merged outcome of one campaign run."""

    campaign: Campaign
    point_results: tuple[PointResult, ...]
    workers: int
    cache_hits: int
    cache_misses: int
    wall_clock_s: float
    journal_replays: int = 0
    warnings: tuple[str, ...] = ()
    #: Present only for dispatched runs (repro.runner.dispatch).
    dispatch: "DispatchStats | None" = None

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points replayed from the result cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def failures(self) -> tuple[PointResult, ...]:
        """Points that exhausted their retry budget."""
        return tuple(pr for pr in self.point_results if pr.failed)

    @property
    def retries(self) -> int:
        """Total extra attempts beyond the first, across all points."""
        return sum(max(0, pr.attempts - 1) for pr in self.point_results)

    def metrics(self) -> dict[str, float]:
        """Flat ``"<point label>/<metric>"`` map of scalar metrics.

        Only int/float values are merged (sample lists and strings are
        artifact material, not gateable metrics); key order follows
        campaign order, so the rendering is deterministic.  A failed
        point has an empty result and thus contributes no metrics.
        """
        merged: dict[str, float] = {}
        for point_result in self.point_results:
            label = point_result.point.label
            for name in sorted(point_result.result):
                value = point_result.result[name]
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    continue
                merged[f"{label}/{name}"] = float(value)
        return merged

    def results_digest(self) -> str:
        """Content hash over every point's *full* payload, in order.

        The merged metrics table only carries scalars; this digest
        additionally covers sample lists (per-packet latencies) and
        string payload fields, so two runs agree on it iff their
        documents are bit-identical point for point.  It is what the
        dispatch CI job compares between a serial and a distributed
        run — execution provenance (cache hits, journal replays,
        attempt counts) is deliberately excluded because it may
        legitimately differ between equal runs.
        """
        hasher = hashlib.sha256()
        for point_result in self.point_results:
            record = {
                "point": point_result.point.digest(),
                "result": point_result.result,
                "error": point_result.error,
            }
            hasher.update(json.dumps(record,
                                     sort_keys=True).encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()


def _execute_point(point: ScenarioPoint) -> dict[str, Any]:
    """Worker-side entry: must stay a module-level importable."""
    return run_point(point)


class CampaignRunner:
    """Executes campaigns through an optional pool and result cache.

    ``workers=1`` runs serially in-process; higher counts fan points
    out over ``spawn``-start processes (``fork`` would silently share
    whatever RNG/simulator state the parent already holds — ``spawn``
    makes every worker import the simulation fresh).  The pool is
    created lazily and reused across :meth:`run` calls so several
    campaigns (e.g. a whole benchmark session) share it; call
    :meth:`close` — or use the runner as a context manager — when done.

    Hardening knobs:

    - ``max_retries`` — extra attempts a failing point gets before it
      is recorded as failed (the campaign always completes).
    - ``timeout_s`` — parallel mode only: if *no* in-flight point
      completes within this window the pool is presumed wedged, its
      workers are killed, and every unfinished point is requeued
      (costing each one attempt).
    """

    def __init__(self, workers: int = 1,
                 cache: ResultCache | None = None,
                 fingerprint: str | None = None,
                 timeout_s: float | None = None,
                 max_retries: int = 2):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self._fingerprint = fingerprint
        self._pool: ProcessPoolExecutor | None = None

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The source fingerprint cached results are keyed against."""
        if self._fingerprint is None:
            self._fingerprint = source_fingerprint()
        return self._fingerprint

    def _acquire_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context("spawn"))
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _kill_pool(self) -> None:
        """Tear the pool down hard: SIGKILL workers, drop the object.

        Used when the pool is wedged (liveness timeout) or broken (a
        worker died); a fresh pool is created on the next acquire.
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        processes = list(getattr(pool, "_processes", None) or {})
        process_map = getattr(pool, "_processes", None) or {}
        workers = [process_map[pid] for pid in processes]
        pool.shutdown(wait=False, cancel_futures=True)
        for worker in workers:
            try:
                worker.kill()
            except (OSError, ValueError):
                pass
        for worker in workers:
            try:
                worker.join(timeout=5.0)
            except (OSError, ValueError, AssertionError):
                pass

    def __enter__(self) -> "CampaignRunner":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, campaign: Campaign,
            journal: CampaignJournal | None = None,
            resume: bool = False) -> CampaignResult:
        """Execute every point, merging results in campaign order.

        With a ``journal`` each completed point is checkpointed as soon
        as its payload is known; with ``resume`` additionally matching
        entries from a previous (interrupted) run are replayed instead
        of recomputed.  A point that keeps failing past ``max_retries``
        is recorded as failed — the campaign itself always completes.
        """
        # Measurement boundary: elapsed-time span only, never results.
        start_s = time.perf_counter()
        # One consistent URLLC5G_* reading for the whole campaign:
        # mid-run environment mutation is never observed.
        envconfig.refresh()
        warnings: list[str] = []
        if self.cache is not None:
            warnings.extend(self.cache.warnings)

        replayed: dict[str, tuple[dict[str, Any], int]] = {}
        if journal is not None:
            replayed = journal.start(campaign, self.fingerprint,
                                     resume=resume)

        cached: dict[str, dict[str, Any]] = {}
        pending: list[ScenarioPoint] = []
        for point in campaign.points:
            digest = point.digest()
            if digest in replayed:
                continue
            if self.cache is not None:
                payload = self.cache.lookup(digest, self.fingerprint)
                if payload is not None:
                    cached[digest] = payload
                    continue
            pending.append(point)

        outcomes: dict[str, _Outcome] = {}

        def record(point: ScenarioPoint, outcome: _Outcome) -> None:
            digest = point.digest()
            outcomes[digest] = outcome
            if outcome.result is None:
                return
            if self.cache is not None:
                self.cache.store(digest, self.fingerprint,
                                 outcome.result)
            if journal is not None:
                journal.record(digest, outcome.result, outcome.attempts)

        if pending:
            if self.workers == 1 or len(pending) == 1:
                for point in pending:
                    record(point, self._run_serial(point))
            else:
                self._run_parallel(pending, record)
            if self.cache is not None:
                self.cache.save()

        if journal is not None:
            warnings.extend(w for w in journal.warnings
                            if w not in warnings)

        point_results: list[PointResult] = []
        for point in campaign.points:
            digest = point.digest()
            if digest in replayed:
                result, attempts = replayed[digest]
                point_results.append(PointResult(
                    point, result, from_cache=False, attempts=attempts,
                    from_journal=True))
            elif digest in cached:
                point_results.append(PointResult(
                    point, cached[digest], from_cache=True))
            else:
                outcome = outcomes[digest]
                point_results.append(PointResult(
                    point, outcome.result or {}, from_cache=False,
                    attempts=outcome.attempts, error=outcome.error))
        end_s = time.perf_counter()
        return CampaignResult(
            campaign=campaign,
            point_results=tuple(point_results),
            workers=self.workers,
            cache_hits=len(cached),
            cache_misses=len(pending),
            wall_clock_s=end_s - start_s,
            journal_replays=len(replayed),
            warnings=tuple(warnings),
        )

    # ------------------------------------------------------------------
    def _run_serial(self, point: ScenarioPoint) -> _Outcome:
        """In-process execution with the same retry budget as parallel."""
        error = None
        for attempt in range(1, self.max_retries + 2):
            try:
                return _Outcome(_execute_point(point), attempt, None)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
        return _Outcome(None, self.max_retries + 1, error)

    def _bump(self, point: ScenarioPoint, attempts: dict[str, int],
              error: str, requeue: list[ScenarioPoint],
              record: Callable[[ScenarioPoint, _Outcome], None]) -> None:
        """One attempt failed: requeue within budget, else record."""
        digest = point.digest()
        attempts[digest] += 1
        if attempts[digest] <= self.max_retries:
            requeue.append(point)
        else:
            record(point, _Outcome(None, attempts[digest], error))

    def _run_parallel(
            self, pending: list[ScenarioPoint],
            record: Callable[[ScenarioPoint, _Outcome], None]) -> None:
        """Submit-based fan-out with kill-and-requeue recovery.

        The outer loop resubmits requeued points on a (possibly fresh)
        pool; the inner loop drains completions.  ``wait`` with a
        liveness timeout detects a wedged pool: if nothing at all
        completes within ``timeout_s`` the workers are killed and every
        unfinished point costs one attempt.  A :class:`BrokenProcessPool`
        (worker segfaulted/was killed) likewise dooms all in-flight
        futures; affected points are requeued on a fresh pool.
        """
        attempts = {point.digest(): 0 for point in pending}
        queue = list(pending)
        while queue:
            batch, queue = queue, []
            requeue: list[ScenarioPoint] = []
            futures: dict[Future[dict[str, Any]], ScenarioPoint] = {}
            try:
                pool = self._acquire_pool()
                for point in batch:
                    futures[pool.submit(_execute_point, point)] = point
            except BrokenProcessPool:
                # The pool broke while we were still submitting: kill
                # it and charge every point of this batch one attempt.
                self._kill_pool()
                for future in futures:
                    future.cancel()
                for point in batch:
                    self._bump(point, attempts,
                               "worker process died (pool broken)",
                               requeue, record)
                queue = requeue
                continue
            while futures:
                done, _ = wait(futures, timeout=self.timeout_s,
                               return_when=FIRST_COMPLETED)
                if not done:
                    # Liveness timeout: nothing completed at all — the
                    # pool is wedged (e.g. a worker spinning forever).
                    self._kill_pool()
                    for point in futures.values():
                        self._bump(
                            point, attempts,
                            f"no progress within {self.timeout_s:g}s "
                            "(workers killed)", requeue, record)
                    futures = {}
                    break
                broken = False
                for future in done:
                    point = futures.pop(future)
                    try:
                        payload = future.result()
                    except BrokenProcessPool:
                        broken = True
                        self._bump(point, attempts,
                                   "worker process died (pool broken)",
                                   requeue, record)
                        continue
                    except Exception as exc:
                        self._bump(point, attempts,
                                   f"{type(exc).__name__}: {exc}",
                                   requeue, record)
                        continue
                    attempts[point.digest()] += 1
                    record(point, _Outcome(payload,
                                           attempts[point.digest()],
                                           None))
                if broken:
                    # Every future still in flight died with the pool.
                    for point in futures.values():
                        self._bump(point, attempts,
                                   "worker process died (pool broken)",
                                   requeue, record)
                    futures = {}
                    self._kill_pool()
            queue = requeue
