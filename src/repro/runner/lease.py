"""Filesystem queue primitives: jobs, leases, heartbeats, reclamation.

The dispatch layer (:mod:`repro.runner.dispatch`) coordinates workers
through a shared *queue directory* — the only channel a worker needs,
which is what lets workers attach from other hosts over any shared
filesystem.  The layout::

    <queue>/queue-manifest.json   campaign identity + enqueued digests
    <queue>/jobs/                 one file per unclaimed job
    <queue>/leases/               one file per in-flight claim
    <queue>/done/                 one marker per finished point
    <queue>/hearts/               one liveness stamp file per worker
    <queue>/events/               one append-only event log per actor
    <queue>/journals/             one CampaignJournal per worker

Every protocol transition is a single atomic ``os.replace``:

- **claim**: ``jobs/<digest>--<home>.json`` →
  ``leases/<digest>--<worker>.json``.  Exactly one racing worker wins
  the rename; losers get ``FileNotFoundError`` and move on.
- **reclaim**: an orphaned lease is renamed back into ``jobs/`` with
  its original home shard, so a crashed worker's points are re-run by
  whoever steals them next.

Every filesystem operation routes through an injectable
:class:`~repro.runner.fsops.FsOps` seam (passthrough by default), and
every transition is bracketed by named crash points — which is how
``urllc5g chaosdispatch`` certifies that a worker killed at *any*
instant, or fed EIO/ENOSPC/stale listings, still leaves a queue that
converges to the serial document (docs/ROBUSTNESS.md).

A corrupt job or lease file (torn write that half-landed, bitrot on a
shared filesystem) is *quarantined* — renamed to
``<name>.corrupt-<content-digest>`` exactly like the ResultCache does —
and its point recomputed by the coordinator at collect, rather than
letting one bad file livelock the claim loop.

Liveness is *stamp-based*, never wall-clock-based: each worker's
heartbeat thread rewrites ``hearts/<worker>.json`` with a monotonically
increasing counter, and an observer decides a worker is dead when the
counter has not advanced across ``strikes`` consecutive observations
(the observer sleeps its poll interval between scans).  No component
of the protocol ever reads the wall clock, so the queue layer is
lint-clean under the ``no-wall-clock`` rule without any excuse — and
scheduling can never leak into results, which stay pure functions of
``(scenario, params, seed)``.

A false-positive reclaim (a live worker briefly starved of heartbeats)
is *safe*: both workers compute the same pure payload and the merge
layer (:mod:`repro.runner.merge`) deduplicates identical entries.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.runner.cache import atomic_write_text
from repro.runner.campaign import ScenarioPoint, canonical_params
from repro.runner.fsops import DEFAULT_FS, FsOps

__all__ = [
    "EventLog",
    "HeartbeatWriter",
    "Job",
    "LivenessTracker",
    "QueueDir",
    "read_queue_manifest",
    "write_queue_manifest",
]

#: Separator between digest and shard/worker id inside queue filenames.
_SEP = "--"

_WORKER_ID_RE = re.compile(r"^[A-Za-z0-9_.-]+$")

QUEUE_MANIFEST_NAME = "queue-manifest.json"


def _check_worker_id(worker_id: str) -> str:
    if _SEP in worker_id or not _WORKER_ID_RE.match(worker_id):
        raise ValueError(
            f"worker id must match [A-Za-z0-9_.-]+ and not contain "
            f"{_SEP!r}, got {worker_id!r}")
    return worker_id


@dataclass(frozen=True)
class Job:
    """One unit of queued work: a scenario point plus its home shard."""

    digest: str
    scenario: str
    params: dict[str, Any]
    seed: int
    home: str

    def point(self) -> ScenarioPoint:
        """Rebuild the scenario point this job file describes."""
        point = ScenarioPoint(self.scenario,
                              canonical_params(self.params),
                              self.seed)
        if point.digest() != self.digest:
            raise ValueError(
                f"job file digest {self.digest[:12]}... does not match "
                f"its point content (tampered or mixed-version queue)")
        return point

    def payload(self) -> dict[str, Any]:
        return {"digest": self.digest, "scenario": self.scenario,
                "params": self.params, "seed": self.seed,
                "home": self.home}


class QueueDir:
    """Path helpers plus the atomic claim/reclaim/done transitions.

    ``fs`` is the filesystem seam every operation goes through; the
    default passthrough keeps the protocol byte-for-byte what it was
    before the seam existed.  A worker running under a chaos plan
    passes a ``ChaosFsOps`` instead (see :mod:`repro.runner.chaos`).
    """

    def __init__(self, root: str | Path, fs: FsOps | None = None):
        self.root = Path(root)
        self.fs = fs if fs is not None else DEFAULT_FS
        self.jobs = self.root / "jobs"
        self.leases = self.root / "leases"
        self.done = self.root / "done"
        self.hearts = self.root / "hearts"
        self.events = self.root / "events"
        self.journals = self.root / "journals"

    def initialise(self) -> None:
        """Create the directory skeleton (idempotent)."""
        for directory in (self.root, self.jobs, self.leases, self.done,
                          self.hearts, self.events, self.journals):
            self.fs.mkdir(directory)

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    def enqueue(self, point: ScenarioPoint, home: str) -> None:
        """Publish one job file, atomically, under its home shard."""
        _check_worker_id(home)
        digest = point.digest()
        job = Job(digest=digest, scenario=point.scenario,
                  params=point.params_dict(), seed=point.seed,
                  home=home)
        self.fs.write_text(self.jobs / f"{digest}{_SEP}{home}.json",
                           json.dumps(job.payload(), sort_keys=True))

    def _iter_names(self, directory: Path) -> Iterator[tuple[str, str]]:
        """(digest, id) pairs parsed from a queue directory, sorted."""
        try:
            names = [name for name in self.fs.listdir(directory)
                     if name.endswith(".json")]
        except OSError:
            return
        for name in names:
            stem = name[:-len(".json")]
            digest, sep, owner = stem.partition(_SEP)
            if sep and digest and owner:
                yield digest, owner

    def pending(self) -> list[tuple[str, str]]:
        """Unclaimed ``(digest, home)`` pairs, in sorted digest order."""
        return list(self._iter_names(self.jobs))

    def active_leases(self) -> list[tuple[str, str]]:
        """In-flight ``(digest, worker)`` pairs, in sorted order."""
        return list(self._iter_names(self.leases))

    def claim(self, worker_id: str,
              events: "EventLog | None" = None) -> Job | None:
        """Atomically claim the next job for ``worker_id``.

        Own-shard jobs are preferred (in sorted digest order); when the
        shard is empty the worker *steals* the first other-shard job.
        Returns None when nothing was claimable — either the queue is
        empty or every candidate was won by a faster worker.

        A lease whose payload reads but does not parse is *corrupt*
        (not torn — the rename was atomic): it is quarantined and its
        digest marked done with no payload, so the claim loop cannot
        livelock on one bad file and the coordinator recomputes the
        point at collect.  A lease whose payload cannot be *read*
        (transient EIO) is surrendered back to the queue unchanged.
        """
        _check_worker_id(worker_id)
        candidates = self.pending()
        ordered = ([c for c in candidates if c[1] == worker_id]
                   + [c for c in candidates if c[1] != worker_id])
        for digest, home in ordered:
            if (self.done / f"{digest}.json").exists():
                # Already completed by a worker whose lease was
                # (falsely) reclaimed: retire the duplicate job file.
                try:
                    self.fs.unlink(
                        self.jobs / f"{digest}{_SEP}{home}.json")
                except OSError:
                    pass
                continue
            source = self.jobs / f"{digest}{_SEP}{home}.json"
            target = self.leases / f"{digest}{_SEP}{worker_id}.json"
            self.fs.crash_point("claim.pre-rename")
            try:
                self.fs.replace(source, target)
            except OSError:
                continue  # lost the race: try the next candidate
            self.fs.crash_point("claim.post-rename")
            try:
                raw = self.fs.read_text(target)
            except OSError:
                # Transient read failure: surrender the lease so the
                # job stays claimable, and keep scanning.
                try:
                    self.fs.replace(target, source)
                except OSError:
                    pass
                continue
            try:
                payload = json.loads(raw)
                return Job(digest=str(payload["digest"]),
                           scenario=str(payload["scenario"]),
                           params=dict(payload["params"]),
                           seed=int(payload["seed"]),
                           home=str(payload["home"]))
            except (ValueError, KeyError, TypeError):
                # The payload read fine but is not a job: the file is
                # corrupt, and re-reading can never heal it.
                self._quarantine(target, raw, digest,
                                 worker=worker_id, events=events)
                continue
        return None

    def release(self, digest: str, worker_id: str) -> None:
        """Drop a completed claim's lease file (idempotent)."""
        self.fs.crash_point("release.pre")
        try:
            self.fs.unlink(self.leases / f"{digest}{_SEP}{worker_id}.json")
        except OSError:
            pass

    def requeue(self, digest: str, worker_id: str, home: str) -> None:
        """Return a *live* worker's own lease to the job queue.

        The escape hatch of a worker that computed a point but cannot
        publish its done marker (persistent ENOSPC): renaming its own
        lease back re-offers the job to the fleet instead of holding
        it hostage.  Raises ``OSError`` when even the rename fails.
        """
        _check_worker_id(home)
        self.fs.replace(self.leases / f"{digest}{_SEP}{worker_id}.json",
                        self.jobs / f"{digest}{_SEP}{home}.json")

    def reclaim(self, digest: str, worker_id: str,
                events: "EventLog | None" = None) -> bool:
        """Return an orphaned lease to the job queue.

        The lease file still holds the original job payload (claim is
        a pure rename), so renaming it back under its *home* shard
        re-publishes the job unchanged.  Returns False when another
        reclaimer won the race.  A lease that reads but does not parse
        is quarantined (see :meth:`claim`) instead of being retried
        forever by every observer.
        """
        lease = self.leases / f"{digest}{_SEP}{worker_id}.json"
        try:
            raw = self.fs.read_text(lease)
        except OSError:
            return False
        try:
            payload = json.loads(raw)
            home = _check_worker_id(str(payload["home"]))
        except (ValueError, KeyError, TypeError):
            self._quarantine(lease, raw, digest, worker=worker_id,
                             events=events)
            return False
        self.fs.crash_point("reclaim.pre-rename")
        try:
            self.fs.replace(lease, self.jobs / f"{digest}{_SEP}{home}.json")
        except OSError:
            return False
        self.fs.crash_point("reclaim.post-rename")
        return True

    def _quarantine(self, path: Path, raw: str, digest: str, *,
                    worker: str,
                    events: "EventLog | None" = None) -> None:
        """Sideline one corrupt queue file and retire its digest.

        Mirrors the ResultCache pattern: the file is renamed to
        ``<name>.corrupt-<content-digest>`` (which no scan picks up —
        it no longer ends in ``.json``) so the defect stays on disk
        for forensics.  A done marker *without* an error is published
        for the digest, which is exactly the shape collect recomputes
        from the campaign's own point list — so the document stays
        bit-identical to serial.
        """
        content = hashlib.sha256(raw.encode("utf-8")).hexdigest()[:12]
        try:
            self.fs.replace(path,
                            path.with_name(f"{path.name}"
                                           f".corrupt-{content}"))
        except OSError:
            return  # someone else moved it first; nothing to retire
        if events is not None:
            events.emit("quarantine", digest=digest, file=path.name)
        try:
            self.mark_done(digest, worker, attempts=1)
        except OSError:
            pass  # no marker: the stall backstop recovers the point

    # ------------------------------------------------------------------
    # done markers
    # ------------------------------------------------------------------
    def mark_done(self, digest: str, worker_id: str, attempts: int,
                  error: str | None = None,
                  stolen: bool = False) -> None:
        """Publish the completion marker for one point, atomically."""
        self.fs.crash_point("done-marker.pre")
        self.fs.write_text(
            self.done / f"{digest}.json",
            json.dumps({"digest": digest, "worker": worker_id,
                        "attempts": attempts, "error": error,
                        "stolen": stolen}, sort_keys=True))
        self.fs.crash_point("done-marker.post")

    def done_markers(self) -> dict[str, dict[str, Any]]:
        """digest -> completion marker, for every finished point."""
        markers: dict[str, dict[str, Any]] = {}
        try:
            names = self.fs.listdir(self.done)
        except OSError:
            return markers
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                payload = json.loads(
                    self.fs.read_text(self.done / name))
            except (OSError, ValueError):
                continue  # torn write in progress: next poll sees it
            if isinstance(payload, dict) \
                    and isinstance(payload.get("digest"), str):
                markers[payload["digest"]] = payload
        return markers


# ----------------------------------------------------------------------
# liveness
# ----------------------------------------------------------------------
class HeartbeatWriter:
    """Background thread stamping ``hearts/<worker>.json``.

    The stamp is a plain counter — liveness is "the counter advanced
    between two observations", so neither writer nor observer ever
    consults the wall clock.  The thread is a daemon: a SIGKILLed
    worker stops stamping instantly, which is exactly the signal the
    reclaimers key on.

    A stamp that cannot be written (ENOSPC, EIO) is *dropped and
    counted* (:attr:`dropped`), never allowed to kill the pump thread:
    a worker on a briefly-full disk keeps processing, pays at most a
    false-positive reclaim — which is safe by construction — and
    surfaces the drops in the bench dispatch block.
    """

    def __init__(self, queue: QueueDir, worker_id: str,
                 interval_s: float = 0.1):
        self.path = queue.hearts / f"{_check_worker_id(worker_id)}.json"
        self.worker_id = worker_id
        self.interval_s = interval_s
        #: Heartbeat stamps lost to write failures (ENOSPC/EIO).
        self.dropped = 0
        self._fs = queue.fs
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self, stamp: int) -> None:
        try:
            self._fs.write_text(self.path,
                                json.dumps({"worker": self.worker_id,
                                            "stamp": stamp},
                                           sort_keys=True))
        except OSError:
            self.dropped += 1

    def start(self) -> None:
        if self._thread is not None:
            return
        self.beat(0)

        def pump() -> None:
            stamp = 1
            while not self._stop.wait(self.interval_s):
                self.beat(stamp)
                stamp += 1

        self._thread = threading.Thread(
            target=pump, name=f"heartbeat-{self.worker_id}",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None

    def __enter__(self) -> "HeartbeatWriter":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class LivenessTracker:
    """Strike-counting observer of every worker's heartbeat stamp.

    Call :meth:`observe` once per poll cycle (the caller sleeps its
    poll interval between calls); a worker whose stamp has not
    advanced for ``strikes`` consecutive observations is reported
    dead.  Because both sides count in observations rather than
    seconds, the detection threshold scales with however fast the
    caller polls — and never touches the wall clock.
    """

    def __init__(self, queue: QueueDir, strikes: int = 4):
        if strikes < 1:
            raise ValueError(f"strikes must be >= 1, got {strikes}")
        self.queue = queue
        self.strikes = strikes
        self._seen: dict[str, tuple[int, int]] = {}

    def _stamps(self) -> dict[str, int]:
        stamps: dict[str, int] = {}
        fs = self.queue.fs
        try:
            names = fs.listdir(self.queue.hearts)
        except OSError:
            return stamps
        for name in names:
            if not name.endswith(".json"):
                continue
            try:
                payload = json.loads(
                    fs.read_text(self.queue.hearts / name))
                stamps[name[:-len(".json")]] = int(payload["stamp"])
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return stamps

    def observe(self) -> set[str]:
        """One poll: returns the workers currently considered dead."""
        stamps = self._stamps()
        dead: set[str] = set()
        for worker, stamp in stamps.items():
            last_stamp, misses = self._seen.get(worker, (-1, 0))
            if stamp != last_stamp:
                self._seen[worker] = (stamp, 0)
            else:
                misses += 1
                self._seen[worker] = (stamp, misses)
                if misses >= self.strikes:
                    dead.add(worker)
        # A lease owner with *no* heartbeat file at all has never
        # checked in (or its file was lost): give it the same strike
        # budget before declaring it dead.
        owners = {worker for _, worker in self.queue.active_leases()}
        for worker in owners - stamps.keys():
            last_stamp, misses = self._seen.get(worker, (-1, 0))
            misses += 1
            self._seen[worker] = (last_stamp, misses)
            if misses >= self.strikes:
                dead.add(worker)
        return dead

    def reclaim_dead(self, dead: set[str],
                     events: "EventLog | None" = None) -> int:
        """Reclaim every lease held by a dead worker; returns count."""
        reclaimed = 0
        for digest, worker in self.queue.active_leases():
            if worker not in dead:
                continue
            if events is not None:
                events.emit("expire", digest=digest, owner=worker)
            if self.queue.reclaim(digest, worker, events):
                reclaimed += 1
                if events is not None:
                    events.emit("reclaim", digest=digest, owner=worker)
        return reclaimed


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
class EventLog:
    """Per-actor append-only event stream (single writer per file).

    Dispatch statistics (steals, expirations, reclaims) are aggregated
    from these logs at collect time.  Each actor owns exactly one file,
    so no two processes ever write the same log — there is nothing to
    lock even on filesystems without atomic appends.  Events feed the
    ``DispatchStats`` block only; they never influence results — which
    is also why an event that cannot be *written* (ENOSPC/EIO) is
    dropped and counted (:attr:`dropped`) rather than allowed to crash
    the worker that tried to emit it.
    """

    def __init__(self, queue: QueueDir, actor: str):
        self.path = queue.events / f"{_check_worker_id(actor)}.jsonl"
        self.actor = actor
        #: Events lost to write failures (ENOSPC/EIO).
        self.dropped = 0
        self._fs = queue.fs

    def emit(self, event: str, **fields: Any) -> None:
        record = {"event": event, "actor": self.actor, **fields}
        try:
            self._fs.append_text(self.path,
                                 json.dumps(record, sort_keys=True)
                                 + "\n")
        except OSError:
            self.dropped += 1

    @staticmethod
    def read_all(queue: QueueDir) -> list[dict[str, Any]]:
        """Every event from every actor, in (actor, order) order."""
        events: list[dict[str, Any]] = []
        try:
            names = queue.fs.listdir(queue.events)
        except OSError:
            return events
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            try:
                lines = queue.fs.read_text(
                    queue.events / name).splitlines()
            except OSError:
                continue
            for line in lines:
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail of a crashed actor
                if isinstance(record, dict):
                    events.append(record)
        return events


# ----------------------------------------------------------------------
# queue manifest
# ----------------------------------------------------------------------
def write_queue_manifest(queue: QueueDir,
                         payload: Mapping[str, Any]) -> None:
    """Persist the campaign-identity manifest atomically."""
    atomic_write_text(queue.root / QUEUE_MANIFEST_NAME,
                      json.dumps(dict(payload), sort_keys=True,
                                 indent=2) + "\n")


def read_queue_manifest(queue: QueueDir) -> dict[str, Any]:
    """Read and minimally validate the queue manifest."""
    path = queue.root / QUEUE_MANIFEST_NAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(
            f"{path} is unreadable ({exc}); is this a dispatch "
            "queue directory?") from exc
    except ValueError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError(f"{path} must be a JSON object")
    for key in ("campaign", "seed", "fingerprint", "points",
                "digests"):
        if key not in payload:
            raise ValueError(f"{path} is missing the {key!r} field")
    return payload
