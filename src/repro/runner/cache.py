"""Content-hash result cache for campaign points.

A point's payload is a pure function of two things: the point identity
(scenario + canonical params + derived seed, hashed by
:meth:`~repro.runner.campaign.ScenarioPoint.digest`) and the behaviour
of the simulation source itself.  The cache therefore keys every entry
on the point digest and stores alongside it a *source fingerprint* — a
hash over every ``.py`` file of the ``repro`` package except
``devtools`` (tooling cannot change simulation results).  A lookup
hits only when both match, so editing any simulation module invalidates
every cached point at once while re-running an unchanged tree replays
entirely from disk.  Same idea as the analyzer's incremental cache
(:mod:`repro.devtools.analyze.cache`), applied to results instead of
parse summaries.

Writes are atomic (temp file + ``os.replace``) so concurrent campaign
runs sharing one cache file can never observe a torn payload.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.devtools.walker import iter_python_files

__all__ = [
    "DEFAULT_CACHE_PATH",
    "RUNNER_VERSION",
    "ResultCache",
    "atomic_write_text",
    "source_fingerprint",
]

#: Bump on any change to the result payload schema or point hashing.
RUNNER_VERSION = "1"

DEFAULT_CACHE_PATH = ".urllc5g-bench-cache.json"

#: Top-level ``repro`` subpackages whose content cannot affect
#: simulation results (static-analysis tooling only).
_FINGERPRINT_EXCLUDED = ("devtools",)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` with no partially-written window.

    The payload lands in a sibling temp file first and is moved into
    place with ``os.replace``, which is atomic on POSIX and Windows —
    a reader (or a parallel writer) sees either the old file or the
    new one, never an interleaving.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent,
        prefix=f".{path.name}.", suffix=".tmp", delete=False)
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        os.unlink(handle.name)
        raise


def source_fingerprint(roots: Iterable[str | Path] | None = None
                       ) -> str:
    """Hash of the source files campaign results depend on.

    Defaults to the installed ``repro`` package minus ``devtools``.
    The fingerprint covers relative paths and file contents, so both
    edits and renames invalidate cached results.
    """
    excluded: tuple[str, ...] = ()
    if roots is None:
        roots = [Path(__file__).resolve().parents[1]]
        excluded = _FINGERPRINT_EXCLUDED
    digest = hashlib.sha256()
    seen: set[Path] = set()
    for root in roots:
        root = Path(root)
        base = root if root.is_dir() else root.parent
        for path in iter_python_files([root]):
            relative = path.relative_to(base)
            if relative.parts and relative.parts[0] in excluded:
                continue
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            digest.update(str(relative).encode("utf-8"))
            digest.update(b"\0")
            digest.update(hashlib.sha256(path.read_bytes()).digest())
    return digest.hexdigest()


class ResultCache:
    """Content-addressed store of per-point result payloads."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.entries: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        #: Human-readable notes about anomalies met while loading (a
        #: quarantined corrupt file, ...), surfaced in bench documents.
        self.warnings: list[str] = []
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return  # no cache yet: the normal first-run case
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not a JSON object")
            if payload.get("runner_version") != RUNNER_VERSION:
                # A valid file from another runner version is stale, not
                # corrupt: start fresh (it will be overwritten).  Warn
                # loudly, though — on a dispatched fleet a version
                # mismatch means some host is running different code,
                # which would otherwise only show up as a mysteriously
                # cold cache (the quarantine path already surfaces the
                # corrupt-file case the same way).
                self.warnings.append(
                    f"result cache {self.path} was written by runner "
                    f"version {payload.get('runner_version')!r} "
                    f"(current {RUNNER_VERSION!r}); treating every "
                    "entry as stale — check for mixed code versions "
                    "if this host is part of a dispatched campaign")
                return
            entries = payload.get("entries")
            if not isinstance(entries, dict):
                raise ValueError("cache 'entries' is not an object")
            for digest, entry in entries.items():
                if (not isinstance(digest, str)
                        or not isinstance(entry, dict)
                        or not isinstance(entry.get("fingerprint"), str)
                        or not isinstance(entry.get("result"), dict)):
                    raise ValueError(
                        f"malformed cache entry for {digest!r}")
        except (ValueError, UnicodeDecodeError) as exc:
            self._quarantine(raw, exc)
            return
        self.entries = entries

    def _quarantine(self, raw: bytes, exc: Exception) -> None:
        """Move a corrupt/truncated cache file aside and start fresh.

        The file is renamed to ``<path>.corrupt-<digest>`` (content
        hash, so repeated runs against the same corpse do not pile up
        copies) rather than deleted: the evidence stays inspectable and
        the next save writes a clean file in its place.
        """
        content_digest = hashlib.sha256(raw).hexdigest()[:12]
        quarantine = self.path.with_name(
            f"{self.path.name}.corrupt-{content_digest}")
        try:
            os.replace(self.path, quarantine)
        except OSError:
            quarantine = self.path  # rename failed: leave it in place
        self.warnings.append(
            f"result cache {self.path} was corrupt ({exc}); quarantined "
            f"to {quarantine.name} and starting fresh")

    def lookup(self, point_digest: str,
               fingerprint: str) -> dict[str, Any] | None:
        """The stored payload for a point, iff the source still matches."""
        entry = self.entries.get(point_digest)
        if entry is None or entry.get("fingerprint") != fingerprint:
            self.misses += 1
            return None
        result = entry.get("result")
        if not isinstance(result, dict):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, point_digest: str, fingerprint: str,
              result: Mapping[str, Any]) -> None:
        """Record one freshly computed point payload."""
        self.entries[point_digest] = {"fingerprint": fingerprint,
                                      "result": dict(result)}
        self._dirty = True

    def save(self) -> None:
        """Persist atomically (no-op when nothing changed)."""
        if not self._dirty:
            return
        payload = {"runner_version": RUNNER_VERSION,
                   "entries": self.entries}
        atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        self._dirty = False
