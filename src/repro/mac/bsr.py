"""Buffer Status Reporting (TS 38.321 §6.1.3.1).

With grant-based access the scheduler does not know how much data a UE
holds; the UE reports its buffer occupancy in quantised *BSR levels*
and the scheduler sizes grants accordingly.  Over-reporting wastes
uplink capacity, under-reporting forces extra SR cycles — a second,
quieter protocol-latency source on top of the SR/grant handshake.

The table below is the 5-bit short-BSR quantisation (32 levels,
exponentially spaced as in TS 38.321 table 6.1.3.1-1); level k means
"buffer ≤ table[k] bytes", with the top level unbounded.
"""

from __future__ import annotations

import bisect

import numpy as np

__all__ = [
    "BSR_TABLE_BYTES",
    "TOP_LEVEL_BYTES",
    "bsr_index",
    "reported_bytes",
    "quantize",
    "quantize_batch",
]

#: Upper edge (bytes) of each 5-bit BSR level (TS 38.321 table
#: 6.1.3.1-1).  Level 0 = empty buffer; level 31 = above the table.
BSR_TABLE_BYTES: tuple[int, ...] = (
    0, 10, 14, 20, 28, 38, 53, 74, 102, 142, 198, 276, 384, 535, 745,
    1038, 1446, 2014, 2806, 3909, 5446, 7587, 10570, 14726, 20516,
    28581, 39818, 55474, 77284, 107669, 150000, 150000,
)

#: Reported size of the unbounded top level (bytes) — the scheduler
#: must assume at least this much.
TOP_LEVEL_BYTES: int = 150_000


def bsr_index(buffer_bytes: int) -> int:
    """Smallest BSR level whose upper edge covers ``buffer_bytes``."""
    if buffer_bytes < 0:
        raise ValueError(f"buffer must be >= 0, got {buffer_bytes}")
    if buffer_bytes == 0:
        return 0
    index = bisect.bisect_left(BSR_TABLE_BYTES, buffer_bytes, lo=1, hi=31)
    return index


def reported_bytes(index: int) -> int:
    """Bytes the scheduler should assume for a report at ``index``.

    The level's *upper* edge: the grant must cover the whole reported
    range or the UE needs another cycle.
    """
    if not 0 <= index <= 31:
        raise ValueError(f"BSR index must be in 0..31, got {index}")
    if index >= 30:
        return TOP_LEVEL_BYTES
    return BSR_TABLE_BYTES[index]


def quantize(buffer_bytes: int) -> int:
    """Round a buffer size up through the BSR quantisation — the bytes
    the scheduler will grant for it."""
    return reported_bytes(bsr_index(buffer_bytes))


#: The table as an array, sliced to the searchable levels 1..30 (the
#: same ``lo=1, hi=31`` bounds :func:`bsr_index` bisects within).
_TABLE_ARR = np.asarray(BSR_TABLE_BYTES[1:31], dtype=np.int64)
_REPORTED_ARR = np.asarray(
    [reported_bytes(i) for i in range(32)], dtype=np.int64)


def quantize_batch(buffer_bytes: np.ndarray) -> np.ndarray:
    """Population-level :func:`quantize`: one vectorized pass over a
    whole array of buffer sizes, elementwise equal to the scalar path
    (pinned by ``tests/mac/test_bsr.py``)."""
    amounts = np.asarray(buffer_bytes, dtype=np.int64)
    if amounts.size and int(amounts.min()) < 0:
        raise ValueError("buffer sizes must be >= 0")
    index = np.searchsorted(_TABLE_ARR, amounts, side="left") + 1
    index = np.where(amounts == 0, 0, index)
    return _REPORTED_ARR[index]
