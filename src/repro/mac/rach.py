"""Random access (RACH): the price of not being connected.

The paper's whole latency analysis assumes a connected UE with
configured resources.  A UE arriving from IDLE/INACTIVE must first run
random access, which adds four over-the-air steps (TS 38.321):

1. **Msg1** — preamble on the next PRACH occasion (occasions recur with
   a configured period, typically 10 ms);
2. **Msg2** — random-access response inside the gNB's RAR window;
3. **Msg3** — the UE's scheduled PUSCH transmission;
4. **Msg4** — contention resolution on DL.

Release 16's **2-step RACH** folds 1+3 into MsgA and 2+4 into MsgB,
roughly halving the handshake.  Either way the procedure costs many
milliseconds — orders of magnitude over the URLLC budget — so URLLC
traffic must come from already-connected, pre-configured UEs; the
extension benchmark quantifies this.

Contention: UEs draw from 64 preambles; two contenders picking the
same one collide, fail contention resolution, back off and retry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mac.opportunities import OpportunityTimeline, PeriodicInstants
from repro.mac.scheme import DuplexingScheme
from repro.phy.numerology import SYMBOLS_PER_SLOT
from repro.phy.timebase import tc_from_ms

__all__ = [
    "N_PREAMBLES",
    "MAX_ATTEMPTS",
    "RachOutcome",
    "RachProcedure",
]

#: Contention preambles per PRACH occasion (64 minus reserved).
N_PREAMBLES: int = 54

#: Maximum preamble transmissions before access failure.
MAX_ATTEMPTS: int = 10


@dataclass(frozen=True)
class RachOutcome:
    """One completed random-access procedure."""

    arrival_tc: int
    msg1_tc: int          #: preamble transmission (last attempt)
    msg2_tc: int          #: RAR received
    msg3_tc: int          #: scheduled transmission complete
    msg4_tc: int          #: contention resolved — UE connected
    attempts: int         #: preamble transmissions used

    @property
    def access_delay_tc(self) -> int:
        return self.msg4_tc - self.arrival_tc


class RachProcedure:
    """Timing model of 4-step (or 2-step) random access."""

    def __init__(self, scheme: DuplexingScheme,
                 prach_period_ms: float = 10.0,
                 gnb_processing_slots: int = 3,
                 ue_processing_slots: int = 2,
                 two_step: bool = False):
        if prach_period_ms <= 0:
            raise ValueError("PRACH period must be positive")
        if gnb_processing_slots < 0 or ue_processing_slots < 0:
            raise ValueError("processing slots must be >= 0")
        self.scheme = scheme
        self.two_step = two_step
        self._ul: OpportunityTimeline = scheme.ul_timeline()
        self._dl: OpportunityTimeline = scheme.dl_timeline()
        self._control: PeriodicInstants = scheme.dl_control_instants()
        slot_tc = scheme.numerology.slot_duration_tc
        self.gnb_processing_tc = gnb_processing_slots * slot_tc
        self.ue_processing_tc = ue_processing_slots * slot_tc
        self.symbol_tc = slot_tc // SYMBOLS_PER_SLOT
        # PRACH occasions: a periodic grid constrained to UL windows.
        # As an operator would via prach-ConfigurationIndex, phase the
        # grid onto the scheme's first UL opportunity.
        self.prach_period_tc = tc_from_ms(prach_period_ms)
        self.prach_offset_tc = (
            self._ul.first_start_at_or_after(0).start
            % self.prach_period_tc)

    # ------------------------------------------------------------------
    def next_prach_occasion(self, time: int) -> int:
        """First PRACH occasion at or after ``time``.

        Occasions tick every ``prach_period_tc`` and must begin inside
        a UL window with room for the preamble (~2 symbols)."""
        need = 2 * self.symbol_tc
        candidate = time
        for _ in range(10_000):
            remainder = ((candidate - self.prach_offset_tc)
                         % self.prach_period_tc)
            if remainder:
                candidate += self.prach_period_tc - remainder
            window = self._ul.window_at(candidate)
            if window is not None and window.end - candidate >= need:
                return candidate
            window = self._ul.first_start_at_or_after(candidate + 1)
            candidate = window.start
        raise LookupError("no PRACH occasion found")

    # ------------------------------------------------------------------
    def _one_attempt(self, start: int) -> tuple[int, int, int, int]:
        """Timing of a single contention round from ``start``."""
        msg1 = self.next_prach_occasion(start)
        preamble_end = msg1 + 2 * self.symbol_tc
        # Msg2 rides DL control after gNB detection/processing.
        msg2 = self._control.next_at_or_after(
            preamble_end + self.gnb_processing_tc)
        if self.two_step:
            # MsgB already resolves contention.
            return msg1, msg2, msg2, msg2
        # Msg3 on the first UL window the UE can make.
        msg3_window = self._ul.first_start_at_or_after(
            msg2 + self.ue_processing_tc)
        msg3 = msg3_window.end
        # Msg4 on DL after gNB processing.
        msg4_window = self._dl.first_start_after(
            msg3 + self.gnb_processing_tc)
        msg4 = msg4_window.end
        return msg1, msg2, msg3, msg4

    def access(self, arrival_tc: int, rng: np.random.Generator,
               n_contenders: int = 1) -> RachOutcome:
        """Run the procedure, retrying on preamble collisions.

        ``n_contenders`` UEs attempt in the same occasion; a collision
        happens when another contender picks our preamble.
        """
        if n_contenders < 1:
            raise ValueError("need at least one contender")
        collision_p = 1.0 - (1.0 - 1.0 / N_PREAMBLES) ** (n_contenders - 1)
        start = arrival_tc
        for attempt in range(1, MAX_ATTEMPTS + 1):
            msg1, msg2, msg3, msg4 = self._one_attempt(start)
            if rng.random() >= collision_p:
                return RachOutcome(arrival_tc, msg1, msg2, msg3, msg4,
                                   attempt)
            # Collision: uniform backoff (up to 20 ms) then retry.
            backoff = int(rng.integers(0, tc_from_ms(20)))
            start = msg4 + backoff
        raise LookupError(
            f"random access failed after {MAX_ATTEMPTS} attempts")

    def sample_access_delays_us(self, n: int, rng: np.random.Generator,
                                n_contenders: int = 1,
                                horizon_tc: int | None = None
                                ) -> list[float]:
        """Access delays for ``n`` arrivals uniform over one horizon."""
        from repro.phy.timebase import us_from_tc
        if n <= 0:
            raise ValueError("n must be positive")
        horizon = horizon_tc or 10 * self.prach_period_tc
        delays = []
        for _ in range(n):
            arrival = int(rng.integers(0, horizon))
            outcome = self.access(arrival, rng, n_contenders)
            delays.append(us_from_tc(outcome.access_delay_tc))
        return delays
