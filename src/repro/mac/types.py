"""Shared MAC-layer vocabulary: link directions and symbol roles."""

from __future__ import annotations

from enum import Enum

__all__ = ["Direction", "SymbolRole", "AccessMode"]


class Direction(Enum):
    """Transmission direction of a resource."""

    DL = "DL"
    UL = "UL"

    # Identity hash instead of Enum's default hash-of-value: members are
    # singletons with identity equality, and these keys are hashed in
    # the per-symbol TDD loops.  Iteration order of dicts keyed on them
    # is insertion order either way, so determinism is unaffected.
    __hash__ = object.__hash__

    @property
    def opposite(self) -> "Direction":
        return Direction.UL if self is Direction.DL else Direction.DL


class SymbolRole(Enum):
    """Characterisation of one OFDM symbol in a duplexing pattern.

    ``FLEXIBLE`` symbols are the guard region of mixed slots — required
    when switching from DL to UL "due to synchronization considerations"
    (paper §2) — or symbols a Slot Format leaves dynamically assignable.
    """

    DL = "D"
    UL = "U"
    FLEXIBLE = "F"

    __hash__ = object.__hash__  # identity hash; see Direction

    @classmethod
    def from_char(cls, char: str) -> "SymbolRole":
        """Parse the single-character form used by TS 38.213 tables."""
        mapping = {"D": cls.DL, "U": cls.UL, "F": cls.FLEXIBLE}
        try:
            return mapping[char.upper()]
        except KeyError:
            raise ValueError(
                f"symbol role must be one of D/U/F, got {char!r}") from None


class AccessMode(Enum):
    """Uplink access mechanism (paper §4-§5)."""

    GRANT_BASED = "grant-based"
    GRANT_FREE = "grant-free"

    __hash__ = object.__hash__  # identity hash; see Direction
