"""TDD Common Configuration (TS 38.331 ``TDD-UL-DL-ConfigCommon``).

A period is composed of one or two consecutive *patterns*.  A pattern is
``dl_slots`` full downlink slots, then ``dl_symbols`` downlink symbols at
the start of the following slot, a flexible (guard) region, then
``ul_symbols`` uplink symbols at the end of the slot preceding the final
``ul_slots`` full uplink slots (paper §2, Fig 1a).

The standard restricts the pattern period to
{0.5, 0.625, 1, 1.25, 2, 2.5, 5, 10} ms and the period must contain an
integer number of slots for the configured numerology.

Lowering to :class:`~repro.mac.opportunities.OpportunityTimeline` is
exact: because the 16κ cyclic-prefix extension recurs every half
subframe, a pattern whose period is not a multiple of 0.5 ms is only
strictly periodic over ``lcm(period, 0.5 ms)``; the timelines are built
over that hyperperiod.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
)
from repro.mac.types import SymbolRole
from repro.phy.frame import FrameStructure
from repro.phy.numerology import SYMBOLS_PER_SLOT, Numerology
from repro.phy.timebase import TC_PER_MS

__all__ = [
    "ALLOWED_PERIODS_MS",
    "TddPattern",
    "slot_letter",
    "TddCommonConfig",
]

#: Pattern periods permitted by TS 38.331 (paper §2), in milliseconds.
ALLOWED_PERIODS_MS: tuple[Fraction, ...] = tuple(
    Fraction(p) for p in ("0.5", "0.625", "1", "1.25", "2", "2.5", "5", "10")
)

#: Tc ticks in half a subframe (the CP-extension recurrence).
_HALF_SUBFRAME_TC = TC_PER_MS // 2


@dataclass(frozen=True)
class TddPattern:
    """One TDD UL/DL pattern."""

    period_ms: Fraction
    dl_slots: int
    dl_symbols: int = 0
    ul_symbols: int = 0
    ul_slots: int = 0

    def __post_init__(self) -> None:
        period = Fraction(self.period_ms)
        object.__setattr__(self, "period_ms", period)
        if period not in ALLOWED_PERIODS_MS:
            allowed = ", ".join(str(p) for p in ALLOWED_PERIODS_MS)
            raise ValueError(
                f"pattern period must be one of {{{allowed}}} ms, "
                f"got {period}")
        for name in ("dl_slots", "dl_symbols", "ul_symbols", "ul_slots"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("dl_symbols", "ul_symbols"):
            if getattr(self, name) >= SYMBOLS_PER_SLOT:
                raise ValueError(
                    f"{name} must be < {SYMBOLS_PER_SLOT}; use a full slot")

    # ------------------------------------------------------------------
    def slots_in_period(self, numerology: Numerology) -> int:
        """Slot count of the period; errors if not an integer."""
        slots = self.period_ms * numerology.slots_per_subframe
        if slots.denominator != 1:
            raise ValueError(
                f"period {self.period_ms} ms does not hold an integer "
                f"number of µ={numerology.mu} slots")
        return int(slots)

    def period_tc(self) -> int:
        """Pattern period in Tc (always exact for the allowed set)."""
        ticks = self.period_ms * TC_PER_MS
        assert ticks.denominator == 1
        return int(ticks)

    # ------------------------------------------------------------------
    def symbol_roles(self, numerology: Numerology
                     ) -> list[list[SymbolRole]]:
        """Per-slot, per-symbol characterisation of one period."""
        slots = self.slots_in_period(numerology)
        if self.dl_slots + self.ul_slots > slots:
            raise ValueError(
                f"{self.dl_slots} DL + {self.ul_slots} UL slots exceed "
                f"the {slots}-slot period")
        partial_needed = int(self.dl_symbols > 0) + int(self.ul_symbols > 0)
        free_slots = slots - self.dl_slots - self.ul_slots
        if partial_needed > 0 and free_slots == 0:
            raise ValueError("no slot left for the partial DL/UL symbols")
        roles = [[SymbolRole.FLEXIBLE] * SYMBOLS_PER_SLOT
                 for _ in range(slots)]
        for slot in range(self.dl_slots):
            roles[slot] = [SymbolRole.DL] * SYMBOLS_PER_SLOT
        for slot in range(slots - self.ul_slots, slots):
            roles[slot] = [SymbolRole.UL] * SYMBOLS_PER_SLOT
        if self.dl_symbols:
            slot = self.dl_slots
            for symbol in range(self.dl_symbols):
                roles[slot][symbol] = SymbolRole.DL
        if self.ul_symbols:
            slot = slots - self.ul_slots - 1
            for symbol in range(SYMBOLS_PER_SLOT - self.ul_symbols,
                                SYMBOLS_PER_SLOT):
                if roles[slot][symbol] is not SymbolRole.FLEXIBLE:
                    raise ValueError(
                        "DL and UL partial symbols overlap in the "
                        "mixed slot")
                roles[slot][symbol] = SymbolRole.UL
        return roles


def slot_letter(symbols: Sequence[SymbolRole]) -> str:
    """Classify a slot as D, U, M (mixed) or F (all flexible)."""
    kinds = set(symbols)
    if kinds == {SymbolRole.DL}:
        return "D"
    if kinds == {SymbolRole.UL}:
        return "U"
    if kinds == {SymbolRole.FLEXIBLE}:
        return "F"
    return "M"


class TddCommonConfig:
    """One or two TDD patterns lowered to opportunity timelines.

    This is the library's concrete model of the configuration type the
    paper analyses most closely; see :mod:`repro.mac.catalog` for the
    named minimal instances (DU, DM, MU, DDDU...).
    """

    def __init__(self, numerology: Numerology,
                 patterns: Sequence[TddPattern],
                 name: str = ""):
        if not 1 <= len(patterns) <= 2:
            raise ValueError("a Common Configuration has 1 or 2 patterns")
        self.numerology = numerology
        self.patterns = tuple(patterns)
        self.frame = FrameStructure(numerology)
        combined_tc = sum(p.period_tc() for p in self.patterns)
        if 20 * TC_PER_MS % combined_tc != 0:
            raise ValueError(
                "combined pattern period must divide 20 ms "
                f"(got {combined_tc / TC_PER_MS} ms)")
        self._combined_period_tc = combined_tc
        # Exact periodicity requires alignment with the 0.5 ms CP cycle.
        self.period_tc = math.lcm(combined_tc, _HALF_SUBFRAME_TC)
        self._roles = self._concatenated_roles()
        self.name = name or "".join(self.slot_letters())
        self._dl_windows = self._windows_for(SymbolRole.DL)
        self._ul_windows = self._windows_for(SymbolRole.UL)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _concatenated_roles(self) -> list[list[SymbolRole]]:
        """Slot roles across the full hyperperiod."""
        one_cycle: list[list[SymbolRole]] = []
        for pattern in self.patterns:
            one_cycle.extend(pattern.symbol_roles(self.numerology))
        repeats = self.period_tc // self._combined_period_tc
        return one_cycle * repeats

    def _windows_for(self, role: SymbolRole) -> tuple[Window, ...]:
        """Per-slot contiguous runs of ``role``, as Tc windows."""
        windows: list[Window] = []
        for slot_index, slot_roles in enumerate(self._roles):
            run_start: int | None = None
            for symbol, symbol_role in enumerate(slot_roles):
                if symbol_role is role:
                    if run_start is None:
                        run_start = symbol
                elif run_start is not None:
                    windows.append(self._symbol_span(
                        slot_index, run_start, symbol))
                    run_start = None
            if run_start is not None:
                windows.append(self._symbol_span(
                    slot_index, run_start, SYMBOLS_PER_SLOT))
        return tuple(windows)

    def _symbol_span(self, slot_index: int, first_symbol: int,
                     end_symbol: int) -> Window:
        start = self.frame.symbol_start(slot_index, first_symbol)
        end = (self.frame.slot_end(slot_index)
               if end_symbol == SYMBOLS_PER_SLOT
               else self.frame.symbol_start(slot_index, end_symbol))
        return Window(start, end)

    # ------------------------------------------------------------------
    # DuplexingScheme interface
    # ------------------------------------------------------------------
    @property
    def slots_per_period(self) -> int:
        return len(self._roles)

    def dl_timeline(self) -> OpportunityTimeline:
        """Downlink transmission windows (one per slot's DL region)."""
        return OpportunityTimeline(self.period_tc, self._dl_windows)

    def ul_timeline(self) -> OpportunityTimeline:
        """Uplink transmission windows (one per slot's UL region)."""
        return OpportunityTimeline(self.period_tc, self._ul_windows)

    def dl_control_instants(self) -> PeriodicInstants:
        """Instants at which DL control (and thus UL grants) can be sent:
        the start of every DL window."""
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._dl_windows))

    def scheduling_instants(self) -> PeriodicInstants:
        """gNB scheduling occasions: once per slot (paper §2)."""
        return PeriodicInstants(
            self.period_tc,
            (self.frame.slot_start(s) for s in range(len(self._roles))))

    # ------------------------------------------------------------------
    # descriptions
    # ------------------------------------------------------------------
    def slot_letters(self) -> list[str]:
        """D/U/M/F letter per slot over the *configured* period (not the
        hyperperiod), e.g. ``['D', 'D', 'D', 'U']``."""
        one_cycle_slots = sum(
            p.slots_in_period(self.numerology) for p in self.patterns)
        return [slot_letter(r) for r in self._roles[:one_cycle_slots]]

    def slot_roles(self) -> list[list[SymbolRole]]:
        """Symbol roles per slot across the hyperperiod (copy)."""
        return [list(r) for r in self._roles]

    def describe(self) -> str:
        """Human-readable one-line summary."""
        letters = "".join(self.slot_letters())
        period = sum(p.period_ms for p in self.patterns)
        return (f"TDD Common Configuration {letters} "
                f"(period {period} ms, {self.numerology})")

    def __repr__(self) -> str:
        return f"TddCommonConfig({self.name!r}, µ={self.numerology.mu})"
