"""MAC-layer substrate: duplexing configurations and opportunity timelines."""

from repro.mac.catalog import (
    fdd,
    from_letters,
    minimal_common_configurations,
    minimal_dm,
    minimal_du,
    minimal_mini_slot,
    minimal_mu,
    testbed_dddu,
)
from repro.mac.bsr import bsr_index, quantize, reported_bytes
from repro.mac.fdd import FddConfig
from repro.mac.harq import (
    HarqFeedbackModel,
    HarqProcessPool,
    HarqTiming,
)
from repro.mac.minislot import MiniSlotConfig
from repro.mac.pdcch import PdcchCounters, PdcchModel
from repro.mac.rach import RachOutcome, RachProcedure
from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
)
from repro.mac.scheme import DuplexingScheme
from repro.mac.slot_format import SLOT_FORMATS, SlotFormatConfig
from repro.mac.tdd import TddCommonConfig, TddPattern
from repro.mac.types import AccessMode, Direction, SymbolRole

__all__ = [
    "fdd",
    "from_letters",
    "minimal_common_configurations",
    "minimal_dm",
    "minimal_du",
    "minimal_mini_slot",
    "minimal_mu",
    "testbed_dddu",
    "bsr_index",
    "quantize",
    "reported_bytes",
    "FddConfig",
    "HarqFeedbackModel",
    "HarqProcessPool",
    "HarqTiming",
    "MiniSlotConfig",
    "PdcchCounters",
    "PdcchModel",
    "RachOutcome",
    "RachProcedure",
    "OpportunityTimeline",
    "PeriodicInstants",
    "Window",
    "DuplexingScheme",
    "SLOT_FORMATS",
    "SlotFormatConfig",
    "TddCommonConfig",
    "TddPattern",
    "AccessMode",
    "Direction",
    "SymbolRole",
]
