"""Periodic transmission-opportunity timelines.

Every duplexing scheme in the library (TDD Common Configuration,
Mini-Slot, Slot Format, FDD) is lowered to two periodic sets of
*windows* — half-open Tc intervals ``[start, end)`` in which the medium
is available for DL or UL transmission — plus periodic *instants* for
control signalling and scheduling.  The worst-case latency analysis
(paper Fig 4 / Table 1) and the discrete-event MAC scheduler both run on
this single abstraction, which guarantees that the analytical and
simulated models agree on what the protocol permits.

Three completion rules capture how 5G actually grants access:

- **slot-aligned, strict** (DL data): control information is emitted once
  per transmission window, at its start; data arriving at or after a
  window's start has missed that window ("the specific slot is already
  allocated for other DL data", §5) and completes at the end of the next
  window that starts strictly later.
- **slot-aligned** (granted UL data): the grant designates a window; the
  first window starting at or after the grant becomes usable.
- **joining** (grant-free UL, scheduling requests): the UE owns
  pre-allocated resources across the whole UL region and can start on
  any symbol with enough remaining room, completing at the window end.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

import numpy as np

__all__ = ["Window", "WindowIndex", "OpportunityTimeline",
           "PeriodicInstants"]


@dataclass(frozen=True, order=True)
class Window:
    """Half-open interval ``[start, end)`` in Tc ticks."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(
                f"window must satisfy 0 <= start < end, "
                f"got [{self.start}, {self.end})")

    @property
    def duration(self) -> int:
        return self.end - self.start

    def contains(self, time: int) -> bool:
        return self.start <= time < self.end

    def shifted(self, offset: int) -> "Window":
        return Window(self.start + offset, self.end + offset)


def _validated(windows: Iterable[Window], period: int) -> tuple[Window, ...]:
    ordered = tuple(sorted(windows))
    previous_end = 0
    for window in ordered:
        if window.end > period:
            raise ValueError(
                f"window {window} exceeds the period ({period})")
        if window.start < previous_end:
            raise ValueError(f"windows overlap near {window}")
        previous_end = window.end
    return ordered


class OpportunityTimeline:
    """Periodic windows with absolute-time queries.

    The window list describes one period; the timeline repeats it
    forever.  All queries take and return absolute Tc ticks.
    """

    def __init__(self, period_tc: int, windows: Iterable[Window]):
        if period_tc <= 0:
            raise ValueError(f"period must be positive, got {period_tc}")
        self.period_tc = int(period_tc)
        self.windows = _validated(windows, self.period_tc)
        self._index: "WindowIndex | None" = None

    def index(self) -> "WindowIndex":
        """Cached :class:`WindowIndex` over this (immutable) timeline."""
        if self._index is None:
            self._index = WindowIndex(self)
        return self._index

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def windows_from(self, time: int) -> Iterator[Window]:
        """Absolute windows whose end is after ``time``, in order."""
        if time < 0:
            time = 0
        if not self.windows:
            return
        cycle = time // self.period_tc
        while True:
            offset = cycle * self.period_tc
            for window in self.windows:
                shifted = window.shifted(offset)
                if shifted.end > time:
                    yield shifted
            cycle += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        return not self.windows

    def window_at(self, time: int) -> Optional[Window]:
        """The absolute window containing ``time``, if any."""
        for window in self.windows_from(time):
            if window.contains(time):
                return window
            if window.start > time:
                return None
        return None

    def first_start_at_or_after(self, time: int) -> Window:
        """First window whose start is >= ``time``."""
        for window in self.windows_from(time):
            if window.start >= time:
                return window
        raise LookupError("timeline has no windows")

    def first_start_after(self, time: int) -> Window:
        """First window whose start is strictly after ``time``."""
        return self.first_start_at_or_after(time + 1)

    # ------------------------------------------------------------------
    # completion rules (see module docstring)
    # ------------------------------------------------------------------
    def _usable_windows(self, time: int,
                        min_duration: int) -> Iterator[Window]:
        """Windows from ``time``, bounded to one full extra period.

        A requirement no window of the period can satisfy will never be
        satisfiable later either (the timeline repeats), so scanning
        past one period of candidates means the demand is impossible —
        raise instead of looping forever.
        """
        scanned = 0
        limit = max(1, len(self.windows)) + 1
        for window in self.windows_from(time):
            yield window
            scanned += 1
            if scanned > limit:
                break
        raise LookupError(
            f"no window of the timeline can fit {min_duration} ticks")

    def completion_aligned_strict(self, time: int,
                                  min_duration: int = 1) -> int:
        """End of the first window starting strictly after ``time``
        with at least ``min_duration`` ticks (DL-data rule)."""
        for window in self._usable_windows(time + 1, min_duration):
            if window.start > time and window.duration >= min_duration:
                return window.end
        raise LookupError("timeline has no usable windows")

    def completion_aligned(self, time: int, min_duration: int = 1) -> int:
        """End of the first window starting at or after ``time`` with at
        least ``min_duration`` ticks (granted-UL-data rule)."""
        for window in self._usable_windows(time, min_duration):
            if window.start >= time and window.duration >= min_duration:
                return window.end
        raise LookupError("timeline has no usable windows")

    def completion_joining(self, time: int, min_duration: int = 1) -> int:
        """End of the first window with ``min_duration`` ticks remaining
        at or after ``time`` (grant-free rule: mid-window entry allowed)."""
        for window in self._usable_windows(time, min_duration):
            entry = max(time, window.start)
            if window.end - entry >= min_duration:
                return window.end
        raise LookupError("timeline has no usable windows")

    def earliest_entry_joining(self, time: int,
                               min_duration: int = 1) -> int:
        """Earliest instant >= ``time`` at which a transmission of
        ``min_duration`` ticks can *start* under the joining rule."""
        for window in self._usable_windows(time, min_duration):
            entry = max(time, window.start)
            if window.end - entry >= min_duration:
                return entry
        raise LookupError("timeline has no usable windows")

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def duty_cycle(self) -> float:
        """Fraction of the period covered by windows."""
        covered = sum(w.duration for w in self.windows)
        return covered / self.period_tc

    def boundaries(self) -> tuple[int, ...]:
        """All window starts and ends within one period, sorted."""
        points: set[int] = set()
        for window in self.windows:
            points.add(window.start)
            points.add(window.end)
        return tuple(sorted(points))

    def __repr__(self) -> str:
        spans = ", ".join(f"[{w.start},{w.end})" for w in self.windows)
        return f"OpportunityTimeline(period={self.period_tc}, {spans})"


class WindowIndex:
    """Flat integer view of a timeline for population-scale queries.

    The generator protocol of :meth:`OpportunityTimeline.windows_from`
    is exact but allocates a :class:`Window` per step — fine for one
    UE, ruinous for 100k.  This index exposes the same timeline as
    arrays plus a *global window number* ``k``: window ``k`` is base
    window ``k % n`` of cycle ``k // n``.  All queries are defined to
    agree exactly with the generator/scalar methods they shadow (pinned
    by ``tests/mac/test_opportunities.py``).
    """

    def __init__(self, timeline: "OpportunityTimeline"):
        if timeline.is_empty():
            raise ValueError("cannot index an empty timeline")
        self.period_tc = timeline.period_tc
        self.starts = tuple(w.start for w in timeline.windows)
        self.ends = tuple(w.end for w in timeline.windows)
        self.durations = tuple(w.duration for w in timeline.windows)
        self.n_windows = len(self.starts)
        self._ends_arr = np.asarray(self.ends, dtype=np.int64)
        self._starts_arr = np.asarray(self.starts, dtype=np.int64)

    def bounds(self, k: int) -> tuple[int, int]:
        """``(start, end)`` of global window ``k`` in absolute Tc."""
        cycle, base = divmod(k, self.n_windows)
        offset = cycle * self.period_tc
        return self.starts[base] + offset, self.ends[base] + offset

    def duration(self, k: int) -> int:
        return self.durations[k % self.n_windows]

    def first_ending_after(self, time: int) -> int:
        """Global number of the first window with ``end > time`` — the
        window :meth:`OpportunityTimeline.windows_from` yields first."""
        if time < 0:
            time = 0
        cycle, rem = divmod(time, self.period_tc)
        base = bisect.bisect_right(self.ends, rem)
        if base == self.n_windows:
            cycle += 1
            base = 0
        return cycle * self.n_windows + base

    def earliest_entries_joining(self, times: np.ndarray,
                                 min_duration: int = 1) -> np.ndarray:
        """Vectorized :meth:`OpportunityTimeline.earliest_entry_joining`.

        One call answers the joining-rule entry instant for a whole
        population of candidate times; elementwise equal to the scalar
        method.  Raises :class:`LookupError` when no window of the
        period fits ``min_duration`` (the scalar method's bounded-scan
        rule: a demand the period cannot satisfy never becomes
        satisfiable).
        """
        fits = [i for i, d in enumerate(self.durations)
                if d >= min_duration]
        if not fits:
            raise LookupError(
                f"no window of the timeline can fit {min_duration} ticks")
        times = np.asarray(times, dtype=np.int64)
        clipped = np.maximum(times, 0)
        cycle, rem = np.divmod(clipped, self.period_tc)
        base = np.searchsorted(self._ends_arr, rem, side="right")
        wrap = base == self.n_windows
        cycle = cycle + wrap
        base = np.where(wrap, 0, base)
        offset = cycle * self.period_tc
        start = self._starts_arr[base] + offset
        end = self._ends_arr[base] + offset
        entry = np.maximum(clipped, start)
        ok = (end - entry) >= min_duration
        if bool(np.all(ok)):
            return entry
        # First candidate too full: the next fitting window is entered
        # at its start (every later window starts after `time`).
        fit_next = np.asarray(
            [min((j for j in fits if j > i),
                 default=fits[0] + self.n_windows)
             for i in range(self.n_windows)], dtype=np.int64)
        k = cycle * self.n_windows + base
        k_next = (k - base) + fit_next[base]
        cyc2, base2 = np.divmod(k_next, self.n_windows)
        start2 = self._starts_arr[base2] + cyc2 * self.period_tc
        return np.where(ok, entry, start2)


class PeriodicInstants:
    """Periodic set of instants (control/scheduling occasions)."""

    def __init__(self, period_tc: int, instants: Iterable[int]):
        if period_tc <= 0:
            raise ValueError(f"period must be positive, got {period_tc}")
        self.period_tc = int(period_tc)
        self.instants = tuple(sorted(set(int(i) for i in instants)))
        for instant in self.instants:
            if not 0 <= instant < period_tc:
                raise ValueError(
                    f"instant {instant} outside [0, {period_tc})")

    def next_at_or_after(self, time: int) -> int:
        """First instant >= ``time`` (absolute)."""
        if not self.instants:
            raise LookupError("no instants configured")
        if time < 0:
            time = 0
        cycle, offset = divmod(time, self.period_tc)
        for instant in self.instants:
            if instant >= offset:
                return cycle * self.period_tc + instant
        return (cycle + 1) * self.period_tc + self.instants[0]

    def next_after(self, time: int) -> int:
        """First instant strictly after ``time``."""
        return self.next_at_or_after(time + 1)
