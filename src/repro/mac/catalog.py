"""Named duplexing configurations used throughout the paper.

The minimal TDD Common Configurations of §5 (0.5 ms period, 0.25 ms
slots — the only slot duration that can feasibly meet URLLC in FR1) are

- ``DU`` — one downlink slot, one uplink slot,
- ``DM`` — one downlink slot, one mixed slot (the only configuration
  satisfying both DL and grant-free UL, Table 1),
- ``MU`` — one mixed slot, one uplink slot,

plus the testbed configuration of §7: ``DDDU`` with 0.5 ms slots (µ=1)
on band n78, and the Mini-Slot / FDD alternatives of Table 1.

Mixed slots default to a 4 DL / 2 flexible (guard) / 8 UL symbol split;
the guard region is mandatory when switching DL→UL (§2).
"""

from __future__ import annotations

from fractions import Fraction

from repro.mac.fdd import FddConfig
from repro.mac.minislot import MiniSlotConfig
from repro.mac.tdd import ALLOWED_PERIODS_MS, TddCommonConfig, TddPattern
from repro.phy.numerology import Numerology

__all__ = [
    "DEFAULT_MIXED_SPLIT",
    "minimal_du",
    "minimal_dm",
    "minimal_mu",
    "testbed_dddu",
    "minimal_mini_slot",
    "fdd",
    "from_letters",
    "minimal_common_configurations",
]

#: Default mixed-slot split: DL symbols, flexible (guard), UL symbols.
DEFAULT_MIXED_SPLIT: tuple[int, int, int] = (4, 2, 8)


def _minimal_period_ms(mu: int) -> Fraction:
    """Shortest allowed pattern period holding the two-slot minimal
    configurations: 0.5 ms at µ=2 (§5), one slot-pair otherwise."""
    period = Fraction(2, 2 ** mu)
    if period not in ALLOWED_PERIODS_MS:
        allowed = ", ".join(str(p) for p in ALLOWED_PERIODS_MS)
        raise ValueError(
            f"no allowed two-slot period at µ={mu} (allowed: {allowed})")
    return period


def minimal_du(mu: int = 2) -> TddCommonConfig:
    """Minimal-period DU configuration (0.5 ms period at µ=2)."""
    pattern = TddPattern(period_ms=_minimal_period_ms(mu), dl_slots=1,
                         ul_slots=1)
    return TddCommonConfig(Numerology(mu), [pattern], name="DU")


def minimal_dm(mu: int = 2,
               mixed_split: tuple[int, int, int] = DEFAULT_MIXED_SPLIT
               ) -> TddCommonConfig:
    """Minimal-period DM configuration — the paper's feasible choice."""
    dl_symbols, guard, ul_symbols = _checked_split(mixed_split)
    pattern = TddPattern(period_ms=_minimal_period_ms(mu), dl_slots=1,
                         dl_symbols=dl_symbols, ul_symbols=ul_symbols)
    return TddCommonConfig(Numerology(mu), [pattern], name="DM")


def minimal_mu(mu: int = 2,
               mixed_split: tuple[int, int, int] = DEFAULT_MIXED_SPLIT
               ) -> TddCommonConfig:
    """Minimal-period MU configuration."""
    dl_symbols, guard, ul_symbols = _checked_split(mixed_split)
    pattern = TddPattern(period_ms=_minimal_period_ms(mu), dl_slots=0,
                         dl_symbols=dl_symbols, ul_symbols=ul_symbols,
                         ul_slots=1)
    return TddCommonConfig(Numerology(mu), [pattern], name="MU")


def testbed_dddu(mu: int = 1) -> TddCommonConfig:
    """The §7 testbed configuration: DDDU, 0.5 ms slots (µ=1), 2 ms period."""
    slots = 4
    period = Fraction(slots, 2 ** mu)
    pattern = TddPattern(period_ms=period, dl_slots=3, ul_slots=1)
    return TddCommonConfig(Numerology(mu), [pattern], name="DDDU")


def minimal_mini_slot(mu: int = 2, mini_slot_symbols: int = 7
                      ) -> MiniSlotConfig:
    """Mini-Slot configuration on 0.25 ms slots (§5's candidate)."""
    return MiniSlotConfig(Numerology(mu),
                          mini_slot_symbols=mini_slot_symbols)


def fdd(mu: int = 2) -> FddConfig:
    """FDD reference configuration."""
    return FddConfig(Numerology(mu))


def from_letters(letters: str, mu: int,
                 mixed_split: tuple[int, int, int] = DEFAULT_MIXED_SPLIT
                 ) -> TddCommonConfig:
    """Build a Common Configuration from a slot-letter string.

    ``from_letters("DDDU", mu=1)`` gives the testbed pattern;
    ``from_letters("DM", mu=2)`` the minimal feasible one.  The string
    must have the shape ``D* M? U*`` (at most one mixed slot, between the
    DL and UL runs), which is all the Common Configuration grammar can
    express (§2).
    """
    if not letters:
        raise ValueError("letters must be non-empty")
    letters = letters.upper()
    if set(letters) - set("DMU"):
        raise ValueError(f"letters must be D, M or U, got {letters!r}")
    dl_slots = len(letters) - len(letters.lstrip("D"))
    ul_slots = len(letters) - len(letters.rstrip("U"))
    middle = letters[dl_slots:len(letters) - ul_slots or None]
    if middle not in ("", "M"):
        raise ValueError(
            f"{letters!r} is not expressible as a Common Configuration "
            "pattern (shape must be D*M?U*)")
    numerology = Numerology(mu)
    period = Fraction(len(letters), numerology.slots_per_subframe)
    if period not in ALLOWED_PERIODS_MS:
        raise ValueError(
            f"{letters!r} at µ={mu} implies a {period} ms period, which "
            "TS 38.331 does not allow")
    dl_symbols = ul_symbols = 0
    if middle == "M":
        dl_symbols, _, ul_symbols = _checked_split(mixed_split)
    pattern = TddPattern(period_ms=period, dl_slots=dl_slots,
                         dl_symbols=dl_symbols, ul_symbols=ul_symbols,
                         ul_slots=ul_slots)
    return TddCommonConfig(numerology, [pattern], name=letters)


def minimal_common_configurations(mu: int = 2) -> list[TddCommonConfig]:
    """The three minimal TDD Common Configurations of §5 / Table 1."""
    return [minimal_du(mu), minimal_dm(mu), minimal_mu(mu)]


def _checked_split(split: tuple[int, int, int]) -> tuple[int, int, int]:
    dl_symbols, guard, ul_symbols = split
    if dl_symbols <= 0 or ul_symbols <= 0:
        raise ValueError("mixed slot needs DL and UL symbols")
    if guard <= 0:
        raise ValueError(
            "guard symbols are mandatory when switching DL to UL (§2)")
    if dl_symbols + guard + ul_symbols != 14:
        raise ValueError(
            f"mixed-slot split must total 14 symbols, got {split}")
    return dl_symbols, guard, ul_symbols
