"""Discrete-event gNB MAC scheduler.

Implements the behaviour §3/§4 of the paper describe:

- scheduling runs **once per slot** (at the scheme's scheduling
  instants);
- DL data waits in per-UE RLC queues until pulled into a transport
  block for a DL window — the origin of the dominant ``RLC-q`` waiting
  time of Table 2;
- UL is either **grant-based** (SR → scheduler → grant on the next DL
  control occasion → PUSCH in the granted window) or **grant-free**
  (pre-allocated configured-grant resources in every UL window, whose
  unused capacity is tracked as waste — the §9 scalability cost);
- every transmission must be *prepared ahead of time*: the scheduler
  leaves ``margin_tc`` between the allocation decision and the window
  start, and the sampled PHY + radio-submission delays must fit in it,
  otherwise the radio misses the deadline and the transport block is
  lost (§4's interdependency turning latency jitter into unreliability).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

__all__ = ["UlGrant", "SchedulerCounters", "GnbMacScheduler"]

if TYPE_CHECKING:
    from repro.mac.harq import HarqProcessPool
    from repro.mac.pdcch import PdcchModel

import numpy as np

from repro.mac.opportunities import Window
from repro.mac.scheme import DuplexingScheme
from repro.phy.ofdm import Carrier
from repro.phy.transport import transport_block_size
from repro.sim.distributions import DelaySampler
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet
from repro.stack.rlc import RlcQueue
from repro.phy.timebase import tc_from_us


@dataclass(frozen=True)
class UlGrant:
    """An uplink grant issued in response to a scheduling request."""

    ue_id: int
    window: Window
    control_time: int     #: DL control occasion carrying the grant
    capacity_bytes: int


@dataclass
class SchedulerCounters:
    """Operational counters exposed for the reliability analysis."""

    dl_windows: int = 0
    dl_transport_blocks: int = 0
    dl_deadline_misses: int = 0
    grants_issued: int = 0
    grant_bytes_allocated: int = 0
    srs_received: int = 0
    cg_allocated_bytes: int = 0
    cg_used_bytes: int = 0

    def cg_waste_fraction(self) -> float:
        """Fraction of pre-allocated grant-free capacity never used —
        the price of grant-free access at scale (§9)."""
        if self.cg_allocated_bytes == 0:
            return 0.0
        return 1.0 - self.cg_used_bytes / self.cg_allocated_bytes


@dataclass
class _UeState:
    ue_id: int
    grant_free: bool
    cg_share: float
    dl_queue: RlcQueue
    priority: int = 0
    pending_srs: deque[int] = field(default_factory=deque)


class GnbMacScheduler:
    """Per-slot scheduler over a duplexing scheme's timelines."""

    def __init__(self, sim: Simulator, tracer: Tracer,
                 scheme: DuplexingScheme, carrier: Carrier,
                 rng: np.random.Generator,
                 mcs_index: int = 16,
                 margin_tc: int = 0,
                 phy_prep_delay: DelaySampler | None = None,
                 radio_submission_us: Callable[
                     [int, np.random.Generator], float] | None = None,
                 grant_air_time_tc: int = 0,
                 ue_grant_turnaround_tc: int = 0,
                 on_dl_transmission: Callable[
                     [Window, list[Packet]], None] | None = None,
                 on_ul_grant: Callable[[UlGrant], None] | None = None,
                 harq_pool: "HarqProcessPool | None" = None,
                 pdcch: "PdcchModel | None" = None,
                 dl_aggregation_level: int = 8,
                 ul_aggregation_level: int = 8,
                 rlc_fault_gate: Callable[..., bool] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.scheme = scheme
        self.carrier = carrier
        self.rng = rng
        self.mcs_index = mcs_index
        self.margin_tc = margin_tc
        self.phy_prep_delay = phy_prep_delay
        self.radio_submission_us = radio_submission_us
        self.grant_air_time_tc = grant_air_time_tc
        self.ue_grant_turnaround_tc = ue_grant_turnaround_tc
        self.on_dl_transmission = on_dl_transmission or (lambda w, p: None)
        self.on_ul_grant = on_ul_grant or (lambda g: None)
        self.harq_pool = harq_pool
        self.pdcch = pdcch
        self.dl_aggregation_level = dl_aggregation_level
        self.ul_aggregation_level = ul_aggregation_level
        # Fault-injection hook (repro.faults), handed to every per-UE
        # DL RLC queue so loss storms can target them by category.
        self.rlc_fault_gate = rlc_fault_gate

        self.counters = SchedulerCounters()
        self._capacity_memo: dict[int, int] = {}
        self._ues: dict[int, _UeState] = {}
        self._rr_order: deque[int] = deque()
        self._dl = scheme.dl_timeline()
        self._ul = scheme.ul_timeline()
        self._control = scheme.dl_control_instants()
        self._scheduling = scheme.scheduling_instants()
        self._pending_decision: object | None = None
        self._started = False

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_ue(self, ue_id: int, grant_free: bool = False,
                    cg_share: float = 1.0, priority: int = 0) -> None:
        """Attach a UE; grant-free UEs get ``cg_share`` of each UL
        window's capacity pre-allocated.

        ``priority`` orders DL allocation: lower values are served
        first (e.g. URLLC UEs at 0, eMBB at 1), round-robin within a
        class.  This is the standard mechanism for protecting URLLC
        traffic when it coexists with eMBB (§1's coexistence line of
        work).
        """
        if ue_id in self._ues:
            raise ValueError(f"UE {ue_id} already registered")
        if not 0.0 < cg_share <= 1.0:
            raise ValueError(f"cg_share must be in (0, 1], got {cg_share}")
        queue = RlcQueue(self.sim, self.tracer, f"gnb.rlcq.ue{ue_id}",
                         fault_gate=self.rlc_fault_gate)
        self._ues[ue_id] = _UeState(ue_id, grant_free, cg_share, queue,
                                    priority)
        self._rr_order.append(ue_id)

    def dl_queue(self, ue_id: int) -> RlcQueue:
        return self._ues[ue_id].dl_queue

    def ue_ids(self) -> list[int]:
        return list(self._ues)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the scheduler live; DL decisions arm on demand."""
        if self._started:
            raise RuntimeError("scheduler already started")
        self._started = True

    def notify_dl_data(self) -> None:
        """DL data was queued: arm a decision for the next DL window.

        Decisions are demand-driven so an idle cell generates no events;
        once armed, each decision re-arms for the following window while
        any DL queue is non-empty.
        """
        if self._pending_decision is not None or self._dl.is_empty():
            return
        # Target the first window the radio can still make: preparation
        # needs ``margin_tc`` of lead time (§4).
        window = self._dl.first_start_at_or_after(
            self.sim.now + self.margin_tc)
        self._arm_decision(window)

    def _arm_decision(self, window: Window) -> None:
        decision_time = max(self.sim.now, window.start - self.margin_tc)
        self._pending_decision = self.sim.schedule(
            decision_time, self._dl_decision, window)

    # ------------------------------------------------------------------
    # capacities
    # ------------------------------------------------------------------
    def window_capacity_bytes(self, window: Window) -> int:
        """Transport-block capacity of a window at the configured MCS."""
        return self.capacity_for_duration(window.duration)

    def capacity_for_duration(self, duration_tc: int) -> int:
        """Capacity of any window of ``duration_tc``, memoized.

        Capacity is a pure function of the window *duration* (and the
        fixed carrier/MCS), and a periodic timeline only has a handful
        of distinct durations — the population-scale slotted engine
        calls this once per (duration, plan) instead of re-deriving the
        transport-block size per packet.
        """
        capacity = self._capacity_memo.get(duration_tc)
        if capacity is None:
            slot_tc = self.carrier.numerology.slot_duration_tc
            n_symbols = max(1, round(14 * duration_tc / slot_tc))
            n_symbols = min(14, n_symbols)
            n_re = self.carrier.resource_elements(self.carrier.n_rb,
                                                  n_symbols)
            capacity = transport_block_size(n_re, self.mcs_index) // 8
            self._capacity_memo[duration_tc] = capacity
        return capacity

    def cg_capacity_for(self, duration_tc: int, cg_share: float) -> int:
        """Grant-free capacity of a ``cg_share`` slice of a window —
        the population-level form of :meth:`cg_capacity_bytes`, usable
        without per-UE registration."""
        return int(self.capacity_for_duration(duration_tc) * cg_share)

    def cg_capacity_bytes(self, ue_id: int, window: Window) -> int:
        """Grant-free capacity pre-allocated to a UE in a UL window."""
        state = self._ues[ue_id]
        if not state.grant_free:
            return 0
        return self.cg_capacity_for(window.duration, state.cg_share)

    # ------------------------------------------------------------------
    # DL side
    # ------------------------------------------------------------------
    def _dl_decision(self, window: Window) -> None:
        """Allocate one DL window (runs ``margin_tc`` before it)."""
        self._pending_decision = None
        self.counters.dl_windows += 1
        decision_time = self.sim.now
        # Sample the preparation path first: if the radio cannot be fed
        # in time, nothing is pulled and the window is skipped (§4's
        # interdependency — jitter converts into an extra wait).
        prep_tc = 0
        if self.phy_prep_delay is not None:
            prep_tc = tc_from_us(self.phy_prep_delay.sample(self.rng))
        radio_tc = 0
        if self.radio_submission_us is not None:
            n_samples = self.carrier.samples_per_slot()
            radio_tc = tc_from_us(
                self.radio_submission_us(n_samples, self.rng))
        ready = decision_time + prep_tc + radio_tc
        if ready > window.start:
            self.counters.dl_deadline_misses += 1
            if self.tracer.enabled:  # lazy fields: skip kwargs if disabled
                self.tracer.emit(self.sim.now, "gnb.mac",
                                 "dl_deadline_miss",
                                 window_start=window.start,
                                 late_by=ready - window.start)
        else:
            self._fill_dl_window(window, decision_time, prep_tc,
                                 radio_tc)
        if any(state.dl_queue for state in self._ues.values()):
            self._arm_decision(self._dl.first_start_after(window.start))

    def _fill_dl_window(self, window: Window, decision_time: int,
                        prep_tc: int, radio_tc: int) -> None:
        """Pull data into the window's transport block and launch it."""
        if (self.harq_pool is not None
                and any(state.dl_queue for state in self._ues.values())
                and not self.harq_pool.available()):
            # Every HARQ process awaits feedback: the window is lost
            # (throughput is bounded by processes per round trip).
            self.harq_pool.record_stall()
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "gnb.mac", "harq_stall",
                                 window_start=window.start)
            return
        remaining = self.window_capacity_bytes(window)
        allocated: list[Packet] = []
        carried_bytes = 0
        # Serve strictly by priority class (URLLC before eMBB), with
        # round-robin fairness inside each class.
        self._rr_order.rotate(-1)
        order = sorted(self._rr_order,
                       key=lambda ue: self._ues[ue].priority)
        for ue_id in order:
            if not self._ues[ue_id].dl_queue:
                continue
            # Each served UE needs a DL-assignment DCI in the window's
            # control region; a blocked DCI defers the UE entirely.
            if (self.pdcch is not None
                    and not self.pdcch.try_allocate(
                        window.start, self.dl_aggregation_level)):
                if self.tracer.enabled:
                    self.tracer.emit(self.sim.now, "gnb.mac",
                                     "pdcch_blocked", ue_id=ue_id,
                                     window_start=window.start)
                continue
            result = self._ues[ue_id].dl_queue.pull(
                remaining, allow_segmentation=True)
            remaining -= result.consumed_bytes
            carried_bytes += result.consumed_bytes
            allocated.extend(result.completed)
            if remaining <= 0:
                break
        if carried_bytes == 0:
            return
        self.counters.dl_transport_blocks += 1
        for packet in allocated:
            packet.charge(LatencySource.PROCESSING, prep_tc)
            packet.charge(LatencySource.RADIO, radio_tc)
            packet.charge(LatencySource.PROTOCOL,
                          window.end - decision_time - prep_tc - radio_tc)
            packet.stamp("gnb.mac.dl_allocated", decision_time)
        if self.tracer.enabled:
            self.tracer.emit(decision_time, "gnb.mac", "dl_allocation",
                             window_start=window.start,
                             packets=len(allocated), bytes=carried_bytes)
        if allocated:
            if self.harq_pool is not None:
                self.harq_pool.acquire()
            self.sim.schedule(window.end, self.on_dl_transmission,
                              window, allocated)

    def requeue_dl(self, packets: list[Packet]) -> None:
        """Put packets back after a failed (HARQ-nacked) DL block."""
        for packet in packets:
            self._ues[packet.ue_id].dl_queue.enqueue(packet)
        self.notify_dl_data()

    # ------------------------------------------------------------------
    # UL side (grant-based)
    # ------------------------------------------------------------------
    def receive_sr(self, ue_id: int, bsr_bytes: int = 0) -> None:
        """A decoded scheduling request reaches the MAC (Fig 3 ③).

        ``bsr_bytes`` is the UE's (BSR-quantised) buffer report; zero
        means "unknown", in which case a full window is granted.
        """
        state = self._ues[ue_id]
        state.pending_srs.append(bsr_bytes)
        self.counters.srs_received += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, "gnb.mac", "sr_received",
                             ue_id=ue_id, bsr_bytes=bsr_bytes)
        # The scheduler only acts at its next instant (§2: scheduling
        # is performed once per slot).
        instant = self._scheduling.next_after(self.sim.now)
        self.sim.schedule(instant, self._serve_srs, ue_id)

    def _serve_srs(self, ue_id: int) -> None:
        state = self._ues[ue_id]
        while state.pending_srs:
            bsr_bytes = state.pending_srs.popleft()
            grant = self._build_grant(ue_id, bsr_bytes)
            self.counters.grants_issued += 1
            self.counters.grant_bytes_allocated += grant.capacity_bytes
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, "gnb.mac", "grant_issued",
                                 ue_id=ue_id,
                                 window_start=grant.window.start,
                                 capacity=grant.capacity_bytes)
            self.sim.schedule(grant.control_time, self.on_ul_grant, grant)

    def _build_grant(self, ue_id: int, bsr_bytes: int = 0) -> UlGrant:
        control_time = self._control.next_at_or_after(self.sim.now)
        if self.pdcch is not None:
            # The grant DCI needs PDCCH room; blocked occasions push
            # the grant (and thus the data) later.
            for _ in range(200):
                if self.pdcch.try_allocate(control_time,
                                           self.ul_aggregation_level):
                    break
                control_time = self._control.next_after(control_time)
            else:
                raise LookupError("PDCCH permanently blocked")
        usable_from = (control_time + self.grant_air_time_tc
                       + self.ue_grant_turnaround_tc)
        window = self._ul.first_start_at_or_after(usable_from)
        capacity = self.window_capacity_bytes(window)
        if bsr_bytes > 0:
            capacity = min(capacity, bsr_bytes)
        return UlGrant(ue_id=ue_id, window=window,
                       control_time=control_time,
                       capacity_bytes=capacity)

    # ------------------------------------------------------------------
    # UL side (grant-free accounting)
    # ------------------------------------------------------------------
    def account_cg_window(self, ue_id: int, window: Window,
                          used_bytes: int) -> None:
        """Record configured-grant usage for the waste metric (§9)."""
        self.account_cg_usage(self.cg_capacity_bytes(ue_id, window),
                              used_bytes)

    def account_cg_usage(self, allocated_bytes: int,
                         used_bytes: int) -> None:
        """Population-level form of :meth:`account_cg_window`: charge
        one transmitted block against its pre-computed allocation."""
        self.counters.cg_allocated_bytes += allocated_bytes
        self.counters.cg_used_bytes += min(used_bytes, allocated_bytes)
