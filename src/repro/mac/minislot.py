"""Mini-Slot configuration (paper §2, Fig 1b; TR 38.912).

The gNB uses the first symbols of each mini-slot to declare the
characterisation of the remaining symbols on the fly, giving
fine-grained allocation at the cost of signalling overhead.  For latency
purposes this means *both* directions have an opportunity in every
mini-slot, and control/scheduling occasions recur every mini-slot rather
than every slot.

NR type-B scheduling allows mini-slots of 2, 4 or 7 OFDM symbols.  The
standard "sets a target slot duration of at least 0.5 ms for the
mini-slot configuration" (paper §5 / TR 38.912) — running it on 0.25 ms
slots goes against that recommendation, which the paper flags as needing
practical evaluation; the model allows it and records the deviation via
:meth:`MiniSlotConfig.within_standard_recommendation`.
"""

from __future__ import annotations

from fractions import Fraction

from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
)
from repro.phy.frame import FrameStructure
from repro.phy.numerology import SYMBOLS_PER_SLOT, Numerology
from repro.phy.timebase import TC_PER_MS

__all__ = [
    "ALLOWED_MINI_SLOT_SYMBOLS",
    "RECOMMENDED_MIN_SLOT_MS",
    "MiniSlotConfig",
]

#: Mini-slot (type-B scheduling) lengths permitted by TS 38.214.
ALLOWED_MINI_SLOT_SYMBOLS: tuple[int, ...] = (2, 4, 7)

#: TR 38.912 target: slot duration of at least 0.5 ms when mini-slots
#: are in use (paper §5).
RECOMMENDED_MIN_SLOT_MS = Fraction(1, 2)


class MiniSlotConfig:
    """Mini-slot duplexing: every mini-slot is a bidirectional window.

    The control overhead (the symbols used to announce the mini-slot's
    characterisation) is modelled by ``control_symbols``: each mini-slot
    window's first ``control_symbols`` symbols carry control, so a data
    transmission entering a mini-slot completes at its end but cannot use
    those leading symbols (reflected in ``overhead_fraction``).
    """

    def __init__(self, numerology: Numerology,
                 mini_slot_symbols: int = 7,
                 control_symbols: int = 1,
                 name: str = ""):
        if mini_slot_symbols not in ALLOWED_MINI_SLOT_SYMBOLS:
            raise ValueError(
                f"mini-slot length must be one of "
                f"{ALLOWED_MINI_SLOT_SYMBOLS}, got {mini_slot_symbols}")
        if not 0 <= control_symbols < mini_slot_symbols:
            raise ValueError(
                "control symbols must leave room for data in the "
                f"mini-slot, got {control_symbols}/{mini_slot_symbols}")
        self.numerology = numerology
        self.mini_slot_symbols = mini_slot_symbols
        self.control_symbols = control_symbols
        self.frame = FrameStructure(numerology)
        # One subframe is always an exact repetition unit.
        self.period_tc = TC_PER_MS
        self.name = name or f"mini-slot/{mini_slot_symbols}"
        self._windows = self._build_windows()

    def _build_windows(self) -> tuple[Window, ...]:
        """Partition every slot of one subframe into mini-slots."""
        windows: list[Window] = []
        for slot in range(self.numerology.slots_per_subframe):
            symbol = 0
            while symbol < SYMBOLS_PER_SLOT:
                end_symbol = min(symbol + self.mini_slot_symbols,
                                 SYMBOLS_PER_SLOT)
                start = self.frame.symbol_start(slot, symbol)
                end = (self.frame.slot_end(slot)
                       if end_symbol == SYMBOLS_PER_SLOT
                       else self.frame.symbol_start(slot, end_symbol))
                windows.append(Window(start, end))
                symbol = end_symbol
        return tuple(windows)

    # ------------------------------------------------------------------
    # DuplexingScheme interface
    # ------------------------------------------------------------------
    def dl_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._windows)

    def ul_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._windows)

    def dl_control_instants(self) -> PeriodicInstants:
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._windows))

    def scheduling_instants(self) -> PeriodicInstants:
        """Scheduling can run every mini-slot in this configuration."""
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._windows))

    # ------------------------------------------------------------------
    # overhead and standards conformance
    # ------------------------------------------------------------------
    def overhead_fraction(self) -> float:
        """Fraction of symbols burnt on per-mini-slot control signalling.

        This is the "increased signalling overhead" trade-off of §2; it
        grows as mini-slots shrink.
        """
        return self.control_symbols / self.mini_slot_symbols

    def within_standard_recommendation(self) -> bool:
        """Whether the slot duration respects TR 38.912's >= 0.5 ms
        target for mini-slot operation (paper §5)."""
        slot_ms = Fraction(1, self.numerology.slots_per_subframe)
        return slot_ms >= RECOMMENDED_MIN_SLOT_MS

    def describe(self) -> str:
        return (f"Mini-Slot configuration, {self.mini_slot_symbols}-symbol "
                f"mini-slots, {self.control_symbols} control symbol(s) "
                f"({self.numerology})")
