"""Slot Format configuration (TS 38.213 table 11.1.1-1).

Like the Mini-Slot configuration, Slot Format signals the symbol
characterisation of each slot dynamically, but the permissible formats
are *predefined by the standard*, trading signalling overhead for
coarser allocation (paper §2, Fig 1c).

The table below is the subset of formats 0-45 (single D/F/U run
structure); the repeated half-slot formats 46-55 add no latency regime
not already covered and are omitted from the catalogue.
"""

from __future__ import annotations

from typing import Sequence

from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
)
from repro.mac.types import SymbolRole
from repro.phy.frame import FrameStructure
from repro.phy.numerology import SYMBOLS_PER_SLOT, Numerology
from repro.phy.timebase import TC_PER_MS

__all__ = ["SLOT_FORMATS", "format_roles", "SlotFormatConfig"]

#: TS 38.213 table 11.1.1-1, formats 0-45 (D = downlink, U = uplink,
#: F = flexible), one 14-character string per format index.
SLOT_FORMATS: tuple[str, ...] = (
    "DDDDDDDDDDDDDD",  # 0
    "UUUUUUUUUUUUUU",  # 1
    "FFFFFFFFFFFFFF",  # 2
    "DDDDDDDDDDDDDF",  # 3
    "DDDDDDDDDDDDFF",  # 4
    "DDDDDDDDDDDFFF",  # 5
    "DDDDDDDDDDFFFF",  # 6
    "DDDDDDDDDFFFFF",  # 7
    "FFFFFFFFFFFFFU",  # 8
    "FFFFFFFFFFFFUU",  # 9
    "FUUUUUUUUUUUUU",  # 10
    "FFUUUUUUUUUUUU",  # 11
    "FFFUUUUUUUUUUU",  # 12
    "FFFFUUUUUUUUUU",  # 13
    "FFFFFUUUUUUUUU",  # 14
    "FFFFFFUUUUUUUU",  # 15
    "DFFFFFFFFFFFFF",  # 16
    "DDFFFFFFFFFFFF",  # 17
    "DDDFFFFFFFFFFF",  # 18
    "DFFFFFFFFFFFFU",  # 19
    "DDFFFFFFFFFFFU",  # 20
    "DDDFFFFFFFFFFU",  # 21
    "DFFFFFFFFFFFUU",  # 22
    "DDFFFFFFFFFFUU",  # 23
    "DDDFFFFFFFFFUU",  # 24
    "DFFFFFFFFFFUUU",  # 25
    "DDFFFFFFFFFUUU",  # 26
    "DDDFFFFFFFFUUU",  # 27
    "DDDDDDDDDDDDFU",  # 28
    "DDDDDDDDDDDFFU",  # 29
    "DDDDDDDDDDFFFU",  # 30
    "DDDDDDDDDDDFUU",  # 31
    "DDDDDDDDDDFFUU",  # 32
    "DDDDDDDDDFFFUU",  # 33
    "DFUUUUUUUUUUUU",  # 34
    "DDFUUUUUUUUUUU",  # 35
    "DDDFUUUUUUUUUU",  # 36
    "DFFUUUUUUUUUUU",  # 37
    "DDFFUUUUUUUUUU",  # 38
    "DDDFFUUUUUUUUU",  # 39
    "DFFFUUUUUUUUUU",  # 40
    "DDFFFUUUUUUUUU",  # 41
    "DDDFFFUUUUUUUU",  # 42
    "DDDDDDDDDFFFFU",  # 43
    "DDDDDDFFFFFFUU",  # 44
    "DDDDDDFFUUUUUU",  # 45
)


def format_roles(index: int) -> tuple[SymbolRole, ...]:
    """Symbol roles of slot format ``index``."""
    try:
        pattern = SLOT_FORMATS[index]
    except IndexError:
        raise ValueError(
            f"slot format index must be in 0..{len(SLOT_FORMATS) - 1}, "
            f"got {index}") from None
    return tuple(SymbolRole.from_char(c) for c in pattern)


class SlotFormatConfig:
    """A repeating sequence of standard slot formats.

    ``SlotFormatConfig(Numerology(2), [0, 0, 0, 1])`` reproduces a
    DDDU-like structure using formats 0 (all-DL) and 1 (all-UL).
    """

    def __init__(self, numerology: Numerology,
                 format_indices: Sequence[int], name: str = ""):
        if not format_indices:
            raise ValueError("at least one slot format is required")
        self.numerology = numerology
        self.format_indices = tuple(int(i) for i in format_indices)
        self.frame = FrameStructure(numerology)
        # Align the sequence with the 0.5 ms CP cycle for exactness.
        slots_per_half_subframe = max(1, numerology.slots_per_subframe // 2)
        cycle = len(self.format_indices)
        repeats = 1
        while (repeats * cycle) % slots_per_half_subframe != 0:
            repeats += 1
        self._slots = self.format_indices * repeats
        self.period_tc = self.frame.slot_end(len(self._slots) - 1)
        self.name = name or f"slot-format[{','.join(map(str, self.format_indices))}]"
        self._dl_windows = self._windows_for(SymbolRole.DL)
        self._ul_windows = self._windows_for(SymbolRole.UL)

    def _windows_for(self, role: SymbolRole) -> tuple[Window, ...]:
        windows: list[Window] = []
        for slot_index, fmt in enumerate(self._slots):
            roles = format_roles(fmt)
            run_start: int | None = None
            for symbol, symbol_role in enumerate(roles):
                if symbol_role is role:
                    if run_start is None:
                        run_start = symbol
                elif run_start is not None:
                    windows.append(self._span(slot_index, run_start, symbol))
                    run_start = None
            if run_start is not None:
                windows.append(
                    self._span(slot_index, run_start, SYMBOLS_PER_SLOT))
        return tuple(windows)

    def _span(self, slot_index: int, first: int, end: int) -> Window:
        start = self.frame.symbol_start(slot_index, first)
        stop = (self.frame.slot_end(slot_index) if end == SYMBOLS_PER_SLOT
                else self.frame.symbol_start(slot_index, end))
        return Window(start, stop)

    # ------------------------------------------------------------------
    # DuplexingScheme interface
    # ------------------------------------------------------------------
    def dl_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._dl_windows)

    def ul_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._ul_windows)

    def dl_control_instants(self) -> PeriodicInstants:
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._dl_windows))

    def scheduling_instants(self) -> PeriodicInstants:
        return PeriodicInstants(
            self.period_tc,
            (self.frame.slot_start(s) for s in range(len(self._slots))))

    def describe(self) -> str:
        formats = ", ".join(str(i) for i in self.format_indices)
        return (f"Slot Format configuration [{formats}] "
                f"({self.numerology})")
