"""PDCCH / CORESET capacity: control-channel blocking.

Every DL assignment and UL grant rides a DCI on the PDCCH, which
occupies *control-channel elements* (CCEs) inside a CORESET of a
control occasion.  URLLC needs the DCI itself to be ultra-reliable, so
it uses high aggregation levels (AL 8-16 CCEs per DCI) — and a typical
CORESET holds only ~16 CCEs, i.e. one or two URLLC DCIs per occasion.
With many UEs, control capacity, not data capacity, becomes the
bottleneck: a UE whose DCI does not fit is *blocked* and waits for the
next occasion.  This is a concrete face of the paper's §9 scalability
question ("control signaling overhead, which grows with the number of
UEs").

The model allocates aligned candidate positions (an AL-L DCI may start
only at multiples of L, as in the real search-space tree), so
fragmentation behaves realistically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PdcchCounters", "PdcchModel"]


@dataclass
class PdcchCounters:
    """Control-channel accounting."""

    attempts: int = 0
    blocked: int = 0

    def blocking_probability(self) -> float:
        if self.attempts == 0:
            return 0.0
        return self.blocked / self.attempts


@dataclass
class PdcchModel:
    """CCE allocation across control occasions.

    Args:
        n_cces: CORESET size per occasion (a 2-symbol CORESET over
            ~50 PRB yields ≈16 CCEs).
        keep_occasions: occupancy maps retained for past occasions
            (bounded memory for long runs).
    """

    n_cces: int = 16
    keep_occasions: int = 64
    counters: PdcchCounters = field(default_factory=PdcchCounters)
    _occupancy: dict[int, list[bool]] = field(default_factory=dict,
                                              repr=False)

    def __post_init__(self) -> None:
        if self.n_cces < 1:
            raise ValueError(f"need >= 1 CCE, got {self.n_cces}")
        if self.keep_occasions < 1:
            raise ValueError("keep_occasions must be >= 1")

    # ------------------------------------------------------------------
    def _occasion(self, occasion_tc: int) -> list[bool]:
        occupancy = self._occupancy.get(occasion_tc)
        if occupancy is None:
            occupancy = [False] * self.n_cces
            self._occupancy[occasion_tc] = occupancy
            if len(self._occupancy) > self.keep_occasions:
                oldest = min(self._occupancy)
                del self._occupancy[oldest]
        return occupancy

    def try_allocate(self, occasion_tc: int,
                     aggregation_level: int) -> bool:
        """Claim an AL-``aggregation_level`` candidate in the occasion.

        Candidates start at multiples of the aggregation level (the
        search-space alignment), so interleaved small DCIs can block a
        large one even with enough total CCEs free.
        """
        if aggregation_level < 1:
            raise ValueError("aggregation level must be >= 1")
        self.counters.attempts += 1
        if aggregation_level > self.n_cces:
            self.counters.blocked += 1
            return False
        occupancy = self._occasion(occasion_tc)
        for start in range(0, self.n_cces - aggregation_level + 1,
                           aggregation_level):
            span = occupancy[start:start + aggregation_level]
            if not any(span):
                for index in range(start, start + aggregation_level):
                    occupancy[index] = True
                return True
        self.counters.blocked += 1
        return False

    def free_cces(self, occasion_tc: int) -> int:
        """CCEs still unallocated in an occasion."""
        occupancy = self._occupancy.get(occasion_tc)
        if occupancy is None:
            return self.n_cces
        return sum(1 for used in occupancy if not used)
