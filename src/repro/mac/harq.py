"""HARQ: feedback timing and process bookkeeping.

NR HARQ is asynchronous and feedback-driven: after a DL transport block
ends, the UE decodes it, reports ACK/NACK on PUCCH at the first uplink
occasion at least ``k1`` after the PDSCH, and the gNB may only
retransmit once the NACK has been received and decoded.  The
retransmission therefore costs a full feedback round trip, not just
"the next window" — this is what makes each HARQ round cost ~0.5 ms+
on the paper's patterns (the [33] observation of 0.5 ms retransmission
steps) and why §8's Johansson et al. advocate avoiding retransmissions
for URLLC.

Two pieces:

- :class:`HarqFeedbackModel` — maps a transmission's completion time to
  the instant its ACK/NACK is available at the transmitter's MAC, using
  the scheme's opportunity timeline for the PUCCH occasion.
- :class:`HarqProcessPool` — NR allows up to 16 parallel HARQ processes
  per direction; a transmitter with all processes awaiting feedback
  must stall (tracked, it bounds throughput × RTT).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mac.opportunities import OpportunityTimeline
from repro.mac.scheme import DuplexingScheme
from repro.phy.numerology import SYMBOLS_PER_SLOT

__all__ = [
    "MAX_HARQ_PROCESSES",
    "HarqTiming",
    "HarqFeedbackModel",
    "HarqProcessPool",
]

#: NR maximum HARQ processes per direction (TS 38.321).
MAX_HARQ_PROCESSES: int = 16


@dataclass(frozen=True)
class HarqTiming:
    """Resolved timing of one feedback round."""

    completion_tc: int   #: last symbol of the data transmission
    pucch_tc: int        #: ACK/NACK leaves the receiver
    feedback_tc: int     #: transmitter MAC knows the outcome

    @property
    def round_trip_tc(self) -> int:
        return self.feedback_tc - self.completion_tc


class HarqFeedbackModel:
    """ACK/NACK timing over a duplexing scheme.

    Args:
        scheme: the duplexing configuration (provides the PUCCH
            opportunities — for DL data the feedback rides the UL
            timeline and vice versa).
        k1_symbols: minimum decode-to-PUCCH gap at the receiver
            (UE capability 1 is ~10 symbols; capability 2 ~5).
        decode_symbols: transmitter-side PUCCH decode time.
        feedback_for: "dl" (feedback on UL timeline) or "ul"
            (feedback on DL timeline — for configured-grant UL the
            gNB's feedback is a DL control message).
        dtx_penalty_symbols: extra wait beyond the nominal feedback
            instant before the transmitter declares DTX (feedback never
            arrived — e.g. the PUCCH itself was lost) and proceeds as if
            NACKed.
    """

    def __init__(self, scheme: DuplexingScheme, k1_symbols: int = 10,
                 decode_symbols: int = 2,
                 feedback_for: str = "dl",
                 dtx_penalty_symbols: int = SYMBOLS_PER_SLOT):
        if k1_symbols < 0 or decode_symbols < 0:
            raise ValueError("symbol counts must be >= 0")
        if dtx_penalty_symbols < 0:
            raise ValueError("dtx_penalty_symbols must be >= 0")
        if feedback_for not in ("dl", "ul"):
            raise ValueError(f"feedback_for must be 'dl' or 'ul', "
                             f"got {feedback_for!r}")
        self.scheme = scheme
        symbol_tc = (scheme.numerology.slot_duration_tc
                     // SYMBOLS_PER_SLOT)
        self.k1_tc = k1_symbols * symbol_tc
        self.decode_tc = decode_symbols * symbol_tc
        self.pucch_tc = symbol_tc  # one-symbol short PUCCH
        self.dtx_penalty_tc = dtx_penalty_symbols * symbol_tc
        self._occasions: OpportunityTimeline = (
            scheme.ul_timeline() if feedback_for == "dl"
            else scheme.dl_timeline())

    def timing(self, completion_tc: int) -> HarqTiming:
        """When the transmitter learns the fate of a block that
        finished at ``completion_tc``."""
        earliest = completion_tc + self.k1_tc
        pucch = self._occasions.earliest_entry_joining(
            earliest, self.pucch_tc)
        feedback = pucch + self.pucch_tc + self.decode_tc
        return HarqTiming(completion_tc, pucch, feedback)

    def feedback_time(self, completion_tc: int) -> int:
        """Shorthand: just the feedback arrival tick."""
        return self.timing(completion_tc).feedback_tc

    def feedback_times(self, completions_tc: np.ndarray) -> np.ndarray:
        """Population-level :meth:`feedback_time`: one vectorized pass
        over an array of completion ticks, elementwise equal to the
        scalar path (pinned by ``tests/mac/test_harq.py``)."""
        completions = np.asarray(completions_tc, dtype=np.int64)
        pucch = self._occasions.index().earliest_entries_joining(
            completions + self.k1_tc, self.pucch_tc)
        return pucch + self.pucch_tc + self.decode_tc

    def dtx_detection_time(self, completion_tc: int) -> int:
        """When the transmitter gives up waiting for lost feedback.

        Expected feedback instant plus the DTX penalty: the transmitter
        only treats silence as a NACK after the feedback opportunity has
        demonstrably passed, which is what makes injected DTX strictly
        worse than an ordinary NACK."""
        return self.feedback_time(completion_tc) + self.dtx_penalty_tc


class HarqProcessPool:
    """Bounded pool of HARQ processes awaiting feedback."""

    def __init__(self, n_processes: int = MAX_HARQ_PROCESSES):
        if not 1 <= n_processes <= MAX_HARQ_PROCESSES:
            raise ValueError(
                f"n_processes must be in 1..{MAX_HARQ_PROCESSES}, "
                f"got {n_processes}")
        self.n_processes = n_processes
        self._in_flight = 0
        self.stalls = 0
        self.peak_in_flight = 0
        self.dtx_events = 0

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def available(self) -> bool:
        return self._in_flight < self.n_processes

    def acquire(self) -> None:
        """Claim a process; call :meth:`available` first."""
        if not self.available():
            raise RuntimeError("all HARQ processes in flight")
        self._in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self._in_flight)

    def release(self) -> None:
        """Feedback arrived (ACK or final NACK): free the process."""
        if self._in_flight == 0:
            raise RuntimeError("release without acquire")
        self._in_flight -= 1

    def record_stall(self) -> None:
        """A transmission opportunity passed unused for lack of a
        process (throughput bounded by processes/RTT)."""
        self.stalls += 1

    def record_dtx(self) -> None:
        """Feedback for an in-flight block never arrived; the process is
        held until the DTX detection timeout instead of the nominal
        feedback instant."""
        self.dtx_events += 1
