"""The interface every duplexing scheme exposes.

The analytical latency model (:mod:`repro.core.latency_model`) and the
discrete-event MAC (:mod:`repro.mac.scheduler`) are written against this
protocol, so TDD Common Configuration, Slot Format, Mini-Slot and FDD are
interchangeable everywhere.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.mac.opportunities import OpportunityTimeline, PeriodicInstants
from repro.phy.numerology import Numerology

__all__ = ["DuplexingScheme"]


@runtime_checkable
class DuplexingScheme(Protocol):
    """Lowered view of a duplexing configuration.

    Attributes:
        name: short identifier ("DM", "DDDU", "FDD", "mini-slot/7"...).
        numerology: the configured numerology.
        period_tc: exact repetition period of all timelines, in Tc.
    """

    name: str
    numerology: Numerology
    period_tc: int

    def dl_timeline(self) -> OpportunityTimeline:
        """Windows in which downlink data can be transmitted."""
        ...

    def ul_timeline(self) -> OpportunityTimeline:
        """Windows in which uplink data (and SRs) can be transmitted."""
        ...

    def dl_control_instants(self) -> PeriodicInstants:
        """Occasions at which DL control information (UL grants, DL
        assignments) is broadcast."""
        ...

    def scheduling_instants(self) -> PeriodicInstants:
        """Occasions at which the gNB MAC scheduler runs."""
        ...
