"""FDD duplexing.

FDD allocates two distinct, equal, non-overlapping bandwidths to DL and
UL (paper §2), realising a full-duplex channel: every slot is an
opportunity in both directions.  The costs the paper weighs against this
are captured here too: the guard-band frequency overhead
(:meth:`FddConfig.frequency_overhead_mhz`) and the sub-2.6 GHz band
restriction that rules FDD out for private 5G
(:func:`repro.phy.bands.fdd_bands`).
"""

from __future__ import annotations

from repro.mac.opportunities import (
    OpportunityTimeline,
    PeriodicInstants,
    Window,
)
from repro.phy.frame import FrameStructure
from repro.phy.numerology import Numerology
from repro.phy.timebase import TC_PER_MS

__all__ = ["FddConfig"]


class FddConfig:
    """Full-duplex: every slot carries both a DL and a UL opportunity."""

    def __init__(self, numerology: Numerology,
                 duplex_spacing_mhz: float = 120.0,
                 guard_band_mhz: float = 10.0,
                 name: str = "FDD"):
        if duplex_spacing_mhz <= 0 or guard_band_mhz < 0:
            raise ValueError("duplex spacing must be > 0 and guard >= 0")
        self.numerology = numerology
        self.duplex_spacing_mhz = duplex_spacing_mhz
        self.guard_band_mhz = guard_band_mhz
        self.frame = FrameStructure(numerology)
        self.period_tc = TC_PER_MS  # one subframe repeats exactly
        self.name = name
        self._windows = tuple(
            Window(self.frame.slot_start(s), self.frame.slot_end(s))
            for s in range(numerology.slots_per_subframe))

    # ------------------------------------------------------------------
    # DuplexingScheme interface
    # ------------------------------------------------------------------
    def dl_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._windows)

    def ul_timeline(self) -> OpportunityTimeline:
        return OpportunityTimeline(self.period_tc, self._windows)

    def dl_control_instants(self) -> PeriodicInstants:
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._windows))

    def scheduling_instants(self) -> PeriodicInstants:
        return PeriodicInstants(
            self.period_tc, (w.start for w in self._windows))

    # ------------------------------------------------------------------
    # trade-offs (paper §5 overview)
    # ------------------------------------------------------------------
    def frequency_overhead_mhz(self) -> float:
        """Spectrum lost to the duplexing guard band."""
        return self.guard_band_mhz

    def describe(self) -> str:
        return (f"FDD ({self.numerology}, duplex spacing "
                f"{self.duplex_spacing_mhz:g} MHz, guard band "
                f"{self.guard_band_mhz:g} MHz)")
