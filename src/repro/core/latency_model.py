"""Analytical worst/best-case one-way latency (paper §5, Fig 4).

The model composes the protocol's *completion rules* (see
:mod:`repro.mac.opportunities`) into one-way latency functions:

- **DL**: data arriving at the gNB completes at the end of the first DL
  window starting strictly after arrival — the current window "is
  already allocated for other DL data" (§5), because control information
  is emitted once per window, at its start.
- **Grant-free UL**: the UE owns pre-allocated resources and can enter
  any UL window mid-way; data completes at that window's end.
- **Grant-based UL**: the full SR → scheduling → grant → data chain of
  §3/Fig 3: the SR joins the first UL opportunity, the gNB scheduler
  runs at the first scheduling instant *strictly after* the SR is
  received, the grant rides the next DL control occasion, and the data
  uses the first UL window starting after the grant is processed.

Latency is measured from data arrival to the end of the transmission
window, matching the paper's slot-granular accounting (transport blocks
span their allocation; decoding completes at its last symbol).

Worst and best cases are exact: every stage is a monotone step function
of the arrival tick whose discontinuities lie on window/instant
boundaries shifted by the constant chain delays, so evaluating the
latency at those critical ticks (±1) finds the true extrema.  A
property-based test cross-checks this against dense random sampling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mac.opportunities import OpportunityTimeline, PeriodicInstants
from repro.mac.scheme import DuplexingScheme
from repro.mac.types import AccessMode, Direction
from repro.phy.timebase import ms_from_tc, us_from_tc

__all__ = [
    "ProtocolTimings",
    "GrantChainTrace",
    "LatencyExtremes",
    "LatencyModel",
]


@dataclass(frozen=True)
class ProtocolTimings:
    """Delays inside the access chain, in Tc ticks.

    All defaults are zero: the *pure protocol* model of Fig 4/Table 1,
    which isolates protocol latency from processing and radio latency.
    The system-level model (:mod:`repro.core.budget`) sets these from
    measured distributions.
    """

    sr_duration: int = 0       #: time on air for the 1-bit SR
    sr_decode: int = 0         #: gNB PHY decode before the MAC sees the SR
    grant_duration: int = 0    #: PDCCH transmission + UE decode
    ue_grant_processing: int = 0  #: UE MAC work between grant and PUSCH
    min_tx_duration: int = 1   #: room a data transmission needs in a window
    dl_lead: int = 0    #: gNB prep+radio before DL data can hit a window
    ul_lead: int = 0    #: UE prep+radio before UL data can hit a window
    #: PUCCH SR periodicity in Tc (0 = the paper's idealisation that an
    #: SR can be sent "at any time during the UL slot").  With a
    #: non-zero period, SR occasions exist only at multiples of it that
    #: fall inside UL windows — the "period of scheduling requests"
    #: configuration §1 lists among the latency factors.
    sr_period: int = 0
    sr_offset: int = 0  #: phase of the SR occasions within the period

    def __post_init__(self) -> None:
        for name in ("sr_duration", "sr_decode", "grant_duration",
                     "ue_grant_processing", "dl_lead", "ul_lead",
                     "sr_period", "sr_offset"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.min_tx_duration < 1:
            raise ValueError("min_tx_duration must be >= 1 tick")
        if self.sr_period and self.sr_offset >= self.sr_period:
            raise ValueError("sr_offset must be below sr_period")


@dataclass(frozen=True)
class GrantChainTrace:
    """Absolute timestamps of each grant-based UL stage (Fig 3 ①-⑦)."""

    arrival: int         #: UL data reaches the UE MAC (①)
    sr_tx_start: int     #: SR enters the air (②)
    sr_received: int     #: gNB MAC has decoded the SR (③)
    scheduled: int       #: scheduler instant that serves the SR (④)
    grant_tx: int        #: grant rides this DL control occasion (⑤)
    grant_processed: int  #: UE ready to transmit (⑥)
    data_window_start: int  #: granted PUSCH window begins
    completion: int      #: data fully received (⑦)

    @property
    def latency_tc(self) -> int:
        return self.completion - self.arrival

    def stage_durations(self) -> dict[str, int]:
        """Named durations of each chain stage (sums to the latency)."""
        return {
            "wait_for_sr_opportunity": self.sr_tx_start - self.arrival,
            "sr_transmission": self.sr_received - self.sr_tx_start,
            "wait_for_scheduler": self.scheduled - self.sr_received,
            "wait_for_dl_control": self.grant_tx - self.scheduled,
            "grant_delivery": self.grant_processed - self.grant_tx,
            "wait_for_ul_window": self.data_window_start
                                  - self.grant_processed,
            "data_transmission": self.completion - self.data_window_start,
        }


@dataclass(frozen=True)
class LatencyExtremes:
    """Worst and best one-way latency over all arrival phases."""

    scheme_name: str
    direction: Direction
    access: AccessMode | None
    worst_tc: int
    worst_arrival_tc: int
    best_tc: int
    best_arrival_tc: int

    @property
    def worst_ms(self) -> float:
        return ms_from_tc(self.worst_tc)

    @property
    def best_ms(self) -> float:
        return ms_from_tc(self.best_tc)

    def meets(self, budget_tc: int) -> bool:
        """Whether the worst case fits the one-way budget."""
        return self.worst_tc <= budget_tc

    def __str__(self) -> str:
        mode = f" ({self.access.value})" if self.access else ""
        return (f"{self.scheme_name} {self.direction.value}{mode}: "
                f"worst {us_from_tc(self.worst_tc):.1f} µs, "
                f"best {us_from_tc(self.best_tc):.1f} µs")


class LatencyModel:
    """Worst/best-case latency functions for one duplexing scheme."""

    def __init__(self, scheme: DuplexingScheme,
                 timings: ProtocolTimings | None = None):
        self.scheme = scheme
        self.timings = timings or ProtocolTimings()
        self._dl: OpportunityTimeline = scheme.dl_timeline()
        self._ul: OpportunityTimeline = scheme.ul_timeline()
        self._control: PeriodicInstants = scheme.dl_control_instants()
        self._scheduling: PeriodicInstants = scheme.scheduling_instants()

    # ------------------------------------------------------------------
    # completion functions (arrival tick -> completion tick)
    # ------------------------------------------------------------------
    def dl_completion(self, arrival: int) -> int:
        """DL data completion under the slot-aligned strict rule.

        ``dl_lead`` shifts the usable windows: the gNB cannot use a
        window starting earlier than arrival + preparation + radio
        submission (§4's margin)."""
        return self._dl.completion_aligned_strict(
            arrival + self.timings.dl_lead, self.timings.min_tx_duration)

    def ul_grant_free_completion(self, arrival: int) -> int:
        """Grant-free UL completion under the joining rule, after the
        UE-side preparation lead."""
        return self._ul.completion_joining(
            arrival + self.timings.ul_lead, self.timings.min_tx_duration)

    def _next_sr_occasion(self, time: int) -> int:
        """First SR occasion at or after ``time``.

        With ``sr_period == 0`` (the default, the paper's idealisation)
        any instant inside a UL window qualifies; otherwise occasions
        tick at ``sr_offset + k·sr_period`` and must fall inside a UL
        window with room for the SR.
        """
        timings = self.timings
        need = max(1, timings.sr_duration)
        if not timings.sr_period:
            return self._ul.earliest_entry_joining(time, need)
        period, offset = timings.sr_period, timings.sr_offset
        candidate = time
        for _ in range(10_000):
            remainder = (candidate - offset) % period
            if remainder:
                candidate += period - remainder
            window = self._ul.window_at(candidate)
            if window is not None and window.end - candidate >= need:
                return candidate
            # Jump to the next UL window and realign to the grid.
            window = self._ul.first_start_at_or_after(candidate + 1)
            candidate = window.start
        raise LookupError("no SR occasion found; sr_period too coarse "
                          "for this UL timeline")

    def ul_grant_based_chain(self, arrival: int) -> GrantChainTrace:
        """The full SR → grant → data chain for one arrival."""
        timings = self.timings
        sr_tx_start = self._next_sr_occasion(arrival + timings.ul_lead)
        sr_received = sr_tx_start + timings.sr_duration + timings.sr_decode
        scheduled = self._scheduling.next_after(sr_received)
        grant_tx = self._control.next_at_or_after(scheduled)
        grant_processed = (grant_tx + timings.grant_duration
                           + timings.ue_grant_processing)
        completion = self._ul.completion_aligned(
            grant_processed, timings.min_tx_duration)
        data_window = self._ul.first_start_at_or_after(grant_processed)
        return GrantChainTrace(
            arrival=arrival,
            sr_tx_start=sr_tx_start,
            sr_received=sr_received,
            scheduled=scheduled,
            grant_tx=grant_tx,
            grant_processed=grant_processed,
            data_window_start=data_window.start,
            completion=completion,
        )

    def ul_grant_based_completion(self, arrival: int) -> int:
        return self.ul_grant_based_chain(arrival).completion

    def completion(self, arrival: int, direction: Direction,
                   access: AccessMode = AccessMode.GRANT_FREE) -> int:
        """Completion tick for any direction/access combination."""
        if direction is Direction.DL:
            return self.dl_completion(arrival)
        if access is AccessMode.GRANT_FREE:
            return self.ul_grant_free_completion(arrival)
        return self.ul_grant_based_completion(arrival)

    # ------------------------------------------------------------------
    # extrema
    # ------------------------------------------------------------------
    def _critical_arrivals(self) -> list[int]:
        """Arrival ticks at which any stage function can jump."""
        period = self.scheme.period_tc
        timings = self.timings
        if timings.sr_period:
            period = math.lcm(period, timings.sr_period)
            if period > 400 * self.scheme.period_tc:
                raise ValueError(
                    "sr_period is incommensurate with the scheme "
                    "period; extrema enumeration would explode")
        boundaries: set[int] = set()
        for timeline in (self._dl, self._ul):
            for window in timeline.windows_from(0):
                if window.start >= period:
                    break
                boundaries.add(window.start % period)
                boundaries.add(window.end % period)
        instants = set(self._control.instants) | set(
            self._scheduling.instants)
        for base in instants:
            for cycle in range(period // self.scheme.period_tc):
                boundaries.add(base + cycle * self.scheme.period_tc)
        if timings.sr_period:
            occasion = timings.sr_offset
            while occasion < period:
                boundaries.add(occasion)
                occasion += timings.sr_period
        # Constant chain delays shift the preimages of downstream jumps.
        shifts = {
            0,
            timings.min_tx_duration,
            timings.sr_duration,
            timings.sr_duration + timings.sr_decode,
            (timings.grant_duration + timings.ue_grant_processing),
            (timings.sr_duration + timings.sr_decode
             + timings.grant_duration + timings.ue_grant_processing),
        }
        candidates: set[int] = set()
        for cycle in (0, period):
            for boundary in boundaries:
                for shift in shifts:
                    base = boundary + cycle - shift
                    for offset in (-1, 0, 1):
                        tick = base + offset
                        if tick >= 0:
                            candidates.add(tick)
        candidates.add(0)
        return sorted(candidates)

    def extremes(self, direction: Direction,
                 access: AccessMode = AccessMode.GRANT_FREE
                 ) -> LatencyExtremes:
        """Exact worst and best one-way latency over arrival phases."""
        worst = best = None
        worst_at = best_at = 0
        for arrival in self._critical_arrivals():
            latency = self.completion(arrival, direction, access) - arrival
            if worst is None or latency > worst:
                worst, worst_at = latency, arrival
            if best is None or latency < best:
                best, best_at = latency, arrival
        assert worst is not None and best is not None
        return LatencyExtremes(
            scheme_name=self.scheme.name,
            direction=direction,
            access=access if direction is Direction.UL else None,
            worst_tc=worst,
            worst_arrival_tc=worst_at,
            best_tc=best,
            best_arrival_tc=best_at,
        )

    def worst_case_trace(self) -> GrantChainTrace:
        """Grant-based chain at its worst arrival (Fig 4, top)."""
        extremes = self.extremes(Direction.UL, AccessMode.GRANT_BASED)
        return self.ul_grant_based_chain(extremes.worst_arrival_tc)

    # ------------------------------------------------------------------
    # exact phase-averaged mean
    # ------------------------------------------------------------------
    def mean_latency_tc(self, direction: Direction,
                        access: AccessMode = AccessMode.GRANT_FREE
                        ) -> float:
        """Exact mean one-way latency over a uniform arrival phase.

        The completion function is a non-decreasing step function of
        the arrival tick, constant between critical points; within each
        constancy interval the latency falls linearly with slope −1, so
        the phase average reduces to a finite sum over the critical
        intervals of one period.  This is the analytical counterpart of
        the DES's uniform-arrival measurements (§7's workload).
        """
        period = self.scheme.period_tc
        timings = self.timings
        if timings.sr_period:
            period = math.lcm(period, timings.sr_period)
        points = sorted(p for p in set(
            c % period for c in self._critical_arrivals()) if p < period)
        if not points or points[0] != 0:
            points.insert(0, 0)
        points.append(period)
        total = 0.0
        for a, b in zip(points, points[1:]):
            if b <= a:
                continue
            completion = self.completion(a, direction, access)
            # Within [a, b) the completion is constant at ``completion``
            # (critical points bound every jump): latency integrates to
            # (b-a)·C − (b²−a²)/2.
            total += (b - a) * completion - (b * b - a * a) / 2.0
        return total / period

    def mean_latency_us(self, direction: Direction,
                        access: AccessMode = AccessMode.GRANT_FREE
                        ) -> float:
        """Phase-averaged mean latency in microseconds."""
        return us_from_tc(self.mean_latency_tc(direction, access))

    # ------------------------------------------------------------------
    # round trips (the 1 ms RTT requirement)
    # ------------------------------------------------------------------
    def rtt_completion(self, arrival: int,
                       access: AccessMode = AccessMode.GRANT_FREE,
                       server_turnaround: int = 0) -> int:
        """Completion tick of a full ping round trip (Fig 2/3).

        The uplink chain delivers the request; after the server's
        turnaround the reply enters the DL path, whose own phase is
        whatever the UL chain left it at — the two directions compose,
        they do not simply add their worst cases.
        """
        if server_turnaround < 0:
            raise ValueError("server turnaround must be >= 0")
        request_done = self.completion(arrival, Direction.UL, access)
        return self.dl_completion(request_done + server_turnaround)

    def rtt_extremes(self, access: AccessMode = AccessMode.GRANT_FREE,
                     server_turnaround: int = 0) -> LatencyExtremes:
        """Exact worst/best round-trip time over arrival phases.

        Note the composed worst case is generally *below* the sum of
        the per-direction worst cases: the uplink always hands the
        reply to the DL path right after a UL region, never at the DL
        path's own worst phase.
        """
        worst = best = None
        worst_at = best_at = 0
        for arrival in self._critical_arrivals():
            rtt = self.rtt_completion(arrival, access,
                                      server_turnaround) - arrival
            if worst is None or rtt > worst:
                worst, worst_at = rtt, arrival
            if best is None or rtt < best:
                best, best_at = rtt, arrival
        assert worst is not None and best is not None
        return LatencyExtremes(
            scheme_name=self.scheme.name,
            direction=Direction.UL,  # round trip starts uplink
            access=access,
            worst_tc=worst,
            worst_arrival_tc=worst_at,
            best_tc=best,
            best_arrival_tc=best_at,
        )
