"""URLLC requirement definitions and verdicts (paper §1, §5).

The 5G URLLC target is a one-way latency of 0.5 ms on both UL and DL
(1 ms round trip) at a reliability above 99.999 % (TR 38.913); 6G
discussions tighten this to 0.1 ms one-way (0.2 ms round trip).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency_model import LatencyExtremes
from repro.phy.timebase import ms_from_tc, tc_from_ms

__all__ = [
    "Requirement",
    "URLLC_5G",
    "URLLC_5G_RELAXED",
    "URLLC_6G",
    "verdict_mark",
]


@dataclass(frozen=True)
class Requirement:
    """A latency/reliability service requirement."""

    name: str
    one_way_budget_tc: int
    reliability: float

    def __post_init__(self) -> None:
        if self.one_way_budget_tc <= 0:
            raise ValueError("budget must be positive")
        if not 0.0 < self.reliability < 1.0:
            raise ValueError(
                f"reliability must be in (0, 1), got {self.reliability}")

    @property
    def one_way_budget_ms(self) -> float:
        return ms_from_tc(self.one_way_budget_tc)

    @property
    def round_trip_budget_tc(self) -> int:
        return 2 * self.one_way_budget_tc

    def met_by_worst_case(self, extremes: LatencyExtremes) -> bool:
        """Deterministic check: worst case within the one-way budget."""
        return extremes.meets(self.one_way_budget_tc)

    def met_by_samples(self, latencies_tc: list[int]) -> bool:
        """Statistical check: the required quantile fits the budget."""
        if not latencies_tc:
            raise ValueError("no latency samples")
        within = sum(1 for lat in latencies_tc
                     if lat <= self.one_way_budget_tc)
        return within / len(latencies_tc) >= self.reliability

    def __str__(self) -> str:
        return (f"{self.name}: {self.one_way_budget_ms:g} ms one-way @ "
                f"{self.reliability:.5%}")


#: 5G URLLC (TR 38.913 / paper abstract): 0.5 ms one-way, 99.999 %.
URLLC_5G = Requirement("5G URLLC", tc_from_ms(0.5), 0.99999)

#: Relaxed 99.99 % variant quoted in the paper's introduction.
URLLC_5G_RELAXED = Requirement("5G URLLC (99.99%)", tc_from_ms(0.5), 0.9999)

#: 6G target discussed in §1: 0.1 ms one-way (0.2 ms round trip).
URLLC_6G = Requirement("6G URLLC", tc_from_ms(0.1), 0.99999)


def verdict_mark(met: bool) -> str:
    """The ✓/✗ notation of the paper's Table 1."""
    return "✓" if met else "✗"
