"""Packet-journey reconstruction (paper §3 / Fig 3).

Rebuilds the temporal breakdown of one ping round trip — the circled
steps ① … ⑪ of Fig 3 — from a traced simulation run.  Steps come from
the packet's own stage timestamps plus the MAC trace records (SR, grant)
that belong to no packet.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.session import PingResult
from repro.sim.trace import Tracer
from repro.phy.timebase import us_from_tc

__all__ = ["JourneyStep", "PingJourney", "reconstruct_ping_journey"]


@dataclass(frozen=True)
class JourneyStep:
    """One step of the Fig 3 breakdown."""

    index: int
    label: str
    start_tc: int
    end_tc: int

    @property
    def duration_us(self) -> float:
        return us_from_tc(self.end_tc - self.start_tc)


@dataclass(frozen=True)
class PingJourney:
    """The full reconstructed journey of one ping."""

    steps: tuple[JourneyStep, ...]
    rtt_tc: int

    @property
    def rtt_us(self) -> float:
        return us_from_tc(self.rtt_tc)

    def step(self, index: int) -> JourneyStep:
        for candidate in self.steps:
            if candidate.index == index:
                return candidate
        raise KeyError(f"no step {index}")

    def render(self) -> str:
        """Text rendering of the Fig 3 timeline."""
        lines = [f"Ping journey: RTT {self.rtt_us:.1f} µs"]
        for step in self.steps:
            bar = "#" * max(1, round(step.duration_us / 50))
            lines.append(
                f"  {step.index:>2} {step.label:<42} "
                f"{step.duration_us:8.1f} µs {bar}")
        return "\n".join(lines)


def _trace_time(tracer: Tracer, category: str, name: str,
                earliest: int, latest: int) -> int | None:
    """First matching trace record inside a time window."""
    for record in tracer.records(category, name):
        if earliest <= record.time <= latest:
            return record.time
    return None


def reconstruct_ping_journey(result: PingResult,
                             tracer: Tracer) -> PingJourney:
    """Rebuild Fig 3's steps for one completed ping.

    Requires the run to have been traced (``RanConfig(trace=True)``)
    and works for both access modes; with grant-free UL the SR/grant
    steps (②-⑤) collapse to zero-length placeholders.
    """
    request, reply = result.request, result.reply
    assert reply.delivered_tc is not None
    t0, t_end = request.created_tc, reply.delivered_tc
    ue = f"ue{request.ue_id}"
    stamps_req = request.timestamps
    stamps_rep = reply.timestamps

    sr_tx = _trace_time(tracer, f"{ue}.mac", "sr_tx", t0, t_end)
    grant_issued = _trace_time(tracer, "gnb.mac", "grant_issued",
                               t0, t_end)
    grant_rx = _trace_time(tracer, f"{ue}.mac", "grant_rx", t0, t_end)
    ul_tx_start = stamps_req.get("ue.mac.granted_tx",
                                 stamps_req.get("ue.mac.cg_planned", t0))
    ul_block_rx = stamps_req["gnb.ul.block_rx"]
    request_done = request.delivered_tc or ul_block_rx

    steps = [JourneyStep(1, "APP↓ processing + wait for UL slot (①)",
                         t0, sr_tx if sr_tx is not None else ul_tx_start)]
    if sr_tx is not None and grant_issued is not None \
            and grant_rx is not None:
        steps.append(JourneyStep(2, "SR transmission (②)",
                                 sr_tx, min(grant_issued, t_end)))
        steps.append(JourneyStep(3, "SR decode + wait for scheduler (③)",
                                 sr_tx, grant_issued))
        steps.append(JourneyStep(4, "grant scheduled (④)",
                                 grant_issued, grant_issued))
        steps.append(JourneyStep(5, "UL grant delivery (⑤)",
                                 grant_issued, grant_rx))
        steps.append(JourneyStep(6, "↑MAC↓: wait + UL data tx (⑥)",
                                 grant_rx, ul_block_rx))
    else:
        steps.append(JourneyStep(6, "grant-free UL data tx (⑥)",
                                 ul_tx_start, ul_block_rx))
    steps.append(JourneyStep(7, "gNB MAC↑ processing to UPF (⑦)",
                             ul_block_rx, request_done))
    dl_enqueue = _first_stamp(stamps_rep, "gnb.rlcq")
    dl_dequeue = _first_stamp(stamps_rep, "gnb.rlcq", ".dequeue")
    steps.append(JourneyStep(8, "server + SDAP↓ processing (⑧)",
                             reply.created_tc,
                             dl_enqueue if dl_enqueue is not None
                             else reply.created_tc))
    if dl_enqueue is not None and dl_dequeue is not None:
        steps.append(JourneyStep(9, "RLC queue: wait for scheduling (⑨)",
                                 dl_enqueue, dl_dequeue))
        dl_rx = stamps_rep.get("ue.phy.block_rx", t_end)
        steps.append(JourneyStep(10, "DL data transmission (⑩)",
                                 dl_dequeue, dl_rx))
        steps.append(JourneyStep(11, "UE PHY↑ to APP (⑪)",
                                 dl_rx, t_end))
    return PingJourney(steps=tuple(steps), rtt_tc=t_end - t0)


def _first_stamp(stamps: dict[str, int], prefix: str,
                 suffix: str = ".enqueue") -> int | None:
    for key, value in stamps.items():
        if key.startswith(prefix) and key.endswith(suffix):
            return value
    return None
