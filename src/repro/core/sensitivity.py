"""One-at-a-time (tornado) sensitivity analysis.

The simulation's constants come from one measured testbed
(`repro.calibration`); before trusting a conclusion elsewhere, it pays
to know which parameter moves the result.  :func:`tornado` perturbs
each parameter to its low/high bound while holding the others at
baseline and ranks the swings — the classic tornado chart, in data
form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = ["SensitivityResult", "tornado"]


@dataclass(frozen=True)
class SensitivityResult:
    """Metric swing from perturbing one parameter."""

    parameter: str
    low_value: float
    high_value: float
    metric_at_low: float
    metric_at_high: float

    @property
    def swing(self) -> float:
        """Absolute metric range across the parameter's bounds."""
        return abs(self.metric_at_high - self.metric_at_low)

    def __str__(self) -> str:
        return (f"{self.parameter}: metric {self.metric_at_low:.1f} → "
                f"{self.metric_at_high:.1f} (swing {self.swing:.1f})")


def tornado(metric: Callable[[Mapping[str, float]], float],
            parameters: Mapping[str, tuple[float, float, float]],
            ) -> list[SensitivityResult]:
    """Rank parameters by their one-at-a-time metric swing.

    Args:
        metric: evaluates the model for a full parameter assignment
            (name → value).
        parameters: name → (low, baseline, high).

    Returns:
        Results sorted by decreasing swing.
    """
    if not parameters:
        raise ValueError("no parameters to analyse")
    for name, (low, base, high) in parameters.items():
        if not low <= base <= high:
            raise ValueError(
                f"{name}: bounds must satisfy low <= base <= high, "
                f"got ({low}, {base}, {high})")
    baseline = {name: bounds[1] for name, bounds in parameters.items()}
    results = []
    for name, (low, _, high) in parameters.items():
        at_low = metric({**baseline, name: low})
        at_high = metric({**baseline, name: high})
        results.append(SensitivityResult(name, low, high,
                                         at_low, at_high))
    return sorted(results, key=lambda r: r.swing, reverse=True)
