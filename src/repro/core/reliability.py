"""Reliability analysis (paper §6).

URLLC reliability has two faces:

1. channel-induced packet loss (widely studied; modelled in
   :mod:`repro.phy.channel`), and
2. **non-deterministic latency**: processing and radio delays fluctuate,
   and a fluctuation that crosses a deadline *is* a loss even though the
   packet eventually arrives.  This module quantifies that second face:
   latency-percentile reliability, the margin a scheduler must budget to
   survive a jitter regime, and the margin-vs-latency trade-off the
   paper says system design must balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.feasibility import Requirement
from repro.net.probes import LatencyProbe
from repro.radio.os_jitter import OsJitterModel
from repro.phy.timebase import us_from_tc

__all__ = [
    "ReliabilityReport",
    "assess",
    "MarginTradeoff",
    "margin_tradeoff",
    "required_margin_us",
]


@dataclass(frozen=True)
class ReliabilityReport:
    """Latency-based reliability of one measured run."""

    requirement_name: str
    budget_us: float
    target_reliability: float
    achieved_reliability: float
    delivered: int
    dropped: int

    @property
    def met(self) -> bool:
        return self.achieved_reliability >= self.target_reliability

    def __str__(self) -> str:
        verdict = "MET" if self.met else "VIOLATED"
        return (f"{self.requirement_name}: "
                f"{self.achieved_reliability:.5%} within "
                f"{self.budget_us:.0f} µs "
                f"(target {self.target_reliability:.5%}) — {verdict}")


def assess(probe: LatencyProbe, requirement: Requirement,
           dropped: int = 0) -> ReliabilityReport:
    """Score a measured latency distribution against a requirement.

    Dropped packets count against reliability — a packet that never
    arrives certainly missed its deadline.
    """
    budget_us = us_from_tc(requirement.one_way_budget_tc)
    delivered = len(probe)
    total = delivered + dropped
    if total == 0:
        raise ValueError("no packets to assess")
    within = sum(1 for lat in probe.latencies_us() if lat <= budget_us)
    return ReliabilityReport(
        requirement_name=requirement.name,
        budget_us=budget_us,
        target_reliability=requirement.reliability,
        achieved_reliability=within / total,
        delivered=delivered,
        dropped=dropped,
    )


@dataclass(frozen=True)
class MarginTradeoff:
    """One point of the §6 margin-vs-latency trade-off."""

    margin_us: float
    deadline_miss_probability: float
    added_latency_us: float


def margin_tradeoff(jitter: OsJitterModel,
                    deterministic_us: float,
                    margins_us: list[float],
                    rng: np.random.Generator,
                    draws: int = 100_000) -> list[MarginTradeoff]:
    """How much margin buys how much reliability.

    A transmission is prepared ``margin_us`` before its window; it makes
    the deadline iff ``deterministic + jitter <= margin``.  Larger
    margins cut the miss probability but add their full length to every
    packet's latency — the §6 balance.
    """
    if deterministic_us < 0:
        raise ValueError("deterministic latency must be >= 0")
    samples = np.array([jitter.sample_us(rng) for _ in range(draws)])
    results = []
    for margin_us in margins_us:
        misses = float(np.mean(deterministic_us + samples > margin_us))
        results.append(MarginTradeoff(
            margin_us=margin_us,
            deadline_miss_probability=misses,
            added_latency_us=max(0.0, margin_us - deterministic_us),
        ))
    return results


def required_margin_us(jitter: OsJitterModel, deterministic_us: float,
                       reliability: float,
                       rng: np.random.Generator,
                       draws: int = 200_000) -> float:
    """Smallest margin achieving the target deadline reliability."""
    if not 0.0 < reliability < 1.0:
        raise ValueError("reliability must be in (0, 1)")
    samples = np.array([jitter.sample_us(rng) for _ in range(draws)])
    return deterministic_us + float(np.quantile(samples, reliability))
