"""The paper's primary contribution: system-level URLLC latency analysis.

- :mod:`repro.core.latency_model` — exact worst/best-case one-way
  latency for any duplexing configuration (Fig 4);
- :mod:`repro.core.design_space` — the Table 1 feasibility matrix;
- :mod:`repro.core.feasibility` — URLLC/6G requirement definitions;
- :mod:`repro.core.budget` — protocol/processing/radio budget
  composition and bottleneck analysis (§4);
- :mod:`repro.core.journey` — Fig 3 packet-journey reconstruction;
- :mod:`repro.core.reliability` — §6 latency-based reliability.
"""

from repro.core.budget import (
    BudgetBreakdown,
    SystemProfile,
    slot_duration_sweep,
    system_extremes,
    worst_case_budget,
)
from repro.core.design_space import (
    TABLE1_COLUMNS,
    TABLE1_ROWS,
    FeasibilityCell,
    enumerate_common_configurations,
    evaluate_cell,
    exhaustive_search,
    feasibility_matrix,
    feasible_designs,
    render_table1,
    table1_schemes,
)
from repro.core.sensitivity import SensitivityResult, tornado
from repro.core.feasibility import (
    URLLC_5G,
    URLLC_5G_RELAXED,
    URLLC_6G,
    Requirement,
    verdict_mark,
)
from repro.core.journey import (
    JourneyStep,
    PingJourney,
    reconstruct_ping_journey,
)
from repro.core.latency_model import (
    GrantChainTrace,
    LatencyExtremes,
    LatencyModel,
    ProtocolTimings,
)
from repro.core.reliability import (
    MarginTradeoff,
    ReliabilityReport,
    assess,
    margin_tradeoff,
    required_margin_us,
)

__all__ = [
    "BudgetBreakdown",
    "SystemProfile",
    "slot_duration_sweep",
    "system_extremes",
    "worst_case_budget",
    "TABLE1_COLUMNS",
    "TABLE1_ROWS",
    "FeasibilityCell",
    "enumerate_common_configurations",
    "exhaustive_search",
    "SensitivityResult",
    "tornado",
    "evaluate_cell",
    "feasibility_matrix",
    "feasible_designs",
    "render_table1",
    "table1_schemes",
    "URLLC_5G",
    "URLLC_5G_RELAXED",
    "URLLC_6G",
    "Requirement",
    "verdict_mark",
    "JourneyStep",
    "PingJourney",
    "reconstruct_ping_journey",
    "GrantChainTrace",
    "LatencyExtremes",
    "LatencyModel",
    "ProtocolTimings",
    "MarginTradeoff",
    "ReliabilityReport",
    "assess",
    "margin_tradeoff",
    "required_margin_us",
]
