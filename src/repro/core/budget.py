"""Three-source latency budgets and their interdependency (paper §4).

The paper's central analytical device is splitting one-way latency into
**protocol**, **processing** and **radio** sources and observing that

1. any of them can bottleneck the system,
2. they interact: processing and radio latency consume protocol
   opportunities (a transmission that is not ready when its window
   starts waits for the next one), so halving the slot duration stops
   helping once radio latency dominates — and can even hurt, because
   per-slot overheads recur twice as often.

:class:`SystemProfile` carries the deterministic planning values (means
of the calibrated distributions); :func:`system_extremes` folds them
into the analytical protocol model via the chain-delay fields of
:class:`~repro.core.latency_model.ProtocolTimings`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency_model import (
    LatencyExtremes,
    LatencyModel,
    ProtocolTimings,
)
from repro.mac.scheme import DuplexingScheme
from repro.mac.types import AccessMode, Direction
from repro.phy.timebase import tc_from_us, us_from_tc
from repro import calibration

__all__ = [
    "SystemProfile",
    "BudgetBreakdown",
    "system_extremes",
    "worst_case_budget",
    "slot_duration_sweep",
]


@dataclass(frozen=True)
class SystemProfile:
    """Deterministic (planning) system latencies, in µs.

    Defaults follow the calibrated testbed: Table 2 means for the gNB,
    the scaled UE stack, and a USB radio head.
    """

    gnb_tx_processing_us: float = 0.0   #: SDAP↓..RLC before the queue
    gnb_rx_processing_us: float = 0.0   #: PHY↑..SDAP after reception
    ue_tx_processing_us: float = 0.0    #: APP↓..MAC before access
    ue_rx_processing_us: float = 0.0    #: PHY↑..APP after reception
    gnb_radio_us: float = 0.0           #: gNB-side RH one-way
    ue_radio_us: float = 0.0            #: UE-side RH one-way
    sr_decode_us: float = 0.0           #: gNB PHY decode of the SR
    grant_decode_us: float = 0.0        #: UE PDCCH decode

    @classmethod
    def testbed(cls, gnb_radio_us: float =
                calibration.TESTBED_RH_LATENCY_US) -> "SystemProfile":
        """Profile matching the §7 testbed calibration."""
        stats = calibration.GNB_LAYER_STATS
        tx_scale = calibration.UE_TX_PROCESSING_SCALE
        rx_scale = calibration.UE_RX_PROCESSING_SCALE
        gnb_down = sum(stats[l][0] for l in ("SDAP", "PDCP", "RLC"))
        gnb_up = sum(stats[l][0] for l in
                     ("PHY", "MAC", "RLC", "PDCP", "SDAP"))
        ue_down = (calibration.UE_APP_DELAY_US[0]
                   + tx_scale * sum(stats[l][0] for l in
                                    ("SDAP", "PDCP", "RLC", "MAC",
                                     "PHY")))
        ue_up = rx_scale * sum(stats[l][0] for l in
                               ("PHY", "MAC", "RLC", "PDCP", "SDAP"))
        return cls(
            gnb_tx_processing_us=gnb_down,
            gnb_rx_processing_us=gnb_up,
            ue_tx_processing_us=ue_down,
            ue_rx_processing_us=ue_up,
            gnb_radio_us=gnb_radio_us,
            ue_radio_us=50.0,  # integrated modem front-end
            sr_decode_us=stats["PHY"][0],
            grant_decode_us=rx_scale * stats["PHY"][0],
        )

    # ------------------------------------------------------------------
    def protocol_timings(self, direction: Direction) -> ProtocolTimings:
        """Fold the profile into the analytical chain delays."""
        if direction is Direction.DL:
            return ProtocolTimings(
                dl_lead=tc_from_us(self.gnb_radio_us))
        return ProtocolTimings(
            ul_lead=tc_from_us(self.ue_radio_us),
            sr_decode=tc_from_us(self.sr_decode_us
                                 + self.gnb_radio_us),
            grant_duration=tc_from_us(self.grant_decode_us
                                      + self.gnb_radio_us),
            ue_grant_processing=tc_from_us(self.ue_radio_us),
        )

    def processing_us(self, direction: Direction) -> float:
        """Total (non-protocol-coupled) processing on the path."""
        if direction is Direction.DL:
            return self.gnb_tx_processing_us + self.ue_rx_processing_us
        return self.ue_tx_processing_us + self.gnb_rx_processing_us

    def radio_us(self, direction: Direction) -> float:
        """Radio latency on both ends of the data hop."""
        return self.gnb_radio_us + self.ue_radio_us


@dataclass(frozen=True)
class BudgetBreakdown:
    """Worst-case one-way latency split into the three sources (µs)."""

    scheme_name: str
    direction: Direction
    access: AccessMode | None
    protocol_us: float
    processing_us: float
    radio_us: float

    @property
    def total_us(self) -> float:
        return self.protocol_us + self.processing_us + self.radio_us

    def bottleneck(self) -> str:
        """The dominating latency source (§4: any can bottleneck)."""
        values = {
            "protocol": self.protocol_us,
            "processing": self.processing_us,
            "radio": self.radio_us,
        }
        return max(values, key=values.get)  # type: ignore[arg-type]

    def __str__(self) -> str:
        return (f"{self.scheme_name} {self.direction.value}: "
                f"total {self.total_us:.0f} µs = protocol "
                f"{self.protocol_us:.0f} + processing "
                f"{self.processing_us:.0f} + radio {self.radio_us:.0f}")


def system_extremes(scheme: DuplexingScheme, direction: Direction,
                    access: AccessMode, profile: SystemProfile
                    ) -> LatencyExtremes:
    """Protocol extremes with the profile's chain delays folded in."""
    model = LatencyModel(scheme, profile.protocol_timings(direction))
    return model.extremes(direction, access)


def worst_case_budget(scheme: DuplexingScheme, direction: Direction,
                      access: AccessMode, profile: SystemProfile
                      ) -> BudgetBreakdown:
    """End-to-end worst-case latency, decomposed.

    The protocol model already *contains* the radio leads (they consume
    opportunities); the decomposition reports them under "radio" and the
    residual structural wait under "protocol", then adds the pure
    processing tails outside the access chain.
    """
    extremes = system_extremes(scheme, direction, access, profile)
    # Radio time folded into the protocol extremes (transmit side):
    if direction is Direction.DL:
        tx_radio = profile.gnb_radio_us
        rx_radio = profile.ue_radio_us
    else:
        tx_radio = profile.ue_radio_us
        rx_radio = profile.gnb_radio_us
    if access is AccessMode.GRANT_BASED and direction is Direction.UL:
        # The SR (UE→gNB) and the grant (gNB→UE) each crossed the
        # gNB radio once more inside the chain.
        tx_radio += 2 * profile.gnb_radio_us
    protocol = max(0.0, us_from_tc(extremes.worst_tc) - tx_radio)
    return BudgetBreakdown(
        scheme_name=scheme.name,
        direction=direction,
        access=access if direction is Direction.UL else None,
        protocol_us=protocol,
        processing_us=profile.processing_us(direction),
        radio_us=tx_radio + rx_radio,
    )


def slot_duration_sweep(make_scheme, mus: list[int],
                        direction: Direction, access: AccessMode,
                        radio_us_values: list[float]
                        ) -> dict[float, dict[int, float]]:
    """The §4 ablation: worst-case total latency across numerologies
    for several radio latencies.

    ``make_scheme(mu)`` builds the configuration at each numerology.
    Returns ``{radio_us: {mu: total_worst_us}}``; the flattening of the
    curves as ``radio_us`` grows is the "halving the slot duration might
    not reduce latency" effect.
    """
    results: dict[float, dict[int, float]] = {}
    for radio_us in radio_us_values:
        per_mu: dict[int, float] = {}
        for mu in mus:
            scheme = make_scheme(mu)
            profile = SystemProfile(gnb_radio_us=radio_us,
                                    ue_radio_us=radio_us)
            breakdown = worst_case_budget(scheme, direction, access,
                                          profile)
            per_mu[mu] = breakdown.total_us
        results[radio_us] = per_mu
    return results
