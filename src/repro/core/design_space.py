"""Design-space enumeration and the Table 1 feasibility matrix.

§5 of the paper evaluates the 0.5 ms one-way requirement for every
*minimal* TDD Common Configuration (DU, DM, MU at the 0.5 ms minimum
pattern period), the Mini-Slot configuration and FDD, under three access
rows: grant-based UL, grant-free UL, and DL.  This module reproduces
that matrix from the analytical model and also exposes the wider sweep
(slot durations, pattern lengths) used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.core.feasibility import URLLC_5G, Requirement, verdict_mark
from repro.core.latency_model import (
    LatencyExtremes,
    LatencyModel,
    ProtocolTimings,
)
from repro.mac.catalog import (
    fdd,
    minimal_dm,
    minimal_du,
    minimal_mini_slot,
    minimal_mu,
)
from repro.mac.scheme import DuplexingScheme
from repro.mac.tdd import TddCommonConfig
from repro.mac.types import AccessMode, Direction
from repro.phy.numerology import Numerology

__all__ = [
    "TABLE1_ROWS",
    "TABLE1_COLUMNS",
    "FeasibilityCell",
    "table1_schemes",
    "evaluate_cell",
    "feasibility_matrix",
    "feasible_designs",
    "enumerate_common_configurations",
    "exhaustive_search",
    "render_table1",
]

#: Row labels in the paper's Table 1 order.
TABLE1_ROWS: tuple[str, ...] = ("Grant-Based UL", "Grant-Free UL", "DL")

#: Column labels in the paper's Table 1 order.
TABLE1_COLUMNS: tuple[str, ...] = ("DU", "DM", "MU", "Mini-slot", "FDD")


@dataclass(frozen=True)
class FeasibilityCell:
    """One cell of the feasibility matrix."""

    scheme_name: str
    row: str
    extremes: LatencyExtremes
    meets: bool

    @property
    def mark(self) -> str:
        return verdict_mark(self.meets)


def table1_schemes(mu: int = 2) -> list[DuplexingScheme]:
    """The five columns of Table 1, as configured schemes (µ=2 →
    0.25 ms slots, the only FR1 slot duration that can feasibly meet
    URLLC, §5)."""
    return [
        minimal_du(mu),
        minimal_dm(mu),
        minimal_mu(mu),
        minimal_mini_slot(mu),
        fdd(mu),
    ]


def evaluate_cell(scheme: DuplexingScheme, row: str,
                  requirement: Requirement = URLLC_5G,
                  timings: ProtocolTimings | None = None
                  ) -> FeasibilityCell:
    """Evaluate one (configuration, access-row) cell analytically."""
    model = LatencyModel(scheme, timings)
    if row == "DL":
        extremes = model.extremes(Direction.DL)
    elif row == "Grant-Free UL":
        extremes = model.extremes(Direction.UL, AccessMode.GRANT_FREE)
    elif row == "Grant-Based UL":
        extremes = model.extremes(Direction.UL, AccessMode.GRANT_BASED)
    else:
        raise ValueError(f"unknown Table 1 row {row!r}; "
                         f"expected one of {TABLE1_ROWS}")
    meets = requirement.met_by_worst_case(extremes)
    return FeasibilityCell(scheme.name, row, extremes, meets)


def feasibility_matrix(mu: int = 2,
                       requirement: Requirement = URLLC_5G,
                       timings: ProtocolTimings | None = None
                       ) -> dict[str, dict[str, FeasibilityCell]]:
    """The full Table 1 matrix: ``matrix[row][column] -> cell``."""
    schemes = {scheme.name: scheme for scheme in table1_schemes(mu)}
    matrix: dict[str, dict[str, FeasibilityCell]] = {}
    for row in TABLE1_ROWS:
        matrix[row] = {}
        for column in TABLE1_COLUMNS:
            key = "mini-slot/7" if column == "Mini-slot" else column
            matrix[row][column] = evaluate_cell(
                schemes[key], row, requirement, timings)
    return matrix


def feasible_designs(mu: int = 2,
                     requirement: Requirement = URLLC_5G
                     ) -> list[tuple[str, str]]:
    """All (configuration, UL access) pairs meeting the requirement on
    *both* directions — the paper's conclusion is that this set is
    small: DM/Mini-slot/FDD with grant-free UL, plus Mini-slot/FDD with
    grant-based UL."""
    matrix = feasibility_matrix(mu, requirement)
    designs = []
    for column in TABLE1_COLUMNS:
        dl_ok = matrix["DL"][column].meets
        for access_row in ("Grant-Based UL", "Grant-Free UL"):
            if dl_ok and matrix[access_row][column].meets:
                designs.append((column, access_row))
    return designs


def enumerate_common_configurations(
        mu: int = 2,
        max_period_ms: float = 2.5,
        mixed_splits: tuple[tuple[int, int, int], ...] = ((4, 2, 8),
                                                          (8, 2, 4)),
) -> list[TddCommonConfig]:
    """Every expressible single-pattern TDD Common Configuration.

    Walks the TS 38.331 grammar: for each allowed period that holds an
    integer slot count at µ, every slot-count split into leading DL
    slots, an optional mixed slot (with each candidate symbol split),
    and trailing UL slots.  §10's "we propose all possible
    configurations" made concrete — the exhaustive-search benchmark
    runs the feasibility check over this whole set.

    The enumeration is a pure function of its (hashable) arguments and
    every campaign point re-walks it, so the grammar walk is memoized;
    callers get a fresh list over shared config objects (treated as
    immutable everywhere, like the frozen patterns they wrap).
    """
    return list(_enumerate_cached(mu, max_period_ms, mixed_splits))


@lru_cache(maxsize=32)
def _enumerate_cached(
        mu: int,
        max_period_ms: float,
        mixed_splits: tuple[tuple[int, int, int], ...],
) -> tuple[TddCommonConfig, ...]:
    from repro.mac.tdd import ALLOWED_PERIODS_MS, TddPattern

    numerology = Numerology(mu)
    configurations: list[TddCommonConfig] = []
    for period in ALLOWED_PERIODS_MS:
        if float(period) > max_period_ms:
            continue
        slots = period * numerology.slots_per_subframe
        if slots.denominator != 1 or slots < 2:
            continue
        n_slots = int(slots)
        for dl_slots in range(0, n_slots + 1):
            for ul_slots in range(0, n_slots - dl_slots + 1):
                free = n_slots - dl_slots - ul_slots
                if free == 0:
                    if dl_slots and ul_slots:
                        pattern = TddPattern(period_ms=period,
                                             dl_slots=dl_slots,
                                             ul_slots=ul_slots)
                        configurations.append(TddCommonConfig(
                            numerology, [pattern]))
                    continue
                if free != 1:
                    continue  # more than one flexible slot is waste
                for split in mixed_splits:
                    dl_symbols, _, ul_symbols = split
                    pattern = TddPattern(period_ms=period,
                                         dl_slots=dl_slots,
                                         dl_symbols=dl_symbols,
                                         ul_symbols=ul_symbols,
                                         ul_slots=ul_slots)
                    configurations.append(TddCommonConfig(
                        numerology, [pattern]))
    return tuple(configurations)


def exhaustive_search(mu: int = 2,
                      requirement: Requirement = URLLC_5G,
                      max_period_ms: float = 2.5
                      ) -> list[tuple[TddCommonConfig, str]]:
    """All (configuration, UL-access) pairs meeting the requirement on
    both directions, over the full Common Configuration grammar."""
    feasible: list[tuple[TddCommonConfig, str]] = []
    for config in enumerate_common_configurations(mu, max_period_ms):
        model = LatencyModel(config)
        try:
            dl = model.extremes(Direction.DL)
        except LookupError:
            continue  # no DL windows at all
        if not requirement.met_by_worst_case(dl):
            continue
        for access in (AccessMode.GRANT_FREE, AccessMode.GRANT_BASED):
            try:
                ul = model.extremes(Direction.UL, access)
            except LookupError:
                continue
            if requirement.met_by_worst_case(ul):
                feasible.append((config, access.value))
    return feasible


def render_table1(matrix: dict[str, dict[str, FeasibilityCell]] | None = None,
                  mu: int = 2) -> str:
    """Text rendering in the layout of the paper's Table 1."""
    if matrix is None:
        matrix = feasibility_matrix(mu)
    width = max(len(c) for c in TABLE1_COLUMNS) + 2
    header = " " * 16 + "".join(c.center(width) for c in TABLE1_COLUMNS)
    lines = [header]
    for row in TABLE1_ROWS:
        cells = "".join(
            matrix[row][column].mark.center(width)
            for column in TABLE1_COLUMNS)
        lines.append(f"{row:<16}{cells}")
    return "\n".join(lines)
