"""Shared processing resources.

A software gNB runs its whole stack on a handful of CPU cores; when
several UEs' packets need processing at once, layer work queues behind
the cores and the *effective* processing time grows — the §7 caveat
that "higher number of UEs might increase the processing times
noticeably".  :class:`CpuResource` models this as an m-server FIFO
queue over job durations.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.phy.timebase import us_from_tc

__all__ = ["CpuResource"]


class CpuResource:
    """An m-core FIFO processing resource.

    Jobs are served in submission order; a job's *service time* is its
    intrinsic processing duration, and its *response time* additionally
    includes the wait for a free core.  The response time is what the
    caller's completion callback observes.
    """

    def __init__(self, sim: Simulator, n_cores: int = 1,
                 name: str = "cpu"):
        if n_cores < 1:
            raise ValueError(f"need at least one core, got {n_cores}")
        self.sim = sim
        self.n_cores = n_cores
        self.name = name
        self._core_free_at = [0] * n_cores
        self.jobs_executed = 0
        self.queueing_samples_us: list[float] = []

    def execute(self, duration_tc: int,
                callback: Callable[[], None]) -> int:
        """Run a job of ``duration_tc`` ticks; fire ``callback`` when it
        completes.  Returns the queueing delay incurred (ticks)."""
        if duration_tc < 0:
            raise ValueError(f"duration must be >= 0, got {duration_tc}")
        now = self.sim.now
        core = min(range(self.n_cores),
                   key=lambda i: self._core_free_at[i])
        start = max(now, self._core_free_at[core])
        finish = start + duration_tc
        self._core_free_at[core] = finish
        queueing = start - now
        self.jobs_executed += 1
        self.queueing_samples_us.append(us_from_tc(queueing))
        self.sim.schedule(finish, callback)
        return queueing

    def utilisation_until(self, horizon_tc: int) -> float:
        """Fraction of core-time committed within ``[0, horizon]``."""
        if horizon_tc <= 0:
            raise ValueError("horizon must be positive")
        busy = sum(min(free_at, horizon_tc)
                   for free_at in self._core_free_at)
        return busy / (self.n_cores * horizon_tc)

    def mean_queueing_us(self) -> float:
        """Average wait for a core across all executed jobs."""
        if not self.queueing_samples_us:
            return 0.0
        return sum(self.queueing_samples_us) / len(self.queueing_samples_us)
