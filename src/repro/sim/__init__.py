"""Discrete-event simulation substrate.

The engine keeps time as an *integer* count of 3GPP basic time units
(Tc, see :mod:`repro.phy.timebase`), which makes every slot and symbol
boundary exact — no floating-point drift over long simulations.

Public surface:

- :class:`~repro.sim.engine.Simulator` — the event loop.
- :class:`~repro.sim.engine.Event` — a cancellable scheduled callback.
- :class:`~repro.sim.rng.RngRegistry` — named, reproducible random streams.
- :class:`~repro.sim.trace.Tracer` / :class:`~repro.sim.trace.TraceRecord`
  — structured event tracing used by the latency probes.
- :class:`~repro.sim.sampling.BufferedSampler` /
  :func:`~repro.sim.sampling.force_sequential` — block-buffered delay
  sampling behind the determinism contract in ``docs/PERFORMANCE.md``.
"""

from repro.sim.engine import Event, Simulator, SimulationError
from repro.sim.resources import CpuResource
from repro.sim.rng import RngRegistry
from repro.sim.sampling import BufferedSampler, force_sequential
from repro.sim.sanitize import DeterminismViolation, sanitizer_session
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "Simulator",
    "SimulationError",
    "CpuResource",
    "RngRegistry",
    "BufferedSampler",
    "DeterminismViolation",
    "force_sequential",
    "sanitizer_session",
    "TraceRecord",
    "Tracer",
]
