"""Reproducible, named random-number streams.

Simulations draw randomness from many model components (per-layer
processing jitter, OS scheduling spikes, channel erasures, traffic
arrivals).  Sharing one generator across components makes results depend
on the call interleaving; instead every component asks the registry for a
*named* stream, derived deterministically from ``(seed, name)``.  Adding
a new component therefore never perturbs the draws of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

from . import sanitize

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, deterministic ``numpy`` generators.

    Example::

        rngs = RngRegistry(seed=7)
        a = rngs.stream("phy.decode")
        b = rngs.stream("radio.usb")   # independent of ``a``

    Requesting the same name twice returns the *same* generator object,
    so state advances coherently within a component.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, int) or seed < 0:
            raise ValueError(f"seed must be a non-negative int, got {seed!r}")
        self._seed = seed
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name`` (created on first use)."""
        if not name:
            raise ValueError("stream name must be non-empty")
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(self._entropy_for(name))
            if sanitize.sanitize_active():
                # Under the determinism sanitizer, vend a recording
                # proxy instead.  The proxy forwards every draw to the
                # real generator (bit-identical results) and is cached
                # like any stream, so identity checks — e.g.
                # BufferedSampler's ownership guard — keep working.
                generator = sanitize.RecordingGenerator(
                    generator, name, sanitize.current_log())
            self._streams[name] = generator
        return generator

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one.

        Used to give each UE (or each benchmark repetition) its own
        namespace without coordinating stream names globally.
        """
        return RngRegistry(self._entropy_for(f"fork:{salt}") % (2 ** 63))

    def names(self) -> list[str]:
        """Names of streams created so far (sorted, for diagnostics)."""
        return sorted(self._streams)

    def _entropy_for(self, name: str) -> int:
        digest = hashlib.sha256(
            f"{self._seed}/{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
