"""Structured event tracing.

Every model component can emit :class:`TraceRecord` instances describing
what happened and when.  The latency probes (:mod:`repro.net.probes`) and
the packet-journey reconstruction (:mod:`repro.core.journey`) are built on
these records rather than on ad-hoc prints, so the same simulation run can
be analysed at several granularities.

Records carry:

- ``time`` — integer Tc tick of the event,
- ``category`` — a dotted component path (``"gnb.mac"``, ``"ue.phy"``...),
- ``name`` — the event kind (``"sr_tx"``, ``"grant_rx"``, ``"rlc_enqueue"``),
- ``fields`` — free-form payload (packet ids, sizes, decomposition...).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time: int
    category: str
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def canonical(self) -> str:
        """A stable one-line rendering used for digests and diffs."""
        payload = ",".join(f"{k}={self.fields[k]!r}"
                           for k in sorted(self.fields))
        return f"{self.time}|{self.category}|{self.name}|{payload}"

    def matches(self, category: Optional[str] = None,
                name: Optional[str] = None) -> bool:
        """True when the record matches the given filters.

        ``category`` matches by prefix on dot boundaries, so a filter of
        ``"gnb"`` catches ``"gnb.mac"`` but not ``"gnbx"``.
        """
        if name is not None and self.name != name:
            return False
        if category is not None:
            if not (self.category == category
                    or self.category.startswith(category + ".")):
                return False
        return True


class Tracer:
    """Collects :class:`TraceRecord` objects emitted during a run.

    Tracing can be disabled wholesale (``enabled=False``) to keep long
    benchmark runs allocation-free, or narrowed with a predicate over
    ``(time, category, name)``.  The predicate deliberately does not see
    the fields payload: it runs *before* a :class:`TraceRecord` (and its
    fields dict) is constructed, so a filtered-out emit allocates
    nothing.  Hot call sites extend the same idea with the lazy-fields
    convention — guard the whole ``emit(...)`` call (keyword-argument
    construction included) behind ``if tracer.enabled:``.
    """

    def __init__(self, enabled: bool = True,
                 predicate: Optional[Callable[[int, str, str],
                                              bool]] = None):
        self.enabled = enabled
        self._predicate = predicate
        self._records: list[TraceRecord] = []
        self._subscribers: list[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------
    def emit(self, time: int, category: str, name: str,
             **fields: Any) -> None:
        """Record an event (allocation-free no-op when disabled or
        rejected by the predicate)."""
        if not self.enabled:
            return
        if (self._predicate is not None
                and not self._predicate(time, category, name)):
            return
        record = TraceRecord(int(time), category, name, fields)
        self._records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)

    def subscribe(self, callback: Callable[[TraceRecord], None]) -> None:
        """Invoke ``callback`` for every future record (live analysis)."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    def records(self, category: Optional[str] = None,
                name: Optional[str] = None) -> list[TraceRecord]:
        """Records matching the filters, in emission order."""
        return [r for r in self._records if r.matches(category, name)]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()

    def digest(self) -> str:
        """SHA-256 over the canonical record stream.

        Two simulation runs of the same scenario with the same seed must
        produce identical digests; ``urllc5g check --determinism`` and
        the determinism tests are built on this.
        """
        hasher = hashlib.sha256()
        for record in self._records:
            hasher.update(record.canonical().encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def first(self, category: Optional[str] = None,
              name: Optional[str] = None) -> Optional[TraceRecord]:
        """First matching record or None."""
        for record in self._records:
            if record.matches(category, name):
                return record
        return None

    def last(self, category: Optional[str] = None,
             name: Optional[str] = None) -> Optional[TraceRecord]:
        """Last matching record or None."""
        for record in reversed(self._records):
            if record.matches(category, name):
                return record
        return None
