"""Runtime determinism sanitizer: recording proxies for RNG streams.

The determinism contract (docs/PERFORMANCE.md, docs/ROBUSTNESS.md) says
every registry stream has exactly one well-ordered consumer; buffered
samplers additionally take *exclusive* ownership of their stream.  The
static side of that contract is checked by ``urllc5g detsan``; this
module is the dynamic side.  When sanitizing is active (environment
variable ``URLLC5G_SANITIZE=1``, ``urllc5g bench --sanitize``, or a
:func:`sanitizer_session`), :class:`~repro.sim.rng.RngRegistry` wraps
every generator it vends in a :class:`RecordingGenerator` proxy that

- logs every draw as (stream, consumer qualname, sim time, draw count),
- raises :exc:`DeterminismViolation` when a stream claimed exclusively
  by a buffered sampler is drawn from by anyone else.

The proxy *forwards* draws to the real generator and never consumes
entropy itself, so sanitized runs are bit-identical to unsanitized
ones.  When sanitizing is off, nothing here is on any hot path: the
registry vends plain numpy Generators exactly as before.

This module lives in ``repro.sim`` (not ``repro.devtools``) because the
simulation core must not import devtools; ``repro.devtools.detsan``
re-exports it alongside the static pass.
"""

from __future__ import annotations

import os
import sys
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "DeterminismViolation",
    "DrawRecord",
    "StreamLog",
    "SanitizeLog",
    "RecordingGenerator",
    "sanitize_active",
    "sanitizer_session",
    "current_log",
    "claim_exclusive",
    "owner_section",
    "caller_qualname",
    "set_sim_clock",
]

#: Environment flag that turns sanitizing on process-wide.  Set by
#: ``urllc5g bench --sanitize`` before workers spawn so every process
#: in a parallel campaign records and checks draws.
ENV_FLAG = "URLLC5G_SANITIZE"

#: ``numpy.random.Generator`` methods that consume entropy.  Attribute
#: accesses for these names return a recording wrapper; everything else
#: is forwarded untouched.
DRAW_METHODS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "integers", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_hypergeometric", "multivariate_normal",
    "negative_binomial", "noncentral_chisquare", "noncentral_f", "normal",
    "pareto", "permutation", "permuted", "poisson", "power", "random",
    "rayleigh", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})

#: How many recent draws to keep per stream for violation reports.
RECENT_DRAWS = 8


class DeterminismViolation(RuntimeError):
    """The RNG stream-ownership / determinism contract was broken.

    Raised by the runtime sanitizer (cross-consumer draw on an exclusive
    stream, mixed buffered/sequential modes) and by
    :class:`~repro.sim.sampling.BufferedSampler` when ``sample()`` is
    called with a Generator it does not own.  Carries the stream name
    and both consumer qualnames so dynamic reports line up with the
    static ``urllc5g detsan`` output.
    """

    def __init__(self, message: str, *, stream: str | None = None,
                 owner: str | None = None, consumer: str | None = None):
        super().__init__(message)
        self.stream = stream
        self.owner = owner
        self.consumer = consumer


@dataclass(frozen=True)
class DrawRecord:
    """One recorded draw on a sanitized stream."""

    stream: str
    consumer: str
    method: str
    sim_time: int | None
    index: int  # 0-based draw count on this stream at the time


@dataclass
class StreamLog:
    """Aggregated draw log for one stream."""

    stream: str
    draws: int = 0
    #: consumer qualname -> draw count (insertion-ordered).
    consumers: dict[str, int] = field(default_factory=dict)
    recent: deque = field(default_factory=lambda: deque(maxlen=RECENT_DRAWS))
    #: Qualname of the buffered sampler's constructor when the stream
    #: has been claimed exclusively; ``None`` for unclaimed streams.
    exclusive_owner: str | None = None


class SanitizeLog:
    """Per-run draw log shared by every sanitized stream."""

    def __init__(self) -> None:
        self.streams: dict[str, StreamLog] = {}

    def stream(self, name: str) -> StreamLog:
        log = self.streams.get(name)
        if log is None:
            log = StreamLog(name)
            self.streams[name] = log
        return log

    def claim(self, name: str, owner: str) -> None:
        """Mark ``name`` as exclusively owned by ``owner``.

        A second claim by a *different* owner is itself a violation:
        two buffered samplers over one stream each believe they see the
        full bit-stream, and neither does.
        """
        log = self.stream(name)
        if log.exclusive_owner is not None and log.exclusive_owner != owner:
            raise DeterminismViolation(
                f"stream {name!r} claimed exclusively by two buffers: "
                f"{log.exclusive_owner} and {owner}",
                stream=name, owner=log.exclusive_owner, consumer=owner)
        log.exclusive_owner = owner

    def draw_counts(self) -> dict[str, int]:
        """Snapshot of per-stream draw counts, for replay comparison."""
        return {name: log.draws for name, log in sorted(self.streams.items())}

    def consumer_map(self) -> dict[str, list[str]]:
        """Snapshot of per-stream consumer qualnames (insertion order)."""
        return {name: list(log.consumers)
                for name, log in sorted(self.streams.items())}


# ---------------------------------------------------------------------------
# process state
# ---------------------------------------------------------------------------

_session_log: SanitizeLog | None = None
_env_log: SanitizeLog | None = None
_clock: Callable[[], int] | None = None


def sanitize_active() -> bool:
    """Whether draws should be recorded and checked in this process."""
    return _session_log is not None or os.environ.get(ENV_FLAG) == "1"


def current_log() -> SanitizeLog:
    """The log new proxies record into (session log, else env-mode log)."""
    global _env_log
    if _session_log is not None:
        return _session_log
    if _env_log is None:
        _env_log = SanitizeLog()
    return _env_log


@contextmanager
def sanitizer_session() -> Iterator[SanitizeLog]:
    """Activate sanitizing with a fresh log for the duration of the context.

    Streams must be *created* inside the context to be wrapped; activate
    before constructing the registry / system under test.  Yields the
    log for post-run inspection (draw counts, consumer maps).
    """
    global _session_log
    previous = _session_log
    log = SanitizeLog()
    _session_log = log
    try:
        yield log
    finally:
        _session_log = previous


def set_sim_clock(now: Callable[[], int] | None) -> None:
    """Register the simulation clock used to timestamp draw records.

    :class:`~repro.sim.engine.Simulator` registers itself on
    construction when sanitizing is active; records made with no
    registered clock carry ``sim_time=None``.
    """
    global _clock
    _clock = now


def _sim_now() -> int | None:
    if _clock is None:
        return None
    try:
        return _clock()
    except Exception:
        return None


def caller_qualname(depth: int = 1) -> str:
    """``module.qualname`` of the calling frame ``depth`` levels up."""
    try:
        frame = sys._getframe(depth + 1)
    except ValueError:  # shallower stack than requested
        return "<unknown>"
    code = frame.f_code
    # co_qualname exists on 3.11+; fall back to the bare name on 3.10.
    qualname = getattr(code, "co_qualname", code.co_name)
    module = frame.f_globals.get("__name__", "<unknown>")
    return f"{module}.{qualname}"


# ---------------------------------------------------------------------------
# the recording proxy
# ---------------------------------------------------------------------------

class RecordingGenerator:
    """Forwarding proxy around a ``numpy.random.Generator``.

    Every draw-method access returns a thin wrapper that records the
    draw (stream, consumer qualname, sim time, draw index) and enforces
    exclusive claims before delegating to the real generator.  The
    proxy holds no entropy of its own, so the values produced — and the
    underlying stream position — are bit-identical to an unsanitized
    run.
    """

    __slots__ = ("_generator", "_stream", "_log", "_owner_depth")

    def __init__(self, generator: Any, stream: str, log: SanitizeLog):
        self._generator = generator
        self._stream = stream
        self._log = log
        #: >0 while the claiming buffer itself is refilling; draws made
        #: inside an :func:`owner_section` are the sanctioned ones.
        self._owner_depth = 0

    @property
    def stream_name(self) -> str:
        return self._stream

    @property
    def wrapped(self) -> Any:
        """The underlying ``numpy.random.Generator``."""
        return self._generator

    def __getattr__(self, name: str) -> Any:
        value = getattr(self._generator, name)
        if name in DRAW_METHODS:
            record = self._record

            def draw(*args: Any, **kwargs: Any) -> Any:
                record(name)
                return value(*args, **kwargs)

            draw.__name__ = name
            return draw
        return value

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (f"RecordingGenerator(stream={self._stream!r}, "
                f"wraps {self._generator!r})")

    def _record(self, method: str) -> None:
        # _record <- draw <- the consumer making the draw.
        consumer = caller_qualname(2)
        log = self._log.stream(self._stream)
        if log.exclusive_owner is not None and self._owner_depth == 0:
            raise DeterminismViolation(
                f"stream {self._stream!r} is exclusively owned by "
                f"{log.exclusive_owner} (buffered), but {consumer} drew "
                f"from it directly; interleaved draws desynchronize the "
                f"pre-drawn block from the scalar bit-stream",
                stream=self._stream, owner=log.exclusive_owner,
                consumer=consumer)
        record = DrawRecord(self._stream, consumer, method,
                            _sim_now(), log.draws)
        log.draws += 1
        log.consumers[consumer] = log.consumers.get(consumer, 0) + 1
        log.recent.append(record)


def claim_exclusive(rng: Any, owner: str) -> None:
    """Declare that ``owner`` (a buffered sampler) owns ``rng``'s stream.

    No-op unless ``rng`` is a :class:`RecordingGenerator` — plain
    Generators (sanitizing off) carry no stream identity to claim.
    """
    if isinstance(rng, RecordingGenerator):
        rng._log.claim(rng._stream, owner)


@contextmanager
def owner_section(rng: Any) -> Iterator[None]:
    """Mark draws inside the context as made by the exclusive owner.

    Buffered samplers wrap their block refills in this so the refill's
    own draws pass the exclusivity check (and are attributed in the log
    to the refilling frame, not flagged as foreign).
    """
    if isinstance(rng, RecordingGenerator):
        rng._owner_depth += 1
        try:
            yield
        finally:
            rng._owner_depth -= 1
    else:
        yield
