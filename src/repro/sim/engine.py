"""Minimal deterministic discrete-event engine.

The engine is a classic binary-heap event queue.  Three properties matter
for this project:

1. **Integer time.**  The clock is an integer (Tc units); callers convert
   from physical units with :mod:`repro.phy.timebase`.  Two events at the
   same tick run in scheduling order (FIFO), which keeps runs reproducible.
2. **Cancellation.**  Events are lazily cancelled (tombstoned), the usual
   heap idiom, so timers such as scheduling-request retransmissions can be
   abandoned cheaply.  The engine counts tombstones and compacts the heap
   when cancelled entries outnumber live ones, so a workload that cancels
   most of its timers keeps the queue bounded by its *live* event count.
3. **No global state.**  A :class:`Simulator` instance owns its queue, so
   tests can run many independent simulations in one process.

Hot-path layout: the heap stores ``(time, seq, event)`` triples rather
than events.  ``seq`` is unique, so tuple comparison is settled by the
first two integers in C and :class:`Event` instances are never compared
during sifting — the per-event ordering cost is two C integer
comparisons instead of a Python ``__lt__`` frame.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.sanitize import sanitize_active, set_sim_clock

__all__ = ["SimulationError", "Event", "Simulator"]

#: Queues smaller than this are never compacted: scanning them on pop is
#: cheaper than the bookkeeping, and tests with a handful of timers keep
#: exact heap contents.
_COMPACTION_MIN_QUEUE = 64


class SimulationError(RuntimeError):
    """Raised on misuse of the simulator (e.g. scheduling in the past)."""


def _dispatch_error(event: "Event", exc: Exception) -> SimulationError:
    """Wrap a callback failure with the simulation context it lost.

    A bare traceback out of a deep event cascade says nothing about
    *when* the failure happened; re-raising as :class:`SimulationError`
    restores the sim time, event sequence number, and callback identity
    (the original exception stays chained as ``__cause__``).
    """
    callback = event.callback
    name = (getattr(callback, "__qualname__", "") or repr(callback))
    return SimulationError(
        f"callback {name} raised {type(exc).__name__} at t={event.time} "
        f"(event seq {event.seq}): {exc}")


def _as_tick(value: int | float, what: str) -> int:
    """Coerce a scheduling time to an integer tick.

    Integral floats (e.g. the result of tick arithmetic that passed
    through a float) are accepted; non-integral values are rejected
    instead of silently truncated, because a dropped fraction of a tick
    is exactly the kind of unit bug the timebase discipline exists to
    prevent.
    """
    tick = int(value)
    if tick != value:
        raise SimulationError(
            f"{what} must be an integer tick count, got {value!r}; "
            "convert with repro.phy.timebase (tc_from_us/...) first")
    return tick


class Event:
    """A scheduled callback; returned by :meth:`Simulator.schedule`.

    Instances order by ``(time, seq)``.  ``seq`` is a monotone counter:
    ties at the same tick run in the order they were scheduled.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: int, seq: int,
                 callback: Callable[..., Any], args: tuple[Any, ...],
                 sim: "Simulator | None" = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running; idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_tombstone()

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class Simulator:
    """Event-driven simulator with an integer clock.

    Usage::

        sim = Simulator()
        sim.schedule(100, handler, arg1)   # absolute tick
        sim.call_in(50, handler)           # relative delay
        sim.run()                          # drain the queue
    """

    def __init__(self, start_time: int = 0):
        self._now: int = int(start_time)
        self._queue: list[tuple[int, int, Event]] = []
        self._seq: int = 0
        self._running = False
        self._processed: int = 0
        self._tombstones: int = 0
        if sanitize_active():
            # Timestamp sanitizer draw records with this simulation's
            # clock (the newest simulator wins; records without a
            # live clock carry sim_time=None).
            set_sim_clock(lambda: self._now)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulation time (integer ticks)."""
        return self._now

    def advance_to(self, at: int) -> None:
        """Move the clock forward to ``at`` without running any event.

        This exists for external executors (the slotted engine in
        :mod:`repro.sim.slotted`) that sequence their own work but share
        components whose behaviour reads :attr:`now` — fault-injection
        hooks, trace timestamps, the sanitizer's draw records.  The
        clock can only move forward, and never past a live queued
        event: an executor that owns the clock must also own the
        timeline.
        """
        if type(at) is not int:
            at = _as_tick(at, "advance_to time")
        if at < self._now:
            raise SimulationError(
                f"cannot advance to {at}; current time is {self._now}")
        if self._queue and self._queue[0][0] < at:
            raise SimulationError(
                f"cannot advance to {at} past a queued event at "
                f"{self._queue[0][0]}; run() the queue instead")
        self._now = at

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (excludes cancelled ones)."""
        return self._processed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return len(self._queue) - self._tombstones

    def queue_len(self) -> int:
        """Heap entries currently held, tombstones included — the
        quantity the compaction policy bounds."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, at: int, callback: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute tick ``at``.

        ``at`` may equal :attr:`now` (the event runs later in the current
        tick) but must not lie in the past, and must be an integral tick
        (non-integral floats raise instead of truncating).
        """
        if type(at) is not int:  # fast path: already an int tick
            at = _as_tick(at, "schedule time")
        if at < self._now:
            raise SimulationError(
                f"cannot schedule at {at}; current time is {self._now}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(at, seq, callback, args, self)
        heapq.heappush(self._queue, (at, seq, event))
        return event

    def call_in(self, delay: int, callback: Callable[..., Any],
                *args: Any) -> Event:
        """Schedule ``callback(*args)`` after a relative ``delay`` ticks.

        Raises :class:`SimulationError` for a negative or non-integral
        delay rather than scheduling in the past or truncating.
        """
        if type(delay) is not int:  # fast path: already an int tick
            delay = _as_tick(delay, "relative delay")
        if delay < 0:
            raise SimulationError(
                f"cannot schedule {delay} ticks in the past; "
                "relative delays must be >= 0")
        at = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        event = Event(at, seq, callback, args, self)
        heapq.heappush(self._queue, (at, seq, event))
        return event

    # ------------------------------------------------------------------
    # tombstone accounting
    # ------------------------------------------------------------------
    def _note_tombstone(self) -> None:
        """One queued event was cancelled; compact when the heap is
        mostly dead weight."""
        self._tombstones += 1
        if (self._tombstones * 2 > len(self._queue)
                and len(self._queue) >= _COMPACTION_MIN_QUEUE):
            self._compact()

    def _compact(self) -> None:
        """Drop tombstoned entries and re-heapify the survivors."""
        self._queue = [entry for entry in self._queue
                       if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._tombstones = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next live event.  Returns False if queue empty."""
        queue = self._queue
        while queue:
            event = heapq.heappop(queue)[2]
            if event.cancelled:
                self._tombstones -= 1
                continue
            self._now = event.time
            try:
                event.callback(*event.args)
            except SimulationError:
                raise
            except Exception as exc:
                raise _dispatch_error(event, exc) from exc
            self._processed += 1
            return True
        return False

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Drain the queue.

        Args:
            until: stop once the clock would pass this tick; the clock is
                left at ``until`` (events at exactly ``until`` still run).
            max_events: safety valve for runaway simulations.

        Returns:
            The number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                event = queue[0][2]
                if event.cancelled:
                    pop(queue)
                    self._tombstones -= 1
                    continue
                if until is not None and event.time > until:
                    break
                pop(queue)
                self._now = event.time
                args = event.args
                try:
                    if args:
                        event.callback(*args)
                    else:  # no-args fast path (the common case)
                        event.callback()
                except SimulationError:
                    raise
                except Exception as exc:
                    raise _dispatch_error(event, exc) from exc
                self._processed += 1
                executed += 1
                queue = self._queue  # compaction may have swapped it
            if until is not None and self._now < until:
                self._now = int(until)
        finally:
            self._running = False
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until there is no live event left."""
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def timeline(self) -> list[int]:
        """Times of the live events currently queued (sorted)."""
        return sorted(entry[0] for entry in self._queue
                      if not entry[2].cancelled)
