"""Slot-synchronous population engine for grant-free uplink at scale.

The scalar engine (:mod:`repro.sim.engine` + the :mod:`repro.net`
components) spends most of a multi-UE uplink run on per-packet
machinery: one :class:`~repro.sim.engine.Event` object, several closure
allocations, a handful of dict stamps and — dominating everything — a
scalar ``Generator.lognormal`` round trip per layer transit.  None of
that is needed to *decide* anything: the grant-free uplink path has a
fixed event grammar (arrival → five UE layers → CG planning → window
transmit → link fate → five gNB layers → UPF), so a population of
10k–100k UEs can be driven by a lean mirror executor instead.

:class:`SlottedUplink` replays exactly that grammar on a heap of plain
tuples, with

- all per-packet state held in columnar form (:class:`UePopulation`),
- every lognormal layer draw served from pre-drawn blocks of standard
  normals (:class:`~repro.sim.sampling.LogNormalBlockServer`), one
  exclusive server per ``ue<N>`` stream and one for the shared ``gnb``
  stream,
- pre-queued arrivals kept in a sorted list and merged into the event
  loop, so the live heap holds only in-flight work,
- window arithmetic answered by the flat
  :class:`~repro.mac.opportunities.WindowIndex` and the memoized
  :meth:`~repro.mac.scheduler.GnbMacScheduler.capacity_for_duration`,
- delivered latencies recorded in delivery order by
  :class:`ArrayLatencyProbe`, which duck-types the read API of
  :class:`~repro.net.probes.LatencyProbe`.

Bit-identity contract
---------------------
The mirror is **bit-identical** to the scalar path, not approximately
equal.  Four mechanisms enforce it (all pinned by the golden
equivalence suite in ``tests/integration/test_slotted_equivalence.py``):

1. *Event order by construction.*  The executor pushes mirror events in
   the exact order the scalar handlers call ``schedule``/``call_in``,
   with its own monotone sequence number, so same-tick events execute
   in the scalar engine's order and every shared RNG stream is consumed
   in the same interleaving.
2. *Draw-for-draw RNG equivalence.*  Scalar ``Generator.lognormal``
   consumes exactly one ziggurat standard normal per call;
   :class:`~repro.sim.sampling.LogNormalBlockServer` serves the same
   normals from blocks and reconstructs the value with scalar
   ``math.exp`` (the vectorized ``np.exp`` differs by up to 1 ulp).
   Stateful objects — the link's channel and uniform buffer, the UPF's
   buffered sampler, the fault injectors — are *shared* with the scalar
   wiring rather than reimplemented.
3. *Guarded fusion.*  The per-packet UE draw chain (five transit draws
   plus the PHY-prep draw) is evaluated speculatively via
   ``LogNormalBlockServer.peek`` and committed as one event **only**
   when no other event of the same UE — the sole other consumer of
   that stream — can fall inside the chain's time span (no packet of
   the UE in flight, next arrival at or after the chain end).  When
   the guard fails, the peeked normals are left unconsumed and the
   per-layer event path serves them one at a time, so both paths
   produce the identical value sequence.  Fusion is disabled entirely
   when tracing, because the trace stream must interleave per-layer.
4. *A real clock for the side effects.*  Fault hooks and the tracer
   read ``sim.now``; with either active the executor moves the
   simulator's clock forward with
   :meth:`~repro.sim.engine.Simulator.advance_to` at every event.

Scope: grant-free uplink data only, no radio heads, no gNB CPU
contention, layer delays drawn from log-normal/constant samplers (the
calibrated ones are).  :func:`ineligibility` states the first violated
requirement; ``RanConfig(engine="auto")`` silently keeps the scalar
path in that case, ``engine="slotted"`` raises.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.mac.types import AccessMode
from repro.net.probes import LatencySummary, summarize_us
from repro.phy.channel import IidErasureChannel, PerfectChannel
from repro.phy.timebase import TC_PER_SECOND, tc_from_us, us_from_tc
from repro.sim.distributions import Constant, DelaySampler, LogNormal
from repro.sim.sampling import (DEFAULT_BLOCK, LogNormalBlockServer,
                                buffering_enabled)
from repro.stack.packets import HEADER_BYTES, LatencySource

if TYPE_CHECKING:
    from repro.net.session import RanSystem

__all__ = ["ArrayLatencyProbe", "UePopulation", "SlottedUplink",
           "ineligibility"]

#: UE transmit layers in traversal order (mirrors ``repro.net.ue``).
_UE_LAYERS = ("APP", "SDAP", "PDCP", "RLC", "MAC")
#: Header bytes each UE layer's exit adds (APP adds none).
_UE_HEADER_DELTAS = (0, HEADER_BYTES["SDAP"], HEADER_BYTES["PDCP"],
                     HEADER_BYTES["RLC"], HEADER_BYTES["MAC"])
_UE_WIRE_HEADER = sum(_UE_HEADER_DELTAS)
#: gNB uplink layers in traversal order (mirrors ``repro.net.gnb``).
_GNB_LAYERS = ("PHY", "MAC", "RLC", "PDCP", "SDAP")
_GNB_CATEGORIES = tuple(f"gnb.up.{name.lower()}" for name in _GNB_LAYERS)

# Mirror event codes.  Each heap entry is a plain tuple
# ``(time, seq, code, ...)``; ``(time, seq)`` is unique so later
# elements are never compared.
_UE_LAYER = 1       # (t, seq, code, row, layer_k, delay_us, submitted)
_TRANSMIT = 2       # (t, seq, code, ue, window_start)
_DELIVER = 3        # (t, seq, code, rows)
_GNB_LAYER = 5      # (t, seq, code, row, layer_k, delay_us, submitted)
_UPF_DONE = 6       # (t, seq, code, row, submitted)
_RETRANSMIT = 7     # (t, seq, code, ue, rows)
_PLAN = 8           # (t, seq, code, row, ue) — fused-chain MAC exit
_AIR = 9            # (t, seq, code, ue, window_start) — transmit+fly
                    # folded into one landing event (never-fail links)

# Compiled layer-draw kinds: a draw-free constant value, or one
# lognormal draw with fixed (mu, sigma).
_KIND_CONST = 0
_KIND_LOGNORMAL = 1

#: Sentinel "no further arrival" time for the fusion guard.
_FAR_FUTURE = 1 << 62

_US_PER_SECOND = 1_000_000


def _compile_sampler(sampler: DelaySampler) -> tuple[int, float, float]:
    """Lower one layer sampler to a ``(kind, a, b)`` draw recipe.

    Mirrors :meth:`repro.sim.distributions.LogNormal.sample` exactly,
    including the degenerate draw-free branches (``mean==0`` and
    ``std==0`` return without touching the stream).
    """
    if isinstance(sampler, Constant):
        return (_KIND_CONST, sampler.value_us, 0.0)
    if isinstance(sampler, LogNormal):
        if sampler.mean_us == 0:
            return (_KIND_CONST, 0.0, 0.0)
        if sampler.std_us == 0:
            return (_KIND_CONST, sampler.mean_us, 0.0)
        mu, sigma = sampler._log_params()
        return (_KIND_LOGNORMAL, mu, sigma)
    raise ValueError(
        f"slotted engine requires LogNormal/Constant layer delays, "
        f"got {type(sampler).__name__}")


def ineligibility(system: "RanSystem") -> str | None:
    """Why ``system`` cannot run the slotted engine (None = it can)."""
    config = system.config
    if config.access is not AccessMode.GRANT_FREE:
        return "slotted engine supports grant-free access only"
    if config.gnb_radio_head is not None \
            or config.ue_radio_head is not None:
        return "slotted engine does not model radio heads"
    if config.gnb_cpu_cores is not None:
        return "slotted engine does not model gNB CPU contention"
    samplers = list(system._ue_tx_delays().values())
    samplers += [layer.delay for layer in system.gnb.up_pipeline.layers]
    for sampler in samplers:
        if not isinstance(sampler, (Constant, LogNormal)):
            return (f"slotted engine requires LogNormal/Constant layer "
                    f"delays, got {type(sampler).__name__}")
    return None


class ArrayLatencyProbe:
    """Delivery-order latency recorder with compact storage.

    Exposes the read API of :class:`~repro.net.probes.LatencyProbe`
    (``len``, ``latencies_*``, ``summary``, ``budget_means_us``,
    ``fraction_within``) without holding a :class:`Packet` per
    delivery: one int latency per packet plus three running budget
    totals.  Float summaries are computed through the same
    ``us_from_tc``/``summarize_us`` path as the scalar probe, so the
    numbers are bitwise those of the scalar run.
    """

    def __init__(self, name: str = "probe"):
        self.name = name
        self._latencies_tc: list[int] = []
        self._budget_totals: dict[LatencySource, int] = {
            source: 0 for source in LatencySource}

    def record_tc(self, latency_tc: int, processing_tc: int,
                  protocol_tc: int, radio_tc: int) -> None:
        """Record one delivery (call in delivery order)."""
        self._latencies_tc.append(latency_tc)
        totals = self._budget_totals
        totals[LatencySource.PROCESSING] += processing_tc
        totals[LatencySource.PROTOCOL] += protocol_tc
        totals[LatencySource.RADIO] += radio_tc

    # ------------------------------------------------------------------
    # LatencyProbe read API
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._latencies_tc)

    def latencies_tc(self) -> list[int]:
        return list(self._latencies_tc)

    def latencies_us(self) -> list[float]:
        return [us_from_tc(lat) for lat in self._latencies_tc]

    def latencies_ms(self) -> list[float]:
        return [lat / 1000.0 for lat in self.latencies_us()]

    def summary(self) -> LatencySummary:
        return summarize_us(self.latencies_us())

    def budget_means_us(self) -> dict[str, float]:
        """Mean per-source latency decomposition (§4's three sources)."""
        if not self._latencies_tc:
            return {source.value: 0.0 for source in LatencySource}
        count = len(self._latencies_tc)
        return {source.value: us_from_tc(total / count)
                for source, total in self._budget_totals.items()}

    def fraction_within(self, budget_us: float) -> float:
        """Fraction of packets delivered within a latency budget —
        the reliability metric of §6."""
        if not self._latencies_tc:
            return 0.0
        within = sum(1 for lat in self.latencies_us()
                     if lat <= budget_us)
        return within / len(self._latencies_tc)


class UePopulation:
    """Columnar per-packet and per-UE state for the slotted engine.

    All fields are parallel Python lists — per-packet columns indexed
    by a dense packet row number, per-UE counters indexed by UE id.
    Plain-int appends and in-place ``+=`` beat numpy scalar indexing
    on this access pattern (a ``arr[i] += 1`` on an int64 array costs
    ~5× a list element update).  100k UEs × a few packets each stay
    within a few hundred MB — no :class:`Packet`, no timestamp dicts,
    no per-event closures.
    """

    def __init__(self, n_ues: int):
        if n_ues < 1:
            raise ValueError(f"population needs >= 1 UE, got {n_ues}")
        self.n_ues = n_ues
        #: per-UE counters (index 0 unused; UE ids are 1-based).
        self.blocks_sent = [0] * (n_ues + 1)
        self.queued = [0] * (n_ues + 1)
        # per-packet columns (parallel lists, row = packet index)
        self.ue: list[int] = []
        self.packet_id: list[int] = []
        self.payload: list[int] = []
        self.header: list[int] = []
        self.created: list[int] = []
        self.retx: list[int] = []
        self.dropped: list[bool] = []
        self.budget_processing: list[int] = []
        self.budget_protocol: list[int] = []
        self.budget_radio: list[int] = []
        self.delivered_tc: list[int] = []

    def add_packet(self, ue_id: int, packet_id: int, payload_bytes: int,
                   created_tc: int) -> int:
        """Append one packet row; returns its index."""
        if payload_bytes <= 0:
            raise ValueError(
                f"payload must be positive, got {payload_bytes}")
        if created_tc < 0:
            raise ValueError("creation time must be >= 0")
        self.ue.append(ue_id)
        self.packet_id.append(packet_id)
        self.payload.append(payload_bytes)
        self.header.append(0)
        self.created.append(created_tc)
        self.retx.append(0)
        self.dropped.append(False)
        self.budget_processing.append(0)
        self.budget_protocol.append(0)
        self.budget_radio.append(0)
        self.delivered_tc.append(-1)
        self.queued[ue_id] += 1
        return len(self.ue) - 1

    def __len__(self) -> int:
        return len(self.ue)


class SlottedUplink:
    """Mirror executor for the grant-free uplink event grammar.

    Constructed by :class:`~repro.net.session.RanSystem` when the
    slotted engine is selected; raises :class:`ValueError` when the
    configuration falls outside the supported envelope (see
    :func:`ineligibility`).
    """

    def __init__(self, system: "RanSystem"):
        reason = ineligibility(system)
        if reason is not None:
            raise ValueError(reason)
        self._system = system
        self.sim = system.sim
        self.tracer = system.tracer
        self.link = system.link
        self.upf = system.upf
        self.scheduler = system.gnb.scheduler
        self.faults = system.faults
        self.probe = ArrayLatencyProbe("ul")
        self.population = UePopulation(system.config.n_ues)
        self.cg_share = system.cg_share

        # Window arithmetic: the flat index over the UL timeline plus
        # the UE-side minimum transmission length (two symbols, as in
        # repro.net.ue.Ue).
        self._windex = system.scheme.ul_timeline().index()
        symbol_tc = (system.scheme.numerology.slot_duration_tc // 14)
        self.min_tx_tc = max(1, 2 * symbol_tc)
        # Per-UE CG capacity memo keyed by window duration (the share
        # is fixed for the run, so one int per distinct duration).
        self._cap_cache: dict[int, int] = {}

        # Compiled layer tables.  UE side: APP..MAC transit draws plus
        # the PHY preparation draw, all on the per-UE stream.  gNB
        # side: the up-pipeline's five transit draws on the "gnb"
        # stream, optionally dilated by the fault harness.
        tx_delays = system._ue_tx_delays()
        self._ue_specs = tuple(_compile_sampler(tx_delays[name])
                               for name in _UE_LAYERS)
        self._prep_spec = _compile_sampler(tx_delays["PHY"])
        self._gnb_specs = tuple(
            _compile_sampler(layer.delay)
            for layer in system.gnb.up_pipeline.layers)
        self._dilation = (self.faults.processing_dilation
                          if self.faults is not None else None)

        # Exclusive block-served RNG streams.  Per-UE servers are
        # created lazily (sized from the UE's queued-packet count); the
        # gNB server is created on first delivery.
        self._rngs = system.rngs
        self._ue_servers: dict[int, LogNormalBlockServer] = {}
        self._gnb_server: LogNormalBlockServer | None = None

        # Pre-queued arrivals: (time, seq, row) tuples, sorted at run
        # start and merged into the loop so the live heap stays small.
        self._arrivals: list[tuple[int, int, int]] = []
        # Mirror event heap with its own monotone sequence counter —
        # pushes happen in the exact order the scalar handlers call
        # schedule/call_in, so same-tick ordering matches.
        self._heap: list[tuple] = []
        self._seq = 0
        # Open CG plans: (ue_id, window_start) -> [window_k, rows, bytes]
        self._plans: dict[tuple[int, int], list] = {}
        # Completion times (arrival at the gNB) of every planned
        # transmission still in the air — the gNB-side fusion guard: a
        # fused gNB chain must finish strictly before the next block
        # lands, else its draws could interleave with that block's.
        self._air_times: list[int] = []
        self._prop_tc = system.link.propagation_tc
        # Packets of each UE that may still draw on the UE's stream —
        # the UE-side fusion guard.  A packet's last possible UE-stream
        # draw is its PHY-prep (retransmission preps excepted), so the
        # count drops at the prep draw when the link can never fail,
        # and at transmit success / HARQ drop otherwise.
        self._ue_hot = [0] * (system.config.n_ues + 1)
        channel = system.link.channel
        self._can_fail = (system.link.fault_gate is not None
                          or not (isinstance(channel, PerfectChannel)
                                  or (isinstance(channel,
                                                 IidErasureChannel)
                                      and channel.bler == 0.0)))
        # Set by run(): transmissions neither fail nor draw, so the
        # window-end hop is folded into the landing event (_AIR).
        self._fast_tx = False
        # Lazy per-UE trace category tuples (built only when tracing).
        self._trace_cats: dict[int, tuple[str, ...]] = {}
        self._ran = False

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    def queue_uplink(self, arrivals: list[int], payload_bytes: int,
                     ue_id: int) -> None:
        """Buffer UL data arrivals (mirror of ``RanSystem.queue_uplink``
        — one pending entry per packet, seq in call order)."""
        if not 1 <= ue_id <= self.population.n_ues:
            raise ValueError(
                f"ue_id must be in 1..{self.population.n_ues}, "
                f"got {ue_id}")
        if self._ran:
            raise RuntimeError(
                "slotted engine cannot queue traffic after run()")
        packet_ids = self._system._packet_ids
        pop = self.population
        pending = self._arrivals
        for arrival in arrivals:
            row = pop.add_packet(ue_id, next(packet_ids),
                                 payload_bytes, arrival)
            self._seq = seq = self._seq + 1
            pending.append((arrival, seq, row))

    # ------------------------------------------------------------------
    # RNG servers
    # ------------------------------------------------------------------
    def _ue_server(self, ue_id: int) -> LogNormalBlockServer:
        server = self._ue_servers.get(ue_id)
        if server is None:
            # Six draws per fault-free packet transit (five layers +
            # PHY prep); size the block to serve the whole UE in one
            # vectorized draw, with headroom for retransmission preps.
            queued = int(self.population.queued[ue_id])
            block = min(DEFAULT_BLOCK, max(8, 6 * queued + 2))
            server = LogNormalBlockServer(
                self._rngs.stream(f"ue{ue_id}"), block)
            self._ue_servers[ue_id] = server
        return server

    def _gnb_rng_server(self) -> LogNormalBlockServer:
        server = self._gnb_server
        if server is None:
            total = len(self.population)
            block = min(4 * DEFAULT_BLOCK, max(64, 5 * total))
            server = LogNormalBlockServer(
                self._rngs.stream("gnb"), block)
            self._gnb_server = server
        return server

    def _categories(self, ue_id: int) -> tuple[str, ...]:
        cats = self._trace_cats.get(ue_id)
        if cats is None:
            cats = tuple(f"ue{ue_id}.{name.lower()}"
                         for name in _UE_LAYERS)
            self._trace_cats[ue_id] = cats
        return cats

    # ------------------------------------------------------------------
    # the executor
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Drain pending arrivals and the mirror heap (the slotted
        ``run_until_idle``).

        The body is one deliberately monolithic loop: at 100k UEs every
        event dispatch runs millions of times, so the hot handlers (gNB
        layer transits, deliveries, UPF completions) are inlined with
        local aliases instead of going through methods.  Cold handlers
        (CG planning, transmission, retransmission) stay methods.
        """
        self._ran = True
        tracer = self.tracer
        emit = tracer.emit if tracer.enabled else None
        # Tracing needs per-layer emissions in event order; fault hooks
        # read sim.now.  Either one forces the per-event path / clock.
        fuse_ue = emit is None
        precise = emit is not None or self.faults is not None

        arrivals = sorted(self._arrivals)
        n_arr = len(arrivals)
        # Fusion guard input: the next arrival time of the same UE.  A
        # chain ending at or before it cannot interleave with any other
        # consumer of the UE's stream (given nothing is in flight).
        pop = self.population
        ue_col = pop.ue
        next_same = [_FAR_FUTURE] * n_arr
        last_seen: dict[int, int] = {}
        for i in range(n_arr):
            u = ue_col[arrivals[i][2]]
            j = last_seen.get(u)
            if j is not None:
                next_same[j] = arrivals[i][0]
            last_seen[u] = i

        # Local aliases for the hot loop.
        heap = self._heap
        sim = self.sim
        advance = sim.advance_to
        exp = math.exp
        pid_col = pop.packet_id
        created = pop.created
        bp = pop.budget_processing
        brad = pop.budget_radio
        delivered_col = pop.delivered_tc
        ue_hot = self._ue_hot
        can_fail = self._can_fail
        ue_specs = self._ue_specs
        gnb_specs = self._gnb_specs
        chain_draws = sum(1 for spec in ue_specs if spec[0])
        prep_kind, prep_a, prep_b = self._prep_spec
        peek_n = chain_draws + (1 if prep_kind else 0)
        gnb_draws = sum(1 for spec in gnb_specs if spec[0])
        # Chain-total form of the UE specs: the total transit is a sum,
        # so constant layers collapse to one precomputed term and the
        # lognormal ones zip against the peeked normals (stream order
        # is preserved — only lognormal layers consume a draw).
        ue_ln = [(a, b) for kind, a, b in ue_specs if kind]
        ue_const_tc = sum(round(a * TC_PER_SECOND / _US_PER_SECOND)
                          for kind, a, _b in ue_specs if not kind)
        servers = self._ue_servers
        dilation = self._dilation
        gserver = self._gnb_rng_server()
        gsample = gserver.sample
        # The gnb stream is drawn 5× per packet in data-dependent
        # order; serving those draws through sample() costs a method
        # call each.  Instead, normals are pulled from the server in
        # committed chunks into a plain list and indexed inline — the
        # refills happen on the server's whole-block grid either way,
        # so the served sequence is unchanged.  When block drawing is
        # disabled (force_sequential) the chunk pull reports failure
        # and every draw falls back to the scalar sample() path.
        gchunk = 1024
        gbuf: list[float] = []
        gi = 0
        gn = 0

        def _gtopup() -> bool:
            nonlocal gbuf, gi, gn
            fresh = gserver.peek(gchunk)
            if fresh is None:
                return False
            gserver.commit(gchunk)
            gbuf = gbuf[gi:] + fresh.tolist()
            gn = len(gbuf)
            gi = 0
            return True

        def _gdraw(a: float, b: float) -> float:
            nonlocal gi
            if _gtopup():
                z = gbuf[gi]
                gi += 1
                return exp(a + b * z)
            return gsample(a, b)

        # gNB-side fusion additionally requires fault-free layers (the
        # dilation hook reads per-category state in event order).
        fuse_gnb = fuse_ue and dilation is None
        air_times = self._air_times
        gnb_busy = 0  # gNB chains running on the per-layer event path
        upf = self.upf
        upf_sample = upf.delay.sample
        upf_rng = upf.rng
        upf_outage = upf.outage
        # The upf stream gets the same committed-chunk treatment as the
        # gnb stream; its BufferedSampler serves *transformed* delay
        # values, so the chunks hold microseconds, not normals.
        upf_peek = getattr(upf.delay, "peek", None)
        upf_commit = getattr(upf.delay, "commit", None)
        uchunk = 1024
        ubuf: list[float] = []
        ui = 0
        un = 0

        def _utopup() -> bool:
            nonlocal ubuf, ui, un
            if upf_peek is None:
                return False
            fresh = upf_peek(uchunk)
            if fresh is None:
                return False
            upf_commit(uchunk)
            ubuf = ubuf[ui:] + fresh.tolist()
            un = len(ubuf)
            ui = 0
            return True

        def _udraw() -> float:
            nonlocal ui
            if _utopup():
                value = ubuf[ui]
                ui += 1
                return value
            return upf_sample(upf_rng)

        gnb_counters = self._system.gnb.counters
        probe = self.probe
        lat_append = probe._latencies_tc.append
        tot_proc = tot_prot = tot_rad = 0
        # Pure-sum counters accumulate in locals and flush once after
        # the loop (attribute += on the dataclasses costs real time at
        # one-per-block rates).
        cg_alloc_acc = cg_used_acc = blocks_acc = out_acc = 0

        # CG planning + transmission, inlined.  The _PLAN handler only
        # ever fires on the fused path (emit is None), so its inline
        # form needs no trace branch; _TRANSMIT additionally gets a
        # fast path when the link can neither fail nor draw (perfect
        # channel, no fault gate, no uniform buffer).
        rnd = round
        TCS = TC_PER_SECOND
        USP = _US_PER_SECOND
        plans = self._plans
        windex = self._windex
        w_starts = windex.starts
        w_ends = windex.ends
        w_durs = windex.durations
        nwin = windex.n_windows
        period = windex.period_tc
        # One capacity per base window, precomputed: the CG-capacity
        # memo behind _cg_capacity only ever sees these durations.
        cap_by_base = [self._cg_capacity(d) for d in w_durs]
        w_first_after = windex.first_ending_after
        min_tx = self.min_tx_tc
        payload = pop.payload
        header = pop.header
        bprot = pop.budget_protocol
        link = self.link
        link_counters = link.counters
        prop_tc = self._prop_tc
        sched_counters = self.scheduler.counters
        pop_blocks = pop.blocks_sent
        fast_tx = (not can_fail and emit is None
                   and link._uniforms is None
                   and link.fault_gate is None)
        self._fast_tx = fast_tx
        if fast_tx:
            link.last_fault_fate = None

        # UPF completions have no side effects beyond the probe, so in
        # imprecise runs (no tracer, no fault hooks reading the clock)
        # they skip the heap entirely and are drained — in the same
        # (time, seq) order the heap would have given — after the loop.
        defer_done = not precise
        done: list[tuple[int, int, int, int]] = []
        done_append = done.append
        last_t = sim.now
        ai = 0

        # Plan pre-pass.  In never-fail untraced runs every packet is
        # planned exactly once after a fixed draw-count transit, so the
        # whole UE side collapses to a per-UE pre-pass: the chain math
        # is vectorized over all of a UE's arrivals at once (each
        # packet owns draws [i*peek_n, (i+1)*peek_n) of its stream),
        # and the rare overlapping chains are replayed draw-for-draw on
        # a local heap in the scalar engine's (time, seq) order.  The
        # resulting plan stream — (chain_end, arrival_seq, row, ue,
        # prep_us), sorted — merges into the main loop like the arrival
        # stream, and no _PLAN or _UE_LAYER event ever reaches the
        # heap.  Exactly peek_n draws commit per packet on either
        # branch, so the sequential layout realigns after every
        # cluster and the vectorized values stay valid.
        plan_list: list[tuple[int, int, int, int, float]] = []
        pi = 0
        n_plans = 0
        fast_plan = (fuse_ue and not can_fail and not precise
                     and n_arr > 0 and buffering_enabled())
        if fast_plan:
            by_ue: dict[int, list[tuple[int, int, int]]] = {}
            for entry in arrivals:
                by_ue.setdefault(ue_col[entry[2]], []).append(entry)
            ln_mu = np.array([a for kind, a, _b in ue_specs if kind]
                             + ([prep_a] if prep_kind else []))
            ln_sig = np.array([b for kind, _a, b in ue_specs if kind]
                              + ([prep_b] if prep_kind else []))
            kind0, a0, b0 = ue_specs[0]
            for u, entries in by_ue.items():
                server = servers.get(u)
                if server is None:
                    server = self._ue_server(u)
                m = len(entries)
                zz = server.peek(peek_n * m)
                if zz is None:
                    raise RuntimeError(
                        "block drawing disabled mid-run")
                # The exp stays scalar libm — np.exp differs from
                # math.exp by 1 ulp on some inputs, and bit-identity
                # tolerates none.  np.rint on these magnitudes is
                # bitwise round().
                args = np.tile(ln_mu, m) + np.tile(ln_sig, m) * zz
                vals = list(map(exp, args.tolist()))
                tcs = np.rint(np.asarray(vals) * TCS / USP)
                tcs = tcs.astype(np.int64).reshape(m, peek_n)
                chain = (tcs[:, :chain_draws].sum(axis=1)
                         + ue_const_tc)
                ends = (np.fromiter((e[0] for e in entries),
                                    np.int64, m) + chain).tolist()
                chain_l = chain.tolist()
                zzl: list[float] | None = None
                i = 0
                c = 0
                while i < m:
                    a_i, aseq_i, row_i = entries[i]
                    nxt = (entries[i + 1][0] if i + 1 < m
                           else _FAR_FUTURE)
                    end_i = ends[i]
                    if nxt > end_i:
                        # Strictly-later next arrival: the sequential
                        # layout is the true draw order and the
                        # vectorized values stand.
                        plan_list.append((
                            end_i, aseq_i, row_i, u,
                            vals[c + chain_draws] if prep_kind
                            else prep_a))
                        bp[row_i] += chain_l[i]
                        header[row_i] = _UE_WIRE_HEADER
                        i += 1
                        c += peek_n
                        continue
                    # Overlap cluster: interleaved replay.  Arrivals
                    # admit before any local event at or after them
                    # (queue-time seqs sort first in the scalar heap);
                    # local ties break on push order, the scalar seq
                    # order for same-tick events.
                    if zzl is None:
                        zzl = zz.tolist()
                    i += 1
                    if kind0:
                        d = exp(a0 + b0 * zzl[c])
                        c += 1
                    else:
                        d = a0
                    mini = [(a_i + rnd(d * TCS / USP), 0, row_i, 0,
                             aseq_i, a_i)]
                    order = 1
                    while mini:
                        while (i < m
                               and entries[i][0] <= mini[0][0]):
                            a_j, sq_j, r_j = entries[i]
                            i += 1
                            if kind0:
                                d = exp(a0 + b0 * zzl[c])
                                c += 1
                            else:
                                d = a0
                            heappush(mini, (
                                a_j + rnd(d * TCS / USP), order,
                                r_j, 0, sq_j, a_j))
                            order += 1
                        tau, _o, r_j, k, sq_j, a_j = heappop(mini)
                        k += 1
                        if k < 5:
                            kk, aa, bb = ue_specs[k]
                            if kk:
                                d = exp(aa + bb * zzl[c])
                                c += 1
                            else:
                                d = aa
                            heappush(mini, (
                                tau + rnd(d * TCS / USP), order,
                                r_j, k, sq_j, a_j))
                            order += 1
                        else:
                            # MAC exit: PHY-prep draw, plan recorded.
                            if prep_kind:
                                prep_us = exp(prep_a
                                              + prep_b * zzl[c])
                                c += 1
                            else:
                                prep_us = prep_a
                            plan_list.append((tau, sq_j, r_j, u,
                                              prep_us))
                            bp[r_j] += tau - a_j
                            header[r_j] = _UE_WIRE_HEADER
                server.commit(peek_n * m)
            plan_list.sort()
            n_plans = len(plan_list)
            ai = n_arr  # arrivals fully consumed by the pre-pass

        while True:
            # Merge: pre-passed plan vs pending arrival vs heap top,
            # in (time, seq) order.  At most one of the side streams
            # is live (fast_plan consumes all arrivals), and their
            # seqs predate all runtime seqs, so same-tick ties resolve
            # to the side stream — as in the scalar engine, where
            # queue-time schedule() calls get the earliest sequence
            # numbers.
            if pi < n_plans and (not heap or plan_list[pi] < heap[0]):
                # Inline CG window scan (the _PLAN handler's body).
                # fast_plan guarantees imprecise-clock mode, a drawn
                # prep, and a first transmission.
                t, _aseq, row, u, prep_us = plan_list[pi]
                pi += 1
                last_t = t
                prep_tc = rnd(prep_us * TCS / USP)
                ready = t + prep_tc
                wire = payload[row] + header[row]
                cyc, rem = divmod(ready, period)
                base = bisect_right(w_ends, rem)
                if base == nwin:
                    cyc += 1
                    base = 0
                k = cyc * nwin + base
                empty = 0
                while True:
                    if empty > nwin:
                        raise LookupError(
                            "no usable configured-grant window found")
                    cyc, base = divmod(k, nwin)
                    off = cyc * period
                    start = w_starts[base] + off
                    end = w_ends[base] + off
                    entry = ready if ready > start else start
                    if end - entry < min_tx:
                        empty += 1
                        k += 1
                        continue
                    key = (u, start)
                    plan = plans.get(key)
                    capacity = cap_by_base[base]
                    used = plan[2] if plan is not None else 0
                    if used + wire > capacity:
                        if plan is None:
                            empty += 1
                        k += 1
                        continue
                    if plan is None:
                        plans[key] = [k, [row], used + wire]
                        self._seq = seq = self._seq + 1
                        if fast_tx:
                            heappush(heap, (end + prop_tc, seq,
                                            _AIR, u, start))
                        else:
                            heappush(heap, (end, seq, _TRANSMIT, u,
                                            start))
                            heappush(air_times, end + prop_tc)
                    else:
                        plan[1].append(row)
                        plan[2] += wire
                    bp[row] += prep_tc
                    bprot[row] += end - t - prep_tc
                    break
                continue
            if ai < n_arr and (not heap or arrivals[ai] < heap[0]):
                t, _aseq, row = arrivals[ai]
                ai += 1
                u = ue_col[row]
                if precise:
                    advance(t)
                else:
                    last_t = t
                if emit is not None:
                    emit(t, self._categories(u)[0], "send",
                         packet_id=pid_col[row])
                if fuse_ue and ue_hot[u] == 0 and chain_draws:
                    server = servers.get(u)
                    if server is None:
                        server = self._ue_server(u)
                    # Serve the peek straight off the server's block
                    # buffer when it holds enough normals (the common
                    # case — blocks are sized to the UE's whole queue);
                    # peek() itself only runs on refills.  The consume
                    # below advances _pos exactly as commit() would.
                    zs = None
                    buf = server._buf
                    if buf is not None:
                        pos = server._pos
                        if len(buf) - pos >= peek_n:
                            zs = buf[pos:pos + peek_n].tolist()
                    if zs is None:
                        peeked = server.peek(peek_n)
                        if peeked is not None:
                            # Python-float math: np.float64 scalar ops
                            # cost ~4× (same IEEE results either way).
                            zs = peeked.tolist()
                    if zs is not None:
                        total = ue_const_tc
                        for zi, (a, b) in enumerate(ue_ln):
                            total += rnd(exp(a + b * zs[zi]) * TCS
                                         / USP)
                        end = t + total
                        # Strictly-later next arrival: every chain draw
                        # *and* the PHY-prep draw at the chain end
                        # precede the UE's next stream consumer, so the
                        # whole span commits as one event.
                        if next_same[ai - 1] > end:
                            if prep_kind:
                                prep_us = exp(prep_a
                                              + prep_b
                                              * zs[chain_draws])
                                server._pos += peek_n
                            else:
                                prep_us = prep_a
                                server._pos += chain_draws
                            bp[row] += total
                            pop.header[row] = _UE_WIRE_HEADER
                            if can_fail:
                                ue_hot[u] = 1
                            self._seq = seq = self._seq + 1
                            heappush(heap, (end, seq, _PLAN, row, u,
                                            prep_us))
                            continue
                # Per-layer event path (tracing, forced-sequential
                # sampling, or a chain that may interleave).
                ue_hot[u] += 1
                self._enter_ue_layer(row, 0, t)
                continue
            if not heap:
                break
            event = heappop(heap)
            t = event[0]
            if precise:
                advance(t)
            else:
                last_t = t
            code = event[2]

            if code == _GNB_LAYER:
                row = event[3]
                k = event[4]
                bp[row] += t - event[6]
                if emit is not None:
                    emit(t, _GNB_CATEGORIES[k], "exit",
                         packet_id=pid_col[row], layer=_GNB_LAYERS[k],
                         delay_us=event[5])
                k += 1
                if k < 5:
                    kind, a, b = gnb_specs[k]
                    if kind:
                        if gi < gn:
                            delay_us = exp(a + b * gbuf[gi])
                            gi += 1
                        else:
                            delay_us = _gdraw(a, b)
                    else:
                        delay_us = a
                    if dilation is not None:
                        delay_us = delay_us * dilation(
                            _GNB_CATEGORIES[k])
                    if emit is not None:
                        emit(t, _GNB_CATEGORIES[k], "enter",
                             packet_id=pid_col[row],
                             layer=_GNB_LAYERS[k])
                    self._seq = seq = self._seq + 1
                    heappush(heap, (
                        t + rnd(delay_us * TCS / USP),
                        seq, _GNB_LAYER, row, k, delay_us, t))
                else:
                    # SDAP exit: gNB hands the packet to the UPF
                    # (mirror of Gnb._ul_done + Upf._process).
                    gnb_busy -= 1
                    gnb_counters.ul_packets_out += 1
                    if ui < un:
                        upf_us = ubuf[ui]
                        ui += 1
                    else:
                        upf_us = _udraw()
                    delay_tc = rnd(upf_us * TCS / USP)
                    if upf_outage is not None:
                        delay_tc += upf_outage()
                    if emit is not None:
                        emit(t, "upf", "ul_forward",
                             packet_id=pid_col[row])
                    self._seq = seq = self._seq + 1
                    if defer_done:
                        done_append((t + delay_tc, seq, row, t))
                    else:
                        heappush(heap, (t + delay_tc, seq, _UPF_DONE,
                                        row, t))
            elif code == _UPF_DONE:
                row = event[3]
                proc = bp[row] + (t - event[4])
                bp[row] = proc
                delivered_col[row] = t
                lat_append(t - created[row])
                tot_proc += proc
                tot_prot += bprot[row]
                tot_rad += brad[row]
            elif code == _AIR or code == _DELIVER:
                if code == _AIR:
                    # Landing of a folded transmission: pop the plan
                    # and charge the window-end bookkeeping _transmit
                    # would have done one propagation delay earlier.
                    # All of it is counter sums, so the shift cannot
                    # reorder anything observable.
                    u = event[3]
                    window_k, rows, used = plans.pop((u, event[4]))
                    pop_blocks[u] += 1
                    capacity = cap_by_base[window_k % nwin]
                    cg_alloc_acc += capacity
                    cg_used_acc += (used if used <= capacity
                                    else capacity)
                    blocks_acc += 1
                    for row in rows:
                        brad[row] += prop_tc
                else:
                    rows = list(event[3])
                    # Retire this block's own air-time entry (== t)
                    # plus any stale entries of failed blocks it has
                    # passed.  (fast_tx runs keep no air-time heap at
                    # all: nothing fails, and every landing sits on
                    # the window-end + propagation grid, so the next
                    # landing is read off the window index instead.)
                    while air_times[0] < t:
                        heappop(air_times)
                    heappop(air_times)
                if fuse_gnb and gnb_busy == 0:
                    # Cohort fusion.  Slot alignment makes blocks land
                    # in same-tick batches (every UL transmission
                    # completes at a window end), so sibling deliveries
                    # are collected and their gNB chains simulated on a
                    # local heap keyed (time, push order) — the exact
                    # (time, seq) merge order the scalar engine gives
                    # those events.  If the whole cohort drains
                    # strictly before the next landing, its gnb-stream
                    # draws and UPF forward draws are consumed in
                    # scalar order and the result commits; otherwise
                    # everything falls back to the per-layer path.
                    while (heap and heap[0][0] == t
                           and heap[0][2] == code):
                        sib = heappop(heap)
                        if code == _AIR:
                            su = sib[3]
                            window_k, srows, used = plans.pop(
                                (su, sib[4]))
                            pop_blocks[su] += 1
                            capacity = cap_by_base[window_k % nwin]
                            cg_alloc_acc += capacity
                            cg_used_acc += (
                                used if used <= capacity else capacity)
                            blocks_acc += 1
                            for row in srows:
                                brad[row] += prop_tc
                            rows.extend(srows)
                        else:
                            heappop(air_times)
                            rows.extend(sib[3])
                    if code == _AIR:
                        nk = w_first_after(t - prop_tc)
                        na = ((nk // nwin) * period
                              + w_ends[nk % nwin] + prop_tc)
                    else:
                        na = (air_times[0] if air_times
                              else _FAR_FUTURE)
                    need = gnb_draws * len(rows)
                    while gn - gi < need and _gtopup():
                        pass
                    if na > t and gn - gi >= need and len(rows) == 1:
                        # One-block cohort: the chain is a straight
                        # line, no merge order to reproduce.
                        row = rows[0]
                        tau = t
                        zi = 0
                        for kind, a, b in gnb_specs:
                            if kind:
                                d = exp(a + b * gbuf[gi + zi])
                                zi += 1
                            else:
                                d = a
                            tau += rnd(d * TCS / USP)
                        gi += zi
                        out_acc += 1
                        bp[row] += tau - t
                        if ui < un:
                            upf_us = ubuf[ui]
                            ui += 1
                        else:
                            upf_us = _udraw()
                        delay_tc = rnd(upf_us * TCS / USP)
                        if upf_outage is not None:
                            delay_tc += upf_outage()
                        self._seq = seq = self._seq + 1
                        if defer_done:
                            done_append((tau + delay_tc, seq, row,
                                         tau))
                        else:
                            heappush(heap, (tau + delay_tc, seq,
                                            _UPF_DONE, row, tau))
                        continue
                    if na > t and gn - gi >= need:
                        zi = 0
                        order = 0
                        mini = []
                        kind0, a0, b0 = gnb_specs[0]
                        for row in rows:
                            if kind0:
                                d = exp(a0 + b0 * gbuf[gi + zi])
                                zi += 1
                            else:
                                d = a0
                            mini.append((
                                t + rnd(d * TCS / USP),
                                order, row, 0))
                            order += 1
                        heapify(mini)
                        exits = []
                        max_end = 0
                        while mini:
                            tau, _o, row, k = heappop(mini)
                            k += 1
                            if k < 5:
                                kind, a, b = gnb_specs[k]
                                if kind:
                                    d = exp(a + b * gbuf[gi + zi])
                                    zi += 1
                                else:
                                    d = a
                                heappush(mini, (
                                    tau + rnd(d * TCS / USP),
                                    order, row, k))
                                order += 1
                            else:
                                exits.append((tau, row))
                                if tau > max_end:
                                    max_end = tau
                        if max_end < na:
                            gi += zi
                            out_acc += len(rows)
                            for tau, row in exits:
                                bp[row] += tau - t
                                if ui < un:
                                    upf_us = ubuf[ui]
                                    ui += 1
                                else:
                                    upf_us = _udraw()
                                delay_tc = rnd(upf_us * TCS / USP)
                                if upf_outage is not None:
                                    delay_tc += upf_outage()
                                self._seq = seq = self._seq + 1
                                if defer_done:
                                    done_append((tau + delay_tc, seq,
                                                 row, tau))
                                else:
                                    heappush(heap, (tau + delay_tc,
                                                    seq, _UPF_DONE,
                                                    row, tau))
                            continue
                # gnb.receive_ul_block with no radio head charges zero
                # RADIO and forwards the block to the up-pipeline in
                # order; the scalar call_in(0, ...) hop preserves the
                # same relative push order, so entering PHY here is
                # bit-identical (pinned by the equivalence suite).
                for row in rows:
                    gnb_busy += 1
                    kind, a, b = gnb_specs[0]
                    if kind:
                        if gi < gn:
                            delay_us = exp(a + b * gbuf[gi])
                            gi += 1
                        else:
                            delay_us = _gdraw(a, b)
                    else:
                        delay_us = a
                    if dilation is not None:
                        delay_us = delay_us * dilation(
                            _GNB_CATEGORIES[0])
                    if emit is not None:
                        emit(t, _GNB_CATEGORIES[0], "enter",
                             packet_id=pid_col[row],
                             layer=_GNB_LAYERS[0])
                    self._seq = seq = self._seq + 1
                    heappush(heap, (
                        t + rnd(delay_us * TCS / USP),
                        seq, _GNB_LAYER, row, 0, delay_us, t))
            elif code == _UE_LAYER:
                self._ue_layer_done(event, t)
            elif code == _PLAN:
                # Inline of _plan_grant_free for the fused path: _PLAN
                # events only exist when fusion is on (emit is None),
                # the prep delay is already drawn, and the packet is a
                # first transmission.
                row = event[3]
                u = event[4]
                prep_tc = rnd(event[5] * TCS / USP)
                ready = t + prep_tc
                wire = payload[row] + header[row]
                cyc, rem = divmod(ready, period)
                base = bisect_right(w_ends, rem)
                if base == nwin:
                    cyc += 1
                    base = 0
                k = cyc * nwin + base
                empty = 0
                while True:
                    if empty > nwin:
                        raise LookupError(
                            "no usable configured-grant window found")
                    cyc, base = divmod(k, nwin)
                    off = cyc * period
                    start = w_starts[base] + off
                    end = w_ends[base] + off
                    entry = ready if ready > start else start
                    if end - entry < min_tx:
                        empty += 1
                        k += 1
                        continue
                    key = (u, start)
                    plan = plans.get(key)
                    capacity = cap_by_base[base]
                    used = plan[2] if plan is not None else 0
                    if used + wire > capacity:
                        if plan is None:
                            empty += 1
                        k += 1
                        continue
                    if plan is None:
                        plans[key] = [k, [row], used + wire]
                        self._seq = seq = self._seq + 1
                        if fast_tx:
                            # Transmission cannot fail and draws
                            # nothing, so the window-end hop is folded
                            # into the landing event; its bookkeeping
                            # (pure counter sums) moves there too.
                            heappush(heap, (end + prop_tc, seq, _AIR,
                                            u, start))
                        else:
                            heappush(heap, (end, seq, _TRANSMIT, u,
                                            start))
                            heappush(air_times, end + prop_tc)
                    else:
                        plan[1].append(row)
                        plan[2] += wire
                    bp[row] += prep_tc
                    bprot[row] += end - t - prep_tc
                    break
            elif code == _TRANSMIT:
                self._transmit(event[3], event[4], t)
            else:  # _RETRANSMIT
                ue_id = event[3]
                for row in event[4]:
                    self._plan_grant_free(row, ue_id, t, True)

        if done:
            # Deferred UPF completions, in the (time, seq) order the
            # heap would have dispatched them — the probe's append
            # order is part of the bit-identity contract.
            done.sort()
            if done[-1][0] > last_t:
                last_t = done[-1][0]
            for done_t, _seq, row, tau in done:
                proc = bp[row] + (done_t - tau)
                bp[row] = proc
                delivered_col[row] = done_t
                lat_append(done_t - created[row])
                tot_proc += proc
                tot_prot += bprot[row]
                tot_rad += brad[row]
        link_counters.blocks_sent += blocks_acc
        sched_counters.cg_allocated_bytes += cg_alloc_acc
        sched_counters.cg_used_bytes += cg_used_acc
        gnb_counters.ul_packets_out += out_acc
        totals = probe._budget_totals
        totals[LatencySource.PROCESSING] += tot_proc
        totals[LatencySource.RADIO] += tot_rad
        totals[LatencySource.PROTOCOL] += tot_prot
        if not precise and last_t > sim.now:
            advance(last_t)

    # ------------------------------------------------------------------
    # UE side (per-layer event path)
    # ------------------------------------------------------------------
    def _enter_ue_layer(self, row: int, layer_k: int, now: int) -> None:
        kind, a, b = self._ue_specs[layer_k]
        ue_id = self.population.ue[row]
        if kind:
            delay_us = self._ue_server(ue_id).sample(a, b)
        else:
            delay_us = a
        if self.tracer.enabled:
            self.tracer.emit(now, self._categories(ue_id)[layer_k],
                             "enter",
                             packet_id=self.population.packet_id[row],
                             layer=_UE_LAYERS[layer_k])
        self._seq = seq = self._seq + 1
        heappush(self._heap, (now + tc_from_us(delay_us), seq,
                              _UE_LAYER, row, layer_k, delay_us, now))

    def _ue_layer_done(self, event: tuple, now: int) -> None:
        row, layer_k, delay_us, submitted = (event[3], event[4],
                                             event[5], event[6])
        pop = self.population
        pop.budget_processing[row] += now - submitted
        pop.header[row] += _UE_HEADER_DELTAS[layer_k]
        ue_id = pop.ue[row]
        if self.tracer.enabled:
            self.tracer.emit(now, self._categories(ue_id)[layer_k],
                             "exit", packet_id=pop.packet_id[row],
                             layer=_UE_LAYERS[layer_k],
                             delay_us=delay_us)
        if layer_k < 4:
            self._enter_ue_layer(row, layer_k + 1, now)
        else:
            self._plan_grant_free(row, ue_id, now, False)

    def _cg_capacity(self, duration_tc: int) -> int:
        capacity = self._cap_cache.get(duration_tc)
        if capacity is None:
            capacity = self.scheduler.cg_capacity_for(duration_tc,
                                                      self.cg_share)
            self._cap_cache[duration_tc] = capacity
        return capacity

    def _plan_grant_free(self, row: int, ue_id: int, now: int,
                         is_retransmission: bool,
                         prep_us: float | None = None) -> None:
        """Mirror of ``Ue._plan_grant_free`` on columnar state.

        ``prep_us`` carries a PHY-prep delay the fused arrival path
        already drew (and committed) for this packet; None means draw
        it here, as the scalar planner does.
        """
        if prep_us is None:
            kind, a, b = self._prep_spec
            if kind:
                prep_us = self._ue_server(ue_id).sample(a, b)
            else:
                prep_us = a
            if not self._can_fail and not is_retransmission:
                # Last possible draw of this packet on the UE stream
                # (the link never fails, so no retransmission preps
                # follow): the packet stops blocking chain fusion.
                self._ue_hot[ue_id] -= 1
        prep_tc = tc_from_us(prep_us)
        ready = now + prep_tc
        pop = self.population
        wire = pop.payload[row] + pop.header[row]
        windex = self._windex
        plans = self._plans
        min_tx_tc = self.min_tx_tc
        k = windex.first_ending_after(ready)
        # The scalar planner scans the (infinite) window generator; an
        # un-plannable packet — wire size above even an empty window's
        # capacity — would loop forever there.  The mirror bounds the
        # scan: once a full period of *empty* windows has been
        # rejected, later cycles repeat the same rejection.
        empty_rejections = 0
        while empty_rejections <= windex.n_windows:
            start, end = windex.bounds(k)
            entry = ready if ready > start else start
            if end - entry < min_tx_tc:
                empty_rejections += 1
                k += 1
                continue
            plan = plans.get((ue_id, start))
            capacity = self._cg_capacity(windex.duration(k))
            used = plan[2] if plan is not None else 0
            if used + wire > capacity:
                if plan is None:
                    empty_rejections += 1
                k += 1
                continue
            if plan is None:
                plan = [k, [row], used + wire]
                plans[(ue_id, start)] = plan
                self._seq = seq = self._seq + 1
                if self._fast_tx:
                    heappush(self._heap, (end + self._prop_tc, seq,
                                          _AIR, ue_id, start))
                else:
                    heappush(self._heap, (end, seq, _TRANSMIT, ue_id,
                                          start))
                    heappush(self._air_times, end + self._prop_tc)
            else:
                plan[1].append(row)
                plan[2] += wire
            pop.budget_processing[row] += prep_tc
            pop.budget_protocol[row] += end - now - prep_tc
            if self.tracer.enabled:
                self.tracer.emit(now, self._categories(ue_id)[4],
                                 "cg_planned",
                                 packet_id=pop.packet_id[row],
                                 window_start=start,
                                 retransmission=is_retransmission)
            return
        raise LookupError("no usable configured-grant window found")

    # ------------------------------------------------------------------
    # air crossing
    # ------------------------------------------------------------------
    def _transmit(self, ue_id: int, window_start: int,
                  now: int) -> None:
        """Mirror of ``Ue._transmit_planned`` + ``RanSystem._ul_over_air``
        + the failure half of ``AirLink.transmit``."""
        plan = self._plans.pop((ue_id, window_start))
        window_k, rows, used = plan
        pop = self.population
        pop.blocks_sent[ue_id] += 1
        if self.tracer.enabled:
            self.tracer.emit(now, self._categories(ue_id)[4], "cg_tx",
                             window_start=window_start,
                             packets=len(rows))
        self.scheduler.account_cg_usage(
            self._cg_capacity(self._windex.duration(window_k)), used)
        link = self.link
        if link.decide_fate(now):
            if self._can_fail:
                # Delivered blocks can no longer trigger retransmission
                # preps — their packets stop blocking chain fusion.
                self._ue_hot[ue_id] -= len(rows)
            propagation_tc = link.propagation_tc
            for row in rows:
                pop.budget_radio[row] += propagation_tc
            self._seq = seq = self._seq + 1
            heappush(self._heap, (now + propagation_tc, seq, _DELIVER,
                                  rows))
            return
        # The block never lands; its air-time entry stays behind as a
        # stale lower bound (only ever conservative — it can suppress
        # a fusion, never permit a wrong one) and is swept by the next
        # delivery that passes it.
        link.counters.blocks_failed += 1
        if self.tracer.enabled:
            self.tracer.emit(now, "link", "block_failed",
                             packets=len(rows))
        max_harq = link.max_harq
        survivors: list[int] = []
        for row in rows:
            if pop.retx[row] >= max_harq:
                pop.dropped[row] = True
                link.counters.packets_dropped += 1
                self._ue_hot[ue_id] -= 1
            else:
                pop.retx[row] += 1
                survivors.append(row)
        if not survivors:
            return
        feedback = self._system._ul_feedback
        if feedback is None:
            for row in survivors:
                self._plan_grant_free(row, ue_id, now, True)
            return
        if link.last_fault_fate == "dtx":
            feedback_at = feedback.dtx_detection_time(now)
        else:
            feedback_at = feedback.feedback_time(now)
        wait = feedback_at - now
        for row in survivors:
            pop.budget_protocol[row] += wait
        self._seq = seq = self._seq + 1
        heappush(self._heap, (feedback_at, seq, _RETRANSMIT, ue_id,
                              survivors))
