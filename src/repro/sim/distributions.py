"""Delay distributions used across the latency models.

Processing and radio latencies in a software 5G stack are non-negative
and right-skewed (Table 2 of the paper reports standard deviations of the
same order as the means).  We model them with log-normal distributions
fitted from a mean/std pair, which keeps calibration direct: feed in the
numbers the paper measured, get a sampler back.

All samplers draw from a caller-supplied ``numpy`` Generator so that
randomness stays under the control of :class:`repro.sim.rng.RngRegistry`.
Samples are returned in *microseconds* (float); convert to Tc at the
simulation boundary with :func:`repro.phy.timebase.tc_from_us`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "DelaySampler",
    "Constant",
    "LogNormal",
    "TruncatedNormal",
    "Exponential",
    "Spiked",
    "from_mean_std",
]


class DelaySampler(Protocol):
    """Anything that can produce a non-negative delay in microseconds."""

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay (µs)."""
        ...

    def sample_batch(self, rng: np.random.Generator,
                     n: int) -> np.ndarray:
        """Draw ``n`` delays (µs) as a float array.

        Contract: the batch must consume the generator's bit-stream
        exactly as ``n`` successive :meth:`sample` calls would, so that
        ``sample_batch(rng, n)[i]`` equals the i-th sequential draw.
        Samplers that cannot honour this (data-dependent draw counts)
        fall back to a scalar loop, which satisfies it trivially.
        """
        ...

    @property
    def mean_us(self) -> float:
        """Expected delay (µs)."""
        ...


@dataclass(frozen=True)
class Constant:
    """A deterministic delay."""

    value_us: float

    def __post_init__(self) -> None:
        if self.value_us < 0:
            raise ValueError(f"delay must be >= 0, got {self.value_us}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value_us

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value_us, dtype=float)

    @property
    def mean_us(self) -> float:
        return self.value_us


@dataclass(frozen=True)
class LogNormal:
    """Log-normal delay parameterised by its *arithmetic* mean and std.

    ``LogNormal(mean_us=55.21, std_us=16.31)`` reproduces the MAC row of
    the paper's Table 2.  A zero std degenerates to a constant.
    """

    mean_us: float
    std_us: float

    def __post_init__(self) -> None:
        if self.mean_us < 0 or self.std_us < 0:
            raise ValueError("mean and std must be >= 0, "
                             f"got mean={self.mean_us}, std={self.std_us}")

    def _log_params(self) -> tuple[float, float]:
        # Memoized: the instance is frozen, so (mu, sigma) never changes,
        # and this is called once per packet transit on the hot path.
        cached = getattr(self, "_log_params_cache", None)
        if cached is None:
            variance_ratio = (self.std_us / self.mean_us) ** 2
            sigma2 = math.log1p(variance_ratio)
            cached = (math.log(self.mean_us) - sigma2 / 2,
                      math.sqrt(sigma2))
            object.__setattr__(self, "_log_params_cache", cached)
        return cached

    def sample(self, rng: np.random.Generator) -> float:
        if self.mean_us == 0:
            return 0.0
        if self.std_us == 0:
            return self.mean_us
        mu, sigma = self._log_params()
        return float(rng.lognormal(mu, sigma))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.mean_us == 0:
            return np.zeros(n, dtype=float)
        if self.std_us == 0:
            return np.full(n, self.mean_us, dtype=float)
        mu, sigma = self._log_params()
        # Generator.lognormal(size=n) consumes the bit-stream exactly as
        # n scalar calls (verified by tests/sim/test_sampling.py).
        return rng.lognormal(mu, sigma, n)


@dataclass(frozen=True)
class TruncatedNormal:
    """Normal delay clipped at zero (for tightly-bounded RT-kernel noise)."""

    mean_us: float
    std_us: float

    def __post_init__(self) -> None:
        if self.mean_us < 0 or self.std_us < 0:
            raise ValueError("mean and std must be >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        return max(0.0, float(rng.normal(self.mean_us, self.std_us)))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.maximum(rng.normal(self.mean_us, self.std_us, n), 0.0)


@dataclass(frozen=True)
class Exponential:
    """Exponential delay (memoryless spikes)."""

    mean_us: float

    def __post_init__(self) -> None:
        if self.mean_us < 0:
            raise ValueError("mean must be >= 0")

    def sample(self, rng: np.random.Generator) -> float:
        if self.mean_us == 0:
            return 0.0
        return float(rng.exponential(self.mean_us))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.mean_us == 0:
            return np.zeros(n, dtype=float)
        return rng.exponential(self.mean_us, n)


@dataclass(frozen=True)
class Spiked:
    """A base delay plus a rare additive spike.

    Models OS-scheduling interference: most samples follow ``base``; with
    probability ``spike_probability`` a heavy extra delay drawn from
    ``spike`` is added.  This is the structure visible in the paper's
    Fig 5 ("concerning spikes arise due to delays in the OS scheduling").
    """

    base: DelaySampler
    spike: DelaySampler
    spike_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ValueError("spike_probability must be in [0, 1], "
                             f"got {self.spike_probability}")

    def sample(self, rng: np.random.Generator) -> float:
        delay = self.base.sample(rng)
        if self.spike_probability and rng.random() < self.spike_probability:
            delay += self.spike.sample(rng)
        return delay

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # The draw count per sample is data-dependent (the spike draw
        # only happens when the uniform falls below the threshold), so a
        # vectorized batch would consume a different bit-stream than n
        # scalar calls.  Keep the scalar path to honour the contract.
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @property
    def mean_us(self) -> float:
        return (self.base.mean_us
                + self.spike_probability * self.spike.mean_us)


def from_mean_std(mean_us: float, std_us: float) -> DelaySampler:
    """Calibration helper: the natural sampler for a mean/std pair."""
    if std_us == 0:
        return Constant(mean_us)
    return LogNormal(mean_us, std_us)
