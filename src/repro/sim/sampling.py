"""Buffered (block-drawn) sampling on top of :mod:`repro.sim.distributions`.

A :class:`BufferedSampler` wraps a :class:`~repro.sim.distributions.
DelaySampler` together with the numpy Generator that *owns* it and
pre-draws blocks of samples via ``sample_batch``, serving them one at a
time.  This trades ~1024 round-trips through numpy's scalar API for one
vectorized call — the dominant per-packet cost in the DES inner loop.

Determinism contract
--------------------
Buffering is bit-identical to scalar sampling **iff**:

1. ``sample_batch(rng, n)`` consumes the generator's bit-stream exactly
   as ``n`` scalar ``sample`` calls would (true for the numpy-backed
   samplers here; ``Spiked`` falls back to a scalar loop), and
2. the wrapped Generator has *exactly one* consumer — the buffered
   sampler.  If any other code draws from the same Generator between
   two ``sample()`` calls, the pre-drawn block no longer corresponds to
   the values a scalar path would have produced, and results change.

Point 2 is why only exclusive streams (e.g. the ``upf`` and ``link``
registry streams) are buffered in :mod:`repro.net`; samplers sharing a
per-component generator keep the scalar path.  :class:`BufferedSampler`
enforces the ownership rule mechanically: ``sample`` must be called with
the owning Generator (identity check) so a caller cannot silently feed
it a different stream.

For golden-trace tests, :func:`force_sequential` disables block drawing
process-wide so the same wiring can be run both ways and compared.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from .distributions import DelaySampler
from .sanitize import (DeterminismViolation, RecordingGenerator,
                       caller_qualname, claim_exclusive, owner_section,
                       sanitize_active)

__all__ = [
    "DEFAULT_BLOCK",
    "BufferedSampler",
    "UniformBuffer",
    "LogNormalBlockServer",
    "DeterminismViolation",
    "force_sequential",
    "buffering_enabled",
]

#: Samples pre-drawn per block.  Large enough to amortise the numpy call
#: overhead, small enough that a short campaign does not waste draws
#: (unused tail samples are never consumed from the Generator — they are
#: drawn, so the stream position advances identically either way).
DEFAULT_BLOCK = 1024

_BUFFERING_ENABLED = True


def buffering_enabled() -> bool:
    """Whether buffered samplers currently pre-draw blocks."""
    return _BUFFERING_ENABLED


@contextmanager
def force_sequential() -> Iterator[None]:
    """Disable block pre-drawing for the duration of the context.

    Inside the context every :class:`BufferedSampler`/:class:`
    UniformBuffer` call delegates to the scalar path, which is how the
    golden-trace tests prove buffered runs are bit-identical: run the
    same scenario with and without this context and compare digests.
    Affects only samplers *constructed or refilled* inside the context;
    use it around whole runs, not mid-run.
    """
    global _BUFFERING_ENABLED
    previous = _BUFFERING_ENABLED
    _BUFFERING_ENABLED = False
    try:
        yield
    finally:
        _BUFFERING_ENABLED = previous


class BufferedSampler:
    """Serve scalar samples from pre-drawn blocks of a DelaySampler.

    The wrapper takes ownership of ``rng``: it is an error (raised, not
    silent) to call :meth:`sample` with any other Generator, because the
    pre-drawn block encodes this generator's stream position.
    """

    __slots__ = ("_sampler", "_rng", "_block", "_buf", "_pos", "_owner")

    def __init__(self, sampler: DelaySampler, rng: np.random.Generator,
                 block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self._sampler = sampler
        self._rng = rng
        self._block = block
        self._buf: np.ndarray | None = None
        self._pos = 0
        self._owner = self._claim()

    def _claim(self) -> str:
        """Record exclusive ownership of the stream under the sanitizer.

        The owner label is the constructing frame (the component wiring
        this sampler), so violation reports name both sides of a
        conflict.  Outside sanitized runs this is a cheap constant.
        """
        if not isinstance(self._rng, RecordingGenerator):
            return type(self).__name__
        owner = f"{caller_qualname(2)} [{type(self).__name__}]"
        claim_exclusive(self._rng, owner)
        return owner

    @property
    def mean_us(self) -> float:
        return self._sampler.mean_us

    @property
    def sampler(self) -> DelaySampler:
        """The wrapped (unbuffered) sampler."""
        return self._sampler

    def sample(self, rng: np.random.Generator) -> float:
        """Next sample; ``rng`` must be the owning Generator."""
        if rng is not self._rng:
            raise DeterminismViolation(
                "BufferedSampler owns its Generator; sample() was called "
                "with a different one.  Buffering is only deterministic "
                "for a single-consumer stream — use the scalar sampler "
                "for shared generators.",
                stream=getattr(self._rng, "stream_name", None),
                owner=self._owner, consumer=caller_qualname(1))
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            if not _BUFFERING_ENABLED:
                if buf is not None and sanitize_active():
                    # A pre-drawn block exists, so the stream position
                    # is already blocks ahead of the served count;
                    # switching to the scalar path now skips the
                    # unserved tail and diverges from both pure modes.
                    raise DeterminismViolation(
                        "force_sequential() entered mid-run: this "
                        "sampler already served pre-drawn blocks, so "
                        "scalar draws would skip the unconsumed tail.  "
                        "Wrap whole runs, not fragments.",
                        stream=getattr(self._rng, "stream_name", None),
                        owner=self._owner, consumer=caller_qualname(1))
                with owner_section(self._rng):
                    return float(self._sampler.sample(self._rng))
            with owner_section(self._rng):
                buf = self._sampler.sample_batch(self._rng, self._block)
            self._buf = buf
            self._pos = 0
        value = buf[self._pos]
        self._pos += 1
        return float(value)

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Batch draw, consuming any buffered samples first."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    def peek(self, n: int) -> np.ndarray | None:
        """The next ``n`` values of the stream *without* consuming
        them, or None when block drawing is disabled.

        The slotted engine uses this to serve a stream's draws from
        a local chunk instead of one :meth:`sample` call each (see
        :meth:`LogNormalBlockServer.peek` for the contract).  Refills
        happen in whole ``block``-sized ``sample_batch`` calls — the
        same call grid :meth:`sample` uses — so peeking never changes
        the stream position or the served value sequence.
        """
        if not _BUFFERING_ENABLED:
            return None
        buf = self._buf
        if buf is None:
            with owner_section(self._rng):
                buf = self._sampler.sample_batch(self._rng, self._block)
            self._buf = buf
            self._pos = 0
        while len(buf) - self._pos < n:
            with owner_section(self._rng):
                fresh = self._sampler.sample_batch(self._rng,
                                                   self._block)
            buf = np.concatenate((buf[self._pos:], fresh))
            self._buf = buf
            self._pos = 0
        return buf[self._pos:self._pos + n]

    def commit(self, n: int) -> None:
        """Consume ``n`` values previously returned by :meth:`peek`."""
        self._pos += n


class LogNormalBlockServer:
    """Serve scalar *lognormal* draws with arbitrary per-draw parameters
    from pre-drawn blocks of standard normals.

    :class:`BufferedSampler` can only buffer a stream whose draws all
    come from **one** distribution — the block is pre-transformed.  The
    per-component ``ue<N>`` and ``gnb`` streams interleave draws from
    *several* lognormal distributions (one per stack layer) in
    data-dependent order, which is why they stayed scalar until now.

    This server exploits how numpy implements ``Generator.lognormal``:
    each scalar call consumes exactly **one** ziggurat standard normal
    ``z`` — independent of ``(mu, sigma)`` — and returns
    ``exp(mu + sigma * z)`` computed with the C library's scalar
    ``exp``.  So a block of ``standard_normal(n)`` variates can serve
    *any* interleaving of lognormal draws bit-identically, as long as
    the value is reconstructed with scalar :func:`math.exp` (the
    vectorized ``np.exp`` differs from libm by up to 1 ulp on some
    platforms, so the transform must stay scalar; both facts are pinned
    by ``tests/sim/test_sampling.py``).

    The ownership contract is the same as :class:`BufferedSampler`'s:
    the server takes exclusive ownership of ``rng``; any other consumer
    desynchronizes the pre-drawn block.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos", "_owner")

    def __init__(self, rng: np.random.Generator, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: np.ndarray | None = None
        self._pos = 0
        if isinstance(rng, RecordingGenerator):
            self._owner = f"{caller_qualname(1)} [{type(self).__name__}]"
            claim_exclusive(rng, self._owner)
        else:
            self._owner = type(self).__name__

    def owns(self, rng: np.random.Generator) -> bool:
        return rng is self._rng

    def sample(self, mu: float, sigma: float) -> float:
        """One lognormal draw, bit-identical to ``rng.lognormal(mu,
        sigma)`` on the owned stream."""
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            if not _BUFFERING_ENABLED:
                if buf is not None and sanitize_active():
                    raise DeterminismViolation(
                        "force_sequential() entered mid-run: this "
                        "block server already served pre-drawn "
                        "normals; scalar draws would skip the "
                        "unconsumed tail.  Wrap whole runs.",
                        stream=getattr(self._rng, "stream_name", None),
                        owner=self._owner, consumer=caller_qualname(1))
                with owner_section(self._rng):
                    return float(self._rng.lognormal(mu, sigma))
            with owner_section(self._rng):
                buf = self._rng.standard_normal(self._block)
            self._buf = buf
            self._pos = 0
        z = buf[self._pos]
        self._pos += 1
        return math.exp(mu + sigma * z)

    def peek(self, n: int) -> np.ndarray | None:
        """The next ``n`` standard normals of the stream *without*
        consuming them, or None when block drawing is disabled.

        This is what lets the slotted engine speculatively evaluate a
        whole per-packet draw chain and only commit it when the chain
        provably does not interleave with other consumers of the same
        stream (see :mod:`repro.sim.slotted`).  Refills happen in whole
        ``block``-sized ``standard_normal`` calls — the same call grid
        the serving path uses — so peeking never changes the stream
        position or the served value sequence.
        """
        if not _BUFFERING_ENABLED:
            return None
        buf = self._buf
        if buf is None:
            with owner_section(self._rng):
                buf = self._rng.standard_normal(self._block)
            self._buf = buf
            self._pos = 0
        while len(buf) - self._pos < n:
            with owner_section(self._rng):
                fresh = self._rng.standard_normal(self._block)
            buf = np.concatenate((buf[self._pos:], fresh))
            self._buf = buf
            self._pos = 0
        return buf[self._pos:self._pos + n]

    def commit(self, n: int) -> None:
        """Consume ``n`` normals previously returned by :meth:`peek`."""
        self._pos += n


class UniformBuffer:
    """Pre-drawn uniform [0, 1) variates from an owned Generator.

    The channel-loss path draws one uniform per transmission
    (``rng.random()``); this buffers them the same way
    :class:`BufferedSampler` buffers delay draws, with the same
    exclusive-ownership requirement.
    """

    __slots__ = ("_rng", "_block", "_buf", "_pos", "_owner")

    def __init__(self, rng: np.random.Generator, block: int = DEFAULT_BLOCK):
        if block < 1:
            raise ValueError(f"block size must be >= 1, got {block}")
        self._rng = rng
        self._block = block
        self._buf: np.ndarray | None = None
        self._pos = 0
        if isinstance(rng, RecordingGenerator):
            self._owner = f"{caller_qualname(1)} [{type(self).__name__}]"
            claim_exclusive(rng, self._owner)
        else:
            self._owner = type(self).__name__

    def owns(self, rng: np.random.Generator) -> bool:
        return rng is self._rng

    def next(self) -> float:
        buf = self._buf
        if buf is None or self._pos >= len(buf):
            if not _BUFFERING_ENABLED:
                if buf is not None and sanitize_active():
                    raise DeterminismViolation(
                        "force_sequential() entered mid-run: this "
                        "uniform buffer already served pre-drawn "
                        "blocks; scalar draws would skip the "
                        "unconsumed tail.  Wrap whole runs.",
                        stream=getattr(self._rng, "stream_name", None),
                        owner=self._owner, consumer=caller_qualname(1))
                with owner_section(self._rng):
                    return float(self._rng.random())
            with owner_section(self._rng):
                buf = self._rng.random(self._block)
            self._buf = buf
            self._pos = 0
        value = buf[self._pos]
        self._pos += 1
        return float(value)
