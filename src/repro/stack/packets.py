"""Packet model with journey bookkeeping.

A :class:`Packet` travels the Fig 2 path (APP → SDAP → PDCP → RLC → MAC
→ PHY → radio → ... → UPF).  Besides payload and header sizes it carries
two pieces of bookkeeping the analysis needs:

- ``timestamps`` — when the packet passed each named stage (used by the
  packet-journey reconstruction, Fig 3);
- ``budget`` — Tc charged to each of the paper's three latency sources
  (processing / protocol / radio), so every delivered packet can report
  its own latency decomposition (§4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from repro.mac.types import Direction

__all__ = ["PacketKind", "LatencySource", "HEADER_BYTES", "Packet"]

#: Fallback id source for packets built outside a simulation context
#: (ad-hoc tests, notebooks).  Simulation code must pass ``packet_id``
#: explicitly from a per-system counter — a process-global sequence
#: would make trace digests depend on how many packets earlier runs in
#: the same process created (see docs/LINTING.md, determinism).
_fallback_packet_ids = itertools.count(1)


class PacketKind(Enum):
    """What the packet is, end to end."""

    PING_REQUEST = "ping-request"
    PING_REPLY = "ping-reply"
    DATA = "data"

    # Identity hash (members are singletons with identity equality);
    # avoids hashing the value string on every dict lookup in the
    # per-packet bookkeeping.  See repro.mac.types.Direction.
    __hash__ = object.__hash__


class LatencySource(Enum):
    """The paper's three latency-source categories (§4)."""

    PROCESSING = "processing"
    PROTOCOL = "protocol"
    RADIO = "radio"

    __hash__ = object.__hash__  # identity hash; see PacketKind


#: Header overhead added by each layer (bytes).
HEADER_BYTES: dict[str, int] = {
    "SDAP": 1,
    "PDCP": 3,
    "RLC": 3,
    "MAC": 3,
    "GTP-U": 36,  # GTP-U(8) + outer UDP(8) + outer IPv4(20)
}


@dataclass
class Packet:
    """One user-plane packet and its journey record."""

    kind: PacketKind
    direction: Direction
    payload_bytes: int
    created_tc: int
    ue_id: int = 0
    packet_id: int = field(
        default_factory=lambda: next(_fallback_packet_ids))
    header_bytes: int = 0
    timestamps: dict[str, int] = field(default_factory=dict)
    budget: dict[LatencySource, int] = field(
        default_factory=lambda: {source: 0 for source in LatencySource})
    delivered_tc: int | None = None
    dropped: bool = False
    drop_reason: str | None = None
    harq_retransmissions: int = 0
    related_id: int | None = None  #: e.g. the request a reply answers

    def __post_init__(self) -> None:
        if self.payload_bytes <= 0:
            raise ValueError(
                f"payload must be positive, got {self.payload_bytes}")
        if self.created_tc < 0:
            raise ValueError("creation time must be >= 0")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def wire_bytes(self) -> int:
        """Payload plus all headers added so far."""
        return self.payload_bytes + self.header_bytes

    @property
    def wire_bits(self) -> int:
        return 8 * self.wire_bytes

    def add_header(self, layer: str) -> None:
        """Account for ``layer``'s header overhead."""
        try:
            self.header_bytes += HEADER_BYTES[layer]
        except KeyError:
            raise ValueError(f"no header size known for layer {layer!r}"
                             ) from None

    # ------------------------------------------------------------------
    # journey bookkeeping
    # ------------------------------------------------------------------
    def stamp(self, stage: str, now: int) -> None:
        """Record the first time the packet passes ``stage``."""
        self.timestamps.setdefault(stage, now)

    def charge(self, source: LatencySource, ticks: int) -> None:
        """Attribute ``ticks`` of delay to a latency source."""
        if ticks < 0:
            raise ValueError(f"cannot charge negative time ({ticks})")
        self.budget[source] += ticks

    def mark_delivered(self, now: int) -> None:
        self.delivered_tc = now

    def mark_dropped(self, reason: str) -> None:
        self.dropped = True
        self.drop_reason = reason

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    @property
    def latency_tc(self) -> int | None:
        """One-way latency, if delivered."""
        if self.delivered_tc is None:
            return None
        return self.delivered_tc - self.created_tc

    def unattributed_tc(self) -> int | None:
        """Latency not charged to any source (should be ~0; the
        integration tests assert the decomposition is complete)."""
        latency = self.latency_tc
        if latency is None:
            return None
        return latency - sum(self.budget.values())
