"""RLC queue — where packets wait for the MAC scheduler.

The paper singles out the RLC queue waiting time (``RLC-q``, Table 2:
484.20 ± 89.46 µs on the testbed) as the dominant gNB-side latency: a
packet arriving just after MAC scheduling waits until it is scheduled in
a following slot (§5).  The queue therefore measures every packet's
waiting time and charges it to the *protocol* budget — it is structural
waiting imposed by once-per-slot scheduling, not processing work.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet
from repro.phy.timebase import us_from_tc

__all__ = ["MIN_SEGMENT_BYTES", "PullResult", "RlcQueue"]

#: Smallest useful RLC segment (segment header + a few payload bytes);
#: leftover transport-block space below this is not worth splitting for.
MIN_SEGMENT_BYTES: int = 36


@dataclass(frozen=True)
class PullResult:
    """Outcome of one MAC pull from the RLC queue.

    ``completed`` are packets whose final byte is in this transport
    block — they proceed up/over the air as whole SDUs after reassembly.
    ``consumed_bytes`` additionally counts partial segments of a large
    head-of-line SDU that this block carries (§3: RLC performs
    "segmentation and reassembly").
    """

    completed: list[Packet]
    consumed_bytes: int

    @property
    def carries_data(self) -> bool:
        return self.consumed_bytes > 0


class RlcQueue:
    """FIFO of packets awaiting MAC scheduling, with wait accounting."""

    def __init__(self, sim: Simulator, tracer: Tracer, category: str,
                 max_packets: int | None = None,
                 fault_gate: "Callable[[str, Packet], bool] | None" = None):
        self.sim = sim
        self.tracer = tracer
        self.category = category
        self.max_packets = max_packets
        # Fault-injection hook (repro.faults): asked per enqueue whether
        # an injected loss storm claims this PDU.
        self.fault_gate = fault_gate
        self._queue: deque[tuple[int, Packet]] = deque()
        self.wait_samples_us: list[float] = []
        self.dropped_overflow = 0
        #: bytes of the head SDU already carried by earlier segments
        self._head_sent_bytes = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    @property
    def queued_bytes(self) -> int:
        return sum(packet.wire_bytes for _, packet in self._queue)

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> bool:
        """Add a packet; returns False (and drops it) on overflow or
        when an injected RLC loss claims it."""
        if (self.fault_gate is not None
                and self.fault_gate(self.category, packet)):
            packet.mark_dropped("fault-rlc-loss")
            return False
        if (self.max_packets is not None
                and len(self._queue) >= self.max_packets):
            packet.mark_dropped("rlc-queue-overflow")
            self.dropped_overflow += 1
            self.tracer.emit(self.sim.now, self.category, "overflow",
                             packet_id=packet.packet_id)
            return False
        packet.stamp(f"{self.category}.enqueue", self.sim.now)
        self._queue.append((self.sim.now, packet))
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(self.sim.now, self.category, "enqueue",
                             packet_id=packet.packet_id,
                             depth=len(self._queue))
        return True

    def _record_wait(self, enqueued_tc: int, packet: Packet) -> None:
        wait = self.sim.now - enqueued_tc
        packet.charge(LatencySource.PROTOCOL, wait)
        packet.stamp(f"{self.category}.dequeue", self.sim.now)
        self.wait_samples_us.append(us_from_tc(wait))
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.category, "dequeue",
                             packet_id=packet.packet_id,
                             wait_us=us_from_tc(wait))

    def dequeue(self) -> Packet | None:
        """Pop the oldest packet whole, recording its waiting time."""
        if not self._queue:
            return None
        enqueued_tc, packet = self._queue.popleft()
        self._head_sent_bytes = 0
        self._record_wait(enqueued_tc, packet)
        return packet

    def pull(self, capacity_bytes: int,
             allow_segmentation: bool = False) -> PullResult:
        """Fill one transport block from the queue (FIFO, no
        reordering, as in RLC acknowledged mode).

        Without segmentation the pull stops at the first SDU that does
        not fit.  With it, a too-large head SDU is split: the block
        carries a segment (counted in ``consumed_bytes``) and the SDU
        stays queued with its remainder; the SDU completes — and its
        queueing wait is recorded — when its last segment is pulled.
        """
        completed: list[Packet] = []
        remaining = capacity_bytes
        consumed = 0
        while self._queue:
            enqueued_tc, packet = self._queue[0]
            outstanding = packet.wire_bytes - self._head_sent_bytes
            if outstanding <= remaining:
                self._queue.popleft()
                self._head_sent_bytes = 0
                self._record_wait(enqueued_tc, packet)
                remaining -= outstanding
                consumed += outstanding
                completed.append(packet)
                continue
            if allow_segmentation and remaining >= MIN_SEGMENT_BYTES:
                self._head_sent_bytes += remaining
                consumed += remaining
                if self.tracer.enabled:
                    self.tracer.emit(self.sim.now, self.category, "segment",
                                     packet_id=packet.packet_id,
                                     sent=self._head_sent_bytes,
                                     of=packet.wire_bytes)
                remaining = 0
            break
        return PullResult(completed, consumed)

    def pull_up_to(self, capacity_bytes: int) -> list[Packet]:
        """Whole-SDU pull (no segmentation); returns the packets."""
        return self.pull(capacity_bytes).completed

    def head_of_line_wait_tc(self) -> int | None:
        """Current waiting time of the oldest packet, if any."""
        if not self._queue:
            return None
        return self.sim.now - self._queue[0][0]
