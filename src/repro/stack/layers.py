"""Protocol-layer processing pipeline.

Each :class:`ProcessingLayer` models one layer of the 5G stack as a
stochastic processing delay (calibrated per :mod:`repro.calibration`)
plus optional header overhead.  Layers chain into a
:class:`LayerPipeline`; packets flow through asynchronously on the
simulator, so concurrent packets interleave naturally.

Processing time is charged to the ``PROCESSING`` budget category and
recorded per layer, which is how the Table 2 reproduction measures what
each layer cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

__all__ = ["ProcessingLayer", "LayerPipeline"]

if TYPE_CHECKING:
    from repro.sim.resources import CpuResource

from repro.sim.distributions import DelaySampler
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer
from repro.stack.packets import LatencySource, Packet
from repro.phy.timebase import tc_from_us


class ProcessingLayer:
    """One stack layer: sampled processing delay + header accounting."""

    def __init__(self, sim: Simulator, tracer: Tracer, name: str,
                 category: str, delay: DelaySampler,
                 rng: np.random.Generator,
                 adds_header: bool = False,
                 cpu: "CpuResource | None" = None,
                 dilation: Callable[[str], float] | None = None):
        self.sim = sim
        self.tracer = tracer
        self.name = name
        self.category = category
        self.delay = delay
        self.rng = rng
        self.adds_header = adds_header
        self.cpu = cpu
        # Fault-injection hook (repro.faults): multiplies the sampled
        # delay during a processing-overload window (factor >= 1).
        self.dilation = dilation
        self.samples_us: list[float] = []

    def process(self, packet: Packet,
                on_done: Callable[[Packet], None]) -> None:
        """Run the packet through this layer, then call ``on_done``.

        With a shared :class:`~repro.sim.resources.CpuResource` the
        intrinsic delay is a CPU job: contention queueing inflates the
        observed processing time (§7's multi-UE caveat).
        """
        delay_us = self.delay.sample(self.rng)
        if self.dilation is not None:
            delay_us = delay_us * self.dilation(self.category)
        delay_tc = tc_from_us(delay_us)
        self.samples_us.append(delay_us)
        submitted = self.sim.now
        if self.tracer.enabled:  # lazy fields: skip kwargs when disabled
            self.tracer.emit(submitted, self.category, "enter",
                             packet_id=packet.packet_id, layer=self.name)
        packet.stamp(f"{self.category}.enter", submitted)

        def finish() -> None:
            packet.charge(LatencySource.PROCESSING,
                          self.sim.now - submitted)
            packet.stamp(f"{self.category}.exit", self.sim.now)
            if self.adds_header:
                packet.add_header(self.name)
            if self.tracer.enabled:
                self.tracer.emit(self.sim.now, self.category, "exit",
                                 packet_id=packet.packet_id, layer=self.name,
                                 delay_us=delay_us)
            on_done(packet)

        if self.cpu is not None:
            self.cpu.execute(delay_tc, finish)
        else:
            self.sim.call_in(delay_tc, finish)


class LayerPipeline:
    """A fixed sequence of layers traversed in order."""

    def __init__(self, layers: Sequence[ProcessingLayer]):
        if not layers:
            raise ValueError("pipeline needs at least one layer")
        self.layers = tuple(layers)

    def process(self, packet: Packet,
                on_done: Callable[[Packet], None]) -> None:
        """Send the packet through every layer, then ``on_done``."""

        def advance(index: int, pkt: Packet) -> None:
            if index == len(self.layers):
                on_done(pkt)
                return
            self.layers[index].process(
                pkt, lambda p: advance(index + 1, p))

        advance(0, packet)

    def layer(self, name: str) -> ProcessingLayer:
        """Look up a layer by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        known = ", ".join(l.name for l in self.layers)
        raise KeyError(f"no layer {name!r} in pipeline ({known})")

    def mean_total_us(self) -> float:
        """Sum of the layers' configured mean delays — the value the MAC
        scheduling margin must cover (§4 interdependency)."""
        return sum(layer.delay.mean_us for layer in self.layers)
