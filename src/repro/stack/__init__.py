"""Protocol-stack substrate: packets, layer pipelines, the RLC queue."""

from repro.stack.layers import LayerPipeline, ProcessingLayer
from repro.stack.packets import (
    HEADER_BYTES,
    LatencySource,
    Packet,
    PacketKind,
)
from repro.stack.rlc import RlcQueue

__all__ = [
    "LayerPipeline",
    "ProcessingLayer",
    "HEADER_BYTES",
    "LatencySource",
    "Packet",
    "PacketKind",
    "RlcQueue",
]
