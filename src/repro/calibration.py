"""Calibration constants fitted to the paper's testbed measurements.

The paper's evaluation ran on a physical srsRAN + USRP B210 testbed; we
reproduce it in simulation by drawing the stochastic model parameters
from the numbers the paper reports:

- :data:`GNB_LAYER_DELAYS` — Table 2's per-layer processing times
  (mean/std in µs).  ``RLC-q`` is deliberately *absent*: the RLC queue
  waiting time is an emergent quantity the simulation must produce, not
  an input (the Table 2 benchmark compares the emergent value against
  the paper's 484.20 ± 89.46 µs).
- :data:`UE_LAYER_DELAYS` — the UE "needs more time for processing than
  gNB" (§7); the modem-side totals are scaled up accordingly.  The
  paper does not publish per-layer UE numbers, so these are set to
  plausible multiples of the gNB ones (documented substitution).
- USB interface parameters — fitted to Fig 5's series: latency grows
  linearly with the number of submitted samples from ≈160 µs at 2 000
  samples, reaching ≈400 µs (USB 2.0) vs ≈190 µs (USB 3.0) at 20 000,
  with OS-scheduling spikes on top.

A user with a real testbed can re-fit everything here without touching
the models.
"""

from __future__ import annotations

from repro.sim.distributions import DelaySampler, Exponential, from_mean_std

__all__ = [
    "GNB_LAYER_STATS",
    "PAPER_RLC_QUEUE_STATS",
    "gnb_layer_delays",
    "UE_TX_PROCESSING_SCALE",
    "UE_RX_PROCESSING_SCALE",
    "UE_APP_DELAY_US",
    "ue_tx_layer_delays",
    "ue_rx_layer_delays",
    "INTERFACE_PARAMS",
    "interface_spike",
    "TESTBED_RH_LATENCY_US",
    "OS_JITTER_GPOS",
    "OS_JITTER_RT_KERNEL",
]

# ---------------------------------------------------------------------------
# Table 2: gNB per-layer processing times (µs).
# ---------------------------------------------------------------------------

#: (mean µs, std µs) per gNB layer, from the paper's Table 2.
GNB_LAYER_STATS: dict[str, tuple[float, float]] = {
    "SDAP": (4.65, 6.71),
    "PDCP": (8.29, 8.99),
    "RLC": (4.12, 8.37),
    "MAC": (55.21, 16.31),
    "PHY": (41.55, 10.83),
}

#: Paper's measured RLC queue waiting time (µs) — the value the DDDU
#: simulation must *reproduce*, not consume.
PAPER_RLC_QUEUE_STATS: tuple[float, float] = (484.20, 89.46)


def gnb_layer_delays(scale: float = 1.0) -> dict[str, DelaySampler]:
    """Delay samplers for each gNB layer, calibrated to Table 2.

    ``scale`` < 1 models hardware acceleration (the paper's footnote 1:
    an ASIC implementation could meet the requirements but forfeits the
    software-based flexibility of §9).
    """
    return {layer: from_mean_std(mean * scale, std * scale)
            for layer, (mean, std) in GNB_LAYER_STATS.items()}


# ---------------------------------------------------------------------------
# UE processing (documented substitution; see module docstring).
# ---------------------------------------------------------------------------

#: UE-to-gNB processing scale factors (§7: "the UE needs more time for
#: processing than gNB").  The asymmetry reflects commercial modems:
#: the transmit path (firmware MAC scheduling, uplink preparation) is
#: slow, while receive decoding runs in dedicated hardware.
UE_TX_PROCESSING_SCALE: float = 8.0
UE_RX_PROCESSING_SCALE: float = 3.0

#: Extra fixed APP-layer delay at the UE (socket + kernel path), µs.
UE_APP_DELAY_US: tuple[float, float] = (30.0, 10.0)


def _scaled_layer_delays(scale: float) -> dict[str, DelaySampler]:
    return {layer: from_mean_std(mean * scale, std * scale)
            for layer, (mean, std) in GNB_LAYER_STATS.items()}


def ue_tx_layer_delays(
        scale: float = UE_TX_PROCESSING_SCALE) -> dict[str, DelaySampler]:
    """Delay samplers for the UE transmit (APP↓...PHY) path."""
    delays = _scaled_layer_delays(scale)
    delays["APP"] = from_mean_std(*UE_APP_DELAY_US)
    return delays


def ue_rx_layer_delays(
        scale: float = UE_RX_PROCESSING_SCALE) -> dict[str, DelaySampler]:
    """Delay samplers for the UE receive (PHY↑...APP) path."""
    delays = _scaled_layer_delays(scale)
    delays["APP"] = from_mean_std(*UE_APP_DELAY_US)
    return delays


# ---------------------------------------------------------------------------
# Fig 5: radio sample-submission latency over the host interface bus.
# ---------------------------------------------------------------------------

#: Per-interface (setup µs, per-sample µs, spike probability,
#: spike mean µs) fitted to Fig 5's two series.
INTERFACE_PARAMS: dict[str, tuple[float, float, float, float]] = {
    "usb2": (135.0, 0.0125, 0.06, 45.0),
    "usb3": (145.0, 0.0022, 0.04, 35.0),
    # Not in Fig 5, used by the design-choice ablations:
    "pcie": (15.0, 0.0004, 0.01, 8.0),
    "ethernet": (60.0, 0.0010, 0.02, 20.0),
}


def interface_spike(name: str) -> tuple[float, Exponential]:
    """Spike probability and magnitude sampler for a bus."""
    _, _, probability, mean = INTERFACE_PARAMS[name]
    return probability, Exponential(mean)


# ---------------------------------------------------------------------------
# Radio head totals (§7: "the RH in use introduces around 500 µs
# latency", forcing a one-slot scheduling delay at 0.5 ms slots).
# ---------------------------------------------------------------------------

#: End-to-end one-way radio-head latency of the testbed's USB B210 (µs).
TESTBED_RH_LATENCY_US: float = 500.0

#: OS-jitter regimes (§6): mean extra delay and spike shape.
OS_JITTER_GPOS = {"spike_probability": 0.05, "spike_mean_us": 120.0,
                  "base_std_us": 12.0}
OS_JITTER_RT_KERNEL = {"spike_probability": 0.002, "spike_mean_us": 15.0,
                       "base_std_us": 2.0}
