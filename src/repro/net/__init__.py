"""End-to-end network nodes: UE, gNB, link, core, experiment drivers."""

from repro.net.core_network import PingServer, Upf
from repro.net.gnb import Gnb, GnbCounters
from repro.net.link import AirLink, LinkCounters
from repro.net.probes import LatencyProbe, LatencySummary, summarize_us
from repro.net.session import PingResult, RanConfig, RanSystem
from repro.net.ue import Ue, UeCounters

__all__ = [
    "PingServer",
    "Upf",
    "Gnb",
    "GnbCounters",
    "AirLink",
    "LinkCounters",
    "LatencyProbe",
    "LatencySummary",
    "summarize_us",
    "PingResult",
    "RanConfig",
    "RanSystem",
    "Ue",
    "UeCounters",
]
