"""Latency probes: collect delivered packets and summarise them."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stack.packets import LatencySource, Packet
from repro.phy.timebase import us_from_tc

__all__ = ["LatencySummary", "summarize_us", "LatencyProbe"]


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics over one set of latency samples (µs)."""

    count: int
    mean_us: float
    std_us: float
    min_us: float
    p50_us: float
    p99_us: float
    p999_us: float
    max_us: float

    def __str__(self) -> str:
        return (f"n={self.count} mean={self.mean_us:.1f} "
                f"std={self.std_us:.1f} p50={self.p50_us:.1f} "
                f"p99={self.p99_us:.1f} max={self.max_us:.1f} (µs)")


def summarize_us(samples_us: list[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw µs samples."""
    if not samples_us:
        raise ValueError("no samples to summarise")
    array = np.asarray(samples_us, dtype=float)
    return LatencySummary(
        count=len(samples_us),
        mean_us=float(array.mean()),
        std_us=float(array.std(ddof=1)) if len(samples_us) > 1 else 0.0,
        min_us=float(array.min()),
        p50_us=float(np.quantile(array, 0.50)),
        p99_us=float(np.quantile(array, 0.99)),
        p999_us=float(np.quantile(array, 0.999)),
        max_us=float(array.max()),
    )


class LatencyProbe:
    """Collects delivered packets for one measurement direction."""

    def __init__(self, name: str = "probe"):
        self.name = name
        self.packets: list[Packet] = []

    def record(self, packet: Packet) -> None:
        if packet.delivered_tc is None:
            raise ValueError(
                f"packet {packet.packet_id} recorded before delivery")
        self.packets.append(packet)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.packets)

    def latencies_tc(self) -> list[int]:
        return [p.latency_tc for p in self.packets]  # type: ignore

    def latencies_us(self) -> list[float]:
        return [us_from_tc(lat) for lat in self.latencies_tc()]

    def latencies_ms(self) -> list[float]:
        return [lat / 1000.0 for lat in self.latencies_us()]

    def summary(self) -> LatencySummary:
        return summarize_us(self.latencies_us())

    def budget_means_us(self) -> dict[str, float]:
        """Mean per-source latency decomposition (§4's three sources)."""
        if not self.packets:
            return {source.value: 0.0 for source in LatencySource}
        means: dict[str, float] = {}
        for source in LatencySource:
            total = sum(p.budget[source] for p in self.packets)
            means[source.value] = us_from_tc(total / len(self.packets))
        return means

    def fraction_within(self, budget_us: float) -> float:
        """Fraction of packets delivered within a latency budget —
        the reliability metric of §6."""
        if not self.packets:
            return 0.0
        within = sum(1 for lat in self.latencies_us() if lat <= budget_us)
        return within / len(self.packets)
